(* Monitoring layer: sliding windows, per-document accounts with soft
   budgets, the flight recorder, capture/replay, and the session wiring.

   Determinism is the backbone of every assertion here: windows and
   accounts run on the simulated I/O clock, so a deterministic workload
   must produce byte-identical exports and a capture must replay to
   byte-identical digests with equal I/O totals at any job count. *)

open Natix_core
module Window = Natix_mon.Window
module Registry = Natix_mon.Registry
module Account = Natix_mon.Account
module Recorder = Natix_mon.Recorder
module Replay = Natix_mon.Replay
module Mon = Natix_mon.Mon
module Event = Natix_obs.Event
module Json = Natix_obs.Json
module Io_stats = Natix_store.Io_stats

(* Small pages and a small pool so even the test corpus does real I/O
   once the buffers are dropped. *)
let config ?(buffer_bytes = 16 * 1024) () =
  { (Config.default ()) with Config.page_size = 1024; buffer_bytes }

(* A deterministic multi-page document: enough speeches that queries
   touch several pages. *)
let play_xml name =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<PLAY><TITLE>";
  Buffer.add_string b name;
  Buffer.add_string b "</TITLE>";
  for act = 1 to 2 do
    Buffer.add_string b "<ACT>";
    for sp = 1 to 20 do
      Buffer.add_string b
        (Printf.sprintf
           "<SPEECH><SPEAKER>S%d</SPEAKER><LINE>act %d speech %d of %s with some more \
            words to fill the page</LINE></SPEECH>"
           sp act sp name)
    done;
    Buffer.add_string b "</ACT>"
  done;
  Buffer.add_string b "</PLAY>";
  Buffer.contents b

let parse = Natix_xml.Xml_parser.parse

let session_with_docs ?buffer_bytes names =
  let s = Natix.Session.in_memory ~config:(config ?buffer_bytes ()) () in
  List.iter
    (fun name ->
      match Natix.Session.store_document s ~name (parse (play_xml name)) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "store %s: %s" name (Error.to_string e))
    names;
  s

let cold s = Tree_store.clear_buffers (Natix.Session.store s)
let mon_of s = Option.get (Natix.Session.mon s)

(* ------------------------------------------------------------------ *)
(* Window                                                              *)

let window_tests =
  [
    Alcotest.test_case "empty window: zero aggregate, None quantiles" `Quick (fun () ->
        let w = Window.create ~bucket_ms:100. ~buckets:5 ~quantile_edges:[| 1.; 2. |] () in
        let a = Window.agg w ~at_ms:0. in
        Alcotest.(check int) "count" 0 a.Window.count;
        Alcotest.(check (float 1e-9)) "sum" 0. a.Window.sum;
        Alcotest.(check (float 1e-9)) "rate" 0. a.Window.rate_per_s;
        Alcotest.(check (option (float 1e-9))) "quantile" None (Window.quantile w ~at_ms:0. 0.5);
        Alcotest.(check bool) "p50/95/99" true (Window.p50_95_99 w ~at_ms:0. = None));
    Alcotest.test_case "no histogram: quantile always None, agg still works" `Quick (fun () ->
        let w = Window.create ~bucket_ms:100. ~buckets:5 () in
        Window.add w ~at_ms:10. 3.;
        Alcotest.(check (option (float 1e-9))) "no edges" None (Window.quantile w ~at_ms:10. 0.5);
        Alcotest.(check int) "count" 1 (Window.agg w ~at_ms:10.).Window.count);
    Alcotest.test_case "sliding: buckets retire as the clock advances" `Quick (fun () ->
        let w = Window.create ~bucket_ms:100. ~buckets:5 () in
        Window.add w ~at_ms:0. 1.;
        Window.add w ~at_ms:250. 2.;
        let a = Window.agg w ~at_ms:250. in
        Alcotest.(check (float 1e-9)) "both in window" 3. a.Window.sum;
        Alcotest.(check (float 1e-9)) "rate over span" (3. /. 0.5) a.Window.rate_per_s;
        (* At 550ms the epoch-0 bucket (stamp 0) is out of [50, 550]. *)
        let a = Window.agg w ~at_ms:550. in
        Alcotest.(check (float 1e-9)) "oldest dropped" 2. a.Window.sum;
        (* Jumping to 700ms recycles the ring slot the 250ms bucket
           lived in, and a stamp older than the window never lands. *)
        Window.add w ~at_ms:700. 4.;
        Window.add w ~at_ms:100. 8.;
        let a = Window.agg w ~at_ms:700. in
        Alcotest.(check (float 1e-9)) "only the fresh add is live" 4. a.Window.sum);
    Alcotest.test_case "non-finite values and stamps are dropped" `Quick (fun () ->
        let w = Window.create ~bucket_ms:100. ~buckets:5 ~quantile_edges:[| 1. |] () in
        Window.add w ~at_ms:10. Float.nan;
        Window.add w ~at_ms:10. Float.infinity;
        Window.add w ~at_ms:Float.nan 1.;
        Alcotest.(check int) "nothing recorded" 0 (Window.agg w ~at_ms:10.).Window.count;
        Alcotest.(check (option (float 1e-9))) "quantile still None" None
          (Window.quantile w ~at_ms:10. 0.99));
    Alcotest.test_case "moving quantiles interpolate and saturate" `Quick (fun () ->
        let w =
          Window.create ~bucket_ms:100. ~buckets:10 ~quantile_edges:[| 10.; 20.; 40. |] ()
        in
        (* 10 observations <=10, 10 in (10,20]: p50 at the first edge. *)
        for i = 0 to 9 do
          Window.add w ~at_ms:(float_of_int (i * 10)) 5.;
          Window.add w ~at_ms:(float_of_int (i * 10)) 15.
        done;
        (match Window.quantile w ~at_ms:95. 0.5 with
        | Some v -> Alcotest.(check (float 1e-6)) "p50" 10. v
        | None -> Alcotest.fail "p50 missing");
        (* Overflow observations report the last edge. *)
        Window.add w ~at_ms:95. 1000.;
        (match Window.quantile w ~at_ms:95. 1.0 with
        | Some v -> Alcotest.(check (float 1e-6)) "saturates at last edge" 40. v
        | None -> Alcotest.fail "p100 missing");
        Alcotest.check_raises "q out of range"
          (Invalid_argument "Window.quantile: q must be in [0, 1]") (fun () ->
            ignore (Window.quantile w ~at_ms:95. (-0.1))));
    Alcotest.test_case "create validates parameters" `Quick (fun () ->
        Alcotest.check_raises "bucket_ms <= 0"
          (Invalid_argument "Window.create: bucket_ms must be positive") (fun () ->
            ignore (Window.create ~bucket_ms:0. ~buckets:5 ()));
        Alcotest.check_raises "buckets <= 0"
          (Invalid_argument "Window.create: buckets must be positive") (fun () ->
            ignore (Window.create ~bucket_ms:1. ~buckets:0 ()));
        Alcotest.check_raises "bad edges"
          (Invalid_argument "Window.create: quantile edges must be finite and strictly increasing")
          (fun () ->
            ignore (Window.create ~bucket_ms:1. ~buckets:5 ~quantile_edges:[| 2.; 1. |] ())));
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registry_tests =
  [
    Alcotest.test_case "snapshots are deterministically ordered and byte-identical" `Quick
      (fun () ->
        let feed () =
          let r = Registry.create ~bucket_ms:100. ~buckets:10 () in
          Registry.define r "lat" ~quantile_edges:[| 1.; 10.; 100. |];
          let ctx doc phase = { Event.doc = Some doc; phase } in
          (* Feed in two different interleavings; the snapshot must not
             care. *)
          Registry.record r ~ctx:(ctx "b" "query") ~at_ms:10. "reads" 1.;
          Registry.record r ~ctx:(ctx "a" "scan") ~at_ms:20. "reads" 1.;
          Registry.record r ~ctx:(ctx "a" "query") ~at_ms:30. "reads" 1.;
          Registry.record r ~at_ms:40. "lat" 5.;
          Registry.record r ~at_ms:50. "lat" 50.;
          r
        in
        let s1 = Registry.snapshot (feed ()) ~at_ms:60. in
        let s2 = Registry.snapshot (feed ()) ~at_ms:60. in
        Alcotest.(check string) "json identical"
          (Json.to_string (Registry.to_json s1))
          (Json.to_string (Registry.to_json s2));
        Alcotest.(check string) "prometheus identical" (Registry.to_prometheus s1)
          (Registry.to_prometheus s2);
        let reads = List.find (fun s -> s.Registry.name = "reads") s1.Registry.series in
        Alcotest.(check int) "total" 3 reads.Registry.total_count;
        Alcotest.(check (list (pair (pair (option string) string) int)))
          "contexts sorted, windowed"
          [ ((Some "a", "query"), 1); ((Some "a", "scan"), 1); ((Some "b", "query"), 1) ]
          (List.map (fun (k, a) -> (k, a.Window.count)) reads.Registry.by_ctx);
        let lat = List.find (fun s -> s.Registry.name = "lat") s1.Registry.series in
        Alcotest.(check bool) "histogram series has quantiles" true
          (lat.Registry.quantiles <> None));
    Alcotest.test_case "duplicate define rejected; unknown series auto-created" `Quick
      (fun () ->
        let r = Registry.create () in
        Registry.define r "lat" ~quantile_edges:[| 1. |];
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Registry.define: duplicate series lat") (fun () ->
            Registry.define r "lat" ~quantile_edges:[| 2. |]);
        Registry.record r ~at_ms:0. "fresh" 2.;
        let s = Registry.snapshot r ~at_ms:0. in
        let fresh = List.find (fun s -> s.Registry.name = "fresh") s.Registry.series in
        Alcotest.(check bool) "no quantiles without edges" true
          (fresh.Registry.quantiles = None));
  ]

(* ------------------------------------------------------------------ *)
(* Accounts and budgets                                                *)

let account_tests =
  [
    Alcotest.test_case "budgets are edge-triggered, re-armed by set_budget" `Quick (fun () ->
        let a = Account.create () in
        Account.set_budget a ~doc:"d" { Account.max_reads = Some 5; max_sim_ms = None };
        Alcotest.(check int) "under budget: no breach" 0
          (List.length (Account.charge_reads a ~doc:"d" ~at_ms:0. 4));
        (match Account.charge_reads a ~doc:"d" ~at_ms:1. 3 with
        | [ b ] ->
          Alcotest.(check string) "resource" "reads" b.Account.resource;
          Alcotest.(check (float 1e-9)) "used" 7. b.Account.used;
          Alcotest.(check (float 1e-9)) "limit" 5. b.Account.limit
        | l -> Alcotest.failf "expected one breach, got %d" (List.length l));
        Alcotest.(check int) "already fired: silent" 0
          (List.length (Account.charge_reads a ~doc:"d" ~at_ms:2. 100));
        (* Re-arm with a higher limit; the cumulative total crosses it
           again on the next charge. *)
        Account.set_budget a ~doc:"d" { Account.max_reads = Some 200; max_sim_ms = None };
        Alcotest.(check int) "re-armed, under new limit" 0
          (List.length (Account.charge_reads a ~doc:"d" ~at_ms:3. 10));
        Alcotest.(check int) "crosses new limit once" 1
          (List.length (Account.charge_reads a ~doc:"d" ~at_ms:4. 200)));
    Alcotest.test_case "sim-ms budget and pinned peak ride operation charges" `Quick
      (fun () ->
        let a = Account.create () in
        Account.set_budget a ~doc:"d" { Account.max_reads = None; max_sim_ms = Some 10. };
        Alcotest.(check int) "under" 0
          (List.length (Account.charge_op a ~doc:"d" ~at_ms:0. ~sim_ms:6. ~pinned:2));
        (match Account.charge_op a ~doc:"d" ~at_ms:1. ~sim_ms:7. ~pinned:1 with
        | [ b ] -> Alcotest.(check string) "resource" "sim_ms" b.Account.resource
        | l -> Alcotest.failf "expected one breach, got %d" (List.length l));
        match Account.snapshot a ~at_ms:2. with
        | [ d ] ->
          Alcotest.(check (float 1e-9)) "sim_ms total" 13. d.Account.sim_ms_total;
          Alcotest.(check int) "pinned peak" 2 d.Account.pinned_peak;
          Alcotest.(check (list string)) "breached resources" [ "sim_ms" ] d.Account.breached
        | l -> Alcotest.failf "expected one account, got %d" (List.length l));
    Alcotest.test_case "snapshot sorted by document" `Quick (fun () ->
        let a = Account.create () in
        ignore (Account.charge_reads a ~doc:"zeta" ~at_ms:0. 1);
        ignore (Account.charge_reads a ~doc:"alpha" ~at_ms:0. 1);
        Alcotest.(check (list string)) "order" [ "alpha"; "zeta" ]
          (List.map (fun d -> d.Account.doc) (Account.snapshot a ~at_ms:0.)));
  ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let op ~seq ~kind ~doc ~detail =
  {
    Recorder.seq;
    at_ms = float_of_int seq;
    kind;
    doc;
    detail;
    plan = (if seq mod 2 = 0 then Some "nav" else None);
    reads = seq;
    writes = 0;
    sim_ms = float_of_int seq *. 1.5;
    outcome = "ok";
    digest = (if kind = "query" then Some (Digest.to_hex (Digest.string detail)) else None);
    rows = (if kind = "query" then Some (seq * 2) else None);
  }

let recorder_tests =
  [
    Alcotest.test_case "bounded ring keeps the newest, seq stays monotone" `Quick (fun () ->
        let r = Recorder.create ~capacity:4 in
        for i = 1 to 10 do
          Recorder.add r (op ~seq:0 ~kind:"query" ~doc:(Some "d") ~detail:(string_of_int i))
        done;
        Alcotest.(check int) "added" 10 (Recorder.added r);
        let ops = Recorder.ops r in
        Alcotest.(check int) "retained" 4 (List.length ops);
        Alcotest.(check (list int)) "seq oldest-first" [ 7; 8; 9; 10 ]
          (List.map (fun (o : Recorder.op) -> o.Recorder.seq) ops);
        Alcotest.(check (list string)) "payload matches" [ "7"; "8"; "9"; "10" ]
          (List.map (fun (o : Recorder.op) -> o.Recorder.detail) ops));
    Alcotest.test_case "dump/load JSONL roundtrip" `Quick (fun () ->
        let meta =
          {
            Recorder.version = 1;
            store = Some "s.natix";
            jobs = 4;
            cold = true;
            reads = 42;
            writes = 7;
            total_ios = 49;
            sim_ms = 123.456;
            trace_id = Some "t-000042";
          }
        in
        let ops =
          [
            op ~seq:1 ~kind:"query" ~doc:(Some "a") ~detail:"//SPEAKER";
            op ~seq:2 ~kind:"load" ~doc:(Some "b") ~detail:"b.xml";
            op ~seq:3 ~kind:"scan" ~doc:None ~detail:"all";
          ]
        in
        let path = Filename.temp_file "natix_mon" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            Recorder.dump oc meta ops;
            close_out oc;
            let meta', ops' = Recorder.load path in
            Alcotest.(check bool) "meta" true (meta = meta');
            Alcotest.(check bool) "ops" true (ops = ops')));
    Alcotest.test_case "load rejects unknown versions" `Quick (fun () ->
        let path = Filename.temp_file "natix_mon" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "{\"meta\":{\"version\":99,\"store\":null,\"jobs\":1,\"cold\":false,\"reads\":0,\"writes\":0,\"total_ios\":0,\"sim_ms\":0}}\n";
            close_out oc;
            match Recorder.load path with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "version 99 accepted"));
  ]

(* ------------------------------------------------------------------ *)
(* Capture / replay                                                    *)

let tasks_of docs = List.map (fun d -> (d, "//SPEAKER")) docs

let replay_tests =
  [
    Alcotest.test_case "capture replays byte-identical with equal I/O, jobs 1 and 4" `Quick
      (fun () ->
        let docs = [ "a"; "b"; "c"; "d" ] in
        (* A pool large enough that the batch never evicts: with
           capacity evictions mid-batch, total physical reads become
           schedule-dependent at jobs >= 2 and the I/O equality the
           replay asserts would not hold. *)
        let s = session_with_docs ~buffer_bytes:(256 * 1024) docs in
        let store = Natix.Session.store s in
        let tasks = ("a", "//LINE[1]") :: tasks_of docs in
        List.iter
          (fun capture_jobs ->
            let meta, ops = Replay.capture ~jobs:capture_jobs store tasks in
            Alcotest.(check bool) "cold capture" true meta.Recorder.cold;
            List.iter
              (fun (o : Recorder.op) ->
                Alcotest.(check string) "op ok" "ok" o.Recorder.outcome;
                Alcotest.(check bool) "digest present" true (o.Recorder.digest <> None))
              ops;
            List.iter
              (fun replay_jobs ->
                let r = Replay.run ~jobs:replay_jobs store meta ops in
                Alcotest.(check bool) "io checked" true r.Replay.io_checked;
                if not (Replay.ok r) then
                  Alcotest.failf "capture jobs=%d replay jobs=%d diverged" capture_jobs
                    replay_jobs;
                Alcotest.(check int) "all replayed" (List.length tasks) r.Replay.replayed)
              [ 1; 4 ])
          [ 1; 4 ]);
    Alcotest.test_case "replay detects divergence after mutation" `Quick (fun () ->
        let s = session_with_docs [ "a"; "b" ] in
        let store = Natix.Session.store s in
        let meta, ops = Replay.capture ~jobs:1 store (tasks_of [ "a"; "b" ]) in
        (* Change what //SPEAKER renders in one document. *)
        (match Natix.Session.query s ~doc:"a" "//SPEAKER[1]" with
        | Ok seq -> (
          match seq () with
          | Seq.Cons (c, _) -> (
            match Cursor.first_child c with
            | Some t when Cursor.is_text t ->
              Tree_store.update_text store (Cursor.node t) "MUTATED"
            | _ -> Alcotest.fail "speaker has no text child")
          | Seq.Nil -> Alcotest.fail "no speaker hit")
        | Error e -> Alcotest.failf "query: %s" (Error.to_string e));
        let r = Replay.run ~jobs:1 store meta ops in
        Alcotest.(check bool) "not ok" false (Replay.ok r);
        (match r.Replay.mismatches with
        | [ m ] ->
          Alcotest.(check (option string)) "mismatch on the mutated doc" (Some "a")
            m.Replay.doc
        | l -> Alcotest.failf "expected one mismatch, got %d" (List.length l));
        (* Non-query ops are skipped, and their presence downgrades the
           I/O assertion. *)
        let load_op = op ~seq:99 ~kind:"load" ~doc:(Some "x") ~detail:"x.xml" in
        let r = Replay.run ~jobs:1 store meta (load_op :: ops) in
        Alcotest.(check int) "skipped" 1 r.Replay.skipped;
        Alcotest.(check bool) "io not checked with non-query ops" false r.Replay.io_checked);
  ]

(* ------------------------------------------------------------------ *)
(* Session integration                                                 *)

let find_ops mon kind =
  List.filter (fun (o : Recorder.op) -> o.Recorder.kind = kind) (Mon.flight_ops mon)

let session_tests =
  [
    Alcotest.test_case "loads and consumed queries land in the flight ring" `Quick (fun () ->
        let s = session_with_docs [ "a"; "b" ] in
        let mon = mon_of s in
        Alcotest.(check int) "one load op per document" 2 (List.length (find_ops mon "load"));
        cold s;
        let added_before = Mon.flight_added mon in
        (* A dropped sequence must not record: the monitor sees completed
           operations only. *)
        (match Natix.Session.query s ~doc:"a" "//SPEAKER" with
        | Ok _dropped -> ()
        | Error e -> Alcotest.failf "query: %s" (Error.to_string e));
        Alcotest.(check int) "dropped query not recorded" added_before
          (Mon.flight_added mon);
        (match Natix.Session.query s ~doc:"a" "//SPEAKER" with
        | Ok seq ->
          let n = Seq.length seq in
          Alcotest.(check bool) "hits" true (n > 0);
          (match find_ops mon "query" with
          | [ o ] ->
            Alcotest.(check (option int)) "rows" (Some n) o.Recorder.rows;
            Alcotest.(check bool) "cold query did reads" true (o.Recorder.reads > 0);
            Alcotest.(check bool) "and charged sim time" true (o.Recorder.sim_ms > 0.)
          | l -> Alcotest.failf "expected one query op, got %d" (List.length l))
        | Error e -> Alcotest.failf "query: %s" (Error.to_string e));
        (* Errors record eagerly, with their class. *)
        (match Natix.Session.query s ~doc:"missing" "//X" with
        | Ok _ -> Alcotest.fail "query on missing doc succeeded"
        | Error _ -> ());
        let errs =
          List.filter (fun (o : Recorder.op) -> o.Recorder.outcome <> "ok") (Mon.flight_ops mon)
        in
        Alcotest.(check bool) "error op recorded" true
          (List.exists (fun (o : Recorder.op) -> o.Recorder.outcome = "error:storage") errs));
    Alcotest.test_case "batch entry points record per-task ops with real I/O deltas" `Quick
      (fun () ->
        let s = session_with_docs [ "a"; "b"; "c" ] in
        let mon = mon_of s in
        cold s;
        let outcome = Natix.Session.run_queries ~jobs:2 s (tasks_of [ "a"; "b"; "c" ]) in
        let batch_reads =
          List.fold_left
            (fun acc (d : Io_stats.t) -> acc + d.Io_stats.reads)
            0 outcome.Natix_par.Par.task_io
        in
        let ops = find_ops mon "query" in
        Alcotest.(check int) "one op per task" 3 (List.length ops);
        Alcotest.(check int) "per-op reads sum to the batch total" batch_reads
          (List.fold_left (fun acc (o : Recorder.op) -> acc + o.Recorder.reads) 0 ops);
        List.iter
          (fun (o : Recorder.op) ->
            Alcotest.(check bool) "digest" true (o.Recorder.digest <> None);
            Alcotest.(check bool) "rows" true (o.Recorder.rows <> None))
          ops;
        ignore (Natix.Session.scan_all ~jobs:2 s);
        Alcotest.(check int) "one scan op per document" 3
          (List.length (find_ops mon "scan")));
    Alcotest.test_case "budget breach fires the event and the callback once" `Quick (fun () ->
        let s = session_with_docs [ "a"; "b" ] in
        let mon = mon_of s in
        let obs = Option.get (Tree_store.obs (Natix.Session.store s)) in
        let events = ref [] in
        Natix_obs.Obs.subscribe obs (fun ev ->
            match ev.Event.kind with
            | Event.Budget_exceeded { doc; resource; _ } -> events := (doc, resource) :: !events
            | _ -> ());
        let callbacks = ref [] in
        Mon.on_budget mon (fun b -> callbacks := b :: !callbacks);
        Natix.Session.set_budget s ~doc:"a" ~max_reads:1 ();
        cold s;
        ignore (Natix.Session.run_queries ~jobs:2 s (tasks_of [ "a"; "b" ]));
        Alcotest.(check (list (pair string string))) "one event, right doc" [ ("a", "reads") ]
          !events;
        (match !callbacks with
        | [ b ] ->
          Alcotest.(check string) "callback doc" "a" b.Account.doc;
          Alcotest.(check bool) "used over limit" true (b.Account.used > b.Account.limit)
        | l -> Alcotest.failf "expected one callback, got %d" (List.length l));
        (* Crossing again without re-arming stays silent. *)
        cold s;
        ignore (Natix.Session.run_queries ~jobs:2 s (tasks_of [ "a" ]));
        Alcotest.(check int) "edge-triggered" 1 (List.length !events));
    Alcotest.test_case "deterministic workload exports byte-identical snapshots" `Quick
      (fun () ->
        let run () =
          let s = session_with_docs [ "a"; "b" ] in
          cold s;
          ignore (Natix.Session.run_queries ~jobs:1 s (tasks_of [ "a"; "b" ]));
          ignore (Natix.Session.scan_all ~jobs:1 s);
          let mon = mon_of s in
          let at_ms =
            (Tree_store.io_stats (Natix.Session.store s)).Io_stats.sim_ms
          in
          ( Mon.export_prometheus mon ~at_ms,
            Json.to_string (Mon.export_json mon ~at_ms) )
        in
        let p1, j1 = run () in
        let p2, j2 = run () in
        Alcotest.(check string) "prometheus" p1 p2;
        Alcotest.(check string) "json" j1 j2;
        Alcotest.(check bool) "non-trivial export" true (String.length p1 > 100));
    Alcotest.test_case "monitor off: no handle is injected, no ring exists" `Quick (fun () ->
        let s = Natix.Session.in_memory ~config:(config ()) ~monitor:false () in
        Alcotest.(check bool) "no monitor" true (Natix.Session.mon s = None);
        Alcotest.(check bool) "no handle" true
          (Tree_store.obs (Natix.Session.store s) = None);
        (* The no-op conveniences must stay no-ops. *)
        Natix.Session.set_budget s ~doc:"d" ~max_reads:1 ();
        match Natix.Session.store_document s ~name:"d" (parse (play_xml "d")) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "store: %s" (Error.to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel attribution                                                *)

let attribution_tests =
  [
    Alcotest.test_case "(doc, phase) attribution has no cross-domain bleed at jobs=4" `Quick
      (fun () ->
        let queried = [ "a"; "b"; "c" ] in
        let s = session_with_docs (queried @ [ "idle" ]) in
        let mon = mon_of s in
        let store = Natix.Session.store s in
        cold s;
        let io = Tree_store.io_stats store in
        let before = Io_stats.copy io in
        (* Cumulative per-document totals before the batch: the windows
           also hold load-phase charges, so attribution is asserted on
           the cumulative counters' deltas. *)
        let totals () =
          let at_ms = (Io_stats.copy io).Io_stats.sim_ms in
          List.map
            (fun d -> (d.Account.doc, (d.Account.reads_total, d.Account.sim_ms_total)))
            (Mon.accounts mon ~at_ms)
        in
        let t0 = totals () in
        ignore (Natix.Session.run_queries ~jobs:4 s (tasks_of queried));
        let delta = Io_stats.diff (Io_stats.copy io) before in
        let t1 = totals () in
        let charged doc =
          let reads1, sim1 = List.assoc doc t1 in
          let reads0, sim0 = List.assoc doc t0 in
          (reads1 - reads0, sim1 -. sim0)
        in
        (* Every page read of the batch ran under some task's context, so
           the per-document charges partition the batch total exactly. *)
        Alcotest.(check int) "per-doc reads partition the batch total" delta.Io_stats.reads
          (List.fold_left (fun acc d -> acc + fst (charged d)) 0 queried);
        List.iter
          (fun d ->
            Alcotest.(check bool) (d ^ " charged reads") true (fst (charged d) > 0);
            Alcotest.(check bool) (d ^ " charged sim time") true (snd (charged d) > 0.))
          queried;
        (* The document no task touched was charged nothing. *)
        Alcotest.(check int) "idle doc: no reads" 0 (fst (charged "idle"));
        Alcotest.(check (float 1e-9)) "idle doc: no sim time" 0. (snd (charged "idle"));
        let at_ms = (Io_stats.copy io).Io_stats.sim_ms in
        (* The metrics registry attributed reads under a query-phase
           context for exactly the queried documents — "idle" only ever
           appears under its load phase. *)
        let snap = Mon.metrics_snapshot mon ~at_ms in
        let reads = List.find (fun s -> s.Registry.name = "reads") snap.Registry.series in
        let query_docs =
          List.filter_map
            (fun ((doc, phase), _) -> if phase = "query" then doc else None)
            reads.Registry.by_ctx
        in
        Alcotest.(check (list string)) "query-phase contexts" queried
          (List.sort_uniq compare query_docs))
  ]

(* ------------------------------------------------------------------ *)
(* JSONL sink durability                                               *)

let sink_tests =
  [
    Alcotest.test_case "trace file is complete and parseable up to the last checkpoint"
      `Quick (fun () ->
        let store_path = Filename.temp_file "natix_mon_store" ".natix" in
        let trace_path = Filename.temp_file "natix_mon_trace" ".jsonl" in
        let wal_path = Natix_store.Recovery.wal_path store_path in
        let cleanup () =
          List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
            [ store_path; trace_path; wal_path ]
        in
        Sys.remove store_path;
        Fun.protect ~finally:cleanup (fun () ->
            let lines () =
              let ic = open_in trace_path in
              let rec go acc =
                match input_line ic with
                | line -> go (line :: acc)
                | exception End_of_file ->
                  close_in ic;
                  List.rev acc
              in
              go []
            in
            let obs = Natix_obs.Obs.create ~sink:(Natix_obs.Sink.jsonl trace_path) () in
            let plan = Natix_store.Faulty_disk.create ~seed:11L () in
            let disk = Natix_store.Disk.on_file ~page_size:1024 store_path in
            Natix_store.Disk.set_faults disk (Some plan);
            let config = Config.with_obs obs { (config ()) with Config.page_size = 1024 } in
            let store = Tree_store.open_store ~config disk in
            (match Loader.load store ~name:"a" (parse (play_xml "a")) with
            | _ -> ());
            Tree_store.checkpoint store;
            let flushed = lines () in
            Alcotest.(check bool) "checkpoint flushed the trace" true
              (List.length flushed > 0);
            List.iter (fun l -> ignore (Json.parse l : Json.t)) flushed;
            (* Crash the very next physical write; the sink must still
               hold a valid prefix — nothing torn mid-line. *)
            Natix_store.Faulty_disk.arm_crash ~torn:false plan 0;
            (match Loader.load store ~name:"b" (parse (play_xml "b")) with
            | _ -> Alcotest.fail "expected a crash"
            | exception Natix_store.Faulty_disk.Crash -> ());
            let after = lines () in
            Alcotest.(check bool) "no flushed line lost" true
              (List.length after >= List.length flushed);
            List.iter (fun l -> ignore (Json.parse l : Json.t)) after;
            Natix_store.Disk.close disk));
  ]

let suites =
  [
    ("mon.window", window_tests);
    ("mon.registry", registry_tests);
    ("mon.account", account_tests);
    ("mon.recorder", recorder_tests);
    ("mon.replay", replay_tests);
    ("mon.session", session_tests);
    ("mon.attribution", attribution_tests);
    ("mon.sink", sink_tests);
  ]
