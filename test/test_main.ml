let () =
  Alcotest.run "natix"
    (Test_store.suites @ Test_obs.suites @ Test_btree.suites @ Test_xml.suites
   @ Test_core.suites @ Test_index.suites @ Test_flat.suites @ Test_workload.suites
   @ Test_integration.suites @ Test_crash.suites @ Test_txn.suites @ Test_query.suites
   @ Test_prof.suites @ Test_par.suites @ Test_mon.suites @ Test_server.suites
   @ Test_trace.suites)
