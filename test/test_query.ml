(* The query engine: AST parsing, planning, and the differential
   guarantee that the planned streaming evaluator returns byte-identical
   results to the naive strict evaluator — over the Shakespeare corpus
   and over PRNG-generated documents and query corpora.  Plus unit tests
   for the scan-optimised buffer pool (read-ahead run detection and
   segmented-LRU eviction order) and the Natix.Session facade. *)

open Natix_core
module Ast = Natix_query.Ast
module Engine = Natix_query.Engine
module Plan = Natix_query.Plan
module Buffer_pool = Natix_store.Buffer_pool
module Disk = Natix_store.Disk
module Prng = Natix_util.Prng

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* AST *)

let test_parse_roundtrip () =
  List.iter
    (fun path -> checks path path (Ast.to_string (Ast.parse path)))
    [
      "/PLAY";
      "//SPEAKER";
      "/ACT[3]/SCENE[2]//SPEAKER";
      "//SPEECH[1]/LINE";
      "//@id";
      "/a/*/text()";
      "//node()";
      "//SCENE[text()='x y']";
      "/a[2][text()='v']//b/@class";
    ]

let test_parse_errors () =
  List.iter
    (fun path ->
      match Ast.parse path with
      | exception Ast.Parse_error _ -> ()
      | _ -> Alcotest.failf "parse %S should have failed" path)
    [ ""; "ACT"; "/"; "///"; "/ACT["; "/ACT[0]"; "/ACT[x]"; "/ACT[text()='v]"; "/@"; "/ACT]" ]

let test_engine_parse_error () =
  let store = Tree_store.in_memory () in
  let engine = Engine.create store in
  (match Engine.query engine ~doc:"d" "///" with
  | Error (Error.Query _) -> ()
  | _ -> Alcotest.fail "expected Error (Query _)");
  match Engine.query engine ~doc:"missing" "//a" with
  | Error (Error.Storage _) -> ()
  | _ -> Alcotest.fail "expected Error (Storage _) for an unknown document"

(* ------------------------------------------------------------------ *)
(* Differential: planned vs naive *)

(* Serialise one hit so "byte-identical" is meaningful for every node
   kind the engine can return (elements, texts, attributes). *)
let render store c =
  if Cursor.is_element c then Exporter.to_string store (Cursor.node c)
  else Cursor.name c ^ "=" ^ Cursor.text c

let run_both engine path doc =
  let store = Engine.store engine in
  let collect q =
    match q engine ~doc path with
    | Ok seq -> Seq.map (render store) seq |> List.of_seq
    | Error (Error.Query msg) -> [ "query error: " ^ msg ]
    | Error e -> Alcotest.failf "%s: %s" path (Error.to_string e)
  in
  (collect Engine.query, collect Engine.query_naive)

let diff_check engine ~doc paths =
  List.iter
    (fun path ->
      let planned, naive = run_both engine path doc in
      check (Alcotest.list Alcotest.string) path naive planned)
    paths

let shakespeare_paths =
  [
    "/ACT";
    "//SPEAKER";
    "//SCNDESCR";
    "/ACT[3]/SCENE[2]//SPEAKER";
    "/ACT/SCENE/SPEECH[1]";
    "/ACT[1]/SCENE[1]/SPEECH[1]";
    "//SPEECH[2]/LINE[1]";
    "//SCENE[1]/*";
    "//SPEECH/text()";
    "//node()";
    "/TITLE";
    "//ACT[6]";
    "//PERSONA";
    "/PERSONAE//text()";
    "//*[2]";
  ]

let shakespeare_store ?(plays = 2) () =
  let corpus = Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01) in
  let corpus = List.filteri (fun i _ -> i < plays) (corpus @ corpus) in
  let store = Tree_store.in_memory () in
  let dm = Document_manager.create store in
  List.iteri
    (fun i play ->
      match Document_manager.store_document dm ~name:(Printf.sprintf "play-%d" i) play with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Error.to_string e))
    corpus;
  Document_manager.checkpoint dm;
  (store, dm)

let test_diff_shakespeare () =
  let store, dm = shakespeare_store () in
  (* Once with the index (planner may seed) and once without. *)
  let with_index = Engine.of_manager dm in
  let nav_only = Engine.create store in
  diff_check with_index ~doc:"play-0" shakespeare_paths;
  diff_check with_index ~doc:"play-1" shakespeare_paths;
  diff_check nav_only ~doc:"play-0" shakespeare_paths

(* Random documents: small alphabet so descendant steps collide a lot,
   attributes and text leaves mixed in. *)
let gen_doc rng =
  let names = [| "a"; "b"; "c"; "d" |] in
  let rec node depth =
    if depth = 0 || Prng.int rng 4 = 0 then Natix_xml.Xml_tree.text (Printf.sprintf "t%d" (Prng.int rng 3))
    else
      let attrs = if Prng.int rng 3 = 0 then [ ("id", string_of_int (Prng.int rng 4)) ] else [] in
      let kids = List.init (Prng.range rng 1 4) (fun _ -> node (depth - 1)) in
      Natix_xml.Xml_tree.element ~attrs (Prng.pick rng names) kids
  in
  Natix_xml.Xml_tree.element "root" (List.init (Prng.range rng 2 5) (fun _ -> node 3))

let gen_path rng =
  let b = Buffer.create 16 in
  let steps = Prng.range rng 1 3 in
  for _ = 1 to steps do
    Buffer.add_string b (if Prng.bool rng then "/" else "//");
    Buffer.add_string b
      (Prng.pick rng [| "a"; "b"; "c"; "d"; "*"; "text()"; "node()"; "@id" |]);
    if Prng.int rng 3 = 0 then
      Buffer.add_string b (Printf.sprintf "[%d]" (Prng.range rng 1 3));
    if Prng.int rng 5 = 0 then Buffer.add_string b "[text()='t1']"
  done;
  Buffer.contents b

let test_diff_random () =
  let rng = Prng.create ~seed:0xA5EEDL in
  for round = 1 to 10 do
    let store = Tree_store.in_memory () in
    let dm = Document_manager.create store in
    let doc = Printf.sprintf "rand-%d" round in
    (match Document_manager.store_document dm ~name:doc (gen_doc rng) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Error.to_string e));
    Document_manager.checkpoint dm;
    let engine = Engine.of_manager dm in
    diff_check engine ~doc (List.init 25 (fun _ -> gen_path rng))
  done

(* ------------------------------------------------------------------ *)
(* Planner *)

let test_planner_seeds_selective () =
  let store, dm = shakespeare_store ~plays:1 () in
  let engine = Engine.of_manager dm in
  let plan path =
    match Engine.plan engine ~doc:"play-0" path with
    | Ok p -> p
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  (* One SCNDESCR per play: seeding beats walking the whole document. *)
  checkb "//SCNDESCR uses the index" true (Plan.uses_index (plan "//SCNDESCR"));
  (* Child steps can't be seeded. *)
  checkb "/ACT/SCENE is navigation" false (Plan.uses_index (plan "/ACT/SCENE"));
  (* Without an index there is nothing to seed from. *)
  let nav_only = Engine.create store in
  (match Engine.plan nav_only ~doc:"play-0" "//SCNDESCR" with
  | Ok p -> checkb "no index, no seed" false (Plan.uses_index p)
  | Error e -> Alcotest.fail (Error.to_string e));
  (* Unselective tests mark the plan as a scan. *)
  checkb "//node() is a scan" true (plan "//node()").Plan.scan;
  checkb "//SCNDESCR is not a scan" false (plan "//SCNDESCR").Plan.scan

(* ------------------------------------------------------------------ *)
(* Buffer pool: read-ahead *)

let mk_disk ~pages ~page_size =
  let disk = Disk.in_memory ~page_size () in
  for _ = 1 to pages do
    ignore (Disk.allocate disk)
  done;
  disk

let test_read_ahead_run_detection () =
  let page_size = 512 in
  let disk = mk_disk ~pages:64 ~page_size in
  let pool = Buffer_pool.create ~disk ~bytes:(32 * page_size) ~read_ahead:4 () in
  (* An isolated miss prefetches nothing. *)
  Buffer_pool.unfix pool (Buffer_pool.fix pool 10);
  checki "no prefetch after one miss" 0 (Buffer_pool.prefetched pool);
  (* The second consecutive miss starts a run: 12..15 arrive speculatively. *)
  Buffer_pool.unfix pool (Buffer_pool.fix pool 11);
  checki "window prefetched" 4 (Buffer_pool.prefetched pool);
  List.iter
    (fun p -> checkb (Printf.sprintf "page %d resident" p) true (Buffer_pool.is_resident pool p))
    [ 12; 13; 14; 15 ];
  let misses = Buffer_pool.misses pool in
  (* Demand fixes on prefetched pages are hits... *)
  List.iter (fun p -> Buffer_pool.unfix pool (Buffer_pool.fix pool p)) [ 12; 13; 14; 15 ];
  checki "prefetched pages hit" misses (Buffer_pool.misses pool);
  (* ...and the miss right after the prefetched run continues it. *)
  Buffer_pool.unfix pool (Buffer_pool.fix pool 16);
  checkb "run extended past the window" true (Buffer_pool.is_resident pool 17);
  (* The disk counted the speculative reads as such. *)
  checkb "read_ahead_pages counted" true
    ((Disk.stats disk).Natix_store.Io_stats.read_ahead_pages >= 4)

let test_read_ahead_respects_end_of_disk () =
  let page_size = 512 in
  let disk = mk_disk ~pages:8 ~page_size in
  let pool = Buffer_pool.create ~disk ~bytes:(32 * page_size) ~read_ahead:6 () in
  Buffer_pool.unfix pool (Buffer_pool.fix pool 6);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 7);
  (* Only page 7 was left to read; nothing beyond the end is touched. *)
  checkb "no resident page past the end" true (Buffer_pool.resident pool <= 8)

let test_read_ahead_off_by_default () =
  let page_size = 512 in
  let disk = mk_disk ~pages:16 ~page_size in
  let pool = Buffer_pool.create ~disk ~bytes:(8 * page_size) () in
  Buffer_pool.unfix pool (Buffer_pool.fix pool 0);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 1);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 2);
  checki "no speculative reads" 0 (Buffer_pool.prefetched pool);
  checki "only the demanded pages" 3 (Buffer_pool.resident pool)

(* ------------------------------------------------------------------ *)
(* Buffer pool: segmented LRU *)

let test_slru_scan_does_not_evict_hot () =
  let page_size = 512 in
  let disk = mk_disk ~pages:64 ~page_size in
  let run scan_resistant =
    let pool = Buffer_pool.create ~disk ~bytes:(8 * page_size) ~scan_resistant () in
    (* Working set: pages 0-3, demand-fixed (hot). *)
    List.iter (fun p -> Buffer_pool.unfix pool (Buffer_pool.fix pool p)) [ 0; 1; 2; 3 ];
    (* A scan over 32 other pages, fixed under scan mode. *)
    Buffer_pool.with_scan pool (fun () ->
        for p = 10 to 41 do
          Buffer_pool.unfix pool (Buffer_pool.fix pool p)
        done);
    List.for_all (fun p -> Buffer_pool.is_resident pool p) [ 0; 1; 2; 3 ]
  in
  checkb "plain LRU loses the working set" false (run false);
  checkb "segmented LRU keeps the working set" true (run true)

let test_slru_cold_promotion () =
  let page_size = 512 in
  let disk = mk_disk ~pages:64 ~page_size in
  let pool = Buffer_pool.create ~disk ~bytes:(8 * page_size) ~scan_resistant:true () in
  (* A scan brings page 10 in cold... *)
  Buffer_pool.with_scan pool (fun () -> Buffer_pool.unfix pool (Buffer_pool.fix pool 10));
  checki "cold after the scan" 1 (Buffer_pool.resident_cold pool);
  (* ...one demand hit outside the scan marks it referenced... *)
  Buffer_pool.unfix pool (Buffer_pool.fix pool 10);
  (* ...and the next demand hit promotes it to hot. *)
  Buffer_pool.unfix pool (Buffer_pool.fix pool 10);
  checki "promoted to hot" 0 (Buffer_pool.resident_cold pool);
  checkb "still resident" true (Buffer_pool.is_resident pool 10)

let test_slru_eviction_order () =
  let page_size = 512 in
  let disk = mk_disk ~pages:64 ~page_size in
  (* Capacity 2 so the next miss must evict exactly one of the two. *)
  let pool = Buffer_pool.create ~disk ~bytes:(2 * page_size) ~scan_resistant:true () in
  Buffer_pool.unfix pool (Buffer_pool.fix pool 0) (* hot *);
  Buffer_pool.with_scan pool (fun () ->
      Buffer_pool.unfix pool (Buffer_pool.fix pool 1) (* cold *));
  Buffer_pool.unfix pool (Buffer_pool.fix pool 2);
  (* The cold frame goes first even though the hot one is older. *)
  checkb "hot survives" true (Buffer_pool.is_resident pool 0);
  checkb "cold evicted" false (Buffer_pool.is_resident pool 1)

let test_plain_pool_matches_old_lru () =
  let page_size = 512 in
  let disk = mk_disk ~pages:64 ~page_size in
  let pool = Buffer_pool.create ~disk ~bytes:(2 * page_size) () in
  Buffer_pool.unfix pool (Buffer_pool.fix pool 0);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 1);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 0) (* touch 0: now MRU *);
  Buffer_pool.unfix pool (Buffer_pool.fix pool 2);
  checkb "LRU page evicted" false (Buffer_pool.is_resident pool 1);
  checkb "MRU page kept" true (Buffer_pool.is_resident pool 0);
  checki "everything is hot without scan_resistant" 0 (Buffer_pool.resident_cold pool)

(* ------------------------------------------------------------------ *)
(* Session facade *)

let test_session_roundtrip () =
  let path = Filename.temp_file "natix_session" ".db" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let wal = Natix_store.Recovery.wal_path path in
      if Sys.file_exists wal then Sys.remove wal)
    (fun () ->
      let play =
        List.hd (Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01))
      in
      Natix.Session.with_session path (fun s ->
          (match Natix.Session.store_document s ~name:"play" play with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Error.to_string e));
          check (Alcotest.list Alcotest.string) "documents" [ "play" ]
            (Natix.Session.documents s));
      (* Reopen: the document, the index and the query engine survive. *)
      Natix.Session.with_session path (fun s ->
          let hits =
            match Natix.Session.query s ~doc:"play" "//SCNDESCR" with
            | Ok seq -> List.of_seq seq
            | Error e -> Alcotest.fail (Error.to_string e)
          in
          checki "one scene description" 1 (List.length hits);
          (match Natix.Session.explain s ~doc:"play" "//SCNDESCR" with
          | Ok plan ->
            let contains hay needle =
              let h = String.length hay and n = String.length needle in
              let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
              go 0
            in
            checkb "reopened session plans with the index" true (contains plan "index-seed")
          | Error e -> Alcotest.fail (Error.to_string e));
          match Natix.Session.query s ~doc:"nope" "//a" with
          | Error (Error.Storage _) -> ()
          | _ -> Alcotest.fail "unknown document should be a storage error"))

(* The stale-index scenario: scan/query persists the index, a later load
   runs without it, then a query plans against the store.  The engine must
   never answer from the silently-incomplete postings — either the session
   repairs the index (writer modes) or skips it (read-only mode). *)
let test_session_stale_index_never_drops_results () =
  let path = Filename.temp_file "natix_stale_q" ".db" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let wal = Natix_store.Recovery.wal_path path in
      if Sys.file_exists wal then Sys.remove wal)
    (fun () ->
      let play =
        List.hd (Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01))
      in
      let store_play s name =
        match Natix.Session.store_document s ~name play with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Error.to_string e)
      in
      let hits s doc =
        match Natix.Session.query s ~doc "//SCNDESCR" with
        | Ok seq -> List.length (List.of_seq seq)
        | Error e -> Alcotest.fail (Error.to_string e)
      in
      (* Session 1 persists the index covering play-a. *)
      Natix.Session.with_session path (fun s -> store_play s "play-a");
      (* Session 2 loads play-b with the index closed: stale on disk. *)
      Natix.Session.with_session path ~index:Document_manager.Off (fun s ->
          store_play s "play-b");
      (* Read-only session: the stale index is skipped, not trusted. *)
      Natix.Session.with_session path ~index:Document_manager.Fresh_only (fun s ->
          checkb "stale index skipped" true
            (Document_manager.index (Natix.Session.manager s) = None);
          checki "play-b found by navigation" 1 (hits s "play-b"));
      (* Default writer session: the index is rebuilt, then seeds correctly. *)
      Natix.Session.with_session path (fun s ->
          checki "play-b found after repair" 1 (hits s "play-b");
          checki "play-a still found" 1 (hits s "play-a")))

let test_error_exit_codes () =
  checki "validation" 1 (Error.exit_code (Error.Validation { doc = "d"; detail = "x" }));
  checki "dtd" 1 (Error.exit_code (Error.Dtd { doc = "d"; detail = "x" }));
  checki "parse" 2 (Error.exit_code (Error.Parse "x"));
  checki "query" 2 (Error.exit_code (Error.Query "x"));
  checki "storage" 2 (Error.exit_code (Error.Storage "x"))

let suites =
  [
    ( "query-ast",
      [
        Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "typed engine errors" `Quick test_engine_parse_error;
      ] );
    ( "query-diff",
      [
        Alcotest.test_case "shakespeare corpus" `Quick test_diff_shakespeare;
        Alcotest.test_case "random documents and paths" `Quick test_diff_random;
        Alcotest.test_case "planner seeds selective labels" `Quick test_planner_seeds_selective;
      ] );
    ( "query-pool",
      [
        Alcotest.test_case "read-ahead run detection" `Quick test_read_ahead_run_detection;
        Alcotest.test_case "read-ahead stops at end of disk" `Quick
          test_read_ahead_respects_end_of_disk;
        Alcotest.test_case "read-ahead off by default" `Quick test_read_ahead_off_by_default;
        Alcotest.test_case "scan keeps the hot set" `Quick test_slru_scan_does_not_evict_hot;
        Alcotest.test_case "cold promotion" `Quick test_slru_cold_promotion;
        Alcotest.test_case "cold evicted before hot" `Quick test_slru_eviction_order;
        Alcotest.test_case "plain pool is plain LRU" `Quick test_plain_pool_matches_old_lru;
      ] );
    ( "session",
      [
        Alcotest.test_case "file round-trip" `Quick test_session_roundtrip;
        Alcotest.test_case "stale index never drops results" `Quick
          test_session_stale_index_never_drops_results;
        Alcotest.test_case "error exit codes" `Quick test_error_exit_codes;
      ] );
  ]
