(* Tests for the disk-resident B+-tree index substrate. *)

open Natix_util
open Natix_store

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let make ?(page_size = 512) () =
  let disk = Disk.in_memory ~model:Io_model.free ~page_size () in
  let pool = Buffer_pool.create ~disk ~bytes:(128 * page_size) () in
  let rm = Record_manager.create (Segment.create pool) in
  (rm, Btree.create rm)

let v_of_int i =
  let b = Bytes.create 8 in
  Bytes_util.set_u48 b 0 i;
  Bytes_util.set_u16 b 6 0;
  Bytes.to_string b

let btree_tests =
  [
    Alcotest.test_case "empty tree finds nothing" `Quick (fun () ->
        let _, t = make () in
        Alcotest.(check (option string)) "absent" None (Btree.find t ~key:"x");
        Alcotest.(check int) "empty" 0 (Btree.cardinal t);
        Btree.check t);
    Alcotest.test_case "insert then find" `Quick (fun () ->
        let _, t = make () in
        Btree.insert t ~key:"hello" ~value:(v_of_int 1);
        Btree.insert t ~key:"world" ~value:(v_of_int 2);
        Alcotest.(check (option string)) "hello" (Some (v_of_int 1)) (Btree.find t ~key:"hello");
        Alcotest.(check (option string)) "world" (Some (v_of_int 2)) (Btree.find t ~key:"world");
        Alcotest.(check (option string)) "missing" None (Btree.find t ~key:"nope");
        Btree.check t);
    Alcotest.test_case "insert replaces existing bindings" `Quick (fun () ->
        let _, t = make () in
        Btree.insert t ~key:"k" ~value:(v_of_int 1);
        Btree.insert t ~key:"k" ~value:(v_of_int 2);
        Alcotest.(check (option string)) "replaced" (Some (v_of_int 2)) (Btree.find t ~key:"k");
        Alcotest.(check int) "one binding" 1 (Btree.cardinal t));
    Alcotest.test_case "many inserts split nodes; root RID stays stable" `Quick (fun () ->
        let _, t = make ~page_size:512 () in
        let root_before = Btree.root t in
        for i = 0 to 999 do
          Btree.insert t ~key:(Printf.sprintf "key-%04d" i) ~value:(v_of_int i)
        done;
        Alcotest.(check bool) "root unchanged" true (Rid.equal root_before (Btree.root t));
        Alcotest.(check bool) "tree grew" true (Btree.height t > 1);
        Alcotest.(check int) "cardinal" 1000 (Btree.cardinal t);
        for i = 0 to 999 do
          Alcotest.(check (option string))
            (Printf.sprintf "key %d" i)
            (Some (v_of_int i))
            (Btree.find t ~key:(Printf.sprintf "key-%04d" i))
        done;
        Btree.check t);
    Alcotest.test_case "iter yields keys in order" `Quick (fun () ->
        let _, t = make () in
        List.iter
          (fun k -> Btree.insert t ~key:k ~value:(v_of_int 0))
          [ "pear"; "apple"; "fig"; "cherry"; "banana" ];
        let keys = ref [] in
        Btree.iter t (fun k _ -> keys := k :: !keys);
        Alcotest.(check (list string)) "sorted"
          [ "apple"; "banana"; "cherry"; "fig"; "pear" ]
          (List.rev !keys));
    Alcotest.test_case "range scans respect bounds" `Quick (fun () ->
        let _, t = make () in
        for i = 0 to 99 do
          Btree.insert t ~key:(Printf.sprintf "%03d" i) ~value:(v_of_int i)
        done;
        let collect lo hi =
          let acc = ref [] in
          Btree.iter_range t ~lo ~hi (fun k _ -> acc := k :: !acc);
          List.rev !acc
        in
        Alcotest.(check int) "closed-open" 10 (List.length (collect (Some "020") (Some "030")));
        Alcotest.(check (list string)) "exact window" [ "020" ] (collect (Some "020") (Some "021"));
        Alcotest.(check int) "unbounded low" 20 (List.length (collect None (Some "020")));
        Alcotest.(check int) "unbounded high" 20 (List.length (collect (Some "080") None)));
    Alcotest.test_case "remove deletes bindings" `Quick (fun () ->
        let _, t = make () in
        for i = 0 to 199 do
          Btree.insert t ~key:(Printf.sprintf "%03d" i) ~value:(v_of_int i)
        done;
        for i = 0 to 199 do
          if i mod 2 = 0 then Btree.remove t ~key:(Printf.sprintf "%03d" i)
        done;
        Alcotest.(check int) "half left" 100 (Btree.cardinal t);
        Alcotest.(check (option string)) "odd stays" (Some (v_of_int 1)) (Btree.find t ~key:"001");
        Alcotest.(check (option string)) "even gone" None (Btree.find t ~key:"002");
        Btree.check t);
    Alcotest.test_case "oversized keys and bad values rejected" `Quick (fun () ->
        let _, t = make ~page_size:512 () in
        (match Btree.insert t ~key:(String.make 400 'k') ~value:(v_of_int 0) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected key rejection");
        match Btree.insert t ~key:"k" ~value:"short" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected value rejection");
    Alcotest.test_case "open_tree re-attaches to the same index" `Quick (fun () ->
        let rm, t = make () in
        Btree.insert t ~key:"persisted" ~value:(v_of_int 42);
        let t2 = Btree.open_tree rm (Btree.root t) in
        Alcotest.(check (option string)) "visible" (Some (v_of_int 42))
          (Btree.find t2 ~key:"persisted"));
    qtest ~count:60 "random operations match a Map reference"
      QCheck2.Gen.(
        list_size (int_bound 400)
          (pair (int_bound 3) (string_size ~gen:(char_range 'a' 'f') (int_range 1 6))))
      (fun ops ->
        let _, t = make ~page_size:512 () in
        let reference = Hashtbl.create 64 in
        List.iteri
          (fun i (kind, key) ->
            match kind with
            | 0 | 1 | 2 ->
              Btree.insert t ~key ~value:(v_of_int i);
              Hashtbl.replace reference key (v_of_int i)
            | _ ->
              Btree.remove t ~key;
              Hashtbl.remove reference key)
          ops;
        Btree.check t;
        Btree.cardinal t = Hashtbl.length reference
        && Hashtbl.fold (fun k v ok -> ok && Btree.find t ~key:k = Some v) reference true);
  ]

let suites = [ ("store.btree", btree_tests) ]

let range_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100 ~name:"random range scans match a reference"
         QCheck2.Gen.(
           triple
             (list_size (int_bound 300) (string_size ~gen:(char_range 'a' 'e') (int_range 1 5)))
             (option (string_size ~gen:(char_range 'a' 'f') (int_range 0 4)))
             (option (string_size ~gen:(char_range 'a' 'f') (int_range 0 4))))
         (fun (keys, lo, hi) ->
           let _, t = make ~page_size:512 () in
           let uniq = List.sort_uniq String.compare keys in
           List.iter (fun k -> Btree.insert t ~key:k ~value:(v_of_int 0)) uniq;
           let got = ref [] in
           Btree.iter_range t ~lo ~hi (fun k _ -> got := k :: !got);
           let expected =
             List.filter
               (fun k ->
                 (match lo with Some lo -> k >= lo | None -> true)
                 && match hi with Some hi -> k < hi | None -> true)
               uniq
           in
           List.rev !got = expected));
  ]

let suites = suites @ [ ("store.btree_ranges", range_property_tests) ]
