(* Tests for natix_core: physical nodes, the codec, the split matrix, the
   tree store (tree growth procedure, splits, merges, fragmentation), the
   cursor, loader, exporter and path queries. *)

open Natix_util
open Natix_core
module Xml_tree = Natix_xml.Xml_tree
module Xml_parser = Natix_xml.Xml_parser
module Xml_print = Natix_xml.Xml_print

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let xml = Alcotest.testable Xml_tree.pp Xml_tree.equal

let mem_store ?(page_size = 512) ?(matrix = Split_matrix.native ()) ?(merge_threshold = 0.5) ()
    =
  let config =
    {
      (Config.default ()) with
      Config.page_size;
      matrix;
      merge_threshold;
      buffer_bytes = 64 * 1024;
    }
  in
  Tree_store.in_memory ~config ~model:Natix_store.Io_model.free ()

(* ------------------------------------------------------------------ *)
(* Phys_node                                                           *)

let phys_node_tests =
  [
    Alcotest.test_case "sizes are computed and cached" `Quick (fun () ->
        let t =
          Phys_node.aggregate 2
            [ Phys_node.literal (Str "hello"); Phys_node.proxy (Rid.make ~page:1 ~slot:0) ]
        in
        Alcotest.(check int) "literal" (6 + 5) (List.hd (Phys_node.children t)).Phys_node.size;
        Alcotest.(check int) "aggregate" (6 + 11 + 14) t.Phys_node.size;
        Alcotest.(check int) "cached = computed" (Phys_node.compute_size t) t.Phys_node.size);
    Alcotest.test_case "insert_child updates ancestor sizes" `Quick (fun () ->
        let inner = Phys_node.aggregate 3 [] in
        let outer = Phys_node.aggregate 2 [ inner ] in
        Phys_node.insert_child inner ~index:0 (Phys_node.literal (Str "xyz"));
        Alcotest.(check int) "outer grew" (6 + 6 + 9) outer.Phys_node.size;
        Alcotest.(check int) "consistent" (Phys_node.compute_size outer) outer.Phys_node.size);
    Alcotest.test_case "remove_child updates ancestor sizes" `Quick (fun () ->
        let lit = Phys_node.literal (Str "xyz") in
        let inner = Phys_node.aggregate 3 [ lit ] in
        let outer = Phys_node.aggregate 2 [ inner ] in
        Phys_node.remove_child inner lit;
        Alcotest.(check int) "outer shrank" (6 + 6) outer.Phys_node.size;
        Alcotest.(check bool) "detached" true (lit.Phys_node.parent = None));
    Alcotest.test_case "index_of uses physical identity" `Quick (fun () ->
        let a = Phys_node.literal (Str "same") in
        let b = Phys_node.literal (Str "same") in
        let p = Phys_node.aggregate 2 [ a; b ] in
        Alcotest.(check int) "first" 0 (Phys_node.index_of p a);
        Alcotest.(check int) "second" 1 (Phys_node.index_of p b));
    Alcotest.test_case "record_size swaps header sizes" `Quick (fun () ->
        let t = Phys_node.aggregate 2 [] in
        Alcotest.(check int) "10-byte standalone header" 10 (Phys_node.record_size t));
    Alcotest.test_case "facade vs scaffolding" `Quick (fun () ->
        Alcotest.(check bool) "element is facade" true
          (Phys_node.is_facade (Phys_node.aggregate 2 []));
        Alcotest.(check bool) "scaffold aggregate" true
          (Phys_node.is_scaffolding (Phys_node.scaffold_aggregate []));
        Alcotest.(check bool) "proxy is scaffolding" true
          (Phys_node.is_scaffolding (Phys_node.proxy Rid.null)));
  ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let gen_literal : Phys_node.literal QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      map (fun s -> Phys_node.Str s) (string_size ~gen:printable (int_bound 40));
      map (fun s -> Phys_node.Uri ("http://" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 20));
      map (fun v -> Phys_node.Int8 v) (int_bound 255);
      map (fun v -> Phys_node.Int16 v) (int_bound 65535);
      map (fun v -> Phys_node.Int32 (Int32.of_int v)) int;
      map (fun v -> Phys_node.Int64 (Int64.of_int v)) int;
      map (fun v -> Phys_node.Float v) float;
    ]

let gen_phys : Phys_node.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let node =
    fix
      (fun self depth ->
        if depth = 0 then map (fun v -> Phys_node.literal v) gen_literal
        else
          frequency
            [
              (2, map (fun v -> Phys_node.literal v) gen_literal);
              ( 1,
                map
                  (fun (p, s) -> Phys_node.proxy (Rid.make ~page:p ~slot:s))
                  (pair (int_bound 1000) (int_bound 100)) );
              ( 3,
                map2
                  (fun label cs -> Phys_node.aggregate label cs)
                  (int_range 2 10)
                  (list_size (int_bound 4) (self (depth - 1))) );
            ])
      3
  in
  let open QCheck2.Gen in
  map2
    (fun label cs -> Phys_node.aggregate label cs)
    (int_range 2 10)
    (list_size (int_bound 4) node)

let codec_tests =
  [
    qtest ~count:300 "encode/decode roundtrip"
      QCheck2.Gen.(pair gen_phys (pair (int_bound 1000) (int_bound 100)))
      (fun (root, (page, slot)) ->
        let tbl = Node_type_table.create () in
        let parent_rid = Rid.make ~page ~slot in
        let body = Node_codec.encode tbl ~parent_rid root in
        let decoded, prid = Node_codec.decode tbl body in
        String.length body = Phys_node.record_size root
        && Rid.equal prid parent_rid
        && Node_codec.structural_equal decoded root
        && decoded.Phys_node.size = root.Phys_node.size);
    Alcotest.test_case "proxy roots are rejected" `Quick (fun () ->
        let tbl = Node_type_table.create () in
        match Node_codec.encode tbl ~parent_rid:Rid.null (Phys_node.proxy Rid.null) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "embedded headers cost 6 bytes" `Quick (fun () ->
        let tbl = Node_type_table.create () in
        let root = Phys_node.aggregate 2 [ Phys_node.literal (Str "x") ] in
        let body = Node_codec.encode tbl ~parent_rid:Rid.null root in
        (* 10 (standalone) + 6 (embedded header) + 1 (payload) *)
        Alcotest.(check int) "size" 17 (String.length body));
    Alcotest.test_case "corrupt parent offsets detected" `Quick (fun () ->
        let tbl = Node_type_table.create () in
        let root = Phys_node.aggregate 2 [ Phys_node.literal (Str "x") ] in
        let body = Bytes.of_string (Node_codec.encode tbl ~parent_rid:Rid.null root) in
        Bytes_util.set_u16 body 14 999;
        match Node_codec.decode tbl (Bytes.to_string body) with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected decode failure");
    Alcotest.test_case "decode_parent_rid" `Quick (fun () ->
        let tbl = Node_type_table.create () in
        let rid = Rid.make ~page:7 ~slot:9 in
        let body = Node_codec.encode tbl ~parent_rid:rid (Phys_node.aggregate 2 []) in
        Alcotest.(check bool) "parent rid" true (Rid.equal rid (Node_codec.decode_parent_rid body)));
    qtest "type table roundtrip"
      QCheck2.Gen.(list_size (int_bound 60) (pair (int_bound 9) (int_bound 5000)))
      (fun entries ->
        let tags =
          [|
            Node_type_table.Tag_aggregate; Tag_frag_aggregate; Tag_proxy; Tag_str; Tag_int8;
            Tag_int16; Tag_int32; Tag_int64; Tag_float; Tag_uri;
          |]
        in
        let tbl = Node_type_table.create () in
        let idxs = List.map (fun (t, l) -> Node_type_table.index tbl tags.(t) l) entries in
        let tbl' = Node_type_table.decode (Node_type_table.encode tbl) in
        Node_type_table.size tbl = Node_type_table.size tbl'
        && List.for_all2
             (fun (t, l) i -> Node_type_table.entry tbl' i = (tags.(t), l))
             entries idxs);
  ]

(* ------------------------------------------------------------------ *)
(* Split matrix                                                        *)

let split_matrix_tests =
  [
    Alcotest.test_case "default behaviour" `Quick (fun () ->
        let m = Split_matrix.create () in
        Alcotest.(check string) "other" "other"
          (Split_matrix.behaviour_to_string (Split_matrix.get m ~parent:2 ~child:3)));
    Alcotest.test_case "explicit entries win over child defaults" `Quick (fun () ->
        let m = Split_matrix.create ~default:Split_matrix.Other () in
        Split_matrix.set_child_default m ~child:3 Split_matrix.Standalone;
        Split_matrix.set m ~parent:2 ~child:3 Split_matrix.Cluster;
        Alcotest.(check bool) "entry wins" true
          (Split_matrix.get m ~parent:2 ~child:3 = Split_matrix.Cluster);
        Alcotest.(check bool) "child default elsewhere" true
          (Split_matrix.get m ~parent:9 ~child:3 = Split_matrix.Standalone));
    Alcotest.test_case "named configurations" `Quick (fun () ->
        Alcotest.(check bool) "1:1" true
          (Split_matrix.get (Split_matrix.one_to_one ()) ~parent:5 ~child:6
          = Split_matrix.Standalone);
        Alcotest.(check bool) "native" true
          (Split_matrix.get (Split_matrix.native ()) ~parent:5 ~child:6 = Split_matrix.Other));
  ]

(* ------------------------------------------------------------------ *)
(* Tree store                                                          *)

let sample_doc =
  "<PLAY><TITLE>Hamlet</TITLE><ACT><TITLE>Act I</TITLE><SCENE><TITLE>Scene 1</TITLE>"
  ^ "<SPEECH><SPEAKER>BERNARDO</SPEAKER><LINE>Who is there?</LINE></SPEECH>"
  ^ "<SPEECH><SPEAKER>FRANCISCO</SPEAKER><LINE>Nay, answer me: stand, and unfold yourself.</LINE>"
  ^ "<LINE>Long live the king and all his men at arms tonight.</LINE></SPEECH></SCENE>"
  ^ "<SCENE><TITLE>Scene 2</TITLE><SPEECH><SPEAKER>CLAUDIUS</SPEAKER>"
  ^ "<LINE>Though yet of Hamlet our dear brother death the memory be green.</LINE></SPEECH>"
  ^ "</SCENE></ACT></PLAY>"

let roundtrip ?(page_size = 512) ?(matrix = Split_matrix.native ()) ~order () =
  let store = mem_store ~page_size ~matrix () in
  let t = Xml_parser.parse sample_doc in
  let _root = Loader.load store ~name:"doc" ~order t in
  Tree_store.check_document store "doc";
  (store, t, Option.get (Exporter.document_to_xml store "doc"))

let tree_store_tests =
  [
    Alcotest.test_case "roundtrip native preorder, tiny pages" `Quick (fun () ->
        let _, t, back = roundtrip ~page_size:512 ~order:Loader.Preorder () in
        Alcotest.check xml "roundtrip" t back);
    Alcotest.test_case "roundtrip native bfs, tiny pages" `Quick (fun () ->
        let _, t, back = roundtrip ~page_size:512 ~order:Loader.Bfs_binary () in
        Alcotest.check xml "roundtrip" t back);
    Alcotest.test_case "roundtrip 1:1 both orders" `Quick (fun () ->
        List.iter
          (fun order ->
            let _, t, back =
              roundtrip ~page_size:512 ~matrix:(Split_matrix.one_to_one ()) ~order ()
            in
            Alcotest.check xml "roundtrip" t back)
          [ Loader.Preorder; Loader.Bfs_binary ]);
    Alcotest.test_case "splits occur under pressure and keep records legal" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let doc =
          Xml_tree.element "R"
            (List.init 40 (fun i ->
                 Xml_tree.element "E"
                   [ Xml_tree.text (Printf.sprintf "payload number %d with some length" i) ]))
        in
        let _ = Loader.load store ~name:"d" doc in
        Alcotest.(check bool) "splits happened" true (Tree_store.split_count store > 0);
        Tree_store.check_document store "d");
    Alcotest.test_case "1:1 emulation: every element is its own record" `Quick (fun () ->
        let store = mem_store ~page_size:2048 ~matrix:(Split_matrix.one_to_one ()) () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        let s = Stats.document store "d" in
        Alcotest.(check int) "one record per logical node" (Xml_tree.node_count t) s.Stats.records);
    Alcotest.test_case "all-cluster matrix cannot store big documents" `Quick (fun () ->
        let matrix = Split_matrix.create ~default:Split_matrix.Cluster () in
        let store = mem_store ~page_size:512 ~matrix () in
        let doc =
          Xml_tree.element "R"
            (List.init 40 (fun i ->
                 Xml_tree.element "E" [ Xml_tree.text (Printf.sprintf "payload %d padding" i) ]))
        in
        match Loader.load store ~name:"d" doc with
        | exception Tree_store.Unsplittable _ -> ()
        | _ -> Alcotest.fail "expected Unsplittable");
    Alcotest.test_case "hybrid matrix keeps speeches flat, scenes standalone" `Quick (fun () ->
        (* The matrix is shared with the store, so entries can be added
           after creation using the store's own labels. *)
        let m = Split_matrix.create () in
        let store = mem_store ~page_size:512 ~matrix:m () in
        Split_matrix.set m
          ~parent:(Tree_store.label store "ACT")
          ~child:(Tree_store.label store "SCENE")
          Split_matrix.Standalone;
        Split_matrix.set m
          ~parent:(Tree_store.label store "SPEECH")
          ~child:(Tree_store.label store "LINE")
          Split_matrix.Cluster;
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        Tree_store.check_document store "d";
        Alcotest.check xml "roundtrip" t (Option.get (Exporter.document_to_xml store "d"));
        (* Every SCENE must be the root of its own record. *)
        List.iter
          (fun c ->
            let node = Cursor.node c in
            Alcotest.(check bool) "scene standalone" true (node.Phys_node.parent = None))
          (Path.query store ~doc:"d" "//SCENE"));
    Alcotest.test_case "oversized text fragments and reassembles" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let big = String.concat " " (List.init 500 (fun i -> Printf.sprintf "w%d" i)) in
        let t = Xml_tree.element "D" [ Xml_tree.element "P" [ Xml_tree.text big ] ] in
        let _ = Loader.load store ~name:"d" t in
        Tree_store.check_document store "d";
        Alcotest.check xml "roundtrip" t (Option.get (Exporter.document_to_xml store "d"));
        let s = Stats.document store "d" in
        Alcotest.(check bool) "fragmented across records" true (s.Stats.records > 1));
    Alcotest.test_case "update_text grows and shrinks" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse "<D><P>small</P></D>" in
        let _ = Loader.load store ~name:"d" t in
        let p = List.hd (Path.query store ~doc:"d" "/P") in
        let text_node = Cursor.node (Option.get (Cursor.first_child p)) in
        let big = String.make 2000 'x' in
        Tree_store.update_text store text_node big;
        Tree_store.check_document store "d";
        Alcotest.(check string) "grown" big (Tree_store.text_of store text_node);
        Tree_store.update_text store text_node "tiny";
        Tree_store.check_document store "d";
        Alcotest.(check string) "shrunk" "tiny" (Tree_store.text_of store text_node));
    Alcotest.test_case "delete_node removes subtrees and their records" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        let scene2 = List.hd (Path.query store ~doc:"d" "/ACT[1]/SCENE[2]") in
        Tree_store.delete_node store (Cursor.node scene2);
        Tree_store.check_document store "d";
        Alcotest.(check int) "one scene left" 1 (List.length (Path.query store ~doc:"d" "//SCENE")));
    Alcotest.test_case "deleting everything leaves a valid empty document" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        List.iter
          (fun c -> Tree_store.delete_node store (Cursor.node c))
          (Path.query store ~doc:"d" "/*");
        (* text children of the root too *)
        Tree_store.check_document store "d";
        let root = Option.get (Cursor.of_document store "d") in
        Alcotest.(check int) "no children" 0 (List.length (List.of_seq (Cursor.children root))));
    Alcotest.test_case "merges re-cluster after deletions" `Quick (fun () ->
        let store = mem_store ~page_size:512 ~merge_threshold:0.6 () in
        let doc =
          Xml_tree.element "R"
            (List.init 30 (fun i ->
                 Xml_tree.element "E"
                   [ Xml_tree.text (Printf.sprintf "payload number %d with some length" i) ]))
        in
        let _ = Loader.load store ~name:"d" doc in
        let before = Stats.document store "d" in
        Alcotest.(check bool) "multiple records" true (before.Stats.records > 1);
        (* Delete most elements; records should merge back. *)
        List.iteri
          (fun i c -> if i < 25 then Tree_store.delete_node store (Cursor.node c))
          (Path.query store ~doc:"d" "/E");
        Tree_store.check_document store "d";
        let after = Stats.document store "d" in
        Alcotest.(check bool) "merges happened" true (Tree_store.merge_count store > 0);
        Alcotest.(check bool) "fewer records" true (after.Stats.records < before.Stats.records));
    Alcotest.test_case "delete_document leaks no records" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse sample_doc in
        let live_records () =
          let seg = Natix_store.Record_manager.segment (Tree_store.record_manager store) in
          let n = ref 0 in
          for page = 0 to Natix_store.Segment.page_count seg - 1 do
            Natix_store.Segment.with_page seg page (fun b ->
                n := !n + Natix_store.Slotted_page.live_count b)
          done;
          !n
        in
        (* Warm up once so the catalog chain reaches its steady size, then
           repeated create/delete cycles must not grow the record count. *)
        let _ = Loader.load store ~name:"d" t in
        Tree_store.delete_document store "d";
        let baseline = live_records () in
        for _ = 1 to 3 do
          let _ = Loader.load store ~name:"d" t in
          Tree_store.delete_document store "d";
          Alcotest.(check int) "steady record count" baseline (live_records ())
        done;
        Alcotest.(check (list string)) "no documents" [] (Tree_store.list_documents store));
    Alcotest.test_case "documents persist across reopen (file disk)" `Quick (fun () ->
        let path = Filename.temp_file "natix" ".db" in
        Sys.remove path;
        let config = { (Config.default ()) with Config.page_size = 1024 } in
        let disk = Natix_store.Disk.on_file ~page_size:1024 path in
        let store = Tree_store.open_store ~config disk in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        Tree_store.sync store;
        Natix_store.Disk.close disk;
        let disk2 = Natix_store.Disk.on_file ~page_size:1024 path in
        let store2 = Tree_store.open_store ~config disk2 in
        Alcotest.(check (list string)) "documents listed" [ "d" ] (Tree_store.list_documents store2);
        Alcotest.check xml "content survived" t (Option.get (Exporter.document_to_xml store2 "d"));
        Tree_store.check_document store2 "d";
        Natix_store.Disk.close disk2;
        Sys.remove path);
    Alcotest.test_case "insert_fragment grafts under an existing node" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        let act = List.hd (Path.query store ~doc:"d" "/ACT[1]") in
        let frag = Xml_parser.parse "<SCENE><TITLE>Scene 3</TITLE></SCENE>" in
        let _ =
          Loader.insert_fragment store (Tree_store.After (Cursor.node (List.hd (Path.query store ~doc:"d" "/ACT[1]/SCENE[2]")))) frag
        in
        ignore act;
        Tree_store.check_document store "d";
        Alcotest.(check int) "three scenes" 3 (List.length (Path.query store ~doc:"d" "//SCENE")));
    qtest ~count:40 "random documents roundtrip at random page sizes"
      QCheck2.Gen.(
        pair (int_range 512 4096)
          (pair bool
             (list_size (int_range 1 25)
                (pair (int_bound 5) (string_size ~gen:printable (int_range 1 60))))))
      (fun (page_size, (bfs, specs)) ->
        let doc =
          Xml_tree.element "R"
            (List.map
               (fun (kind, text) ->
                 match kind with
                 | 0 -> Xml_tree.text text
                 | 1 -> Xml_tree.element "A" [ Xml_tree.text text ]
                 | 2 -> Xml_tree.element "B" [ Xml_tree.element "C" [ Xml_tree.text text ] ]
                 | 3 -> Xml_tree.element ~attrs:[ ("k", text) ] "D" []
                 | _ -> Xml_tree.element "E" (List.init 3 (fun _ -> Xml_tree.text text)))
               specs)
        in
        let store = mem_store ~page_size () in
        let order = if bfs then Loader.Bfs_binary else Loader.Preorder in
        let _ = Loader.load store ~name:"d" ~order doc in
        Tree_store.check_document store "d";
        Xml_tree.equal doc (Option.get (Exporter.document_to_xml store "d")));
  ]

(* ------------------------------------------------------------------ *)
(* Cursor & path                                                       *)

let with_sample () =
  let store = mem_store ~page_size:512 () in
  let t = Xml_parser.parse sample_doc in
  let _ = Loader.load store ~name:"d" t in
  (store, Option.get (Cursor.of_document store "d"))

let cursor_tests =
  [
    Alcotest.test_case "root name and kind" `Quick (fun () ->
        let _, root = with_sample () in
        Alcotest.(check string) "name" "PLAY" (Cursor.name root);
        Alcotest.(check bool) "element" true (Cursor.is_element root));
    Alcotest.test_case "first_child / next_sibling walk in order" `Quick (fun () ->
        let _, root = with_sample () in
        let names = List.map Cursor.name (List.of_seq (Cursor.children root)) in
        Alcotest.(check (list string)) "children" [ "TITLE"; "ACT" ] names);
    Alcotest.test_case "parent returns through records" `Quick (fun () ->
        let _, root = with_sample () in
        let deep =
          List.of_seq (Cursor.descendants_or_self root)
          |> List.filter (fun c -> Cursor.is_element c && Cursor.name c = "SPEAKER")
          |> List.hd
        in
        let p = Option.get (Cursor.parent deep) in
        Alcotest.(check string) "parent" "SPEECH" (Cursor.name p));
    Alcotest.test_case "descendants_or_self is document order" `Quick (fun () ->
        let _, root = with_sample () in
        let elems =
          List.filter_map
            (fun c -> if Cursor.is_element c then Some (Cursor.name c) else None)
            (List.of_seq (Cursor.descendants_or_self root))
        in
        match elems with
        | "PLAY" :: "TITLE" :: "ACT" :: "TITLE" :: "SCENE" :: "TITLE" :: "SPEECH" :: _ -> ()
        | other -> Alcotest.failf "unexpected order: %s" (String.concat "," other));
    Alcotest.test_case "text and text_content" `Quick (fun () ->
        let _, root = with_sample () in
        let title = Option.get (Cursor.first_child root) in
        Alcotest.(check string) "title text" "Hamlet" (Cursor.text_content title));
    Alcotest.test_case "attributes are reachable and hidden from text" `Quick (fun () ->
        let store = mem_store () in
        let t = Xml_parser.parse {|<a id="7"><b>x</b></a>|} in
        let _ = Loader.load store ~name:"d" t in
        let root = Option.get (Cursor.of_document store "d") in
        Alcotest.(check (option string)) "attribute" (Some "7") (Cursor.attribute root "id");
        Alcotest.(check string) "text skips attributes" "x" (Cursor.text_content root));
    Alcotest.test_case "next_sibling without context recomputes" `Quick (fun () ->
        let store, root = with_sample () in
        let title = Option.get (Cursor.first_child root) in
        let title_node = Cursor.node title in
        let fresh = Cursor.of_node store title_node in
        let sib = Option.get (Cursor.next_sibling fresh) in
        Alcotest.(check string) "sibling" "ACT" (Cursor.name sib));
  ]

let path_tests =
  [
    Alcotest.test_case "parse/print roundtrip" `Quick (fun () ->
        let p = "/ACT[3]/SCENE[2]//SPEAKER" in
        Alcotest.(check string) "roundtrip" p (Path.to_string (Path.parse p)));
    Alcotest.test_case "child axis with positions" `Quick (fun () ->
        let store, _ = with_sample () in
        let r = Path.query store ~doc:"d" "/ACT[1]/SCENE[2]/TITLE" in
        Alcotest.(check int) "one hit" 1 (List.length r);
        Alcotest.(check string) "right scene" "Scene 2" (Cursor.text_content (List.hd r)));
    Alcotest.test_case "descendant axis" `Quick (fun () ->
        let store, _ = with_sample () in
        Alcotest.(check int) "speakers" 3 (List.length (Path.query store ~doc:"d" "//SPEAKER")));
    Alcotest.test_case "wildcard and text()" `Quick (fun () ->
        let store, _ = with_sample () in
        Alcotest.(check int) "root children" 2 (List.length (Path.query store ~doc:"d" "/*"));
        let texts = Path.query store ~doc:"d" "//LINE/text()" in
        Alcotest.(check int) "line texts" 4 (List.length texts));
    Alcotest.test_case "positions are per context node" `Quick (fun () ->
        let store, _ = with_sample () in
        (* SPEECH[1] of each scene: 2 scenes -> 2 hits *)
        Alcotest.(check int) "first speech per scene" 2
          (List.length (Path.query store ~doc:"d" "//SCENE/SPEECH[1]")));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Path.parse bad with
            | exception Path.Parse_error _ -> ()
            | _ -> Alcotest.failf "expected parse error for %S" bad)
          [ ""; "ACT"; "/ACT[0]"; "/ACT[x]"; "/ACT[1" ]);
  ]

let suites =
  [
    ("core.phys_node", phys_node_tests);
    ("core.codec", codec_tests);
    ("core.split_matrix", split_matrix_tests);
    ("core.tree_store", tree_store_tests);
    ("core.cursor", cursor_tests);
    ("core.path", path_tests);
  ]

let stream_loader_tests =
  [
    Alcotest.test_case "load_stream equals load" `Quick (fun () ->
        let text =
          "<?xml version=\"1.0\"?>\n<PLAY n=\"1\">\n  <TITLE>T</TITLE>\n  "
          ^ "<ACT><SCENE><SPEECH><SPEAKER>A</SPEAKER><LINE>one &amp; two</LINE></SPEECH></SCENE></ACT>\n</PLAY>\n"
        in
        let via_tree =
          let store = mem_store () in
          let _ = Loader.load store ~name:"d" (Xml_parser.parse text) in
          Option.get (Exporter.document_to_xml store "d")
        in
        let via_stream =
          let store = mem_store () in
          let _ = Loader.load_stream store ~name:"d" text in
          Tree_store.check_document store "d";
          Option.get (Exporter.document_to_xml store "d")
        in
        Alcotest.check xml "same document" via_tree via_stream);
    Alcotest.test_case "load_stream splits big documents too" `Quick (fun () ->
        let body =
          String.concat ""
            (List.init 50 (fun i ->
                 Printf.sprintf "<E k=\"%d\">payload %d with some padding text</E>" i i))
        in
        let store = mem_store ~page_size:512 () in
        let _ = Loader.load_stream store ~name:"d" ("<R>" ^ body ^ "</R>") in
        Tree_store.check_document store "d";
        Alcotest.(check bool) "splits happened" true (Tree_store.split_count store > 0);
        Alcotest.(check int) "all elements" 50
          (List.length (Path.query store ~doc:"d" "/E")));
    Alcotest.test_case "load_stream rejects trailing content" `Quick (fun () ->
        let store = mem_store () in
        match Loader.load_stream store ~name:"d" "<a/><b/>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "load_stream rejects mismatched tags" `Quick (fun () ->
        let store = mem_store () in
        match Loader.load_stream store ~name:"d" "<a><b></a></b>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
  ]

let suites = suites @ [ ("core.stream_loader", stream_loader_tests) ]

(* Behavioural properties tied to the paper's observations. *)
let behaviour_tests =
  [
    Alcotest.test_case "BFS insertion balances the record tree; preorder degenerates" `Quick
      (fun () ->
        (* §4.4.3/§4.4.5: pre-order insertion produces a linearly
           degenerated physical tree, incremental (BFS) a balanced one. *)
        let play = Xml_parser.parse (Natix_xml.Xml_print.to_string
          (List.hd (Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01)))) in
        let depth order =
          let store = mem_store ~page_size:2048 () in
          let _ = Loader.load store ~name:"p" ~order play in
          (Stats.document store "p").Stats.record_tree_depth
        in
        let bfs = depth Loader.Bfs_binary and pre = depth Loader.Preorder in
        Alcotest.(check bool)
          (Printf.sprintf "bfs depth %d < preorder depth %d" bfs pre)
          true (bfs < pre));
    Alcotest.test_case "record access is charged even with a warm decode cache" `Quick (fun () ->
        let config = { (Config.default ()) with Config.page_size = 512; buffer_bytes = 64 * 1024 } in
        let store = Tree_store.in_memory ~config () in
        let doc =
          Xml_tree.element "R"
            (List.init 30 (fun i -> Xml_tree.element "E" [ Xml_tree.text (Printf.sprintf "body %d filler" i) ]))
        in
        let _ = Loader.load store ~name:"d" doc in
        let io = Tree_store.io_stats store in
        (* Cold traversal after a buffer clear must read pages... *)
        Tree_store.clear_buffers store;
        let r0 = io.Natix_store.Io_stats.reads in
        let root = Option.get (Cursor.of_document store "d") in
        Seq.iter (fun _ -> ()) (Cursor.descendants_or_self root);
        let cold = io.Natix_store.Io_stats.reads - r0 in
        Alcotest.(check bool) "cold traversal reads" true (cold > 0);
        (* ... and a warm one must not. *)
        let r1 = io.Natix_store.Io_stats.reads in
        let root = Option.get (Cursor.of_document store "d") in
        Seq.iter (fun _ -> ()) (Cursor.descendants_or_self root);
        Alcotest.(check int) "warm traversal reads" 0 (io.Natix_store.Io_stats.reads - r1));
    Alcotest.test_case "After a standalone sibling inserts next to its proxy" `Quick (fun () ->
        let m = Split_matrix.create () in
        let store = mem_store ~matrix:m () in
        Split_matrix.set m
          ~parent:(Tree_store.label store "R")
          ~child:(Tree_store.label store "S")
          Split_matrix.Standalone;
        let root = Tree_store.create_document store ~name:"d" ~root:"R" in
        let s1 =
          Tree_store.insert_node store (Tree_store.First_under root)
            (Tree_store.Elem (Tree_store.label store "S"))
        in
        Alcotest.(check bool) "s1 standalone" true (s1.Phys_node.parent = None);
        (* Insert a sibling after the record root s1. *)
        let s2 = Tree_store.insert_node store (Tree_store.After s1) (Tree_store.Elem (Tree_store.label store "S")) in
        Alcotest.(check bool) "s2 standalone too" true (s2.Phys_node.parent = None);
        Tree_store.check_document store "d";
        let names =
          List.map Cursor.name (List.of_seq (Cursor.children (Option.get (Cursor.of_document store "d"))))
        in
        Alcotest.(check (list string)) "order kept" [ "S"; "S" ] names);
    Alcotest.test_case "1:1 aggregates contain only proxies" `Quick (fun () ->
        (* §5: in metamodeling systems every facade node is standalone and
           aggregates contain exclusively proxies. *)
        let store = mem_store ~matrix:(Split_matrix.one_to_one ()) () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        (match Tree_store.document_rid store "d" with
        | None -> Alcotest.fail "no document"
        | Some rid ->
          Tree_store.iter_records store rid (fun _ root _ ->
              if Phys_node.is_aggregate root && Phys_node.is_facade root then
                List.iter
                  (fun (c : Phys_node.t) ->
                    match c.Phys_node.kind with
                    | Phys_node.Proxy _ -> ()
                    | _ -> Alcotest.fail "embedded child in a 1:1 aggregate")
                  (Phys_node.children root)));
        Tree_store.check_document store "d");
    Alcotest.test_case "config validation rejects nonsense" `Quick (fun () ->
        List.iter
          (fun config ->
            match Config.validate config with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.fail "expected rejection")
          [
            { (Config.default ()) with Config.page_size = 100 };
            { (Config.default ()) with Config.page_size = 65536 };
            { (Config.default ()) with Config.split_target = 0. };
            { (Config.default ()) with Config.split_target = 1.5 };
            { (Config.default ()) with Config.split_tolerance = 0.9 };
            { (Config.default ()) with Config.buffer_bytes = 0 };
            { (Config.default ()) with Config.merge_threshold = 2.0 };
          ]);
    Alcotest.test_case "cursor traversal equals the exported tree" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        let exported = Option.get (Exporter.document_to_xml store "d") in
        (* Count elements both ways. *)
        let via_cursor =
          Seq.fold_left
            (fun n c -> if Cursor.is_element c then n + 1 else n)
            0
            (Cursor.descendants_or_self (Option.get (Cursor.of_document store "d")))
        in
        Alcotest.(check int) "element counts agree" (Xml_tree.element_count exported) via_cursor);
  ]

let suites = suites @ [ ("core.behaviour", behaviour_tests) ]

let extra_query_tests =
  [
    Alcotest.test_case "attributes are addressable in paths" `Quick (fun () ->
        let store = mem_store () in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse {|<a><b id="1"/><b id="2"/><b/></a>|}) in
        let hits = Path.query store ~doc:"d" "/b/@id" in
        Alcotest.(check (list string)) "attribute values" [ "1"; "2" ]
          (List.map Cursor.text hits));
    Alcotest.test_case "query on a missing document fails cleanly" `Quick (fun () ->
        let store = mem_store () in
        match Path.query store ~doc:"ghost" "/a" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    Alcotest.test_case "non-ASCII text survives storage" `Quick (fun () ->
        let store = mem_store () in
        let text = "caf\xc3\xa9 \xe2\x80\x94 na\xc3\xafve \xf0\x9f\x8e\xad" in
        let t = Xml_tree.element "D" [ Xml_tree.text text ] in
        let _ = Loader.load store ~name:"d" t in
        let root = Option.get (Cursor.of_document store "d") in
        Alcotest.(check string) "utf-8 intact" text (Cursor.text_content root));
    Alcotest.test_case "entities survive a full store/export cycle" `Quick (fun () ->
        let store = mem_store () in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse "<D>a &lt; b &amp;&amp; c &gt; d</D>") in
        let exported = Exporter.to_string store (Cursor.node (Option.get (Cursor.of_document store "d"))) in
        Alcotest.(check string) "re-escaped" "<D>a &lt; b &amp;&amp; c &gt; d</D>" exported);
    Alcotest.test_case "a smaller buffer never reads less" `Quick (fun () ->
        let play =
          List.hd (Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01))
        in
        let reads buffer_bytes =
          let config =
            { (Config.default ()) with Config.page_size = 1024; buffer_bytes }
          in
          let store = Tree_store.in_memory ~config () in
          let _ = Loader.load store ~name:"p" ~order:Loader.Bfs_binary play in
          (Tree_store.io_stats store).Natix_store.Io_stats.reads
        in
        let small = reads (8 * 1024) and large = reads (512 * 1024) in
        Alcotest.(check bool)
          (Printf.sprintf "reads small=%d >= large=%d" small large)
          true (small >= large));
  ]

let suites = suites @ [ ("core.queries_extra", extra_query_tests) ]

let literal_tests =
  [
    Alcotest.test_case "typed literals store and render" `Quick (fun () ->
        let store = mem_store () in
        let root = Tree_store.create_document store ~name:"d" ~root:"ROW" in
        let lbl n = Tree_store.label store n in
        let values =
          [
            ("i8", Phys_node.Int8 200);
            ("i16", Phys_node.Int16 40000);
            ("i32", Phys_node.Int32 (-123456l));
            ("i64", Phys_node.Int64 9_007_199_254_740_993L);
            ("f", Phys_node.Float 2.5);
            ("uri", Phys_node.Uri "http://example.org/x");
          ]
        in
        let _ =
          List.fold_left
            (fun point (name, v) ->
              let field = Tree_store.insert_node store point (Tree_store.Elem (lbl name)) in
              let _ =
                Tree_store.insert_node store (Tree_store.First_under field)
                  (Tree_store.Lit (Label.pcdata, v))
              in
              Tree_store.After field)
            (Tree_store.First_under root) values
        in
        Tree_store.check_document store "d";
        let texts =
          List.map Cursor.text_content
            (List.of_seq (Cursor.children (Option.get (Cursor.of_document store "d"))))
        in
        Alcotest.(check (list string)) "rendered"
          [ "200"; "40000"; "-123456"; "9007199254740993"; "2.5"; "http://example.org/x" ]
          texts;
        (* typed access through literal_of *)
        let first_leaf =
          Option.get
            (Cursor.first_child
               (Option.get (Cursor.first_child (Option.get (Cursor.of_document store "d")))))
        in
        match Tree_store.literal_of (Cursor.node first_leaf) with
        | Some (Phys_node.Int8 200) -> ()
        | _ -> Alcotest.fail "expected Int8 200");
    Alcotest.test_case "typed literals roundtrip through the codec on disk" `Quick (fun () ->
        (* force the record out to disk and back *)
        let store = mem_store () in
        let root = Tree_store.create_document store ~name:"d" ~root:"R" in
        let _ =
          Tree_store.insert_node store (Tree_store.First_under root)
            (Tree_store.Lit (Label.pcdata, Phys_node.Float 1.5))
        in
        Tree_store.clear_buffers store;
        let root = Option.get (Tree_store.open_document store "d") in
        match
          Tree_store.literal_of
            (Cursor.node (Option.get (Cursor.first_child (Cursor.of_node store root))))
        with
        | Some (Phys_node.Float 1.5) -> ()
        | _ -> Alcotest.fail "float literal lost");
  ]

let suites = suites @ [ ("core.literals", literal_tests) ]

let stress_tests =
  [
    Alcotest.test_case "deeply nested documents survive splits" `Slow (fun () ->
        (* A 300-deep chain with payloads forces separator paths through
           many levels. *)
        let rec chain d =
          if d = 0 then Xml_tree.text "leaf"
          else
            Xml_tree.element "N"
              [ Xml_tree.text (Printf.sprintf "level %d padding padding" d); chain (d - 1) ]
        in
        let doc = Xml_tree.element "R" [ chain 300 ] in
        let store = mem_store ~page_size:512 () in
        let _ = Loader.load store ~name:"d" doc in
        Tree_store.check_document store "d";
        Alcotest.check xml "roundtrip" doc (Option.get (Exporter.document_to_xml store "d")));
    Alcotest.test_case "very wide documents survive splits" `Slow (fun () ->
        let doc =
          Xml_tree.element "R"
            (List.init 3000 (fun i -> Xml_tree.element "E" [ Xml_tree.text (string_of_int i) ]))
        in
        let store = mem_store ~page_size:512 () in
        let _ = Loader.load store ~name:"d" doc in
        Tree_store.check_document store "d";
        Alcotest.(check int) "all children" 3000
          (Seq.fold_left (fun n _ -> n + 1) 0
             (Cursor.children (Option.get (Cursor.of_document store "d")))));
    Alcotest.test_case "a 200KB text node fragments and reassembles byte-exact" `Slow (fun () ->
        let big = String.init 200_000 (fun i -> Char.chr (32 + (i mod 95))) in
        let store = mem_store ~page_size:2048 () in
        let doc = Xml_tree.element "D" [ Xml_tree.text big ] in
        let _ = Loader.load store ~name:"d" doc in
        Tree_store.check_document store "d";
        let root = Option.get (Cursor.of_document store "d") in
        Alcotest.(check string) "content" big (Cursor.text_content root);
        (* update it in place to something small and back *)
        let text_node = Cursor.node (Option.get (Cursor.first_child root)) in
        Tree_store.update_text store text_node "tiny";
        Tree_store.check_document store "d";
        Tree_store.update_text store text_node big;
        Tree_store.check_document store "d";
        Alcotest.(check int) "length back" (String.length big)
          (String.length (Tree_store.text_of store text_node)));
  ]

let suites = suites @ [ ("core.stress", stress_tests) ]

let navigation_property_tests =
  [
    qtest ~count:40 "sibling chain equals the children list"
      QCheck2.Gen.(pair (int_range 512 2048) (int_range 0 30))
      (fun (page_size, n) ->
        let store = mem_store ~page_size () in
        let doc =
          Xml_tree.element "R"
            (List.init n (fun i ->
                 Xml_tree.element (if i mod 2 = 0 then "A" else "B")
                   [ Xml_tree.text (Printf.sprintf "c%d body" i) ]))
        in
        let _ = Loader.load store ~name:"d" doc in
        let root = Option.get (Cursor.of_document store "d") in
        let via_children = List.map Cursor.name (List.of_seq (Cursor.children root)) in
        let via_chain =
          let rec walk acc = function
            | None -> List.rev acc
            | Some c -> walk (Cursor.name c :: acc) (Cursor.next_sibling c)
          in
          walk [] (Cursor.first_child root)
        in
        via_children = via_chain
        && List.length via_children = n
        && List.length (Path.query store ~doc:"d" "/*") = n);
    qtest ~count:40 "every node's logical parent is correct"
      QCheck2.Gen.(int_range 512 1536)
      (fun page_size ->
        let store = mem_store ~page_size () in
        let t = Xml_parser.parse sample_doc in
        let _ = Loader.load store ~name:"d" t in
        let root = Option.get (Cursor.of_document store "d") in
        (* For each element, all its children must report it as parent. *)
        Seq.for_all
          (fun c ->
            (not (Cursor.is_element c))
            || Seq.for_all
                 (fun child ->
                   match Tree_store.logical_parent store (Cursor.node child) with
                   | Some p -> p == Cursor.node c
                   | None -> false)
                 (Cursor.children c))
          (Cursor.descendants_or_self root));
  ]

let suites = suites @ [ ("core.navigation_props", navigation_property_tests) ]
