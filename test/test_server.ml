(* The serving stack: the Api codec, CRC framing, the Session.exec
   command layer, the dispatcher (typed error mapping, bounded
   admission, the worker pool), multi-tenant isolation, and the
   simulated open-loop traffic model.

   The load-bearing property is differential: a request served through
   the full loopback path (codec + framing + admission + dispatch) must
   answer byte-identically to a direct [Session.exec] on a twin store. *)

open Natix_core
module Api = Natix.Api
module Protocol = Natix_server.Protocol
module Registry = Natix_server.Registry
module Rw_lock = Natix_server.Rw_lock
module Server = Natix_server.Server
module Traffic = Natix_server.Traffic
module Io_stats = Natix_store.Io_stats
module Faulty_disk = Natix_store.Faulty_disk
module Mon = Natix_mon.Mon
module Account = Natix_mon.Account

let prop ?(count = 200) name gen p =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen p)

(* Small pages and a small pool so the test corpus does real I/O once
   the buffers are dropped. *)
let config ?(buffer_bytes = 16 * 1024) () =
  { (Config.default ()) with Config.page_size = 1024; buffer_bytes }

let play_xml name =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<PLAY><TITLE>";
  Buffer.add_string b name;
  Buffer.add_string b "</TITLE>";
  for act = 1 to 2 do
    Buffer.add_string b "<ACT>";
    for sp = 1 to 20 do
      Buffer.add_string b
        (Printf.sprintf
           "<SPEECH><SPEAKER>S%d</SPEAKER><LINE>act %d speech %d of %s with some more words \
            to fill the page</LINE></SPEECH>"
           sp act sp name)
    done;
    Buffer.add_string b "</ACT>"
  done;
  Buffer.add_string b "</PLAY>";
  Buffer.contents b

let cold s = Tree_store.clear_buffers (Natix.Session.store s)

let load_docs s names =
  List.iter
    (fun doc ->
      match
        Natix.Session.exec s (Api.Load { doc; xml = play_xml doc; order = Loader.Preorder })
      with
      | Api.Loaded _ -> ()
      | r -> Alcotest.failf "load %s: %a" doc Api.pp_response r)
    names

let session_with_docs names =
  let s = Natix.Session.in_memory ~config:(config ()) () in
  load_docs s names;
  s

let check_hits what n = function
  | Api.Hits hits -> Alcotest.(check int) what n (List.length hits)
  | r -> Alcotest.failf "%s: expected Hits, got %a" what Api.pp_response r

let check_overloaded what reason = function
  | Api.Overloaded { reason = r } -> Alcotest.(check string) what reason r
  | r -> Alcotest.failf "%s: expected Overloaded, got %a" what Api.pp_response r

let check_err what = function
  | Api.Err _ -> ()
  | r -> Alcotest.failf "%s: expected Err, got %a" what Api.pp_response r

(* Wait for a cross-domain condition; the deadline turns a hang into a
   test failure instead of a stuck CI job. *)
let wait_for what f =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Api codec                                                           *)

let gen_order = QCheck2.Gen.oneofl [ Loader.Preorder; Loader.Bfs_binary ]

let gen_request =
  let open QCheck2.Gen in
  oneof
    [
      return Api.Ping;
      map3 (fun doc xml order -> Api.Load { doc; xml; order }) string string gen_order;
      map3 (fun doc path texts -> Api.Query { doc; path; texts }) string string bool;
      map2 (fun element texts -> Api.Scan { element; texts }) string bool;
      return Api.Checkpoint;
      map (fun doc -> Api.Stat { doc }) (option string);
    ]

let gen_error =
  let open QCheck2.Gen in
  oneof
    [
      map (fun s -> Error.Parse s) string;
      map2 (fun doc detail -> Error.Validation { doc; detail }) string string;
      map2 (fun doc detail -> Error.Dtd { doc; detail }) string string;
      map (fun s -> Error.Query s) string;
      map (fun s -> Error.Storage s) string;
    ]

let gen_doc_stat =
  let open QCheck2.Gen in
  map3
    (fun doc (records, pages) record_bytes -> { Api.doc; records; pages; record_bytes })
    string (pair nat nat) nat

let gen_response =
  let open QCheck2.Gen in
  oneof
    [
      return Api.Pong;
      map2 (fun doc nodes -> Api.Loaded { doc; nodes }) string nat;
      map (fun hits -> Api.Hits hits) (small_list string);
      map (fun hits -> Api.Scanned hits) (small_list string);
      return Api.Checkpointed;
      map2
        (fun docs disk_bytes -> Api.Stats { docs; disk_bytes })
        (small_list gen_doc_stat) nat;
      map (fun e -> Api.Err e) gen_error;
      map (fun reason -> Api.Overloaded { reason }) string;
    ]

let codec_tests =
  [
    prop "request codec round-trips" gen_request (fun r ->
        Api.decode_request (Api.encode_request r) = Ok r);
    prop "response codec round-trips" gen_response (fun r ->
        Api.decode_response (Api.encode_response r) = Ok r);
    prop "no strict prefix of a request decodes"
      QCheck2.Gen.(pair gen_request (float_range 0. 1.))
      (fun (r, cut) ->
        let s = Api.encode_request r in
        let k = int_of_float (cut *. float_of_int (String.length s)) in
        let k = min k (String.length s - 1) |> max 0 in
        Result.is_error (Api.decode_request (String.sub s 0 k)));
    prop "trailing garbage is refused" gen_response (fun r ->
        Result.is_error (Api.decode_response (Api.encode_response r ^ "x")));
    Alcotest.test_case "unknown tags and empty strings are typed errors" `Quick (fun () ->
        Alcotest.(check bool) "empty request" true (Result.is_error (Api.decode_request ""));
        Alcotest.(check bool) "empty response" true (Result.is_error (Api.decode_response ""));
        Alcotest.(check bool) "bad tag" true (Result.is_error (Api.decode_request "\xff"));
        Alcotest.(check bool) "bad tag" true (Result.is_error (Api.decode_response "\xfe")));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)

let reader_of_string s =
  let pos = ref 0 in
  fun n ->
    if !pos + n > String.length s then raise End_of_file
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      r
    end

let u32_be n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let protocol_tests =
  [
    Alcotest.test_case "header and frames round-trip; EOF at a boundary is clean" `Quick
      (fun () ->
        let b = Buffer.create 256 in
        let w = Buffer.add_string b in
        Protocol.write_header w;
        Protocol.write_frame w ~seq:1 "";
        Protocol.write_frame w ~seq:0xDEADBE "payload \x00 with bytes";
        let read = reader_of_string (Buffer.contents b) in
        (match Protocol.read_header read with
        | Ok v -> Alcotest.(check int) "advertises v2" 2 v
        | Error msg -> Alcotest.failf "header: %s" msg);
        (match Protocol.read_frame read with
        | Ok (Some { Protocol.seq = 1; trace_id = None; payload = "" }) -> ()
        | _ -> Alcotest.fail "frame 1");
        (match Protocol.read_frame read with
        | Ok (Some { Protocol.seq = 0xDEADBE; trace_id = None; payload = "payload \x00 with bytes" })
          -> ()
        | _ -> Alcotest.fail "frame 2");
        match Protocol.read_frame read with
        | Ok None -> ()
        | _ -> Alcotest.fail "expected clean EOF");
    Alcotest.test_case "trace ids ride v2 frames and vanish at v1" `Quick (fun () ->
        let b = Buffer.create 64 in
        Protocol.write_frame (Buffer.add_string b) ~seq:9 ~trace_id:"t-000009" "body";
        (match Protocol.read_frame (reader_of_string (Buffer.contents b)) with
        | Ok (Some { Protocol.seq = 9; trace_id = Some "t-000009"; payload = "body" }) -> ()
        | _ -> Alcotest.fail "v2 trace round-trip");
        (* The same payload framed at v1 carries no trace field and is
           byte-identical to a pre-trace build's frame. *)
        let v1 = Buffer.create 64 and v1' = Buffer.create 64 in
        Protocol.write_frame (Buffer.add_string v1) ~version:1 ~seq:9 ~trace_id:"t-000009" "body";
        Protocol.write_frame (Buffer.add_string v1') ~version:1 ~seq:9 "body";
        Alcotest.(check string) "v1 drops the trace id" (Buffer.contents v1') (Buffer.contents v1);
        Alcotest.(check int) "v1 layout: len+seq+payload+crc" (4 + 4 + 4 + 4)
          (Buffer.length v1);
        (match Protocol.read_frame ~version:1 (reader_of_string (Buffer.contents v1)) with
        | Ok (Some { Protocol.seq = 9; trace_id = None; payload = "body" }) -> ()
        | _ -> Alcotest.fail "v1 round-trip");
        (* Oversized trace ids are the writer's bug. *)
        match
          Protocol.write_frame ignore ~seq:1
            ~trace_id:(String.make (Protocol.max_trace_id + 1) 'x')
            "p"
        with
        | () -> Alcotest.fail "oversized trace id accepted"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "version negotiation accepts v1 peers, refuses futures" `Quick
      (fun () ->
        (match Protocol.read_header (reader_of_string (Protocol.header_for 1)) with
        | Ok 1 -> ()
        | Ok v -> Alcotest.failf "v1 header read as v%d" v
        | Error msg -> Alcotest.failf "v1 peer refused: %s" msg);
        let bad_version =
          let b = Bytes.of_string Protocol.header in
          Bytes.set_uint16_be b 4 (Protocol.version + 1);
          Bytes.to_string b
        in
        Alcotest.(check bool) "future version" true
          (Result.is_error (Protocol.read_header (reader_of_string bad_version)));
        Alcotest.(check bool) "wrong magic" true
          (Result.is_error (Protocol.read_header (reader_of_string "XXXX\x00\x01")));
        Alcotest.(check bool) "truncated header" true
          (Result.is_error (Protocol.read_header (reader_of_string "NT"))));
    Alcotest.test_case "a flipped byte fails the CRC" `Quick (fun () ->
        let b = Buffer.create 64 in
        Protocol.write_frame (Buffer.add_string b) ~seq:7 "hello world";
        let s = Bytes.of_string (Buffer.contents b) in
        (* Flip one payload byte (after the 8-byte len+seq prefix). *)
        Bytes.set s 10 (Char.chr (Char.code (Bytes.get s 10) lxor 1));
        match Protocol.read_frame (reader_of_string (Bytes.to_string s)) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "corrupt frame accepted");
    Alcotest.test_case "truncation mid-frame is an error, not a short read" `Quick (fun () ->
        let b = Buffer.create 64 in
        Protocol.write_frame (Buffer.add_string b) ~seq:3 "some payload";
        let s = Buffer.contents b in
        (* Cuts inside the 4-byte length prefix are indistinguishable
           from a clean close under the all-bytes-or-End_of_file reader
           contract, so the error guarantee starts once the length
           prefix is complete. *)
        for k = 4 to String.length s - 1 do
          match Protocol.read_frame (reader_of_string (String.sub s 0 k)) with
          | Error _ -> ()
          | Ok None -> Alcotest.failf "cut at %d read as clean EOF" k
          | Ok (Some _) -> Alcotest.failf "cut at %d read as a full frame" k
        done);
    Alcotest.test_case "oversized length fields are refused without allocating" `Quick
      (fun () ->
        let s = u32_be (Protocol.max_payload + 1) ^ u32_be 0 in
        (match Protocol.read_frame (reader_of_string s) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "oversized frame accepted");
        match Protocol.write_frame ignore ~seq:0 (String.make 1 'x') with
        | () -> ()
        | exception Invalid_argument _ -> Alcotest.fail "small frame refused");
  ]

(* ------------------------------------------------------------------ *)
(* Session.exec: the command layer against a live store                *)

let exec_tests =
  [
    Alcotest.test_case "every request variant executes against a store" `Quick (fun () ->
        let s = Natix.Session.in_memory ~config:(config ()) () in
        (match Natix.Session.exec s Api.Ping with
        | Api.Pong -> ()
        | r -> Alcotest.failf "ping: %a" Api.pp_response r);
        (match
           Natix.Session.exec s
             (Api.Load { doc = "d"; xml = play_xml "d"; order = Loader.Preorder })
         with
        | Api.Loaded { doc = "d"; nodes } -> Alcotest.(check bool) "nodes" true (nodes > 100)
        | r -> Alcotest.failf "load: %a" Api.pp_response r);
        check_hits "query markup" 40
          (Natix.Session.exec s (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        (match Natix.Session.exec s (Api.Query { doc = "d"; path = "//SPEAKER"; texts = true }) with
        | Api.Hits (h :: _) -> Alcotest.(check string) "text rendering" "S1" h
        | r -> Alcotest.failf "query texts: %a" Api.pp_response r);
        check_hits "positional" 20
          (Natix.Session.exec s (Api.Query { doc = "d"; path = "/ACT[2]//SPEAKER"; texts = false }));
        (match Natix.Session.exec s (Api.Scan { element = "SPEAKER"; texts = true }) with
        | Api.Scanned hits -> Alcotest.(check int) "scan" 40 (List.length hits)
        | r -> Alcotest.failf "scan: %a" Api.pp_response r);
        (match Natix.Session.exec s Api.Checkpoint with
        | Api.Checkpointed -> ()
        | r -> Alcotest.failf "checkpoint: %a" Api.pp_response r);
        (match Natix.Session.exec s (Api.Stat { doc = Some "d" }) with
        | Api.Stats { docs = [ d ]; disk_bytes } ->
          let st = Stats.document (Natix.Session.store s) "d" in
          Alcotest.(check string) "stat doc" "d" d.Api.doc;
          Alcotest.(check int) "stat records" st.Stats.records d.Api.records;
          Alcotest.(check int) "stat pages" st.Stats.pages d.Api.pages;
          Alcotest.(check bool) "disk bytes" true (disk_bytes > 0)
        | r -> Alcotest.failf "stat: %a" Api.pp_response r);
        Natix.Session.close s);
    Alcotest.test_case "failures come back typed, never as exceptions" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        (match Natix.Session.exec s (Api.Query { doc = "nope"; path = "//X"; texts = false }) with
        | Api.Err (Error.Storage _) -> ()
        | r -> Alcotest.failf "unknown doc: %a" Api.pp_response r);
        (match Natix.Session.exec s (Api.Query { doc = "d"; path = "//["; texts = false }) with
        | Api.Err (Error.Query _) -> ()
        | r -> Alcotest.failf "bad path: %a" Api.pp_response r);
        (match
           Natix.Session.exec s
             (Api.Load { doc = "x"; xml = "<a><b></a>"; order = Loader.Preorder })
         with
        | Api.Err (Error.Parse _) -> ()
        | r -> Alcotest.failf "parse error: %a" Api.pp_response r);
        (match Natix.Session.exec s (Api.Stat { doc = Some "nope" }) with
        | Api.Err (Error.Storage _) -> ()
        | r -> Alcotest.failf "stat unknown: %a" Api.pp_response r);
        Natix.Session.close s);
    Alcotest.test_case "Options record and the keyword shims agree" `Quick (fun () ->
        let o = Natix.Session.Options.default in
        let s1 =
          Natix.Session.open_memory
            ~options:{ o with Natix.Session.Options.monitor = false }
            ()
        in
        Alcotest.(check bool) "options: no monitor" true (Natix.Session.mon s1 = None);
        Natix.Session.close s1;
        let s2 = Natix.Session.in_memory ~monitor:false () in
        Alcotest.(check bool) "shim: no monitor" true (Natix.Session.mon s2 = None);
        Natix.Session.close s2;
        let s3 = Natix.Session.open_memory () in
        Alcotest.(check bool) "default: monitored" true (Natix.Session.mon s3 <> None);
        Natix.Session.close s3);
  ]

(* ------------------------------------------------------------------ *)
(* Loopback differential: full serve path vs direct Session.exec       *)

(* A request script touching every variant, including typed failures;
   [Load]s come first so both sides build identical stores through the
   same command layer. *)
let script =
  [
    Api.Ping;
    Api.Load { doc = "a"; xml = play_xml "a"; order = Loader.Preorder };
    Api.Load { doc = "b"; xml = play_xml "b"; order = Loader.Bfs_binary };
    Api.Query { doc = "a"; path = "//SPEAKER"; texts = false };
    Api.Query { doc = "a"; path = "//LINE"; texts = true };
    Api.Query { doc = "b"; path = "/ACT[2]//SPEAKER"; texts = false };
    Api.Query { doc = "nope"; path = "//X"; texts = false };
    Api.Query { doc = "a"; path = "//["; texts = false };
    Api.Scan { element = "SPEAKER"; texts = false };
    Api.Scan { element = "TITLE"; texts = true };
    Api.Checkpoint;
    Api.Stat { doc = Some "a" };
    Api.Stat { doc = None };
    Api.Load { doc = "bad"; xml = "<a><b></a>"; order = Loader.Preorder };
  ]

let differential_at ~jobs () =
  let serve_sess = Natix.Session.in_memory ~config:(config ()) () in
  let twin = Natix.Session.in_memory ~config:(config ()) () in
  let registry = Registry.create () in
  Registry.mount registry "t" serve_sess;
  let server =
    Server.create ~config:{ Server.default_config with Server.jobs } registry
  in
  let conn = Server.Loopback.connect server ~tenant:"t" in
  List.iteri
    (fun i req ->
      let served = Server.Loopback.call conn req in
      let direct = Natix.Session.exec twin req in
      if Api.encode_response served <> Api.encode_response direct then
        Alcotest.failf "request %d (%a): served %a <> direct %a" i Api.pp_request req
          Api.pp_response served Api.pp_response direct)
    script;
  Server.shutdown server;
  Natix.Session.close serve_sess;
  Natix.Session.close twin

let differential_tests =
  [
    Alcotest.test_case "loopback responses are byte-identical to Session.exec (inline)" `Quick
      (differential_at ~jobs:0);
    Alcotest.test_case "loopback responses are byte-identical to Session.exec (jobs=2)" `Quick
      (differential_at ~jobs:2);
    Alcotest.test_case "unknown and invalid tenants answer typed errors" `Quick (fun () ->
        let registry = Registry.create () in
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        List.iter
          (fun tenant -> check_err tenant (Server.submit server ~tenant Api.Ping))
          [ "nope"; ""; "../evil"; ".hidden"; "a/b" ];
        Server.shutdown server);
    Alcotest.test_case "a client-supplied name never materialises a fresh store" `Quick
      (fun () ->
        let root = Filename.temp_file "natix_reg" "" in
        Sys.remove root;
        Unix.mkdir root 0o700;
        let registry = Registry.create ~root () in
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        check_err "missing store file" (Server.submit server ~tenant:"ghost" Api.Ping);
        Alcotest.(check bool) "no ghost.natix created" false
          (Sys.file_exists (Filename.concat root "ghost.natix"));
        Server.shutdown server;
        Registry.close_all registry);
  ]

(* ------------------------------------------------------------------ *)
(* Typed error mapping under injected faults                           *)

let faulty_tenant () =
  let plan = Faulty_disk.create ~seed:7L () in
  let disk = Natix_store.Disk.in_memory ~page_size:1024 () in
  Natix_store.Disk.set_faults disk (Some plan);
  let store = Tree_store.open_store ~config:(config ()) disk in
  let session = Natix.Session.of_store store in
  (plan, store, session)

let fault_tests =
  [
    Alcotest.test_case
      "transient read errors mid-request: typed reply, no latched frame, loop survives" `Quick
      (fun () ->
        let plan, store, session = faulty_tenant () in
        let registry = Registry.create () in
        Registry.mount registry "t" session;
        (* jobs = 1: the same worker domain must survive the raising
           request and serve the next one. *)
        let server =
          Server.create ~config:{ Server.default_config with Server.jobs = 1 } registry
        in
        let conn = Server.Loopback.connect server ~tenant:"t" in
        (match Server.Loopback.call conn (Api.Load { doc = "d"; xml = play_xml "d"; order = Loader.Preorder }) with
        | Api.Loaded _ -> ()
        | r -> Alcotest.failf "load: %a" Api.pp_response r);
        Tree_store.clear_buffers store;
        Faulty_disk.fail_next_reads plan 10;
        (match Server.Loopback.call conn (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }) with
        | Api.Err (Error.Storage msg) ->
          Alcotest.(check bool) "read-failure reply" true
            (String.length msg > 0
            && String.sub msg 0 (min 9 (String.length msg)) = "transient")
        | r -> Alcotest.failf "faulty query: %a" Api.pp_response r);
        Alcotest.(check int) "no frame left pinned" 0
          (Natix_store.Buffer_pool.pinned_frames (Tree_store.buffer_pool store));
        Faulty_disk.disarm plan;
        check_hits "same worker, next request" 40
          (Server.Loopback.call conn (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        Server.shutdown server;
        let st = Server.stats server in
        Alcotest.(check int) "every request served" 3 st.Server.served;
        Natix.Session.close session);
    Alcotest.test_case "a simulated crash latches the tenant; later requests refused typed"
      `Quick (fun () ->
        let plan, _store, session = faulty_tenant () in
        let healthy = session_with_docs [ "h" ] in
        let registry = Registry.create () in
        Registry.mount registry "sick" session;
        Registry.mount registry "ok" healthy;
        let server =
          Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry
        in
        (match
           Server.submit server ~tenant:"sick"
             (Api.Load { doc = "d"; xml = play_xml "d"; order = Loader.Preorder })
         with
        | Api.Loaded _ -> ()
        | r -> Alcotest.failf "pre-crash load: %a" Api.pp_response r);
        (* The load's pages are still dirty in the pool; the checkpoint's
           first flush write hits the armed crash. *)
        Faulty_disk.arm_crash ~torn:false plan 0;
        check_err "crashing checkpoint" (Server.submit server ~tenant:"sick" Api.Checkpoint);
        check_err "tenant disabled"
          (Server.submit server ~tenant:"sick"
             (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        (* The other tenant is untouched. *)
        check_hits "healthy tenant unaffected" 40
          (Server.submit server ~tenant:"ok"
             (Api.Query { doc = "h"; path = "//SPEAKER"; texts = false }));
        Server.shutdown server;
        Natix.Session.close healthy);
  ]

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let hold_gate (tenant : Registry.tenant) =
  let held = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Rw_lock.with_write tenant.Registry.gate (fun () ->
            Atomic.set held true;
            while not (Atomic.get release) do
              Unix.sleepf 0.001
            done))
  in
  wait_for "gate held" (fun () -> Atomic.get held);
  (release, holder)

let admission_tests =
  [
    Alcotest.test_case "a shutting-down dispatcher sheds typed" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" s;
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        Server.shutdown server;
        check_overloaded "after shutdown" "shutting_down" (Server.submit server ~tenant:"t" Api.Ping);
        Server.shutdown server;
        (* idempotent *)
        Natix.Session.close s);
    Alcotest.test_case "inflight limit sheds typed while a request is running" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" s;
        let tenant =
          match Registry.find registry "t" with Ok t -> t | Error e -> Error.raise_error e
        in
        let server =
          Server.create
            ~config:{ Server.default_config with Server.jobs = 1; max_inflight = 1; queue_depth = 4 }
            registry
        in
        let release, holder = hold_gate tenant in
        (* The worker steals the ticket and blocks on the gate: running = 1. *)
        let d1 =
          Domain.spawn (fun () ->
              Server.submit server ~tenant:"t" (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }))
        in
        wait_for "request running" (fun () -> (Server.stats server).Server.running = 1);
        check_overloaded "second request" "inflight_limit"
          (Server.submit server ~tenant:"t" Api.Ping);
        Atomic.set release true;
        Domain.join holder;
        check_hits "blocked request completed" 40 (Domain.join d1);
        Server.shutdown server;
        Natix.Session.close s);
    Alcotest.test_case "queue depth bounds the queue and sheds typed" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" s;
        let tenant =
          match Registry.find registry "t" with Ok t -> t | Error e -> Error.raise_error e
        in
        let server =
          Server.create
            ~config:{ Server.default_config with Server.jobs = 1; max_inflight = 10; queue_depth = 1 }
            registry
        in
        let release, holder = hold_gate tenant in
        let submit_query () =
          Domain.spawn (fun () ->
              Server.submit server ~tenant:"t" (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }))
        in
        let d1 = submit_query () in
        wait_for "first running" (fun () -> (Server.stats server).Server.running = 1);
        let d2 = submit_query () in
        wait_for "second queued" (fun () -> (Server.stats server).Server.queued = 1);
        check_overloaded "queue full" "queue_full" (Server.submit server ~tenant:"t" Api.Ping);
        Atomic.set release true;
        Domain.join holder;
        check_hits "first drained" 40 (Domain.join d1);
        check_hits "second drained" 40 (Domain.join d2);
        let st = Server.stats server in
        Alcotest.(check int) "served" 2 st.Server.served;
        Alcotest.(check int) "shed" 1 st.Server.shed;
        Alcotest.(check bool) "bounded queue" true (st.Server.max_queue <= 1);
        Server.shutdown server;
        Natix.Session.close s);
    Alcotest.test_case "budget breach sheds only when configured to" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" s;
        let shedding = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        let lenient =
          Server.create
            ~config:{ Server.default_config with Server.jobs = 0; Server.shed_on_breach = false }
            registry
        in
        Natix.Session.set_budget s ~doc:"d" ~max_reads:1 ();
        cold s;
        (* The breaching request itself completes; the latch trips during it. *)
        check_hits "breaching query" 40
          (Server.submit shedding ~tenant:"t" (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        check_overloaded "latched" "budget:reads" (Server.submit shedding ~tenant:"t" Api.Ping);
        (match Server.submit lenient ~tenant:"t" Api.Ping with
        | Api.Pong -> ()
        | r -> Alcotest.failf "lenient server: %a" Api.pp_response r);
        Server.shutdown shedding;
        Server.shutdown lenient;
        Natix.Session.close s);
  ]

(* ------------------------------------------------------------------ *)
(* Multi-tenant isolation at jobs = 4                                  *)

let paths = [ "//SPEAKER"; "//LINE"; "/ACT[2]//SPEAKER" ]

let mkdir_temp () =
  let dir = Filename.temp_file "natix_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let account_totals session =
  match Natix.Session.mon session with
  | None -> Alcotest.fail "tenant session has no monitor"
  | Some mon ->
    let store = Natix.Session.store session in
    let at_ms = (Io_stats.copy (Tree_store.io_stats store)).Io_stats.sim_ms in
    List.map (fun d -> (d.Account.doc, d.Account.reads_total)) (Mon.accounts mon ~at_ms)

let tenant_tests =
  [
    Alcotest.test_case
      "two tenants at jobs=4: exact per-tenant read partition, shared nothing" `Quick
      (fun () ->
        let root = mkdir_temp () in
        (* Pre-create both stores so the registry's lazy open has
           something to find. *)
        List.iter
          (fun (name, docs) ->
            let s =
              Natix.Session.open_store
                ~options:
                  {
                    Natix.Session.Options.default with
                    Natix.Session.Options.config = Some (config ());
                  }
                (Filename.concat root (name ^ ".natix"))
            in
            load_docs s docs;
            Natix.Session.close s)
          [ ("alpha", [ "a1"; "a2" ]); ("beta", [ "b1"; "b2" ]) ];
        let registry =
          Registry.create ~root
            ~options:
              {
                Natix.Session.Options.default with
                Natix.Session.Options.config = Some (config ());
              }
            ()
        in
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 4 } registry in
        (* First touch opens lazily. *)
        let tenant name =
          match Registry.find registry name with Ok t -> t | Error e -> Error.raise_error e
        in
        let alpha = tenant "alpha" and beta = tenant "beta" in
        Alcotest.(check (list string)) "registry names" [ "alpha"; "beta" ] (Registry.names registry);
        let baseline t =
          cold t.Registry.session;
          let store = Natix.Session.store t.Registry.session in
          (Io_stats.copy (Tree_store.io_stats store), account_totals t.Registry.session)
        in
        let a0 = baseline alpha and b0 = baseline beta in
        (* One submitter domain per tenant, concurrently, through the
           loopback client. *)
        let hammer name docs =
          Domain.spawn (fun () ->
              let conn = Server.Loopback.connect server ~tenant:name in
              List.concat_map
                (fun doc ->
                  List.map
                    (fun path ->
                      Server.Loopback.call conn (Api.Query { doc; path; texts = false }))
                    paths)
                docs)
        in
        let da = hammer "alpha" [ "a1"; "a2" ] and db = hammer "beta" [ "b1"; "b2" ] in
        let ra = Domain.join da and rb = Domain.join db in
        List.iter
          (fun r -> match r with Api.Hits _ -> () | r -> Alcotest.failf "%a" Api.pp_response r)
          (ra @ rb);
        (* The per-document account deltas partition each tenant's read
           total exactly: every page read of the serving phase ran under
           some request's (doc, serve:query) context. *)
        let check_partition name t (io0, acct0) =
          let store = Natix.Session.store t.Registry.session in
          let reads = (Io_stats.diff (Io_stats.copy (Tree_store.io_stats store)) io0).Io_stats.reads in
          let acct1 = account_totals t.Registry.session in
          let charged =
            List.fold_left
              (fun acc (doc, total) ->
                let before = Option.value ~default:0 (List.assoc_opt doc acct0) in
                acc + (total - before))
              0 acct1
          in
          Alcotest.(check bool) (name ^ ": did real I/O") true (reads > 0);
          Alcotest.(check int) (name ^ ": accounts partition the read total") reads charged
        in
        check_partition "alpha" alpha a0;
        check_partition "beta" beta b0;
        (* Budget breach on alpha never touches beta. *)
        Natix.Session.set_budget alpha.Registry.session ~doc:"a1" ~max_reads:1 ();
        cold alpha.Registry.session;
        check_hits "alpha breaching query" 40
          (Server.submit server ~tenant:"alpha"
             (Api.Query { doc = "a1"; path = "//SPEAKER"; texts = false }));
        check_overloaded "alpha latched" "budget:reads"
          (Server.submit server ~tenant:"alpha" Api.Ping);
        check_hits "beta unaffected" 40
          (Server.submit server ~tenant:"beta"
             (Api.Query { doc = "b1"; path = "//SPEAKER"; texts = false }));
        (* Per-tenant export carries the (doc, serve:query) context. *)
        (match Natix.Session.mon beta.Registry.session with
        | None -> Alcotest.fail "no monitor"
        | Some mon ->
          let store = Natix.Session.store beta.Registry.session in
          let prom =
            Mon.export_prometheus mon
              ~at_ms:(Io_stats.copy (Tree_store.io_stats store)).Io_stats.sim_ms
          in
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "export has serve context" true (contains prom "serve:query"));
        Server.shutdown server;
        Registry.close_all registry;
        (* Owned tenants were checkpointed and closed: both stores fsck
           clean and still serve. *)
        List.iter
          (fun (name, doc) ->
            let path = Filename.concat root (name ^ ".natix") in
            let disk = Natix_store.Disk.on_file ~page_size:1024 path in
            let store = Tree_store.open_store ~config:(config ()) disk in
            let report = Fsck.run store in
            if not (Fsck.ok report) then Alcotest.failf "%s: fsck: %a" name Fsck.pp report;
            let s = Natix.Session.of_store store in
            check_hits (name ^ " reopens") 40
              (Natix.Session.exec s (Api.Query { doc; path = "//SPEAKER"; texts = false }));
            Tree_store.close ~commit:false store)
          [ ("alpha", "a1"); ("beta", "b1") ])
  ]

(* ------------------------------------------------------------------ *)
(* Socket path: serve_connection over a socketpair                     *)

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off = if off < n then go (off + Unix.write fd buf off (n - off)) in
  go 0

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string buf
    else
      match Unix.read fd buf off (n - off) with 0 -> raise End_of_file | k -> go (off + k)
  in
  go 0

let socket_tests =
  [
    Alcotest.test_case
      "socketpair conversation: handshake, requests, malformed payload keeps serving" `Quick
      (fun () ->
        let s = session_with_docs [ "d" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" s;
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let d = Domain.spawn (fun () -> Server.serve_connection server server_fd) in
        let w = write_all client_fd and read = read_exactly client_fd in
        Protocol.write_header w;
        (match Protocol.read_header read with
        | Ok _version -> ()
        | Error msg -> Alcotest.failf "server header: %s" msg);
        Protocol.write_frame w ~seq:0 "t";
        let call seq req =
          Protocol.write_frame w ~seq (Api.encode_request req);
          match Protocol.read_frame read with
          | Ok (Some f) ->
            Alcotest.(check int) "response seq" seq f.Protocol.seq;
            (match Api.decode_response f.Protocol.payload with
            | Ok resp -> resp
            | Error msg -> Alcotest.failf "decode: %s" msg)
          | Ok None -> Alcotest.fail "server closed early"
          | Error msg -> Alcotest.failf "frame: %s" msg
        in
        (match call 1 Api.Ping with
        | Api.Pong -> ()
        | r -> Alcotest.failf "ping: %a" Api.pp_response r);
        check_hits "query over the wire" 40
          (call 2 (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        (* An intact frame with garbage payload: typed error, connection
           survives. *)
        Protocol.write_frame w ~seq:3 "\xff\xff not a request";
        (match Protocol.read_frame read with
        | Ok (Some f) -> (
          match Api.decode_response f.Protocol.payload with
          | Ok (Api.Err (Error.Storage _)) -> ()
          | Ok r -> Alcotest.failf "garbage payload: %a" Api.pp_response r
          | Error msg -> Alcotest.failf "garbage decode: %s" msg)
        | _ -> Alcotest.fail "no reply to garbage payload");
        check_hits "still serving after garbage" 40
          (call 4 (Api.Query { doc = "d"; path = "//SPEAKER"; texts = false }));
        Unix.close client_fd;
        Domain.join d;
        Server.shutdown server;
        Natix.Session.close s);
  ]

(* ------------------------------------------------------------------ *)
(* Open-loop traffic: shed typed at overload, account for everything   *)

let traffic_tests =
  [
    Alcotest.test_case "simulate: conservation, bounded queue, monotone load" `Quick (fun () ->
        let service = Array.make 20 10. in
        let low = Traffic.simulate ~capacity:2 ~queue_depth:4 ~rate:50. service in
        let high = Traffic.simulate ~capacity:2 ~queue_depth:4 ~rate:2000. service in
        List.iter
          (fun (name, p) ->
            Alcotest.(check int) (name ^ ": conservation") p.Traffic.offered
              (p.Traffic.completed + p.Traffic.shed);
            Alcotest.(check bool) (name ^ ": bounded queue") true (p.Traffic.max_queue <= 4);
            Alcotest.(check int) (name ^ ": every request accounted") p.Traffic.offered
              (Array.length p.Traffic.latencies_ms);
            let some = Array.to_list p.Traffic.latencies_ms |> List.filter_map Fun.id in
            Alcotest.(check int) (name ^ ": latencies = completed") p.Traffic.completed
              (List.length some);
            List.iter
              (fun l -> Alcotest.(check bool) (name ^ ": finite latency") true (Float.is_finite l && l >= 0.))
              some)
          [ ("low", low); ("high", high) ];
        (* At 200 slot-seconds of work per second offered to 2 slots,
           shedding is certain; well under saturation, absent. *)
        Alcotest.(check int) "low load sheds nothing" 0 low.Traffic.shed;
        Alcotest.(check bool) "overload sheds" true (high.Traffic.shed > 0);
        Alcotest.(check bool) "overload p99 >= low p99" true
          (high.Traffic.p99_ms >= low.Traffic.p99_ms));
    Alcotest.test_case
      "measured sweep: >= 2x saturation sheds typed, nothing hangs, results stay exact" `Quick
      (fun () ->
        let serve_sess = session_with_docs [ "a"; "b"; "c" ] in
        let twin = session_with_docs [ "a"; "b"; "c" ] in
        let registry = Registry.create () in
        Registry.mount registry "t" serve_sess;
        let server = Server.create ~config:{ Server.default_config with Server.jobs = 0 } registry in
        let reqs =
          List.concat_map
            (fun texts ->
              List.concat_map
                (fun doc -> List.map (fun path -> Api.Query { doc; path; texts }) paths)
                [ "a"; "b"; "c" ])
            [ false; true ]
        in
        (* Cold per request: the service-time profile models steady-state
           traffic, and every request does real simulated I/O. *)
        let measured =
          List.concat_map
            (fun req ->
              cold serve_sess;
              Traffic.measure server ~tenant:"t" [ req ])
            reqs
        in
        (* Differential half: the loopback answers match a direct twin. *)
        List.iter2
          (fun req (resp, service_ms) ->
            let direct = Natix.Session.exec twin req in
            if Api.encode_response resp <> Api.encode_response direct then
              Alcotest.failf "%a: served differs from direct" Api.pp_request req;
            Alcotest.(check bool) "positive service time" true (service_ms > 0.))
          reqs measured;
        let service = Array.of_list (List.map snd measured) in
        let capacity = 2 and queue_depth = 3 in
        let sat = Traffic.saturation ~capacity service in
        Alcotest.(check bool) "finite saturation" true (Float.is_finite sat && sat > 0.);
        List.iter
          (fun mult ->
            let p = Traffic.simulate ~capacity ~queue_depth ~rate:(sat *. mult) service in
            Alcotest.(check int) "conservation" p.Traffic.offered
              (p.Traffic.completed + p.Traffic.shed);
            Alcotest.(check bool) "sheds at overload" true (p.Traffic.shed > 0);
            Alcotest.(check bool) "bounded queue" true (p.Traffic.max_queue <= queue_depth))
          [ 2.; 4. ];
        Server.shutdown server;
        Natix.Session.close serve_sess;
        Natix.Session.close twin);
  ]

let suites =
  [
    ("server.codec", codec_tests);
    ("server.protocol", protocol_tests);
    ("server.exec", exec_tests);
    ("server.differential", differential_tests);
    ("server.faults", fault_tests);
    ("server.admission", admission_tests);
    ("server.tenants", tenant_tests);
    ("server.socket", socket_tests);
    ("server.traffic", traffic_tests);
  ]
