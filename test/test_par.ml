(* Randomized differential harness for the parallel executor.

   The executor's contract is that parallelism is unobservable: for any
   document set and query batch, running at jobs ∈ {1, 2, 4} over one
   shared store yields byte-identical rendered results (including
   per-task typed errors), identical reads/writes/total_ios deltas (the
   schedule-independent counters — every distinct page is read exactly
   once into the shared pool, concurrent misses coalesce on the frame
   latch), and a store that still passes fsck.  A seeded PRNG generates
   the corpora and batches so the sweep covers many shapes
   reproducibly; NATIX_PAR_SEEDS overrides the seed count (default 20).

   The stress case runs the scan executor at 4 domains over a deliberately
   small scan-resistant pool with the lock-rank checker on: no
   All_frames_pinned, no rank violations, all pins released, and the
   miss/read-ahead accounting consistent afterwards. *)

open Natix_core
open Natix_workload
module Par = Natix_par.Par
module Io_stats = Natix_store.Io_stats
module Buffer_pool = Natix_store.Buffer_pool
module Disk = Natix_store.Disk
module Lock_rank = Natix_store.Lock_rank

let seeds =
  match Sys.getenv_opt "NATIX_PAR_SEEDS" with Some s -> int_of_string s | None -> 20

(* Small pages and a small buffer so even tiny corpora do real I/O and
   eviction under contention. *)
let config () =
  { (Config.default ()) with Config.page_size = 1024; buffer_bytes = 16 * 1024 }

let gen_params ~plays ~seed =
  {
    Shakespeare.plays;
    seed;
    acts_per_play = 2;
    scenes_per_act = (1, 2);
    speeches_per_scene = (2, 4);
    lines_per_speech = (1, 3);
    words_per_line = (3, 6);
    personae = (2, 3);
    stagedir_every = 3;
  }

let gen_corpus rng ~plays ~seed =
  let params = gen_params ~plays ~seed in
  List.init plays (fun i ->
      (Printf.sprintf "play-%d" i, Shakespeare.generate_play params rng i))

let path_pool =
  [|
    "//SPEAKER";
    "//LINE";
    "/ACT[1]/SCENE[1]/SPEECH[1]";
    "//ACT[2]//SPEAKER";
    "//PERSONA";
    "//STAGEDIR";
    "//SPEECH[2]/LINE[1]";
    "/ACT/SCENE/SPEECH[1]";
    "//";
    (* stays a syntax error: error values must be deterministic too *)
  |]

let gen_tasks rng docs =
  let n = 4 + Natix_util.Prng.int rng 8 in
  List.init n (fun _ ->
      let doc =
        (* occasionally an unknown document: Error (Storage _) results
           must survive the differential comparison like any hit list *)
        if Natix_util.Prng.int rng 8 = 0 then "nosuch"
        else List.nth docs (Natix_util.Prng.int rng (List.length docs))
      in
      (doc, path_pool.(Natix_util.Prng.int rng (Array.length path_pool))))

(* Cold-cache batch run: identical starting state for every job count. *)
let run_batch store ~jobs tasks =
  Tree_store.clear_buffers store;
  let io = Tree_store.io_stats store in
  let before = Io_stats.copy io in
  let outcome = Par.run_queries ~jobs store tasks in
  (outcome, Io_stats.diff (Io_stats.copy io) before)

let check_io_equal ~what (a : Io_stats.t) (b : Io_stats.t) =
  Alcotest.(check int) (what ^ ": reads") a.Io_stats.reads b.Io_stats.reads;
  Alcotest.(check int) (what ^ ": writes") a.Io_stats.writes b.Io_stats.writes;
  Alcotest.(check int) (what ^ ": total_ios") (Io_stats.total_ios a) (Io_stats.total_ios b)

let differential () =
  let busiest = ref 0 in
  for seed = 1 to seeds do
    let rng = Natix_util.Prng.create ~seed:(Int64.of_int (0xBEEF + seed)) in
    let plays = 2 + Natix_util.Prng.int rng 3 in
    let corpus = gen_corpus rng ~plays ~seed:(Int64.of_int seed) in
    let store = Tree_store.in_memory ~config:(config ()) () in
    List.iter (fun (name, play) -> ignore (Loader.load store ~name play)) corpus;
    Tree_store.sync store;
    let tasks = gen_tasks rng (List.map fst corpus) in
    let ref_outcome, ref_io = run_batch store ~jobs:1 tasks in
    List.iter
      (fun jobs ->
        let outcome, io = run_batch store ~jobs tasks in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d jobs %d: results byte-identical" seed jobs)
          true
          (outcome.Par.results = ref_outcome.Par.results);
        check_io_equal ~what:(Printf.sprintf "seed %d jobs %d" seed jobs) ref_io io;
        if jobs = 4 then
          busiest :=
            max !busiest
              (List.length
                 (List.filter (fun ws -> ws.Par.io.Io_stats.reads > 0) outcome.Par.workers)))
      [ 2; 4 ];
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fsck clean after parallel runs" seed)
      true
      (Fsck.ok (Fsck.run store))
  done;
  (* The point of the exercise: page reads actually served from several
     domains, not one worker dragging the whole batch.  The per-seed
     batches are small enough that one worker can drain them before its
     siblings finish spawning, so when none of them spread, decide on a
     batch heavy enough that they must. *)
  if !busiest < 2 then begin
    let params =
      {
        (gen_params ~plays:6 ~seed:99L) with
        Shakespeare.acts_per_play = 3;
        speeches_per_scene = (4, 6);
        lines_per_speech = (2, 4);
      }
    in
    let rng = Natix_util.Prng.create ~seed:0xAC71AL in
    let corpus =
      List.init params.Shakespeare.plays (fun i ->
          (Printf.sprintf "play-%d" i, Shakespeare.generate_play params rng i))
    in
    let store = Tree_store.in_memory ~config:(config ()) () in
    List.iter (fun (name, play) -> ignore (Loader.load store ~name play)) corpus;
    Tree_store.sync store;
    let tasks =
      List.concat_map
        (fun (name, _) ->
          List.map (fun p -> (name, p)) [ "//LINE"; "//SPEAKER"; "//SPEECH[2]/LINE[1]" ])
        corpus
    in
    let tasks = tasks @ tasks @ tasks in
    let outcome, _ = run_batch store ~jobs:4 tasks in
    busiest :=
      List.length (List.filter (fun ws -> ws.Par.io.Io_stats.reads > 0) outcome.Par.workers)
  end;
  Alcotest.(check bool) "jobs=4: >= 2 domains accumulated reads" true (!busiest >= 2)

let load_differential () =
  let rng = Natix_util.Prng.create ~seed:0x10ADL in
  let corpus = gen_corpus rng ~plays:5 ~seed:7L in
  let files =
    List.map (fun (name, play) -> (name, Natix_xml.Xml_print.to_string ~decl:true play)) corpus
  in
  let state_of store =
    Tree_store.list_documents store
    |> List.sort compare
    |> List.map (fun name ->
           (name, Natix_xml.Xml_print.to_string (Option.get (Exporter.document_to_xml store name))))
  in
  let build jobs =
    let store = Tree_store.in_memory ~config:(config ()) () in
    let dm = Document_manager.create ~index:Document_manager.Off store in
    let outcome = Par.load_files ~jobs dm files in
    List.iter
      (function
        | Ok () -> ()
        | Error e -> Alcotest.failf "load at jobs=%d failed: %s" jobs (Error.to_string e))
      outcome.Par.results;
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d: fsck clean after bulk load" jobs)
      true
      (Fsck.ok (Fsck.run store));
    state_of store
  in
  let reference = build 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: loaded store byte-identical to sequential" jobs)
        true
        (build jobs = reference))
    [ 2; 4 ];
  (* A parse failure surfaces as a per-task error without poisoning the
     rest of the batch, at any job count. *)
  let with_bad = ("broken", "<oops") :: files in
  List.iter
    (fun jobs ->
      let store = Tree_store.in_memory ~config:(config ()) () in
      let dm = Document_manager.create ~index:Document_manager.Off store in
      let outcome = Par.load_files ~jobs dm with_bad in
      (match outcome.Par.results with
      | Error (Error.Parse _) :: rest ->
        List.iter
          (function
            | Ok () -> () | Error e -> Alcotest.failf "good file failed: %s" (Error.to_string e))
          rest
      | _ -> Alcotest.fail "parse failure not reported as Error (Parse _) in task order");
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: bad file loads rest" jobs)
        true
        (state_of store = reference))
    [ 1; 4 ]

(* Concurrent readers during a scan, over a pool small enough to evict
   constantly, with read-ahead and segmented LRU on and the lock-rank
   checker armed. *)
let scan_stress () =
  let config =
    {
      (Config.default ()) with
      Config.page_size = 1024;
      buffer_bytes = 16 * 1024;
      read_ahead = 8;
      scan_resistant = true;
    }
  in
  let store = Tree_store.in_memory ~config () in
  let rng = Natix_util.Prng.create ~seed:0x5CA4L in
  let corpus = gen_corpus rng ~plays:6 ~seed:21L in
  List.iter (fun (name, play) -> ignore (Loader.load store ~name play)) corpus;
  Tree_store.sync store;
  let pool = Tree_store.buffer_pool store in
  let reference = Par.scan_all ~jobs:1 store in
  Tree_store.clear_buffers store;
  let fixes0 = Buffer_pool.fixes pool and misses0 = Buffer_pool.misses pool in
  let io = Tree_store.io_stats store in
  let before = Io_stats.copy io in
  Lock_rank.enable ();
  let violations0 = Lock_rank.violations () in
  let outcome =
    match Par.scan_all ~jobs:4 store with
    | outcome -> outcome
    | exception Buffer_pool.All_frames_pinned ->
      Lock_rank.disable ();
      Alcotest.fail "scan stress: All_frames_pinned"
  in
  Lock_rank.disable ();
  let delta = Io_stats.diff (Io_stats.copy io) before in
  Alcotest.(check int) "no lock-rank violations" violations0 (Lock_rank.violations ());
  Alcotest.(check bool)
    "scan results identical to jobs=1" true (outcome.Par.results = reference.Par.results);
  Alcotest.(check bool)
    "scans counted nodes" true
    (List.for_all (fun (_, n) -> n > 0) outcome.Par.results);
  (* Frame accounting after the dust settles: every pin released, the
     pool within capacity, and the counters consistent — each miss read
     one page, everything else read came in through read-ahead. *)
  Alcotest.(check int) "all pins released" 0 (Buffer_pool.pinned_frames pool);
  Alcotest.(check bool)
    "resident within capacity" true
    (Buffer_pool.resident pool <= Buffer_pool.capacity pool);
  let misses = Buffer_pool.misses pool - misses0 in
  Alcotest.(check int)
    "reads = misses + read-ahead pages" delta.Io_stats.reads
    (misses + delta.Io_stats.read_ahead_pages);
  Alcotest.(check bool)
    "fixes cover misses" true (Buffer_pool.fixes pool - fixes0 >= misses);
  Alcotest.(check bool) "fsck clean after stress" true (Fsck.ok (Fsck.run store))

let reset_rejected () =
  let store = Tree_store.in_memory ~config:(config ()) () in
  let pool = Tree_store.buffer_pool store in
  let disk = Buffer_pool.disk pool in
  Disk.enter_parallel_region disk;
  (match Tree_store.reset_io_stats store with
  | () -> Alcotest.fail "reset_io_stats accepted during an active parallel region"
  | exception Error.Error (Error.Storage _) -> ()
  | exception e ->
    Alcotest.failf "expected Error (Storage _), got %s" (Printexc.to_string e));
  (match Buffer_pool.reset_stats pool with
  | () -> Alcotest.fail "Buffer_pool.reset_stats accepted during an active parallel region"
  | exception Invalid_argument _ -> ());
  Disk.exit_parallel_region disk;
  (* With the region gone both resets work again. *)
  Tree_store.reset_io_stats store;
  Alcotest.(check int) "stats reset" 0 (Tree_store.io_stats store).Io_stats.reads

(* Scan regions are a refcount, not a saved/restored flag: one region
   exiting while another domain is still mid-scan must leave scan mode
   on, and it must be off once the last region exits.  The stages force
   the exact interleaving that broke save/restore (A enters, B enters, A
   exits, B observes). *)
let scan_refcount () =
  let store = Tree_store.in_memory ~config:(config ()) () in
  let pool = Tree_store.buffer_pool store in
  let stage = Atomic.make 0 in
  let wait n = while Atomic.get stage < n do Domain.cpu_relax () done in
  let a =
    Domain.spawn (fun () ->
        Buffer_pool.with_scan pool (fun () ->
            Atomic.incr stage;
            wait 2);
        Atomic.incr stage)
  in
  let b =
    Domain.spawn (fun () ->
        wait 1;
        Buffer_pool.with_scan pool (fun () ->
            Atomic.incr stage;
            wait 3;
            Buffer_pool.scan_mode pool))
  in
  let still_on = Domain.join b in
  Domain.join a;
  Alcotest.(check bool) "scan mode survives the first region's exit" true still_on;
  Alcotest.(check bool) "scan mode off after the last region" false (Buffer_pool.scan_mode pool)

let deque_semantics () =
  let d = Natix_par.Deque.create ~capacity:3 in
  Alcotest.(check bool) "push 1" true (Natix_par.Deque.push d 1);
  Alcotest.(check bool) "push 2" true (Natix_par.Deque.push d 2);
  Alcotest.(check bool) "push 3" true (Natix_par.Deque.push d 3);
  Alcotest.(check bool) "bounded: 4th push refused" false (Natix_par.Deque.push d 4);
  Alcotest.(check (option int)) "thief takes the oldest" (Some 1) (Natix_par.Deque.steal d);
  Alcotest.(check (option int)) "owner takes the newest" (Some 3) (Natix_par.Deque.pop d);
  Alcotest.(check bool) "slot freed" true (Natix_par.Deque.push d 5);
  Alcotest.(check (option int)) "fifo continues" (Some 2) (Natix_par.Deque.steal d);
  Alcotest.(check (option int)) "lifo continues" (Some 5) (Natix_par.Deque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Natix_par.Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Natix_par.Deque.steal d);
  Alcotest.(check int) "length" 0 (Natix_par.Deque.length d)

let suites =
  [
    ( "par.differential",
      [
        Alcotest.test_case
          (Printf.sprintf "queries identical at jobs 1/2/4 across %d seeds" seeds)
          `Slow differential;
        Alcotest.test_case "parallel bulk load matches sequential" `Quick load_differential;
      ] );
    ( "par.runtime",
      [
        Alcotest.test_case "scan stress: small scan-resistant pool, 4 domains" `Quick scan_stress;
        Alcotest.test_case "reset_stats rejected inside a parallel region" `Quick reset_rejected;
        Alcotest.test_case "scan regions refcount across domains" `Quick scan_refcount;
        Alcotest.test_case "deque: owner LIFO, thief FIFO, bounded" `Quick deque_semantics;
      ] );
  ]
