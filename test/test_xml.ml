(* Tests for the XML substrate: lexer, parser, printer, tree utilities and
   DTD inference/validation. *)

open Natix_xml

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let tree = Alcotest.testable Xml_tree.pp Xml_tree.equal

let lexer_tests =
  let events s = Xml_lexer.all s in
  [
    Alcotest.test_case "element with text" `Quick (fun () ->
        match events "<a>hi</a>" with
        | [ Xml_event.Start_element { name = "a"; attrs = [] }; Text "hi"; End_element "a" ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "attributes in both quote styles" `Quick (fun () ->
        match events {|<a x="1" y='two'/>|} with
        | [ Xml_event.Start_element { name = "a"; attrs = [ ("x", "1"); ("y", "two") ] };
            End_element "a" ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "entities resolved" `Quick (fun () ->
        match events "<a>&lt;&amp;&gt;&quot;&apos;</a>" with
        | [ _; Xml_event.Text "<&>\"'"; _ ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "numeric character references" `Quick (fun () ->
        match events "<a>&#65;&#x42;</a>" with
        | [ _; Xml_event.Text "AB"; _ ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "comments, PIs and DOCTYPE are skipped" `Quick (fun () ->
        match
          events
            "<?xml version=\"1.0\"?><!DOCTYPE play [ <!ELEMENT a (b)> ]><!-- note --><a>x</a>"
        with
        | [ Xml_event.Start_element { name = "a"; _ }; Text "x"; End_element "a" ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "CDATA passes through verbatim" `Quick (fun () ->
        match events "<a><![CDATA[<not> & markup]]></a>" with
        | [ _; Xml_event.Text "<not> & markup"; _ ] -> ()
        | evs -> Alcotest.failf "unexpected events: %a" Fmt.(list Xml_event.pp) evs);
    Alcotest.test_case "unknown entity is an error" `Quick (fun () ->
        match events "<a>&nope;</a>" with
        | exception Xml_lexer.Error _ -> ()
        | _ -> Alcotest.fail "expected a lexer error");
    Alcotest.test_case "error carries line numbers" `Quick (fun () ->
        match events "<a>\n\n  <1bad/></a>" with
        | exception Xml_lexer.Error { line = 3; _ } -> ()
        | exception Xml_lexer.Error { line; _ } -> Alcotest.failf "wrong line %d" line
        | _ -> Alcotest.fail "expected a lexer error");
  ]

let parser_tests =
  [
    Alcotest.test_case "builds nested tree" `Quick (fun () ->
        let t = Xml_parser.parse "<a><b>x</b><c/></a>" in
        Alcotest.check tree "tree"
          (Xml_tree.element "a"
             [ Xml_tree.element "b" [ Xml_tree.text "x" ]; Xml_tree.element "c" [] ])
          t);
    Alcotest.test_case "whitespace-only text dropped by default" `Quick (fun () ->
        let t = Xml_parser.parse "<a>\n  <b/>\n</a>" in
        Alcotest.check tree "tree" (Xml_tree.element "a" [ Xml_tree.element "b" [] ]) t);
    Alcotest.test_case "keep_ws preserves whitespace" `Quick (fun () ->
        match Xml_parser.parse ~keep_ws:true "<a> <b/></a>" with
        | Xml_tree.Element { children = [ Xml_tree.Text " "; Xml_tree.Element _ ]; _ } -> ()
        | t -> Alcotest.failf "unexpected: %a" Xml_tree.pp t);
    Alcotest.test_case "mismatched tags rejected" `Quick (fun () ->
        match Xml_parser.parse "<a><b></a></b>" with
        | exception Xml_parser.Error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "unclosed element rejected" `Quick (fun () ->
        match Xml_parser.parse "<a><b>" with
        | exception Xml_parser.Error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "multiple roots rejected" `Quick (fun () ->
        match Xml_parser.parse "<a/><b/>" with
        | exception Xml_parser.Error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "empty input rejected" `Quick (fun () ->
        match Xml_parser.parse "   " with
        | exception Xml_parser.Error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
  ]

(* Random tree generator for roundtrip properties. *)
let gen_tree : Xml_tree.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "node" ] in
  let text_str =
    map
      (fun parts -> String.concat " " parts)
      (list_size (int_range 1 5) (oneofl [ "hello"; "world"; "x<y"; "a&b"; "q\"q"; "tail" ]))
  in
  let attrs = list_size (int_bound 2) (pair (oneofl [ "id"; "kind" ]) text_str) in
  (* Attribute names must be unique within one element. *)
  let dedup l = List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l in
  fix
    (fun self depth ->
      if depth = 0 then map Xml_tree.text text_str
      else
        frequency
          [
            (1, map Xml_tree.text text_str);
            ( 3,
              map3
                (fun n a cs -> Xml_tree.element ~attrs:(dedup a) n cs)
                name attrs
                (list_size (int_bound 4) (self (depth - 1))) );
          ])
    3
  |> fun g ->
  (* Roots must be elements; force one. *)
  map2 (fun n cs -> Xml_tree.element n cs) name (list_size (int_bound 4) g)

let print_tests =
  [
    Alcotest.test_case "escaping" `Quick (fun () ->
        let t = Xml_tree.element ~attrs:[ ("q", "a\"b<c") ] "x" [ Xml_tree.text "1<2&3>0" ] in
        Alcotest.(check string) "escaped"
          {|<x q="a&quot;b&lt;c">1&lt;2&amp;3&gt;0</x>|}
          (Xml_print.to_string t));
    Alcotest.test_case "empty element self-closes" `Quick (fun () ->
        Alcotest.(check string) "self-closed" "<x/>" (Xml_print.to_string (Xml_tree.element "x" [])));
    qtest ~count:300 "print/parse roundtrip" gen_tree (fun t ->
        (* Adjacent text children merge in the textual form; normalise both
           sides before comparing. *)
        let rec normalize = function
          | Xml_tree.Text _ as t -> t
          | Xml_tree.Element e ->
            let rec merge = function
              | Xml_tree.Text a :: Xml_tree.Text b :: rest ->
                merge (Xml_tree.Text (a ^ b) :: rest)
              | c :: rest -> normalize c :: merge rest
              | [] -> []
            in
            Xml_tree.element ~attrs:e.attrs e.name (merge e.children)
        in
        Xml_tree.equal (normalize t) (Xml_parser.parse ~keep_ws:true (Xml_print.to_string t)));
    qtest ~count:100 "pretty print reparses to the same element structure" gen_tree (fun t ->
        (* Pretty-printing inserts whitespace, so compare with default
           whitespace dropping; texts with leading/trailing spaces may
           differ, so compare element structure only. *)
        let strip t =
          let rec go = function
            | Xml_tree.Text _ -> None
            | Xml_tree.Element e ->
              Some (Xml_tree.element e.name (List.filter_map go e.children))
          in
          Option.get (go t)
        in
        Xml_tree.equal (strip t) (strip (Xml_parser.parse (Xml_print.to_string_pretty t))));
  ]

let tree_tests =
  let sample =
    Xml_tree.element "PLAY"
      [
        Xml_tree.element "TITLE" [ Xml_tree.text "T" ];
        Xml_tree.element ~attrs:[ ("n", "1") ] "ACT"
          [ Xml_tree.element "SCENE" [ Xml_tree.text "body" ] ];
      ]
  in
  [
    Alcotest.test_case "node_count counts attributes" `Quick (fun () ->
        (* PLAY TITLE "T" ACT @n SCENE "body" = 7 *)
        Alcotest.(check int) "count" 7 (Xml_tree.node_count sample));
    Alcotest.test_case "element_count" `Quick (fun () ->
        Alcotest.(check int) "elements" 4 (Xml_tree.element_count sample));
    Alcotest.test_case "depth" `Quick (fun () ->
        Alcotest.(check int) "depth" 4 (Xml_tree.depth sample));
    Alcotest.test_case "text_content concatenates" `Quick (fun () ->
        Alcotest.(check string) "text" "Tbody" (Xml_tree.text_content sample));
    Alcotest.test_case "child_named / attr" `Quick (fun () ->
        Alcotest.(check bool) "found" true (Xml_tree.child_named sample "ACT" <> None);
        Alcotest.(check (option string)) "attr" (Some "1")
          (Xml_tree.attr (Option.get (Xml_tree.child_named sample "ACT")) "n"));
    Alcotest.test_case "names in first-occurrence order" `Quick (fun () ->
        Alcotest.(check (list string)) "names"
          [ "PLAY"; "TITLE"; "ACT"; "@n"; "SCENE" ]
          (Xml_tree.names sample));
  ]

let dtd_tests =
  let sample =
    Xml_parser.parse "<PLAY><TITLE>t</TITLE><ACT><TITLE>a</TITLE><SCENE>s</SCENE></ACT></PLAY>"
  in
  [
    Alcotest.test_case "infer accepts its own tree" `Quick (fun () ->
        let dtd = Dtd.infer ~name:"play" sample in
        (match Dtd.validate dtd sample with
        | Ok () -> ()
        | Error e -> Alcotest.failf "unexpected: %s" e);
        Alcotest.(check (list string)) "alphabet"
          [ "PLAY"; "TITLE"; "ACT"; "SCENE" ]
          (Dtd.alphabet dtd));
    Alcotest.test_case "validation rejects undeclared element" `Quick (fun () ->
        let dtd = Dtd.infer ~name:"play" sample in
        let bad = Xml_parser.parse "<PLAY><EPILOGUE/></PLAY>" in
        match Dtd.validate dtd bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation error");
    Alcotest.test_case "validation rejects wrong child" `Quick (fun () ->
        let dtd = Dtd.create ~name:"d" in
        Dtd.declare dtd "a" (Dtd.Children_of [ "b" ]);
        Dtd.declare dtd "b" Dtd.Pcdata_only;
        (match Dtd.validate dtd (Xml_parser.parse "<a><b>x</b></a>") with
        | Ok () -> ()
        | Error e -> Alcotest.failf "unexpected: %s" e);
        match Dtd.validate dtd (Xml_parser.parse "<a><a/></a>") with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation error");
    Alcotest.test_case "Empty and Mixed specs" `Quick (fun () ->
        let dtd = Dtd.create ~name:"d" in
        Dtd.declare dtd "hr" Dtd.Empty;
        Dtd.declare dtd "p" (Dtd.Mixed [ "hr" ]);
        (match Dtd.validate dtd (Xml_parser.parse "<p>text<hr/>more</p>") with
        | Ok () -> ()
        | Error e -> Alcotest.failf "unexpected: %s" e);
        match Dtd.validate dtd (Xml_parser.parse "<p><hr>x</hr></p>") with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "hr must be empty");
  ]

let suites =
  [
    ("xml.lexer", lexer_tests);
    ("xml.parser", parser_tests);
    ("xml.print", print_tests);
    ("xml.tree", tree_tests);
    ("xml.dtd", dtd_tests);
  ]
