(* Tests for the workload substrate: corpus generator, queries and the
   measurement harness.  Small scales keep the suite fast. *)

open Natix_workload

let small_params = { Shakespeare.default_params with Shakespeare.plays = 2 }

let shakespeare_tests =
  [
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        let a = Shakespeare.generate small_params in
        let b = Shakespeare.generate small_params in
        Alcotest.(check bool) "equal corpora" true
          (List.for_all2 Natix_xml.Xml_tree.equal a b));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Shakespeare.generate small_params in
        let b = Shakespeare.generate { small_params with Shakespeare.seed = 99L } in
        Alcotest.(check bool) "corpora differ" false
          (List.for_all2 Natix_xml.Xml_tree.equal a b));
    Alcotest.test_case "structure matches the plays' schema" `Quick (fun () ->
        let play = List.hd (Shakespeare.generate small_params) in
        (match play with
        | Natix_xml.Xml_tree.Element { name = "PLAY"; _ } -> ()
        | _ -> Alcotest.fail "root must be PLAY");
        let acts = Natix_xml.Xml_tree.children_named play "ACT" in
        Alcotest.(check int) "five acts" 5 (List.length acts);
        List.iter
          (fun act ->
            let scenes = Natix_xml.Xml_tree.children_named act "SCENE" in
            let n = List.length scenes in
            if n < 3 || n > 6 then Alcotest.failf "scene count %d out of range" n;
            List.iter
              (fun scene ->
                match Natix_xml.Xml_tree.child_named scene "SPEECH" with
                | Some _ -> ()
                | None -> Alcotest.fail "scene without speeches")
              scenes)
          acts);
    Alcotest.test_case "paper-scale corpus matches §4.1" `Slow (fun () ->
        let corpus = Shakespeare.generate Shakespeare.default_params in
        let nodes, bytes = Shakespeare.corpus_measure corpus in
        Alcotest.(check int) "37 plays" 37 (List.length corpus);
        if nodes < 280_000 || nodes > 360_000 then Alcotest.failf "node count %d off" nodes;
        if bytes < 7_000_000 || bytes > 9_500_000 then Alcotest.failf "byte count %d off" bytes);
    Alcotest.test_case "scaled keeps at least one play" `Quick (fun () ->
        Alcotest.(check int) "one play" 1 (Shakespeare.scaled 0.001).Shakespeare.plays;
        Alcotest.(check int) "full" 37 (Shakespeare.scaled 1.0).Shakespeare.plays);
  ]

let tiny_corpus = Shakespeare.generate { small_params with Shakespeare.plays = 1 }

let queries_tests =
  let built = Harness.build ~page_size:2048 { Harness.matrix = Native; order = Preorder } tiny_corpus in
  let store = built.Harness.store and docs = built.Harness.docs in
  [
    Alcotest.test_case "full traversal counts every logical node" `Quick (fun () ->
        let expected =
          List.fold_left (fun n p -> n + Natix_xml.Xml_tree.node_count p) 0 tiny_corpus
        in
        Alcotest.(check int) "nodes" expected (Queries.full_traversal store ~docs));
    Alcotest.test_case "q1 finds the speakers of act 3 scene 2" `Quick (fun () ->
        let speakers = Queries.q1 store ~docs in
        Alcotest.(check bool) "non-empty" true (speakers <> []);
        (* cross-check against the source tree *)
        let play = List.hd tiny_corpus in
        let acts = Natix_xml.Xml_tree.children_named play "ACT" in
        let act3 = List.nth acts 2 in
        let scene2 = List.nth (Natix_xml.Xml_tree.children_named act3 "SCENE") 1 in
        let expected =
          List.concat_map
            (fun speech -> List.map Natix_xml.Xml_tree.text_content
                (Natix_xml.Xml_tree.children_named speech "SPEAKER"))
            (Natix_xml.Xml_tree.children_named scene2 "SPEECH")
        in
        Alcotest.(check (list string)) "speakers" expected speakers);
    Alcotest.test_case "q2 returns one speech per scene" `Quick (fun () ->
        let play = List.hd tiny_corpus in
        let scene_count =
          List.fold_left
            (fun n act -> n + List.length (Natix_xml.Xml_tree.children_named act "SCENE"))
            0
            (Natix_xml.Xml_tree.children_named play "ACT")
        in
        let speeches = Queries.q2 store ~docs in
        Alcotest.(check int) "count" scene_count (List.length speeches);
        List.iter
          (fun s ->
            if not (String.length s > 13 && String.sub s 0 8 = "<SPEECH>") then
              Alcotest.failf "not a serialized speech: %s" (String.sub s 0 (min 40 (String.length s))))
          speeches);
    Alcotest.test_case "q3 returns the opening speech per play" `Quick (fun () ->
        let speeches = Queries.q3 store ~docs in
        Alcotest.(check int) "one per play" (List.length docs) (List.length speeches);
        (* must equal the serialization of the source's opening speech *)
        let play = List.hd tiny_corpus in
        let act1 = List.hd (Natix_xml.Xml_tree.children_named play "ACT") in
        let scene1 = List.hd (Natix_xml.Xml_tree.children_named act1 "SCENE") in
        let speech1 = List.hd (Natix_xml.Xml_tree.children_named scene1 "SPEECH") in
        Alcotest.(check string) "content" (Natix_xml.Xml_print.to_string speech1)
          (List.hd speeches));
  ]

let harness_tests =
  [
    Alcotest.test_case "four series with stable names" `Quick (fun () ->
        Alcotest.(check (list string)) "names"
          [ "1:1 incremental"; "1:n incremental"; "1:1 append"; "1:n append" ]
          (List.map Harness.series_name Harness.all_series));
    Alcotest.test_case "build produces valid documents in every series" `Quick (fun () ->
        List.iter
          (fun series ->
            let built = Harness.build ~page_size:1024 series tiny_corpus in
            List.iter
              (fun d -> Natix_core.Tree_store.check_document built.Harness.store d)
              built.Harness.docs;
            Alcotest.(check int) "documents" (List.length tiny_corpus)
              (List.length built.Harness.docs);
            Alcotest.(check bool) "nodes counted" true (built.Harness.nodes > 0);
            Alcotest.(check bool) "disk used" true (built.Harness.disk_bytes > 0))
          Harness.all_series);
    Alcotest.test_case "1:n uses less disk than 1:1" `Quick (fun () ->
        let one = Harness.build ~page_size:2048 { Harness.matrix = One_to_one; order = Preorder } tiny_corpus in
        let nat = Harness.build ~page_size:2048 { Harness.matrix = Native; order = Preorder } tiny_corpus in
        Alcotest.(check bool) "space advantage" true
          (nat.Harness.disk_bytes < one.Harness.disk_bytes));
    Alcotest.test_case "measure clears buffers and reports I/O" `Quick (fun () ->
        let built = Harness.build ~page_size:1024 { Harness.matrix = Native; order = Preorder } tiny_corpus in
        let n, io = Harness.measure built (fun () -> Queries.full_traversal built.Harness.store ~docs:built.Harness.docs) in
        Alcotest.(check bool) "visited nodes" true (n > 0);
        Alcotest.(check bool) "reads charged after clear" true (io.Natix_store.Io_stats.reads > 0);
        (* a second identical measurement must re-pay the reads *)
        let _, io2 = Harness.measure built (fun () -> Queries.full_traversal built.Harness.store ~docs:built.Harness.docs) in
        Alcotest.(check int) "same cold reads" io.Natix_store.Io_stats.reads io2.Natix_store.Io_stats.reads);
  ]

let suites =
  [
    ("workload.shakespeare", shakespeare_tests);
    ("workload.queries", queries_tests);
    ("workload.harness", harness_tests);
  ]
