(* Tests for natix_util and natix_store: byte utilities, RIDs, the page
   store, buffer pool, slotted pages, free-space inventory and the record
   manager (including forwarding). *)

open Natix_util
open Natix_store

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Utilities                                                           *)

let bytes_util_tests =
  let roundtrip_u name set get bound =
    qtest name QCheck2.Gen.(pair (int_bound bound) (int_bound 100)) (fun (v, off) ->
        let b = Bytes.make 120 '\xaa' in
        set b off v;
        get b off = v)
  in
  [
    roundtrip_u "u8 roundtrip" Bytes_util.set_u8 Bytes_util.get_u8 0xff;
    roundtrip_u "u16 roundtrip" Bytes_util.set_u16 Bytes_util.get_u16 0xffff;
    roundtrip_u "u32 roundtrip" Bytes_util.set_u32 Bytes_util.get_u32 0xffffffff;
    roundtrip_u "u48 roundtrip" Bytes_util.set_u48 Bytes_util.get_u48 0xffffffffffff;
    qtest "f64 roundtrip" QCheck2.Gen.float (fun v ->
        let b = Bytes.create 8 in
        Bytes_util.set_f64 b 0 v;
        let v' = Bytes_util.get_f64 b 0 in
        (Float.is_nan v && Float.is_nan v') || v = v');
    Alcotest.test_case "u16 is little-endian" `Quick (fun () ->
        let b = Bytes.create 2 in
        Bytes_util.set_u16 b 0 0x1234;
        Alcotest.(check int) "low byte first" 0x34 (Char.code (Bytes.get b 0)));
  ]

let rid_tests =
  [
    qtest "rid roundtrip"
      QCheck2.Gen.(pair (int_bound 0xffffffffff) (int_bound 0xfffe))
      (fun (page, slot) ->
        let rid = Rid.make ~page ~slot in
        let b = Bytes.create Rid.encoded_size in
        Rid.write b 0 rid;
        Rid.equal (Rid.read b 0) rid);
    Alcotest.test_case "null rid" `Quick (fun () ->
        Alcotest.(check bool) "null is null" true (Rid.is_null Rid.null);
        Alcotest.(check bool) "ordinary is not null" false
          (Rid.is_null (Rid.make ~page:0 ~slot:0));
        let b = Bytes.create 8 in
        Rid.write b 0 Rid.null;
        Alcotest.(check bool) "null roundtrips" true (Rid.is_null (Rid.read b 0)));
    Alcotest.test_case "compare orders by page then slot" `Quick (fun () ->
        let a = Rid.make ~page:1 ~slot:9 and b = Rid.make ~page:2 ~slot:0 in
        Alcotest.(check bool) "page dominates" true (Rid.compare a b < 0);
        let c = Rid.make ~page:1 ~slot:10 in
        Alcotest.(check bool) "slot breaks ties" true (Rid.compare a c < 0));
  ]

let name_pool_tests =
  [
    Alcotest.test_case "reserved labels" `Quick (fun () ->
        let p = Name_pool.create () in
        Alcotest.(check string) "scaffold" "#scaffold" (Name_pool.name p Label.scaffold);
        Alcotest.(check string) "pcdata" "#pcdata" (Name_pool.name p Label.pcdata);
        Alcotest.(check int) "initial size" 2 (Name_pool.size p));
    Alcotest.test_case "intern is idempotent" `Quick (fun () ->
        let p = Name_pool.create () in
        let a = Name_pool.intern p "SPEECH" in
        let b = Name_pool.intern p "SPEECH" in
        Alcotest.(check int) "same label" a b;
        Alcotest.(check string) "resolves" "SPEECH" (Name_pool.name p a));
    Alcotest.test_case "find on unknown name" `Quick (fun () ->
        let p = Name_pool.create () in
        Alcotest.(check (option int)) "absent" None (Name_pool.find p "nope"));
    qtest "encode/decode roundtrip"
      QCheck2.Gen.(list_size (int_bound 50) (string_size ~gen:printable (int_range 1 20)))
      (fun names ->
        let p = Name_pool.create () in
        (* ':' is the only forbidden character for this simple framing of
           symbol names; it never occurs in XML names anyway. *)
        let names = List.map (String.map (fun c -> if c = ':' then '_' else c)) names in
        let labels = List.map (Name_pool.intern p) names in
        let p' = Name_pool.decode (Name_pool.encode p) in
        Name_pool.size p = Name_pool.size p'
        && List.for_all2 (fun n l -> Name_pool.name p' l = n && Name_pool.find p' n = Some l)
             names labels);
  ]

let prng_tests =
  [
    Alcotest.test_case "deterministic for equal seeds" `Quick (fun () ->
        let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
        done);
    qtest "int stays in bounds"
      QCheck2.Gen.(pair (int_range 1 1_000_000) int)
      (fun (bound, seed) ->
        let g = Prng.create ~seed:(Int64.of_int seed) in
        let v = Prng.int g bound in
        v >= 0 && v < bound);
    qtest "range stays in bounds"
      QCheck2.Gen.(pair (pair (int_range 0 100) (int_range 0 100)) int)
      (fun ((a, b), seed) ->
        let lo = min a b and hi = max a b in
        let g = Prng.create ~seed:(Int64.of_int seed) in
        let v = Prng.range g lo hi in
        v >= lo && v <= hi);
    Alcotest.test_case "float in [0,1)" `Quick (fun () ->
        let g = Prng.create ~seed:7L in
        for _ = 1 to 1000 do
          let f = Prng.float g in
          if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Disk and buffer pool                                                *)

let io_model_tests =
  [
    Alcotest.test_case "sequential access is cheaper" `Quick (fun () ->
        let m = Io_model.dcas_34330w in
        let seq = Io_model.cost m ~page_size:8192 ~sequential:true in
        let rand = Io_model.cost m ~page_size:8192 ~sequential:false in
        Alcotest.(check bool) "seq < rand" true (seq < rand));
    Alcotest.test_case "bigger pages transfer longer" `Quick (fun () ->
        let m = Io_model.dcas_34330w in
        let small = Io_model.cost m ~page_size:2048 ~sequential:false in
        let large = Io_model.cost m ~page_size:32768 ~sequential:false in
        Alcotest.(check bool) "2K < 32K" true (small < large));
    Alcotest.test_case "free model costs nothing" `Quick (fun () ->
        Alcotest.(check (float 0.)) "zero" 0.
          (Io_model.cost Io_model.free ~page_size:32768 ~sequential:false));
  ]

let disk_tests =
  [
    Alcotest.test_case "memory disk roundtrip" `Quick (fun () ->
        let d = Disk.in_memory ~page_size:512 () in
        let ps = Disk.payload_size d in
        Alcotest.(check int) "payload excludes the trailer" (512 - Disk.trailer_size) ps;
        let p0 = Disk.allocate d and p1 = Disk.allocate d in
        Alcotest.(check int) "ids dense" 0 p0;
        Alcotest.(check int) "ids dense" 1 p1;
        let w = Bytes.make ps 'x' in
        Disk.write d p1 w;
        let r = Bytes.create ps in
        Disk.read d p1 r;
        Alcotest.(check bytes) "content" w r;
        Disk.read d p0 r;
        Alcotest.(check bytes) "fresh page zeroed" (Bytes.make ps '\000') r);
    Alcotest.test_case "stats count reads and writes" `Quick (fun () ->
        let d = Disk.in_memory ~page_size:512 () in
        let p = Disk.allocate d in
        let b = Bytes.create (Disk.payload_size d) in
        Disk.write d p b;
        Disk.read d p b;
        Disk.read d p b;
        let s = Disk.stats d in
        Alcotest.(check int) "reads" 2 s.Io_stats.reads;
        Alcotest.(check int) "writes" 1 s.Io_stats.writes;
        Alcotest.(check bool) "time advanced" true (s.Io_stats.sim_ms > 0.));
    Alcotest.test_case "sequential access detected" `Quick (fun () ->
        let d = Disk.in_memory ~page_size:512 () in
        for _ = 1 to 5 do
          ignore (Disk.allocate d)
        done;
        let b = Bytes.create (Disk.payload_size d) in
        for p = 0 to 4 do
          Disk.read d p b
        done;
        let s = Disk.stats d in
        (* First read of page 0 is random, the four others sequential. *)
        Alcotest.(check int) "sequential reads" 4 s.Io_stats.sequential_reads);
    Alcotest.test_case "out-of-bounds read rejected" `Quick (fun () ->
        let d = Disk.in_memory ~page_size:512 () in
        Alcotest.check_raises "invalid page"
          (Invalid_argument "Disk: page 3 out of bounds (count 0)") (fun () ->
            Disk.read d 3 (Bytes.create (Disk.payload_size d))));
    Alcotest.test_case "file disk persists across reopen" `Quick (fun () ->
        let path = Filename.temp_file "natix" ".db" in
        let d = Disk.on_file ~page_size:256 path in
        let ps = Disk.payload_size d in
        let p = Disk.allocate d in
        let w = Bytes.make ps 'z' in
        Disk.write d p w;
        Disk.close d;
        let d2 = Disk.on_file ~page_size:256 path in
        Alcotest.(check int) "page count" 1 (Disk.page_count d2);
        let r = Bytes.create ps in
        Disk.read d2 p r;
        Alcotest.(check bytes) "content survived" w r;
        Disk.close d2;
        Sys.remove path);
    Alcotest.test_case "file disk rejects wrong page size" `Quick (fun () ->
        let path = Filename.temp_file "natix" ".db" in
        let d = Disk.on_file ~page_size:256 path in
        Disk.close d;
        (match Disk.on_file ~page_size:512 path with
        | exception Disk.Bad_page { page = -1; _ } -> ()
        | _ -> Alcotest.fail "expected Bad_page");
        Sys.remove path);
  ]

let pool_tests =
  let make ?(pages = 4) ?(page_size = 256) () =
    let d = Disk.in_memory ~page_size () in
    let pool = Buffer_pool.create ~disk:d ~bytes:(pages * page_size) () in
    (d, pool)
  in
  [
    Alcotest.test_case "hits avoid disk reads" `Quick (fun () ->
        let d, pool = make () in
        let p = Disk.allocate d in
        Buffer_pool.with_page pool p (fun _ -> ());
        Buffer_pool.with_page pool p (fun _ -> ());
        Alcotest.(check int) "one miss" 1 (Buffer_pool.misses pool);
        Alcotest.(check int) "one disk read" 1 (Disk.stats d).Io_stats.reads);
    Alcotest.test_case "eviction writes dirty page back" `Quick (fun () ->
        let d, pool = make ~pages:2 () in
        let pids = List.init 4 (fun _ -> Disk.allocate d) in
        (match pids with
        | p0 :: _ ->
          Buffer_pool.with_page pool p0 (fun f ->
              Bytes.set f.Buffer_pool.data 0 '!';
              Buffer_pool.mark_dirty pool f)
        | [] -> assert false);
        (* Touch enough other pages to evict p0. *)
        List.iter (fun p -> Buffer_pool.with_page pool p (fun _ -> ())) (List.tl pids);
        let b = Bytes.create (Disk.payload_size d) in
        Disk.read d 0 b;
        Alcotest.(check char) "dirty byte reached disk" '!' (Bytes.get b 0));
    Alcotest.test_case "clear flushes and empties" `Quick (fun () ->
        let d, pool = make () in
        let p = Disk.allocate d in
        Buffer_pool.with_page pool p (fun f ->
            Bytes.set f.Buffer_pool.data 1 '?';
            Buffer_pool.mark_dirty pool f);
        Buffer_pool.clear pool;
        Alcotest.(check int) "empty" 0 (Buffer_pool.resident pool);
        let b = Bytes.create (Disk.payload_size d) in
        Disk.read d p b;
        Alcotest.(check char) "flushed" '?' (Bytes.get b 1));
    Alcotest.test_case "pinned frames cannot be evicted" `Quick (fun () ->
        let d, pool = make ~pages:2 () in
        let pids = List.init 3 (fun _ -> Disk.allocate d) in
        let frames = List.map (Buffer_pool.fix pool) (List.filteri (fun i _ -> i < 2) pids) in
        (match Buffer_pool.fix pool (List.nth pids 2) with
        | exception Buffer_pool.All_frames_pinned -> ()
        | _ -> Alcotest.fail "expected all-pinned failure");
        List.iter (Buffer_pool.unfix pool) frames);
    Alcotest.test_case "fix_new avoids the disk read" `Quick (fun () ->
        let d, pool = make () in
        let p = Disk.allocate d in
        let f = Buffer_pool.fix_new pool p in
        Buffer_pool.unfix pool f;
        Alcotest.(check int) "no reads" 0 (Disk.stats d).Io_stats.reads);
    Alcotest.test_case "LRU evicts the coldest page" `Quick (fun () ->
        let d, pool = make ~pages:2 () in
        let pids = List.init 3 (fun _ -> Disk.allocate d) in
        let p0 = List.nth pids 0 and p1 = List.nth pids 1 and p2 = List.nth pids 2 in
        Buffer_pool.with_page pool p0 (fun _ -> ());
        Buffer_pool.with_page pool p1 (fun _ -> ());
        Buffer_pool.with_page pool p0 (fun _ -> ());
        (* p1 is now LRU; fixing p2 must evict p1, keeping p0 resident. *)
        Buffer_pool.with_page pool p2 (fun _ -> ());
        let misses = Buffer_pool.misses pool in
        Buffer_pool.with_page pool p0 (fun _ -> ());
        Alcotest.(check int) "p0 still resident" misses (Buffer_pool.misses pool));
  ]

(* ------------------------------------------------------------------ *)
(* Slotted pages                                                       *)

let page_of_size n =
  let b = Bytes.create n in
  Slotted_page.format b;
  b

let slotted_page_tests =
  [
    Alcotest.test_case "insert then read" `Quick (fun () ->
        let b = page_of_size 512 in
        let s = Option.get (Slotted_page.insert b "hello world" Slotted_page.no_flags) in
        let off, len, flags = Slotted_page.read b s in
        Alcotest.(check string) "content" "hello world" (Bytes.sub_string b off len);
        Alcotest.(check bool) "no flags" false flags.Slotted_page.forward;
        Slotted_page.check b);
    Alcotest.test_case "delete frees space and slot" `Quick (fun () ->
        let b = page_of_size 512 in
        let s0 = Option.get (Slotted_page.insert b "aaaa" Slotted_page.no_flags) in
        let s1 = Option.get (Slotted_page.insert b "bbbb" Slotted_page.no_flags) in
        let free_before = Slotted_page.total_free b in
        Slotted_page.delete b s0;
        Alcotest.(check bool) "space reclaimed" true (Slotted_page.total_free b > free_before);
        Alcotest.(check bool) "s0 dead" false (Slotted_page.is_live b s0);
        Alcotest.(check bool) "s1 alive" true (Slotted_page.is_live b s1);
        Slotted_page.check b);
    Alcotest.test_case "slots are reused" `Quick (fun () ->
        let b = page_of_size 512 in
        let s0 = Option.get (Slotted_page.insert b "aaaa" Slotted_page.no_flags) in
        let _s1 = Option.get (Slotted_page.insert b "bbbb" Slotted_page.no_flags) in
        Slotted_page.delete b s0;
        let s2 = Option.get (Slotted_page.insert b "cccc" Slotted_page.no_flags) in
        Alcotest.(check int) "slot recycled" s0 s2;
        Slotted_page.check b);
    Alcotest.test_case "write grows a record via compaction" `Quick (fun () ->
        let b = page_of_size 128 in
        (* 128 - 12 header = 116; three records + slots. *)
        let s0 = Option.get (Slotted_page.insert b (String.make 30 'a') Slotted_page.no_flags) in
        let s1 = Option.get (Slotted_page.insert b (String.make 30 'b') Slotted_page.no_flags) in
        Slotted_page.delete b s0;
        (* Growing s1 to 60 requires reclaiming s0's extent. *)
        Alcotest.(check bool) "grow ok" true
          (Slotted_page.write b s1 (String.make 60 'c') Slotted_page.no_flags);
        let off, len, _ = Slotted_page.read b s1 in
        Alcotest.(check string) "content" (String.make 60 'c') (Bytes.sub_string b off len);
        Slotted_page.check b);
    Alcotest.test_case "write fails when page is full" `Quick (fun () ->
        let b = page_of_size 64 in
        let s = Option.get (Slotted_page.insert b (String.make 40 'x') Slotted_page.no_flags) in
        Alcotest.(check bool) "cannot grow" false
          (Slotted_page.write b s (String.make 60 'y') Slotted_page.no_flags);
        let off, len, _ = Slotted_page.read b s in
        Alcotest.(check string) "old intact" (String.make 40 'x') (Bytes.sub_string b off len);
        Slotted_page.check b);
    Alcotest.test_case "max_record_len record fits empty page" `Quick (fun () ->
        let b = page_of_size 256 in
        let len = Slotted_page.max_record_len ~page_size:256 in
        (match Slotted_page.insert b (String.make len 'm') Slotted_page.no_flags with
        | Some _ -> ()
        | None -> Alcotest.fail "max record must fit");
        Slotted_page.check b);
    Alcotest.test_case "flags survive roundtrip" `Quick (fun () ->
        let b = page_of_size 256 in
        let s =
          Option.get (Slotted_page.insert b "12345678" Slotted_page.forward_flag)
        in
        let _, _, flags = Slotted_page.read b s in
        Alcotest.(check bool) "forward" true flags.Slotted_page.forward;
        Alcotest.(check bool) "not moved" false flags.Slotted_page.moved;
        Alcotest.(check bool) "rewrite as moved" true
          (Slotted_page.write b s "12345678" Slotted_page.moved_flag);
        let _, _, flags = Slotted_page.read b s in
        Alcotest.(check bool) "moved now" true flags.Slotted_page.moved;
        Alcotest.(check bool) "forward cleared" false flags.Slotted_page.forward);
    qtest ~count:300 "random op sequence keeps the page consistent"
      QCheck2.Gen.(list_size (int_bound 120) (pair (int_bound 2) (int_range 1 40)))
      (fun ops ->
        let b = page_of_size 512 in
        let live = ref [] in
        let reference = Hashtbl.create 16 in
        List.iteri
          (fun i (kind, len) ->
            let payload = String.make len (Char.chr (65 + (i mod 26))) in
            match kind with
            | 0 -> (
              match Slotted_page.insert b payload Slotted_page.no_flags with
              | Some s ->
                live := s :: !live;
                Hashtbl.replace reference s payload
              | None -> ())
            | 1 -> (
              match !live with
              | [] -> ()
              | s :: rest ->
                Slotted_page.delete b s;
                Hashtbl.remove reference s;
                live := rest)
            | _ -> (
              match !live with
              | [] -> ()
              | s :: _ ->
                if Slotted_page.write b s payload Slotted_page.no_flags then
                  Hashtbl.replace reference s payload))
          ops;
        Slotted_page.check b;
        Hashtbl.fold
          (fun s payload ok ->
            ok
            &&
            let off, len, _ = Slotted_page.read b s in
            Bytes.sub_string b off len = payload)
          reference true);
  ]

let fsi_tests =
  [
    Alcotest.test_case "append and find" `Quick (fun () ->
        let f = Fsi.create () in
        List.iter (Fsi.append f) [ 10; 50; 30; 50 ];
        Alcotest.(check (option int)) "first >= 40" (Some 1) (Fsi.find_first f ~from:0 40);
        Alcotest.(check (option int)) "from 2" (Some 3) (Fsi.find_first f ~from:2 40);
        Alcotest.(check (option int)) "too big" None (Fsi.find_first f ~from:0 100));
    Alcotest.test_case "set updates queries" `Quick (fun () ->
        let f = Fsi.create () in
        List.iter (Fsi.append f) [ 10; 10; 10 ];
        Fsi.set f 1 99;
        Alcotest.(check (option int)) "found" (Some 1) (Fsi.find_first f ~from:0 50);
        Fsi.set f 1 0;
        Alcotest.(check (option int)) "gone" None (Fsi.find_first f ~from:0 50));
    qtest ~count:300 "agrees with naive reference"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 64) (int_bound 1000))
          (pair (int_bound 63) (int_bound 1000)))
      (fun (frees, (from, need)) ->
        let f = Fsi.create () in
        List.iter (Fsi.append f) frees;
        let arr = Array.of_list frees in
        let naive = ref None in
        for i = Array.length arr - 1 downto from do
          if arr.(i) >= need then naive := Some i
        done;
        Fsi.find_first f ~from need = !naive);
  ]

let segment_tests =
  let make_segment ?(page_size = 256) ?(pool_pages = 8) () =
    let d = Disk.in_memory ~model:Io_model.free ~page_size () in
    let pool = Buffer_pool.create ~disk:d ~bytes:(pool_pages * page_size) () in
    Segment.create pool
  in
  [
    Alcotest.test_case "fresh segment has page 0" `Quick (fun () ->
        let seg = make_segment () in
        Alcotest.(check int) "one page" 1 (Segment.page_count seg);
        Alcotest.(check bool) "page 0 formatted" true (Segment.free_bytes seg 0 > 0));
    Alcotest.test_case "find_space allocates when needed" `Quick (fun () ->
        let seg = make_segment () in
        let p = Segment.find_space seg 100 in
        Alcotest.(check bool) "page exists" true (p < Segment.page_count seg));
    Alcotest.test_case "find_space prefers the near page" `Quick (fun () ->
        let seg = make_segment () in
        let p1 = Segment.alloc_page seg in
        let chosen = Segment.find_space seg ~near:p1 50 in
        Alcotest.(check int) "near wins" p1 chosen);
    Alcotest.test_case "reopen rebuilds the inventory" `Quick (fun () ->
        let d = Disk.in_memory ~model:Io_model.free ~page_size:256 () in
        let pool = Buffer_pool.create ~disk:d ~bytes:2048 () in
        let seg = Segment.create pool in
        Segment.with_page_mut seg 0 (fun b ->
            ignore (Slotted_page.insert b (String.make 100 'x') Slotted_page.no_flags));
        Buffer_pool.clear pool;
        let pool2 = Buffer_pool.create ~disk:d ~bytes:2048 () in
        let seg2 = Segment.create pool2 in
        Alcotest.(check int) "inventory matches page state"
          (Segment.free_bytes seg 0) (Segment.free_bytes seg2 0));
  ]

let record_manager_tests =
  let make ?(page_size = 256) ?(pool_pages = 8) () =
    let d = Disk.in_memory ~model:Io_model.free ~page_size () in
    let pool = Buffer_pool.create ~disk:d ~bytes:(pool_pages * page_size) () in
    Record_manager.create (Segment.create pool)
  in
  [
    Alcotest.test_case "insert/read roundtrip" `Quick (fun () ->
        let rm = make () in
        let rid = Record_manager.insert rm "payload" in
        Alcotest.(check string) "read back" "payload" (Record_manager.read rm rid);
        Alcotest.(check int) "length" 7 (Record_manager.length rm rid));
    Alcotest.test_case "update in place" `Quick (fun () ->
        let rm = make () in
        let rid = Record_manager.insert rm "short" in
        Record_manager.update rm rid "a slightly longer payload";
        Alcotest.(check string) "new content" "a slightly longer payload"
          (Record_manager.read rm rid);
        Alcotest.(check bool) "not forwarded" false (Record_manager.is_forwarded rm rid));
    Alcotest.test_case "update moves and forwards when the page fills" `Quick (fun () ->
        let rm = make ~page_size:256 () in
        (* Fill one page with several records, then grow one beyond what the
           page can hold. *)
        let r0 = Record_manager.insert rm (String.make 60 'a') in
        let fillers = List.init 3 (fun _ -> Record_manager.insert rm (String.make 50 'f')) in
        let same_page = List.for_all (fun r -> Rid.page r = Rid.page r0) fillers in
        Alcotest.(check bool) "setup: records share a page" true same_page;
        Record_manager.update rm r0 (String.make 150 'A');
        Alcotest.(check bool) "forwarded" true (Record_manager.is_forwarded rm r0);
        Alcotest.(check string) "content via old rid" (String.make 150 'A')
          (Record_manager.read rm r0);
        Alcotest.(check bool) "lives elsewhere" true (Record_manager.home_page rm r0 <> Rid.page r0));
    Alcotest.test_case "forwarding collapses when shrinking back" `Quick (fun () ->
        let rm = make ~page_size:256 () in
        let r0 = Record_manager.insert rm (String.make 60 'a') in
        let _fill = List.init 3 (fun _ -> Record_manager.insert rm (String.make 50 'f')) in
        Record_manager.update rm r0 (String.make 150 'A');
        Alcotest.(check bool) "forwarded" true (Record_manager.is_forwarded rm r0);
        (* Grow even further so the moved body must relocate; it should
           first try to fall back home where only the tombstone sits. *)
        Record_manager.update rm r0 (String.make 20 'b');
        Alcotest.(check string) "content" (String.make 20 'b') (Record_manager.read rm r0));
    Alcotest.test_case "delete removes forwarded bodies too" `Quick (fun () ->
        let rm = make ~page_size:256 () in
        let r0 = Record_manager.insert rm (String.make 60 'a') in
        let _fill = List.init 3 (fun _ -> Record_manager.insert rm (String.make 50 'f')) in
        Record_manager.update rm r0 (String.make 150 'A');
        let body_page = Record_manager.home_page rm r0 in
        Record_manager.delete rm r0;
        Alcotest.(check bool) "gone" false (Record_manager.exists rm r0);
        (* The whole body page must be empty again. *)
        let seg = Record_manager.segment rm in
        Segment.with_page seg body_page (fun b ->
            Alcotest.(check int) "body page empty" 0 (Slotted_page.live_count b)));
    Alcotest.test_case "record too large is rejected" `Quick (fun () ->
        let rm = make ~page_size:256 () in
        Alcotest.check_raises "too large" (Record_manager.Record_too_large 1000) (fun () ->
            ignore (Record_manager.insert rm (String.make 1000 'x'))));
    Alcotest.test_case "near placement clusters records" `Quick (fun () ->
        let rm = make ~page_size:256 ~pool_pages:16 () in
        let r0 = Record_manager.insert rm (String.make 40 'p') in
        let child = Record_manager.insert rm ~near:(Rid.page r0) (String.make 40 'c') in
        Alcotest.(check int) "same page" (Rid.page r0) (Rid.page child));
    qtest ~count:100 "random workload matches a reference model"
      QCheck2.Gen.(list_size (int_bound 200) (pair (int_bound 3) (int_range 8 120)))
      (fun ops ->
        let rm = make ~page_size:512 ~pool_pages:64 () in
        let reference : (Rid.t, string) Hashtbl.t = Hashtbl.create 64 in
        let rids = ref [] in
        List.iteri
          (fun i (kind, len) ->
            let payload = String.init len (fun j -> Char.chr (33 + ((i + j) mod 90))) in
            match kind with
            | 0 | 1 ->
              let rid = Record_manager.insert rm payload in
              Hashtbl.replace reference rid payload;
              rids := rid :: !rids
            | 2 -> (
              match !rids with
              | [] -> ()
              | rid :: _ ->
                Record_manager.update rm rid payload;
                Hashtbl.replace reference rid payload)
            | _ -> (
              match !rids with
              | [] -> ()
              | rid :: rest ->
                Record_manager.delete rm rid;
                Hashtbl.remove reference rid;
                rids := rest))
          ops;
        Hashtbl.fold
          (fun rid payload ok -> ok && Record_manager.read rm rid = payload)
          reference true);
  ]

let suites =
  [
    ("util.bytes", bytes_util_tests);
    ("util.rid", rid_tests);
    ("util.name_pool", name_pool_tests);
    ("util.prng", prng_tests);
    ("store.io_model", io_model_tests);
    ("store.disk", disk_tests);
    ("store.buffer_pool", pool_tests);
    ("store.slotted_page", slotted_page_tests);
    ("store.fsi", fsi_tests);
    ("store.segment", segment_tests);
    ("store.record_manager", record_manager_tests);
  ]

(* Regression: a tombstone (8 bytes) must be placeable even when the
   record being moved was smaller than 8 bytes on a completely full page
   (fixed by victim eviction). *)
let tombstone_tests =
  let make ?(page_size = 128) () =
    let d = Disk.in_memory ~model:Io_model.free ~page_size () in
    let pool = Buffer_pool.create ~disk:d ~bytes:(16 * page_size) () in
    Record_manager.create (Segment.create pool)
  in
  [
    Alcotest.test_case "tiny record grows off a full page" `Quick (fun () ->
        let rm = make () in
        (* Fill one page: one tiny record among larger ones, zero slack. *)
        let tiny = Record_manager.insert rm "abc" in
        let fillers = ref [] in
        (try
           while true do
             let r = Record_manager.insert rm ~near:(Rid.page tiny) (String.make 20 'f') in
             if Rid.page r <> Rid.page tiny then raise Exit;
             fillers := r :: !fillers
           done
         with Exit -> ());
        (* Consume the remaining slack in place. *)
        let seg = Record_manager.segment rm in
        let free = Natix_store.Segment.free_bytes seg (Rid.page tiny) in
        (match !fillers with
        | f :: _ when free > 0 -> Record_manager.update rm f (String.make (20 + free) 'F')
        | _ -> ());
        (* Now grow the tiny record beyond the page. *)
        Record_manager.update rm tiny (String.make 60 'T');
        Alcotest.(check string) "content" (String.make 60 'T') (Record_manager.read rm tiny);
        List.iter
          (fun r ->
            let body = Record_manager.read rm r in
            Alcotest.(check bool) "filler intact" true
              (String.length body >= 20 && body.[0] = 'f' || body.[0] = 'F'))
          !fillers);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"blob-style churn with tiny records"
         QCheck2.Gen.(list_size (int_bound 150) (pair (int_bound 3) (int_range 1 60)))
         (fun ops ->
           let rm = make ~page_size:128 () in
           let reference : (Rid.t, string) Hashtbl.t = Hashtbl.create 32 in
           let rids = ref [] in
           List.iteri
             (fun i (kind, len) ->
               let payload = String.make len (Char.chr (97 + (i mod 26))) in
               match (kind, !rids) with
               | 0, _ | _, [] ->
                 let rid = Record_manager.insert rm payload in
                 Hashtbl.replace reference rid payload;
                 rids := rid :: !rids
               | 1, rid :: _ | 2, rid :: _ ->
                 Record_manager.update rm rid payload;
                 Hashtbl.replace reference rid payload
               | _, rid :: rest ->
                 Record_manager.delete rm rid;
                 Hashtbl.remove reference rid;
                 rids := rest)
             ops;
           Hashtbl.fold (fun rid body ok -> ok && Record_manager.read rm rid = body) reference true));
  ]

let suites = suites @ [ ("store.tombstone", tombstone_tests) ]

(* ------------------------------------------------------------------ *)
(* Checksums (page trailers, WAL entries)                              *)

let checksum_tests =
  [
    Alcotest.test_case "known test vector" `Quick (fun () ->
        (* The canonical CRC-32 check value. *)
        Alcotest.(check int) "123456789" 0xcbf43926 (Checksum.crc32_string "123456789"));
    Alcotest.test_case "empty input" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (Checksum.crc32_string ""));
    qtest "chaining equals concatenation"
      QCheck2.Gen.(pair (string_size (int_bound 64)) (string_size (int_bound 64)))
      (fun (a, b) ->
        Checksum.crc32_string ~init:(Checksum.crc32_string a) b = Checksum.crc32_string (a ^ b));
    qtest "every byte matters"
      QCheck2.Gen.(pair (string_size ~gen:printable (int_range 1 64)) (int_bound 1000))
      (fun (s, i) ->
        let i = i mod String.length s in
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        Checksum.crc32_string (Bytes.to_string b) <> Checksum.crc32_string s);
  ]

let suites = suites @ [ ("store.checksum", checksum_tests) ]

(* ------------------------------------------------------------------ *)
(* Fault injection and read retries                                    *)

let fault_tests =
  [
    Alcotest.test_case "armed crash fires and the plan stays dead" `Quick (fun () ->
        let plan = Faulty_disk.create ~seed:7L () in
        let d = Disk.in_memory ~page_size:256 () in
        Disk.set_faults d (Some plan);
        let p = Disk.allocate d in
        let ps = Disk.payload_size d in
        Disk.write d p (Bytes.make ps 'A');
        Faulty_disk.arm_crash ~torn:false plan 0;
        (match Disk.write d p (Bytes.make ps 'B') with
        | exception Faulty_disk.Crash -> ()
        | () -> Alcotest.fail "expected Crash");
        Alcotest.(check bool) "crashed" true (Faulty_disk.crashed plan);
        (* Post-mortem: writes keep being dropped, reads fail. *)
        (match Disk.write d p (Bytes.make ps 'C') with
        | exception Faulty_disk.Crash -> ()
        | () -> Alcotest.fail "expected Crash on post-mortem write");
        (match Disk.read d p (Bytes.create ps) with
        | exception Faulty_disk.Read_error _ -> ()
        | () -> Alcotest.fail "expected Read_error on post-mortem read");
        (* The lost write must not have reached the platters. *)
        Disk.set_faults d None;
        let r = Bytes.create ps in
        Disk.read d p r;
        Alcotest.(check bytes) "lost write dropped" (Bytes.make ps 'A') r);
    Alcotest.test_case "crash on a file write never persists the new image" `Quick (fun () ->
        (* Whether the final write tears (checksum-invalid page) or is lost
           (old content intact), the new image must never be readable. *)
        let check_seed seed =
          let path = Filename.temp_file "natix_fault" ".db" in
          let plan = Faulty_disk.create ~seed () in
          let d = Disk.on_file ~page_size:256 path in
          let ps = Disk.payload_size d in
          Disk.set_faults d (Some plan);
          let p = Disk.allocate d in
          Disk.write d p (Bytes.make ps 'A');
          Faulty_disk.arm_crash plan 0;
          (match Disk.write d p (Bytes.make ps 'B') with
          | exception Faulty_disk.Crash -> ()
          | () -> Alcotest.fail "expected Crash");
          Disk.close d;
          let d2 = Disk.on_file ~page_size:256 path in
          (match Disk.read d2 p (Bytes.create ps) with
          | exception Disk.Bad_page _ -> () (* torn: trailer no longer matches *)
          | () -> (
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "lost write left old content" (Bytes.make ps 'A') r));
          Disk.close d2;
          Sys.remove path
        in
        List.iter (fun s -> check_seed (Int64.of_int s)) [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    Alcotest.test_case "transient read errors are retried by the pool" `Quick (fun () ->
        let plan = Faulty_disk.create ~seed:3L () in
        let d = Disk.in_memory ~page_size:256 () in
        Disk.set_faults d (Some plan);
        let pool = Buffer_pool.create ~disk:d ~bytes:(4 * 256) () in
        let p = Disk.allocate d in
        Disk.write d p (Bytes.make (Disk.payload_size d) 'x');
        Faulty_disk.fail_next_reads plan 2;
        Buffer_pool.with_page pool p (fun f ->
            Alcotest.(check char) "content after retries" 'x' (Bytes.get f.Buffer_pool.data 0));
        Alcotest.(check bool) "extra read attempts" true (Faulty_disk.reads_seen plan >= 3));
    Alcotest.test_case "read errors beyond the retry budget escape" `Quick (fun () ->
        let plan = Faulty_disk.create ~seed:3L () in
        let d = Disk.in_memory ~page_size:256 () in
        Disk.set_faults d (Some plan);
        let pool = Buffer_pool.create ~disk:d ~bytes:(4 * 256) ~read_retries:1 () in
        let p = Disk.allocate d in
        Faulty_disk.fail_next_reads plan 10;
        (match Buffer_pool.with_page pool p (fun _ -> ()) with
        | exception Faulty_disk.Read_error _ -> ()
        | () -> Alcotest.fail "expected Read_error");
        Faulty_disk.disarm plan;
        (* The half-made frame must not linger: the next fix succeeds. *)
        Buffer_pool.with_page pool p (fun _ -> ()));
  ]

let suites = suites @ [ ("store.faults", fault_tests) ]

(* ------------------------------------------------------------------ *)
(* File-backed disk lifecycle                                          *)

let lifecycle_tests =
  [
    Alcotest.test_case "create, write, close, reopen, read" `Quick (fun () ->
        let path = Filename.temp_file "natix_life" ".db" in
        let d = Disk.on_file ~page_size:256 path in
        let ps = Disk.payload_size d in
        let p0 = Disk.allocate d and p1 = Disk.allocate d in
        Disk.write d p0 (Bytes.make ps 'a');
        Disk.write d p1 (Bytes.make ps 'b');
        Disk.close d;
        let d2 = Disk.on_file ~page_size:256 path in
        Alcotest.(check int) "page count" 2 (Disk.page_count d2);
        List.iter
          (fun p -> Alcotest.(check (result unit string)) "verify" (Ok ()) (Disk.verify d2 p))
          [ p0; p1 ];
        let r = Bytes.create ps in
        Disk.read d2 p1 r;
        Alcotest.(check bytes) "content" (Bytes.make ps 'b') r;
        Disk.close d2;
        Sys.remove path);
    Alcotest.test_case "detect_page_size is total" `Quick (fun () ->
        let path = Filename.temp_file "natix_life" ".db" in
        let d = Disk.on_file ~page_size:256 path in
        Disk.close d;
        Alcotest.(check (option int)) "valid file" (Some 256) (Disk.detect_page_size path);
        let oc = open_out path in
        output_string oc "not a natix file";
        close_out oc;
        Alcotest.(check (option int)) "bad magic" None (Disk.detect_page_size path);
        Sys.remove path;
        Alcotest.(check (option int)) "missing file" None (Disk.detect_page_size path));
    Alcotest.test_case "reopen after truncation mid-page" `Quick (fun () ->
        let path = Filename.temp_file "natix_life" ".db" in
        let d = Disk.on_file ~page_size:256 path in
        let ps = Disk.payload_size d in
        let p0 = Disk.allocate d and p1 = Disk.allocate d in
        Disk.write d p0 (Bytes.make ps 'a');
        Disk.write d p1 (Bytes.make ps 'b');
        Disk.close d;
        (* Cut the file in the middle of the last page. *)
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
        Unix.ftruncate fd ((3 * 256) - 128);
        Unix.close fd;
        let d2 = Disk.on_file ~page_size:256 path in
        Alcotest.(check int) "superblock still counts both pages" 2 (Disk.page_count d2);
        Alcotest.(check (result unit string)) "intact page verifies" (Ok ()) (Disk.verify d2 p0);
        Alcotest.(check bool) "truncated page fails verification" true
          (Result.is_error (Disk.verify d2 p1));
        (match Disk.read d2 p1 (Bytes.create ps) with
        | exception Disk.Bad_page { page; _ } -> Alcotest.(check int) "page id" p1 page
        | () -> Alcotest.fail "expected Bad_page");
        Disk.close d2;
        Sys.remove path);
  ]

let suites = suites @ [ ("store.lifecycle", lifecycle_tests) ]

(* ------------------------------------------------------------------ *)
(* Write-ahead log and recovery                                        *)

let wal_tests =
  let with_store_file f =
    let path = Filename.temp_file "natix_wal" ".db" in
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists path then Sys.remove path;
        let w = Recovery.wal_path path in
        if Sys.file_exists w then Sys.remove w)
      (fun () -> f path)
  in
  [
    Alcotest.test_case "uncommitted steal rolls back to pre-image" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            let before = Bytes.create ps in
            Disk.read d p before;
            let after = Bytes.make ps 'B' in
            Alcotest.(check bool) "needs pre-image" true (Wal.needs_before wal p);
            let lsn = Wal.log_steal wal ~page:p ~before ~after in
            Alcotest.(check bool) "record has an LSN" true (lsn > 0);
            Alcotest.(check bool) "logged once" false (Wal.needs_before wal p);
            Alcotest.(check int) "second steal logs nothing" 0
              (Wal.log_steal wal ~page:p ~before ~after);
            Wal.fsync wal;
            Disk.write ~lsn d p after;
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check bool) "ran" true rep.Recovery.ran;
            Alcotest.(check int) "one page undone" 1 rep.Recovery.undone;
            Alcotest.(check int) "one loser" 1 rep.Recovery.losers;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "pre-image restored" (Bytes.make ps 'A') r;
            Disk.close d2));
    Alcotest.test_case "checkpointed batch is preserved" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            let before = Bytes.create ps in
            Disk.read d p before;
            let after = Bytes.make ps 'B' in
            let lsn = Wal.log_steal wal ~page:p ~before ~after in
            Wal.fsync wal;
            Disk.write ~lsn d p after;
            Wal.checkpoint wal ~page_count:(Disk.page_count d);
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check int) "nothing undone" 0 rep.Recovery.undone;
            Alcotest.(check bool) "clean" true rep.Recovery.clean;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "committed content kept" (Bytes.make ps 'B') r;
            Disk.close d2));
    Alcotest.test_case "committed transaction is redone (no-force)" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~first_lsn:10 ~page_size:(Disk.page_size d)
                ~base:(Disk.page_count d) (Recovery.wal_path path)
            in
            let before = Bytes.create ps in
            Disk.read d p before;
            let after = Bytes.make ps 'B' in
            let b = Wal.log_begin wal ~txn:1 ~base:(Disk.page_count d) in
            let u = Wal.log_update wal ~txn:1 ~prev_lsn:b ~page:p ~before ~after in
            let _ = Wal.log_commit wal ~txn:1 ~prev_lsn:u ~page_count:(Disk.page_count d) in
            Wal.fsync wal;
            (* Crash before the data page ever reaches disk: the page still
               holds 'A'; redo must replay the committed after-image. *)
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check int) "one page redone" 1 rep.Recovery.redone;
            Alcotest.(check int) "no losers" 0 rep.Recovery.losers;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "after-image replayed" (Bytes.make ps 'B') r;
            Disk.close d2));
    Alcotest.test_case "loser transaction is undone along its chain" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            let q = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            Disk.write d q (Bytes.make ps 'C');
            let wal =
              Wal.create ~first_lsn:10 ~page_size:(Disk.page_size d)
                ~base:(Disk.page_count d) (Recovery.wal_path path)
            in
            let img c = Bytes.make ps c in
            let b = Wal.log_begin wal ~txn:7 ~base:(Disk.page_count d) in
            let u1 =
              Wal.log_update wal ~txn:7 ~prev_lsn:b ~page:p ~before:(img 'A') ~after:(img 'B')
            in
            let u2 =
              Wal.log_update wal ~txn:7 ~prev_lsn:u1 ~page:q ~before:(img 'C') ~after:(img 'D')
            in
            Wal.fsync wal;
            (* Steal both dirty pages, then crash before commit. *)
            Disk.write ~lsn:u1 d p (img 'B');
            Disk.write ~lsn:u2 d q (img 'D');
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check int) "both pages undone" 2 rep.Recovery.undone;
            Alcotest.(check int) "one loser" 1 rep.Recovery.losers;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "first pre-image restored" (img 'A') r;
            Disk.read d2 q r;
            Alcotest.(check bytes) "second pre-image restored" (img 'C') r;
            Disk.close d2));
    Alcotest.test_case "uncommitted allocations are truncated" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p0 = Disk.allocate d in
            Disk.write d p0 (Bytes.make ps 'A');
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            let p1 = Disk.allocate d in
            Alcotest.(check bool) "fresh page needs no pre-image" false (Wal.needs_before wal p1);
            Alcotest.(check int) "steal of a fresh page logs nothing" 0
              (Wal.log_steal wal ~page:p1 ~before:(Bytes.make ps '\000')
                 ~after:(Bytes.make ps 'N'));
            Disk.write d p1 (Bytes.make ps 'N');
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check int) "allocation rolled back" 1 rep.Recovery.page_count;
            Alcotest.(check int) "disk shrank" 1 (Disk.page_count d2);
            Disk.close d2));
    Alcotest.test_case "torn log tail is discarded" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            let before = Bytes.create ps in
            Disk.read d p before;
            let after = Bytes.make ps 'B' in
            let lsn = Wal.log_steal wal ~page:p ~before ~after in
            Wal.fsync wal;
            Disk.write ~lsn d p after;
            Wal.close wal;
            Disk.close d;
            (* A crash mid-append leaves a partial entry at the tail. *)
            let fd = Unix.openfile (Recovery.wal_path path) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
            ignore (Unix.write_substring fd "torn tail" 0 9);
            Unix.close fd;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check bool) "torn bytes reported" true (rep.Recovery.torn_bytes > 0);
            Alcotest.(check int) "valid prefix still undone" 1 rep.Recovery.undone;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "pre-image restored" (Bytes.make ps 'A') r;
            Disk.close d2));
    Alcotest.test_case "recovery is idempotent and resets the log" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            let before = Bytes.create ps in
            Disk.read d p before;
            let after = Bytes.make ps 'B' in
            let lsn = Wal.log_steal wal ~page:p ~before ~after in
            Wal.fsync wal;
            Disk.write ~lsn d p after;
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep1 = Recovery.run d2 in
            Alcotest.(check int) "first pass undoes" 1 rep1.Recovery.undone;
            let rep2 = Recovery.run d2 in
            Alcotest.(check int) "second pass is a no-op" 0 rep2.Recovery.undone;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "pre-image survives the second pass" (Bytes.make ps 'A') r;
            Disk.close d2));
    Alcotest.test_case "wal counters track appended bytes" `Quick (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            let wal =
              Wal.create ~page_size:(Disk.page_size d) ~base:(Disk.page_count d)
                (Recovery.wal_path path)
            in
            Disk.write d p (Bytes.make ps 'A');
            let before = Bytes.make ps 'A' in
            let after = Bytes.make ps 'B' in
            let lsn = Wal.log_steal wal ~page:p ~before ~after in
            Alcotest.(check int) "begin + one update" 2 (Wal.appends wal);
            Alcotest.(check bool) "bytes include both page images" true
              (Wal.bytes_logged wal > Disk.page_size d);
            (* create fsyncs its begin record; the steal's update is pending
               until the caller forces the log. *)
            Alcotest.(check int) "only the begin flush so far" 1 (Wal.flushes wal);
            Alcotest.(check int) "update record pending" 1 (Wal.pending_records wal);
            Alcotest.(check bool) "update not yet durable" true (Wal.durable_lsn wal < lsn);
            Wal.fsync wal;
            Alcotest.(check int) "steal forced a second flush" 2 (Wal.flushes wal);
            Alcotest.(check int) "both records durable" 2 (Wal.flushed_records wal);
            Alcotest.(check int) "nothing pending" 0 (Wal.pending_records wal);
            Alcotest.(check int) "durable watermark at the update" lsn (Wal.durable_lsn wal);
            Wal.close wal;
            Disk.close d));
  ]

let suites = suites @ [ ("store.wal", wal_tests) ]
