(* Cross-module integration tests: whole-corpus roundtrips, mixed
   update/delete workloads under integrity checking, order equivalence,
   index consistency under churn, and persistence of everything through a
   file-backed store. *)

open Natix_core
module Xml_tree = Natix_xml.Xml_tree
module Xml_parser = Natix_xml.Xml_parser
open Natix_workload

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let xml = Alcotest.testable Xml_tree.pp Xml_tree.equal

let mem_store ?(page_size = 1024) ?(matrix = Split_matrix.native ()) () =
  let config =
    { (Config.default ()) with Config.page_size; matrix; buffer_bytes = 256 * 1024 }
  in
  Tree_store.in_memory ~config ~model:Natix_store.Io_model.free ()

let corpus_tests =
  [
    Alcotest.test_case "a whole play roundtrips in all four series" `Slow (fun () ->
        let play = List.hd (Shakespeare.generate (Shakespeare.scaled 0.03)) in
        List.iter
          (fun (matrix, order) ->
            let store = mem_store ~page_size:2048 ~matrix:(matrix ()) () in
            let _ = Loader.load store ~name:"p" ~order play in
            Tree_store.check_document store "p";
            Alcotest.check xml "roundtrip" play
              (Option.get (Exporter.document_to_xml store "p")))
          [
            (Split_matrix.native, Loader.Preorder);
            (Split_matrix.native, Loader.Bfs_binary);
            (Split_matrix.one_to_one, Loader.Preorder);
            (Split_matrix.one_to_one, Loader.Bfs_binary);
          ]);
    Alcotest.test_case "insertion order does not change the logical document" `Quick (fun () ->
        let play = List.hd (Shakespeare.generate (Shakespeare.scaled 0.01)) in
        let export order =
          let store = mem_store () in
          let _ = Loader.load store ~name:"p" ~order play in
          Option.get (Exporter.document_to_xml store "p")
        in
        Alcotest.check xml "preorder = bfs" (export Loader.Preorder) (export Loader.Bfs_binary));
    Alcotest.test_case "collection loading interleaves without corruption" `Quick (fun () ->
        let corpus = Shakespeare.generate { (Shakespeare.scaled 0.01) with Shakespeare.plays = 3 } in
        let store = mem_store () in
        let docs = List.mapi (fun i p -> (Printf.sprintf "p%d" i, p)) corpus in
        Loader.load_collection store docs ~order:Loader.Bfs_binary;
        List.iter2
          (fun (name, play) _ ->
            Tree_store.check_document store name;
            Alcotest.check xml name play (Option.get (Exporter.document_to_xml store name)))
          docs corpus);
  ]

(* A random mixed workload: inserts, deletions, text updates; after every
   phase the physical tree must check out and the export must equal an
   in-memory reference implementation of the same operations. *)
let churn_tests =
  [
    qtest ~count:25 "random churn preserves logical content and invariants"
      QCheck2.Gen.(
        pair (int_range 512 2048)
          (list_size (int_range 5 60)
             (pair (int_bound 3) (pair (int_bound 100) (string_size ~gen:printable (int_range 1 30))))))
      (fun (page_size, ops) ->
        let store = mem_store ~page_size () in
        let root = Tree_store.create_document store ~name:"d" ~root:"R" in
        let elem = Tree_store.label store "E" in
        (* Reference: a mutable list of (id, text) pairs mirroring the
           top-level children. *)
        let reference : (int * string) list ref = ref [] in
        let fresh = ref 0 in
        let nth_child k =
          let rec go i seq =
            match seq () with
            | Seq.Nil -> None
            | Seq.Cons (x, rest) -> if i = k then Some x else go (i + 1) rest
          in
          go 0 (Tree_store.logical_children store root)
        in
        List.iter
          (fun (kind, (pos, text)) ->
            let n = List.length !reference in
            match kind with
            | 0 | 1 ->
              (* insert element with a text child at position [pos mod (n+1)] *)
              let at = pos mod (n + 1) in
              let point =
                if at = 0 then Tree_store.First_under root
                else Tree_store.After (Option.get (nth_child (at - 1)))
              in
              let node = Tree_store.insert_node store point (Tree_store.Elem elem) in
              let _ =
                Tree_store.insert_node store (Tree_store.First_under node)
                  (Tree_store.Text text)
              in
              incr fresh;
              let rec insert_at i = function
                | rest when i = at -> (!fresh, text) :: rest
                | [] -> [ (!fresh, text) ]
                | e :: rest -> e :: insert_at (i + 1) rest
              in
              reference := insert_at 0 !reference
            | 2 when n > 0 ->
              let at = pos mod n in
              Tree_store.delete_node store (Option.get (nth_child at));
              reference := List.filteri (fun i _ -> i <> at) !reference
            | 3 when n > 0 ->
              let at = pos mod n in
              let child = Option.get (nth_child at) in
              let text_node =
                match Tree_store.logical_children store child () with
                | Seq.Cons (t, _) -> t
                | Seq.Nil -> Alcotest.fail "element lost its text"
              in
              Tree_store.update_text store text_node text;
              reference :=
                List.mapi (fun i (id, old) -> if i = at then (id, text) else (id, old)) !reference
            | _ -> ())
          ops;
        Tree_store.check_document store "d";
        let expected =
          Xml_tree.element "R"
            (List.map (fun (_, text) -> Xml_tree.element "E" [ Xml_tree.text text ]) !reference)
        in
        Xml_tree.equal expected (Option.get (Exporter.document_to_xml store "d")));
    qtest ~count:10 "element index stays exact under churn"
      QCheck2.Gen.(list_size (int_range 10 80) (pair (int_bound 2) (int_bound 1000)))
      (fun ops ->
        let store = mem_store ~page_size:512 () in
        let idx = Element_index.create store ~name:"elements" in
        let root = Tree_store.create_document store ~name:"d" ~root:"R" in
        let labels = Array.map (Tree_store.label store) [| "A"; "B"; "C" |] in
        let live = ref [] in
        List.iter
          (fun (kind, r) ->
            match kind with
            | 0 | 1 ->
              let label = labels.(r mod 3) in
              let node =
                Tree_store.insert_node store (Tree_store.First_under root)
                  (Tree_store.Elem label)
              in
              let _ =
                Tree_store.insert_node store (Tree_store.First_under node)
                  (Tree_store.Text (String.make (1 + (r mod 40)) 'x'))
              in
              live := node :: !live
            | _ -> (
              match !live with
              | [] -> ()
              | node :: rest ->
                Tree_store.delete_node store node;
                live := rest))
          ops;
        Element_index.check idx;
        true);
  ]

let persistence_tests =
  [
    Alcotest.test_case "everything survives close and reopen" `Quick (fun () ->
        let path = Filename.temp_file "natix" ".db" in
        Sys.remove path;
        let config = { (Config.default ()) with Config.page_size = 2048 } in
        let play = List.hd (Shakespeare.generate (Shakespeare.scaled 0.01)) in
        (* session 1: store a validated document with an index *)
        let disk = Natix_store.Disk.on_file ~page_size:2048 path in
        let dm = Document_manager.create (Tree_store.open_store ~config disk) in
        (match Document_manager.store_document dm ~name:"play" ~infer_dtd:true play with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "store: %s" (Error.to_string e));
        let speakers_before = Document_manager.count_elements dm "SPEAKER" in
        Tree_store.sync (Document_manager.store dm);
        Natix_store.Disk.close disk;
        (* session 2: everything is still there *)
        let disk2 = Natix_store.Disk.on_file ~page_size:2048 path in
        let dm2 = Document_manager.create (Tree_store.open_store ~config disk2) in
        Alcotest.check xml "document content" play
          (Option.get (Exporter.document_to_xml (Document_manager.store dm2) "play"));
        Alcotest.(check bool) "dtd survived" true (Document_manager.document_dtd dm2 "play" <> None);
        (match Document_manager.validate dm2 "play" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "validation: %s" (Error.to_string e));
        Alcotest.(check int) "index survived" speakers_before
          (Document_manager.count_elements dm2 "SPEAKER");
        Tree_store.check_document (Document_manager.store dm2) "play";
        Natix_store.Disk.close disk2;
        Sys.remove path);
  ]

(* An instrumented load of a real corpus must leave a coherent trace:
   split events present, each with a fill factor a split could actually
   have happened at, and counters agreeing with the store's own view. *)
let observability_tests =
  [
    Alcotest.test_case "instrumented load traces its splits" `Quick (fun () ->
        let play = List.hd (Shakespeare.generate (Shakespeare.scaled 0.03)) in
        let obs = Natix_obs.Obs.create ~sink:(Natix_obs.Sink.ring ~capacity:65536 ()) () in
        let config =
          {
            (Config.default ()) with
            Config.page_size = 2048;
            buffer_bytes = 256 * 1024;
            obs = Some obs;
          }
        in
        let store = Tree_store.in_memory ~config ~model:Natix_store.Io_model.free () in
        let _ = Loader.load store ~name:"p" play in
        Tree_store.check_document store "p";
        let splits =
          List.filter_map
            (fun (e : Natix_obs.Event.t) ->
              match e.kind with
              | Natix_obs.Event.Split { fill; record_bytes; _ } -> Some (fill, record_bytes)
              | _ -> None)
            (Natix_obs.Obs.events obs)
        in
        Alcotest.(check bool) "at least one split traced" true (List.length splits > 0);
        Alcotest.(check int) "every split traced" (Tree_store.split_count store)
          (List.length splits);
        Alcotest.(check int) "counter agrees"
          (Tree_store.split_count store)
          (Natix_obs.Metrics.counter (Natix_obs.Obs.metrics obs) "ev.split");
        (* A page only overflows once it is nearly full, so the typical
           split must sample a fill within (twice) the split tolerance of
           full — catching inverted or unscaled samples.  Splits during
           the materialisation of an oversized subtree legitimately land
           on fresher pages, so not every event is in the band. *)
        let min_fill = 1.0 -. (2.0 *. config.Config.split_tolerance) in
        List.iter
          (fun (fill, record_bytes) ->
            if fill < 0.0 || fill > 1.0 then Alcotest.failf "split fill %.3f not a ratio" fill;
            if record_bytes <= 0 then Alcotest.fail "split with empty record")
          splits;
        Alcotest.(check bool)
          (Printf.sprintf "some split filled past %.2f" min_fill)
          true
          (List.exists (fun (fill, _) -> fill >= min_fill) splits);
        (* The loader wraps the load in a span running on the simulated
           clock, which never moves under the free I/O model. *)
        match
          List.find_map
            (fun (e : Natix_obs.Event.t) ->
              match e.kind with
              | Natix_obs.Event.Span { name = "load"; dur_ms; _ } -> Some dur_ms
              | _ -> None)
            (Natix_obs.Obs.events obs)
        with
        | Some dur_ms ->
          Alcotest.(check (float 1e-9)) "free model, zero sim time" 0.0 dur_ms
        | None -> Alcotest.fail "expected a load span in the trace");
  ]

let suites =
  [
    ("integration.corpus", corpus_tests);
    ("integration.churn", churn_tests);
    ("integration.persistence", persistence_tests);
    ("integration.observability", observability_tests);
  ]
