(* Tests for the element index and the document manager. *)

open Natix_core
module Xml_tree = Natix_xml.Xml_tree
module Xml_parser = Natix_xml.Xml_parser
module Dtd = Natix_xml.Dtd

let mem_store ?(page_size = 512) () =
  let config = { (Config.default ()) with Config.page_size; buffer_bytes = 64 * 1024 } in
  Tree_store.in_memory ~config ~model:Natix_store.Io_model.free ()

let sample =
  "<PLAY><TITLE>Hamlet</TITLE><ACT><TITLE>Act I</TITLE><SCENE><TITLE>Scene 1</TITLE>"
  ^ "<SPEECH><SPEAKER>BERNARDO</SPEAKER><LINE>Who is there?</LINE></SPEECH>"
  ^ "<SPEECH><SPEAKER>FRANCISCO</SPEAKER><LINE>Nay, answer me.</LINE><LINE>Stand.</LINE></SPEECH>"
  ^ "</SCENE></ACT></PLAY>"

let element_index_tests =
  [
    Alcotest.test_case "counts match the document" `Quick (fun () ->
        let store = mem_store () in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse sample) in
        Alcotest.(check int) "speeches" 2 (Element_index.count idx (Tree_store.label store "SPEECH"));
        Alcotest.(check int) "lines" 3 (Element_index.count idx (Tree_store.label store "LINE"));
        Alcotest.(check int) "titles" 3 (Element_index.count idx (Tree_store.label store "TITLE"));
        Element_index.check idx);
    Alcotest.test_case "a rid freed by relocation and reused is not re-indexed" `Quick
      (fun () ->
        (* Loading under small pages relocates overflowing records, so
           some rids are dropped mid-load and the freed slots get reused
           — by later tree records or by the index's own B+-tree pages.
           The index must honour the trailing Dropped event instead of
           fetching (and indexing) whatever occupies the rid now. *)
        let store = mem_store ~page_size:1024 () in
        let idx = Element_index.create store ~name:"elements" in
        let doc =
          Xml_tree.element "PLAY"
            (List.init 2 (fun act ->
                 Xml_tree.element "ACT"
                   (List.init 20 (fun sp ->
                        Xml_tree.element "SPEECH"
                          [
                            Xml_tree.element "SPEAKER"
                              [ Xml_tree.text (Printf.sprintf "S%d" sp) ];
                            Xml_tree.element "LINE"
                              [
                                Xml_tree.text
                                  (Printf.sprintf
                                     "act %d speech %d with some more words to fill the page"
                                     act sp);
                              ];
                          ]))))
        in
        let _ = Loader.load store ~name:"d" doc in
        Alcotest.(check int) "speakers" 40
          (Element_index.count idx (Tree_store.label store "SPEAKER"));
        Element_index.check idx);
    Alcotest.test_case "scan returns every node of a label" `Quick (fun () ->
        let store = mem_store () in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse sample) in
        let speakers = Element_index.scan idx (Tree_store.label store "SPEAKER") in
        Alcotest.(check int) "two speakers" 2 (List.length speakers);
        let texts = List.map (Tree_store.text_of store) (List.concat_map (fun n -> List.of_seq (Tree_store.logical_children store n)) speakers) in
        Alcotest.(check bool) "names found" true
          (List.mem "BERNARDO" texts && List.mem "FRANCISCO" texts));
    Alcotest.test_case "index follows inserts and deletes" `Quick (fun () ->
        let store = mem_store () in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse sample) in
        let speech = List.hd (Path.query store ~doc:"d" "//SPEECH[1]") in
        let _ =
          Tree_store.insert_node store
            (Tree_store.After (Cursor.node speech))
            (Tree_store.Elem (Tree_store.label store "SPEECH"))
        in
        Alcotest.(check int) "insert indexed" 3
          (Element_index.count idx (Tree_store.label store "SPEECH"));
        Tree_store.delete_node store (Cursor.node speech);
        Alcotest.(check int) "delete indexed" 2
          (Element_index.count idx (Tree_store.label store "SPEECH"));
        Element_index.check idx);
    Alcotest.test_case "index stays consistent across splits" `Quick (fun () ->
        let store = mem_store ~page_size:512 () in
        let idx = Element_index.create store ~name:"elements" in
        let doc =
          Xml_tree.element "R"
            (List.init 60 (fun i ->
                 Xml_tree.element "E" [ Xml_tree.text (Printf.sprintf "payload %d filler" i) ]))
        in
        let _ = Loader.load store ~name:"d" doc in
        Alcotest.(check bool) "splits happened" true (Tree_store.split_count store > 0);
        Alcotest.(check int) "all indexed" 60 (Element_index.count idx (Tree_store.label store "E"));
        Alcotest.(check int) "scan total" 60
          (List.length (Element_index.scan idx (Tree_store.label store "E")));
        Element_index.check idx);
    Alcotest.test_case "attributes are indexed under @labels" `Quick (fun () ->
        let store = mem_store () in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse {|<a id="1"><b id="2"/><b/></a>|}) in
        Alcotest.(check int) "@id" 2 (Element_index.count idx (Tree_store.label store "@id")));
    Alcotest.test_case "rebuild recovers from missed updates" `Quick (fun () ->
        let store = mem_store () in
        (* Load while no index is attached. *)
        let _ = Loader.load store ~name:"d" (Xml_parser.parse sample) in
        let idx = Element_index.create store ~name:"elements" in
        Alcotest.(check int) "empty before rebuild" 0
          (Element_index.count idx (Tree_store.label store "LINE"));
        Element_index.rebuild idx;
        Alcotest.(check int) "rebuilt" 3 (Element_index.count idx (Tree_store.label store "LINE"));
        Element_index.check idx);
    Alcotest.test_case "index persists across reopen" `Quick (fun () ->
        let path = Filename.temp_file "natix" ".db" in
        Sys.remove path;
        let config = { (Config.default ()) with Config.page_size = 1024 } in
        let disk = Natix_store.Disk.on_file ~page_size:1024 path in
        let store = Tree_store.open_store ~config disk in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse sample) in
        Element_index.refresh idx;
        Tree_store.sync store;
        Natix_store.Disk.close disk;
        let disk2 = Natix_store.Disk.on_file ~page_size:1024 path in
        let store2 = Tree_store.open_store ~config disk2 in
        let idx2 = Option.get (Element_index.open_index store2 ~name:"elements") in
        Alcotest.(check int) "counts survive" 3
          (Element_index.count idx2 (Tree_store.label store2 "LINE"));
        Element_index.check idx2;
        Natix_store.Disk.close disk2;
        Sys.remove path);
    Alcotest.test_case "change epoch persists and detects missed loads" `Quick (fun () ->
        let path = Filename.temp_file "natix_epoch" ".db" in
        Sys.remove path;
        let wal = Natix_store.Recovery.wal_path path in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            if Sys.file_exists wal then Sys.remove wal)
          (fun () ->
            let config = { (Config.default ()) with Config.page_size = 1024 } in
            let open_store () =
              Tree_store.open_store ~config (Natix_store.Disk.on_file ~page_size:1024 path)
            in
            (* Session 1: index created and synced with one document. *)
            let store = open_store () in
            let idx = Element_index.create store ~name:"elements" in
            Alcotest.(check bool) "fresh on an empty store" false (Element_index.stale idx);
            let _ = Loader.load store ~name:"d1" (Xml_parser.parse sample) in
            Element_index.refresh idx;
            Alcotest.(check bool) "current after refresh" false (Element_index.stale idx);
            Tree_store.close store;
            (* Session 2: a load the index never sees (no handle attached). *)
            let store = open_store () in
            Alcotest.(check bool) "epoch persisted" true (Tree_store.change_epoch store > 0);
            let epoch_before = Tree_store.change_epoch store in
            let _ = Loader.load store ~name:"d2" (Xml_parser.parse sample) in
            Alcotest.(check bool) "epoch advances" true
              (Tree_store.change_epoch store > epoch_before);
            Tree_store.close store;
            (* Session 3: the missed load is detectable, and rebuild repairs it. *)
            let store = open_store () in
            let idx = Option.get (Element_index.open_index store ~name:"elements") in
            Alcotest.(check bool) "stale after a missed load" true (Element_index.stale idx);
            Alcotest.(check int) "postings miss d2" 3
              (Element_index.count idx (Tree_store.label store "LINE"));
            Element_index.rebuild idx;
            Alcotest.(check bool) "fresh after rebuild" false (Element_index.stale idx);
            Alcotest.(check int) "postings cover both" 6
              (Element_index.count idx (Tree_store.label store "LINE"));
            Tree_store.sync store;
            Tree_store.close store;
            (* Session 4: the repair survives reopening. *)
            let store = open_store () in
            let idx = Option.get (Element_index.open_index store ~name:"elements") in
            Alcotest.(check bool) "still fresh" false (Element_index.stale idx);
            Tree_store.close ~commit:false store));
    Alcotest.test_case "labels lists everything" `Quick (fun () ->
        let store = mem_store () in
        let idx = Element_index.create store ~name:"elements" in
        let _ = Loader.load store ~name:"d" (Xml_parser.parse "<a><b/><b/><c/></a>") in
        let names =
          List.map (fun (l, c) -> (Tree_store.label_name store l, c)) (Element_index.labels idx)
        in
        Alcotest.(check (list (pair string int))) "labels"
          [ ("a", 1); ("b", 2); ("c", 1) ]
          (List.sort compare names));
  ]

let document_manager_tests =
  [
    Alcotest.test_case "valid documents are stored with their DTD" `Quick (fun () ->
        let dm = Document_manager.create (mem_store ()) in
        let xml = Xml_parser.parse sample in
        (match Document_manager.store_document dm ~name:"d" ~infer_dtd:true xml with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
        Alcotest.(check bool) "dtd stored" true (Document_manager.document_dtd dm "d" <> None);
        match Document_manager.validate dm "d" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "revalidation failed: %s" (Error.to_string e));
    Alcotest.test_case "invalid documents are rejected" `Quick (fun () ->
        let dm = Document_manager.create (mem_store ()) in
        let dtd = Dtd.create ~name:"strict" in
        Dtd.declare dtd "a" (Dtd.Children_of [ "b" ]);
        Dtd.declare dtd "b" Dtd.Pcdata_only;
        match Document_manager.store_document dm ~name:"d" ~dtd (Xml_parser.parse "<a><c/></a>") with
        | Error _ -> Alcotest.(check (list string)) "nothing stored" []
            (Tree_store.list_documents (Document_manager.store dm))
        | Ok _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "fragment insertion validates against the DTD" `Quick (fun () ->
        let dm = Document_manager.create (mem_store ()) in
        let dtd = Dtd.create ~name:"plays" in
        Dtd.declare dtd "SCENE" (Dtd.Children_of [ "SPEECH" ]);
        Dtd.declare dtd "SPEECH" (Dtd.Children_of [ "LINE" ]);
        Dtd.declare dtd "LINE" Dtd.Pcdata_only;
        let xml = Xml_parser.parse "<SCENE><SPEECH><LINE>x</LINE></SPEECH></SCENE>" in
        let root =
          match Document_manager.store_document dm ~name:"d" ~dtd xml with
          | Ok root -> root
          | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e)
        in
        (* A SPEECH fragment fits under SCENE... *)
        (match
           Document_manager.insert_fragment dm ~doc:"d" (Tree_store.First_under root)
             (Xml_parser.parse "<SPEECH><LINE>y</LINE></SPEECH>")
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "valid fragment rejected: %s" (Error.to_string e));
        (* ... a TITLE fragment does not. *)
        (match
           Document_manager.insert_fragment dm ~doc:"d" (Tree_store.First_under root)
             (Xml_parser.parse "<LINE>stray</LINE>")
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "invalid fragment accepted");
        match Document_manager.validate dm "d" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "document invalid after edits: %s" (Error.to_string e));
    Alcotest.test_case "elements_named uses the index" `Quick (fun () ->
        let dm = Document_manager.create (mem_store ()) in
        (match Document_manager.store_document dm ~name:"d" (Xml_parser.parse sample) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e));
        Alcotest.(check int) "lines via index" 3 (Document_manager.count_elements dm "LINE");
        Alcotest.(check int) "scan size" 3 (List.length (Document_manager.elements_named dm "LINE"));
        Alcotest.(check int) "unknown name" 0 (Document_manager.count_elements dm "NOPE"));
    Alcotest.test_case "elements_named without an index traverses" `Quick (fun () ->
        let dm = Document_manager.create ~index:Document_manager.Off (mem_store ()) in
        (match Document_manager.store_document dm ~name:"d" (Xml_parser.parse sample) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e));
        Alcotest.(check int) "lines via traversal" 3 (Document_manager.count_elements dm "LINE"));
    Alcotest.test_case "index modes: stale index is skipped or repaired" `Quick (fun () ->
        let path = Filename.temp_file "natix_modes" ".db" in
        Sys.remove path;
        let wal = Natix_store.Recovery.wal_path path in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            if Sys.file_exists wal then Sys.remove wal)
          (fun () ->
            let config = { (Config.default ()) with Config.page_size = 1024 } in
            let with_dm ?index ?(commit = true) f =
              let store =
                Tree_store.open_store ~config (Natix_store.Disk.on_file ~page_size:1024 path)
              in
              let dm = Document_manager.create ?index store in
              let r = f dm in
              if commit then Document_manager.checkpoint dm;
              Tree_store.close ~commit:false store;
              r
            in
            let store_doc dm name =
              match Document_manager.store_document dm ~name (Xml_parser.parse sample) with
              | Ok _ -> ()
              | Error e -> Alcotest.fail (Error.to_string e)
            in
            (* Writer 1 persists the index with one document. *)
            with_dm (fun dm -> store_doc dm "d1");
            (* Writer 2 loads without the index: it goes stale on disk. *)
            with_dm ~index:Document_manager.Off (fun dm -> store_doc dm "d2");
            (* A read-only session must not use (or touch) the stale index,
               and still answers correctly by traversal. *)
            with_dm ~index:Document_manager.Fresh_only ~commit:false (fun dm ->
                Alcotest.(check bool) "stale index skipped" true
                  (Document_manager.index dm = None);
                Alcotest.(check bool) "skip is observable" true
                  (Document_manager.stale_index_skipped dm);
                Alcotest.(check int) "correct without the index" 6
                  (Document_manager.count_elements dm "LINE"));
            (* [Maintain] (a writer) repairs it in passing. *)
            with_dm ~index:Document_manager.Maintain (fun dm ->
                Alcotest.(check bool) "persisted index opened" true
                  (Document_manager.index dm <> None);
                Alcotest.(check int) "repaired counts" 6
                  (Document_manager.count_elements dm "LINE"));
            (* After the committed repair a fresh read-only session uses it. *)
            with_dm ~index:Document_manager.Fresh_only ~commit:false (fun dm ->
                Alcotest.(check bool) "fresh index used" true
                  (Document_manager.index dm <> None);
                Alcotest.(check int) "index counts" 6
                  (Document_manager.count_elements dm "LINE"))));
    Alcotest.test_case "Maintain does not create an index" `Quick (fun () ->
        let dm = Document_manager.create ~index:Document_manager.Maintain (mem_store ()) in
        (match Document_manager.store_document dm ~name:"d" (Xml_parser.parse sample) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Error.to_string e));
        Alcotest.(check bool) "no index materialised" true (Document_manager.index dm = None);
        Alcotest.(check bool) "nothing registered" false
          (Element_index.persisted (Document_manager.store dm) ~name:"elements"));
    Alcotest.test_case "delete_document drops the DTD registration" `Quick (fun () ->
        let dm = Document_manager.create (mem_store ()) in
        (match Document_manager.store_document dm ~name:"d" ~infer_dtd:true (Xml_parser.parse sample) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e));
        Document_manager.delete_document dm "d";
        Alcotest.(check bool) "dtd gone" true (Document_manager.document_dtd dm "d" = None);
        Alcotest.(check int) "index emptied" 0 (Document_manager.count_elements dm "LINE"));
  ]

let dtd_codec_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100 ~name:"dtd encode/decode roundtrip"
         QCheck2.Gen.(
           list_size (int_bound 10)
             (pair
                (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
                (int_bound 4)))
         (fun decls ->
           let dtd = Dtd.create ~name:"test" in
           List.iter
             (fun (el, kind) ->
               let spec =
                 match kind with
                 | 0 -> Dtd.Any
                 | 1 -> Dtd.Empty
                 | 2 -> Dtd.Pcdata_only
                 | 3 -> Dtd.Children_of [ "x"; "y" ]
                 | _ -> Dtd.Mixed [ "z" ]
               in
               Dtd.declare dtd el spec)
             decls;
           let dtd' = Dtd.decode (Dtd.encode dtd) in
           Dtd.alphabet dtd = Dtd.alphabet dtd'
           && List.for_all (fun el -> Dtd.spec_of dtd el = Dtd.spec_of dtd' el) (Dtd.alphabet dtd)));
  ]

let suites =
  [
    ("core.element_index", element_index_tests);
    ("core.document_manager", document_manager_tests);
    ("xml.dtd_codec", dtd_codec_tests);
  ]
