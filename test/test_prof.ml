(* Natix_prof: quantiles, span nesting, trace filters, page heat, folded
   flamegraph export, EXPLAIN ANALYZE reconciliation, doctor determinism,
   clustering quality across split configurations, and the bench-diff
   regression gate. *)

open Natix_core
open Natix_obs
open Natix_prof

let mk_event ?ctx ?(seq = 0) ?(at_ms = 0.) kind = { Event.seq; at_ms; kind; ctx }

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0
let io_kind page = Event.Io { page; write = false; sequential = false }
let fix_kind ?(hit = false) page = Event.Page_fix { page; hit }
let ctx ?doc phase = { Event.doc; phase }

(* ------------------------------------------------------------------ *)
(* Metrics.quantile *)

let quantile_tests =
  [
    Alcotest.test_case "interpolates inside the bucket" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 10.; 20.; 30. |];
        (* 10 observations in <=10, 10 in (10,20]: p50 lands exactly at
           the first bucket's upper edge, p75 halfway into the second. *)
        for _ = 1 to 10 do
          Metrics.observe m "h" 5.
        done;
        for _ = 1 to 10 do
          Metrics.observe m "h" 15.
        done;
        let q p = Option.get (Metrics.quantile m "h" p) in
        Alcotest.(check (float 1e-9)) "p50" 10. (q 0.5);
        Alcotest.(check (float 1e-9)) "p75" 15. (q 0.75);
        Alcotest.(check (float 1e-9)) "p100" 20. (q 1.0);
        Alcotest.(check (float 1e-9)) "p0 at lower edge" 0. (q 0.));
    Alcotest.test_case "overflow bucket collapses to the last edge" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 1.; 2. |];
        Metrics.observe m "h" 99.;
        Alcotest.(check (float 1e-9)) "p99" 2. (Option.get (Metrics.quantile m "h" 0.99)));
    Alcotest.test_case "missing or empty histograms yield None" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 1. |];
        Alcotest.(check bool) "empty" true (Metrics.quantile m "h" 0.5 = None);
        Alcotest.(check bool) "missing" true (Metrics.quantile m "nope" 0.5 = None));
    Alcotest.test_case "q outside [0,1] is rejected" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 1. |];
        Metrics.observe m "h" 0.5;
        Alcotest.check_raises "q=1.5"
          (Invalid_argument "Metrics.quantile: q must be in [0, 1]") (fun () ->
            ignore (Metrics.quantile m "h" 1.5)));
  ]

(* ------------------------------------------------------------------ *)
(* Span nesting and operation context in the obs layer *)

(* (name, dur_ms, id, parent, depth) — the Span payload is an inline
   record, so it is flattened into a tuple here. *)
let spans_of obs =
  List.filter_map
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Span { name; dur_ms; id; parent; depth } -> Some (name, dur_ms, id, parent, depth)
      | _ -> None)
    (Obs.events obs)

let span_tests =
  [
    Alcotest.test_case "nested spans carry parent ids and depth" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        Obs.span obs "outer" (fun () ->
            Obs.span obs "inner" (fun () -> ());
            Obs.span obs "inner2" (fun () -> ()));
        match spans_of obs with
        | [ inner; inner2; outer ] ->
          (* Children close first, so they precede the parent. *)
          let name (n, _, _, _, _) = n in
          let id (_, _, i, _, _) = i in
          Alcotest.(check string) "first child" "inner" (name inner);
          Alcotest.(check string) "outer last" "outer" (name outer);
          (match outer with
          | _, _, _, parent, depth ->
            Alcotest.(check int) "outer top-level" 0 parent;
            Alcotest.(check int) "outer depth" 0 depth);
          List.iter
            (fun (_, _, child_id, parent, depth) ->
              Alcotest.(check int) "child parent" (id outer) parent;
              Alcotest.(check int) "child depth" 1 depth;
              Alcotest.(check bool) "parent id smaller" true (parent < child_id))
            [ inner; inner2 ]
        | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l));
    Alcotest.test_case "child_span attaches to the innermost open span" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        Obs.span obs "parent" (fun () -> Obs.child_span obs "op" ~dur_ms:2.5);
        match spans_of obs with
        | [ ("op", dur_ms, _, parent, depth); ("parent", _, id, _, _) ] ->
          Alcotest.(check int) "linked" id parent;
          Alcotest.(check int) "depth" 1 depth;
          Alcotest.(check (float 1e-9)) "externally measured" 2.5 dur_ms
        | _ -> Alcotest.fail "expected child then parent span");
    Alcotest.test_case "with_context stamps events and restores on exit" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        Obs.with_context obs ~doc:"d1" ~phase:"load" (fun () -> Obs.emit obs (io_kind 7));
        Obs.emit obs (io_kind 8);
        (try
           Obs.with_context obs ~phase:"oops" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "restored after raise" true (Obs.context obs = None);
        match Obs.events obs with
        | [ e1; e2 ] ->
          Alcotest.(check bool) "stamped" true
            (e1.Event.ctx = Some { Event.doc = Some "d1"; phase = "load" });
          Alcotest.(check bool) "outside scope" true (e2.Event.ctx = None)
        | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
    Alcotest.test_case "callback sink observes the live stream" `Quick (fun () ->
        let seen = ref [] in
        let sink = Sink.callback (fun e -> seen := e :: !seen) in
        let obs = Obs.create ~sink () in
        Obs.emit obs (io_kind 1);
        Obs.emit obs (fix_kind 2);
        Alcotest.(check int) "delivered" 2 (List.length !seen);
        Alcotest.(check int) "counted" 2 (Sink.emitted sink);
        Alcotest.(check int) "retains nothing" 0 (List.length (Sink.events sink)));
  ]

(* ------------------------------------------------------------------ *)
(* Trace filters *)

let filter_tests =
  [
    Alcotest.test_case "kind, doc and since_ms filters compose" `Quick (fun () ->
        let events =
          [
            mk_event ~at_ms:1. ~ctx:(ctx ~doc:"a" "load") (io_kind 1);
            mk_event ~at_ms:2. ~ctx:(ctx ~doc:"b" "load") (io_kind 2);
            mk_event ~at_ms:3. ~ctx:(ctx ~doc:"a" "query") (fix_kind 3);
            mk_event ~at_ms:4. (io_kind 4);
          ]
        in
        Alcotest.(check int) "by kind" 3 (List.length (Trace_view.filter ~kind:"io" events));
        Alcotest.(check int) "by doc" 2 (List.length (Trace_view.filter ~doc:"a" events));
        Alcotest.(check int) "no ctx never matches doc" 0
          (List.length (Trace_view.filter ~doc:"c" events));
        Alcotest.(check int) "since" 2 (List.length (Trace_view.filter ~since_ms:3. events));
        Alcotest.(check int) "composed" 1
          (List.length (Trace_view.filter ~kind:"io" ~doc:"a" ~since_ms:0. events));
        Alcotest.(check bool) "single event" true
          (Trace_view.keep_event ~kind:"page_fix" (List.nth events 2)));
  ]

(* ------------------------------------------------------------------ *)
(* Page heat *)

let heat_tests =
  [
    Alcotest.test_case "attributes fixes and I/O to (doc, phase)" `Quick (fun () ->
        let h = Heat.create () in
        let load = ctx ~doc:"d" "load" in
        Heat.feed h (mk_event ~ctx:load (fix_kind 1));
        Heat.feed h (mk_event ~ctx:load (fix_kind ~hit:true 1));
        Heat.feed h (mk_event ~ctx:load (fix_kind 2));
        Heat.feed h (mk_event ~ctx:load (io_kind 1));
        Heat.feed h
          (mk_event ~ctx:load (Event.Io { page = 2; write = true; sequential = false }));
        Heat.feed h (mk_event ~ctx:(ctx "doctor") (fix_kind 9));
        Heat.feed h (mk_event (fix_kind 5));
        (* no ctx: dropped *)
        match Heat.rows h with
        | [ anon; doc_row ] ->
          (* Sorted by doc: the context-less phase row ("", doctor) first. *)
          Alcotest.(check string) "anon doc" "" anon.Heat.doc;
          Alcotest.(check string) "anon phase" "doctor" anon.Heat.phase;
          Alcotest.(check int) "doc fixes" 3 doc_row.Heat.fixes;
          Alcotest.(check int) "doc hits" 1 doc_row.Heat.hits;
          Alcotest.(check int) "doc reads" 1 doc_row.Heat.reads;
          Alcotest.(check int) "doc writes" 1 doc_row.Heat.writes;
          Alcotest.(check int) "distinct pages" 2 doc_row.Heat.pages_touched;
          Alcotest.(check (list (pair int int))) "hottest first" [ (1, 2); (2, 1) ]
            doc_row.Heat.hottest
        | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  ]

(* ------------------------------------------------------------------ *)
(* Folded flamegraph export *)

let span id parent name dur_ms = { Flame.id; parent; name; dur_ms }

let flame_tests =
  [
    Alcotest.test_case "self time subtracts direct children" `Quick (fun () ->
        let spans =
          [ span 3 2 "grand" 1.; span 2 1 "child" 4.; span 1 0 "root" 10. ]
        in
        Alcotest.(check string) "folded"
          "root 6000\nroot;child 3000\nroot;child;grand 1000\n" (Flame.to_string spans));
    Alcotest.test_case "zero-self stacks are kept" `Quick (fun () ->
        let spans = [ span 2 1 "all" 5.; span 1 0 "root" 5. ] in
        Alcotest.(check (list (pair string int))) "weights"
          [ ("root", 0); ("root;all", 5000) ]
          (Flame.folded spans));
    Alcotest.test_case "json spans roundtrip through the exporter" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        Obs.span obs "a" (fun () -> Obs.span obs "b" (fun () -> ()));
        let lines = List.map Event.to_json (Obs.events obs) in
        let from_json = Flame.spans_of_json lines in
        let from_events = Flame.spans_of_events (Obs.events obs) in
        Alcotest.(check string) "same folded output" (Flame.to_string from_events)
          (Flame.to_string from_json));
  ]

(* ------------------------------------------------------------------ *)
(* Shared fixtures: a small Shakespeare store *)

let corpus ?(plays = 2) () =
  let plays_list =
    Natix_workload.Shakespeare.generate (Natix_workload.Shakespeare.scaled 0.01)
  in
  List.filteri (fun i _ -> i < plays) (plays_list @ plays_list)

let instrumented_store ?(plays = 2) () =
  let obs = Obs.create ~sink:(Sink.ring ~capacity:200_000 ()) () in
  let config = Config.with_obs obs (Config.default ()) in
  let store = Tree_store.in_memory ~config () in
  let dm = Document_manager.create store in
  List.iteri
    (fun i play ->
      match Document_manager.store_document dm ~name:(Printf.sprintf "play-%d" i) play with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Error.to_string e))
    (corpus ~plays ());
  Document_manager.checkpoint dm;
  (store, dm, obs)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: actuals must reconcile with the engine counters *)

let analyze_paths =
  [ "//SPEECH/LINE"; "/ACT[1]/SCENE[1]/SPEECH[1]"; "//PERSONA"; "//node()"; "//LINE[2]" ]

let check_reconciles engine ~doc path =
  let store = Natix_query.Engine.store engine in
  Tree_store.clear_buffers store;
  let before = Natix_store.Io_stats.copy (Tree_store.io_stats store) in
  let a =
    match Natix_query.Engine.analyze engine ~doc path with
    | Ok a -> a
    | Error e -> Alcotest.failf "%s: %s" path (Error.to_string e)
  in
  let delta = Natix_store.Io_stats.diff (Tree_store.io_stats store) before in
  let sum f = List.fold_left (fun acc op -> acc + f op) 0 a.Natix_query.Engine.ops in
  let sumf f = List.fold_left (fun acc op -> acc +. f op) 0. a.Natix_query.Engine.ops in
  (* Per-operator self figures plus setup account for the whole run. *)
  Alcotest.(check int)
    (path ^ ": ops+setup = total reads")
    a.Natix_query.Engine.total_reads
    (a.Natix_query.Engine.setup_reads + sum (fun op -> op.Natix_query.Engine.reads));
  Alcotest.(check (float 1e-6))
    (path ^ ": ops+setup = total ms")
    a.Natix_query.Engine.total_ms
    (a.Natix_query.Engine.setup_ms +. sumf (fun op -> op.Natix_query.Engine.sim_ms));
  (* And the totals are exactly the Io_stats delta across the call. *)
  Alcotest.(check int) (path ^ ": total = io delta reads") delta.Natix_store.Io_stats.reads
    a.Natix_query.Engine.total_reads;
  Alcotest.(check (float 1e-6))
    (path ^ ": total = io delta ms")
    delta.Natix_store.Io_stats.sim_ms a.Natix_query.Engine.total_ms;
  (* Same rows as the plain streaming evaluation. *)
  let rows =
    match Natix_query.Engine.query engine ~doc path with
    | Ok seq -> List.length (List.of_seq seq)
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  Alcotest.(check int) (path ^ ": row count") rows a.Natix_query.Engine.rows;
  a

let analyze_tests =
  [
    Alcotest.test_case "actuals reconcile with Io_stats (indexed + nav-only)" `Quick
      (fun () ->
        let _store, dm, _obs = instrumented_store () in
        let indexed = Natix_query.Engine.of_manager dm in
        let nav_only = Natix_query.Engine.create (Document_manager.store dm) in
        List.iter
          (fun path ->
            ignore (check_reconciles indexed ~doc:"play-0" path);
            ignore (check_reconciles nav_only ~doc:"play-1" path))
          analyze_paths);
    Alcotest.test_case "cold run reads pages and attributes them to operators" `Quick
      (fun () ->
        let _store, dm, _obs = instrumented_store ~plays:1 () in
        let engine = Natix_query.Engine.of_manager dm in
        let a = check_reconciles engine ~doc:"play-0" "//SPEECH/LINE" in
        Alcotest.(check bool) "cold run cost something" true
          (a.Natix_query.Engine.total_reads > 0);
        Alcotest.(check bool) "operators saw reads" true
          (List.exists
             (fun op -> op.Natix_query.Engine.reads > 0)
             a.Natix_query.Engine.ops);
        Alcotest.(check bool) "rows flowed" true (a.Natix_query.Engine.rows > 0);
        (* The report renders the estimate column. *)
        let txt = Natix_query.Engine.analysis_to_string a in
        Alcotest.(check bool) "renders estimates" true
          (contains txt "(est "));
    Alcotest.test_case "session facade exposes analyze" `Quick (fun () ->
        let session = Natix.Session.in_memory () in
        (match
           Natix.Session.store_document session ~name:"d"
             (Natix_xml.Xml_tree.element "r"
                [ Natix_xml.Xml_tree.element "a" [ Natix_xml.Xml_tree.text "x" ] ])
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Error.to_string e));
        match Natix.Session.analyze session ~doc:"d" "//a" with
        | Ok a -> Alcotest.(check int) "one row" 1 a.Natix_query.Engine.rows
        | Error e -> Alcotest.fail (Error.to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* Doctor and folded output: determinism across identical builds *)

let doctor_tests =
  [
    Alcotest.test_case "identical builds produce byte-identical reports" `Quick (fun () ->
        let store1, _, obs1 = instrumented_store () in
        let store2, _, obs2 = instrumented_store () in
        let r1 = Doctor.run store1 and r2 = Doctor.run store2 in
        Alcotest.(check string) "doctor deterministic" r1 r2;
        let f1 = Flame.to_string (Flame.spans_of_events (Obs.events obs1)) in
        let f2 = Flame.to_string (Flame.spans_of_events (Obs.events obs2)) in
        Alcotest.(check string) "folded deterministic" f1 f2;
        Alcotest.(check bool) "folded non-empty" true (String.length f1 > 0));
    Alcotest.test_case "report covers store, documents, fill and heat" `Quick (fun () ->
        let store, _, _obs = instrumented_store ~plays:1 () in
        let r = Doctor.run store in
        List.iter
          (fun section ->
            Alcotest.(check bool) ("has " ^ section) true
              (contains r section))
          [
            "== store ==";
            "== documents ==";
            "clustering=";
            "== fill factor";
            "== wal ==";
            "proxy_chain_len:";
            "split decisions";
            "== page heat";
            "play-0";
          ]);
    Alcotest.test_case "uninstrumented stores still get the live sections" `Quick (fun () ->
        let store = Tree_store.in_memory () in
        let dm = Document_manager.create store in
        (match
           Document_manager.store_document dm ~name:"d"
             (Natix_xml.Xml_tree.element "r" [ Natix_xml.Xml_tree.text "x" ])
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Error.to_string e));
        let r = Doctor.run store in
        Alcotest.(check bool) "documents section" true
          (contains r "== documents ==");
        Alcotest.(check bool) "flags missing instrumentation" true
          (contains r "without an obs handle"));
  ]

(* ------------------------------------------------------------------ *)
(* Clustering quality: the split matrix must show up in the score *)

let avg_clustering built =
  let fractions =
    List.map
      (fun doc ->
        match Cluster.score built.Natix_workload.Harness.store ~doc with
        | Some s -> Cluster.fraction s
        | None -> Alcotest.failf "missing doc %s" doc)
      built.Natix_workload.Harness.docs
  in
  List.fold_left ( +. ) 0. fractions /. float_of_int (List.length fractions)

let cluster_tests =
  [
    Alcotest.test_case "native records cluster better than 1:1" `Quick (fun () ->
        let corpus = corpus ~plays:1 () in
        let build matrix =
          Natix_workload.Harness.build ~page_size:8192
            { Natix_workload.Harness.matrix; order = Loader.Preorder }
            corpus
        in
        let native = avg_clustering (build Natix_workload.Harness.Native) in
        let one_to_one = avg_clustering (build Natix_workload.Harness.One_to_one) in
        Alcotest.(check bool)
          (Printf.sprintf "native %.3f > 1:1 %.3f" native one_to_one)
          true
          (native > one_to_one +. 0.02));
    Alcotest.test_case "single-node documents score 1.0" `Quick (fun () ->
        let store = Tree_store.in_memory () in
        let dm = Document_manager.create store in
        (match
           Document_manager.store_document dm ~name:"one"
             (Natix_xml.Xml_tree.element "r" [])
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Error.to_string e));
        (match Cluster.score store ~doc:"one" with
        | Some s -> Alcotest.(check (float 1e-9)) "fraction" 1.0 (Cluster.fraction s)
        | None -> Alcotest.fail "doc missing");
        Alcotest.(check bool) "unknown doc" true (Cluster.score store ~doc:"nope" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Bench-diff regression gate *)

let parse s = Json.parse s

let bench_diff_tests =
  [
    Alcotest.test_case "self-diff is clean" `Quick (fun () ->
        let j = parse {|{"io":{"reads":100,"sim_ms":50.5,"hit_ratio":0.9},"nodes":42}|} in
        let r = Bench_diff.diff ~baseline:j ~current:j () in
        Alcotest.(check bool) "ok" true (Bench_diff.ok r);
        Alcotest.(check int) "no verdicts" 0 (List.length r.Bench_diff.verdicts);
        Alcotest.(check bool) "compared figures" true (r.Bench_diff.compared > 0));
    Alcotest.test_case "slower figures past the threshold are regressions" `Quick (fun () ->
        let base = parse {|{"io":{"reads":100,"sim_ms":50.0}}|} in
        let cur = parse {|{"io":{"reads":150,"sim_ms":50.0}}|} in
        let r = Bench_diff.diff ~threshold_pct:20. ~baseline:base ~current:cur () in
        Alcotest.(check bool) "fails" false (Bench_diff.ok r);
        Alcotest.(check int) "one regression" 1 r.Bench_diff.regressions;
        match r.Bench_diff.verdicts with
        | [ { Bench_diff.path = "io.reads"; kind = Bench_diff.Regression; _ } ] -> ()
        | _ -> Alcotest.fail "expected io.reads regression");
    Alcotest.test_case "improvements and small deltas do not fail" `Quick (fun () ->
        let base = parse {|{"io":{"reads":100,"hit_ratio":0.5},"tiny":{"reads":3}}|} in
        (* reads down = better; hit_ratio up = better; 3 -> 4 reads is a
           33% move but under the 1-page floor. *)
        let cur = parse {|{"io":{"reads":50,"hit_ratio":0.9},"tiny":{"reads":4}}|} in
        let r = Bench_diff.diff ~baseline:base ~current:cur () in
        Alcotest.(check bool) "ok" true (Bench_diff.ok r);
        Alcotest.(check bool) "improvement recorded" true
          (List.exists
             (fun v -> v.Bench_diff.kind = Bench_diff.Improvement)
             r.Bench_diff.verdicts));
    Alcotest.test_case "hit ratio regressions point the other way" `Quick (fun () ->
        let base = parse {|{"hit_ratio":0.9}|} in
        let cur = parse {|{"hit_ratio":0.5}|} in
        let r = Bench_diff.diff ~threshold_pct:10. ~baseline:base ~current:cur () in
        Alcotest.(check int) "regression" 1 r.Bench_diff.regressions);
    Alcotest.test_case "shape changes are mismatches" `Quick (fun () ->
        let base = parse {|{"nodes":10,"series":[1,2],"io_model":"dcas","gone":1}|} in
        let cur = parse {|{"nodes":11,"series":[1,2,3],"io_model":"other"}|} in
        let r = Bench_diff.diff ~baseline:base ~current:cur () in
        Alcotest.(check bool) "fails" false (Bench_diff.ok r);
        (* exact-match key drifted + array length + string + missing key *)
        Alcotest.(check int) "mismatches" 4 r.Bench_diff.mismatches);
    Alcotest.test_case "wall-clock figures are skipped" `Quick (fun () ->
        let base = parse {|{"build_wall_s":1.0}|} in
        let cur = parse {|{"build_wall_s":99.0}|} in
        let r = Bench_diff.diff ~baseline:base ~current:cur () in
        Alcotest.(check bool) "ok" true (Bench_diff.ok r);
        Alcotest.(check int) "no verdicts" 0 (List.length r.Bench_diff.verdicts));
    Alcotest.test_case "verdict json carries the gate outcome" `Quick (fun () ->
        let base = parse {|{"reads":10}|} in
        let cur = parse {|{"reads":100}|} in
        let r = Bench_diff.diff ~baseline:base ~current:cur () in
        let j = Bench_diff.to_json r in
        Alcotest.(check bool) "ok=false" true (Json.member "ok" j = Some (Json.Bool false));
        Alcotest.(check bool) "regressions counted" true
          (Json.member "regressions" j = Some (Json.Int 1)));
  ]

let suites =
  [
    ("prof.quantile", quantile_tests);
    ("prof.spans", span_tests);
    ("prof.trace_view", filter_tests);
    ("prof.heat", heat_tests);
    ("prof.flame", flame_tests);
    ("prof.analyze", analyze_tests);
    ("prof.doctor", doctor_tests);
    ("prof.cluster", cluster_tests);
    ("prof.bench_diff", bench_diff_tests);
  ]
