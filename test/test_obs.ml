(* Tests for the observability subsystem: JSON codec, metrics registry
   (bucket edges), trace sinks (ring ordering, JSONL round-trip), span
   timing on the simulated clock, and the store-level measurement
   protocol (hit ratio / reset_stats / clear). *)

open Natix_util
open Natix_obs
module Buffer_pool = Natix_store.Buffer_pool
module Disk = Natix_store.Disk

let rid p s = Rid.make ~page:p ~slot:s

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let json_tests =
  [
    Alcotest.test_case "print/parse roundtrip" `Quick (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.Float 1.5);
              ("s", Json.String "with \"quotes\" and \n control");
              ("l", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
              ("nested", Json.Obj [ ("empty", Json.List []) ]);
            ]
        in
        let v' = Json.parse (Json.to_string v) in
        Alcotest.(check string) "stable" (Json.to_string v) (Json.to_string v'));
    Alcotest.test_case "member lookup" `Quick (fun () ->
        let v = Json.parse {|{"x": {"y": [1, 2, 3]}}|} in
        match Json.member "x" v with
        | Some inner ->
          Alcotest.(check bool) "y present" true (Json.member "y" inner <> None);
          Alcotest.(check bool) "z absent" true (Json.member "z" inner = None)
        | None -> Alcotest.fail "x missing");
    Alcotest.test_case "non-finite floats become null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
        Alcotest.(check string)
          "inf" "null"
          (Json.to_string (Json.Float Float.infinity)));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let metrics_tests =
  [
    Alcotest.test_case "histogram buckets are upper-inclusive" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 10.; 20.; 30. |];
        List.iter (Metrics.observe m "h") [ 9.; 10.; 10.5; 20.; 30.; 31.; 1000. ];
        match Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram lost"
        | Some (edges, counts, sum, n) ->
          Alcotest.(check int) "edge count" 3 (Array.length edges);
          (* 9 and 10 in <=10; 10.5 and 20 in <=20; 30 in <=30; 31 and
             1000 overflow. *)
          Alcotest.(check (array int)) "counts" [| 2; 2; 1; 2 |] counts;
          Alcotest.(check int) "n" 7 n;
          Alcotest.(check (float 1e-9)) "sum" 1110.5 sum);
    Alcotest.test_case "re-registration: idempotent same edges, rejects new" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.register_histogram m "h" ~edges:[| 1.; 2. |];
        Metrics.observe m "h" 1.5;
        Metrics.register_histogram m "h" ~edges:[| 1.; 2. |];
        (match Metrics.histogram m "h" with
        | Some (_, _, _, n) -> Alcotest.(check int) "kept observations" 1 n
        | None -> Alcotest.fail "histogram lost");
        Alcotest.check_raises "different edges rejected"
          (Invalid_argument "Metrics.register_histogram: \"h\" re-registered with different edges")
          (fun () -> Metrics.register_histogram m "h" ~edges:[| 3.; 4. |]));
    Alcotest.test_case "counters and json snapshot" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.incr m "a";
        Metrics.incr ~by:4 m "a";
        Metrics.incr m "b";
        Metrics.register_histogram m "h" ~edges:[| 1. |];
        Metrics.observe m "h" 0.5;
        let j = Metrics.to_json m in
        let counter name =
          match Option.bind (Json.member "counters" j) (Json.member name) with
          | Some (Json.Int v) -> v
          | _ -> Alcotest.failf "counter %s missing" name
        in
        Alcotest.(check int) "a" 5 (counter "a");
        Alcotest.(check int) "b" 1 (counter "b");
        (match Option.bind (Json.member "histograms" j) (Json.member "h") with
        | Some h ->
          Alcotest.(check bool) "edges present" true (Json.member "edges" h <> None);
          Alcotest.(check bool) "counts present" true (Json.member "counts" h <> None)
        | None -> Alcotest.fail "histogram missing from snapshot");
        Metrics.reset m;
        Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter m "a"));
    Alcotest.test_case "quantile: empty and degenerate histograms yield None, never NaN"
      `Quick (fun () ->
        let m = Metrics.create () in
        Alcotest.(check (option (float 1e-9))) "unknown name" None (Metrics.quantile m "h" 0.5);
        Metrics.register_histogram m "h" ~edges:[| 1.; 2. |];
        Alcotest.(check (option (float 1e-9))) "registered but empty" None
          (Metrics.quantile m "h" 0.5);
        (* Non-finite observations are dropped, so the histogram stays
           empty and the sum stays finite. *)
        List.iter (Metrics.observe m "h") [ Float.nan; Float.infinity; Float.neg_infinity ];
        Alcotest.(check (option (float 1e-9))) "still empty after non-finite feeds" None
          (Metrics.quantile m "h" 0.5);
        (match Metrics.histogram m "h" with
        | Some (_, _, sum, n) ->
          Alcotest.(check int) "n counts only finite observations" 0 n;
          Alcotest.(check bool) "sum stays finite" true (Float.is_finite sum)
        | None -> Alcotest.fail "histogram lost");
        Metrics.observe m "h" 1.5;
        (match Metrics.quantile m "h" 1.0 with
        | Some v -> Alcotest.(check bool) "finite quantile" true (Float.is_finite v)
        | None -> Alcotest.fail "quantile missing after a finite observation");
        Alcotest.check_raises "q out of range rejected"
          (Invalid_argument "Metrics.quantile: q must be in [0, 1]") (fun () ->
            ignore (Metrics.quantile m "h" 1.5)));
    Alcotest.test_case "register_histogram rejects non-finite edges" `Quick (fun () ->
        let m = Metrics.create () in
        Alcotest.check_raises "NaN edge rejected"
          (Invalid_argument "Metrics.register_histogram: edges must be finite and strictly increasing")
          (fun () -> Metrics.register_histogram m "bad" ~edges:[| 1.; Float.nan |]);
        Alcotest.check_raises "infinite edge rejected"
          (Invalid_argument "Metrics.register_histogram: edges must be finite and strictly increasing")
          (fun () -> Metrics.register_histogram m "bad" ~edges:[| 1.; Float.infinity |]));
  ]

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let mk_event seq kind = { Event.seq; at_ms = float_of_int seq; kind; ctx = None }

let sink_tests =
  [
    Alcotest.test_case "ring keeps the newest events, oldest first" `Quick (fun () ->
        let r = Sink.ring ~capacity:4 () in
        for i = 1 to 6 do
          Sink.emit r (mk_event i (Event.Page_fix { page = i; hit = true }))
        done;
        Alcotest.(check int) "emitted counts all" 6 (Sink.emitted r);
        let seqs = List.map (fun (e : Event.t) -> e.seq) (Sink.events r) in
        Alcotest.(check (list int)) "window" [ 3; 4; 5; 6 ] seqs);
    Alcotest.test_case "ring below capacity returns everything" `Quick (fun () ->
        let r = Sink.ring ~capacity:8 () in
        for i = 1 to 3 do
          Sink.emit r (mk_event i (Event.Page_flush { page = i }))
        done;
        Alcotest.(check (list int)) "all three" [ 1; 2; 3 ]
          (List.map (fun (e : Event.t) -> e.seq) (Sink.events r)));
    Alcotest.test_case "jsonl roundtrips through the parser" `Quick (fun () ->
        let path = Filename.temp_file "natix_trace" ".jsonl" in
        let s = Sink.jsonl path in
        let emitted =
          [
            mk_event 1 (Event.Io { page = 3; write = true; sequential = false });
            mk_event 2 (Event.Record_alloc { rid = rid 3 1; bytes = 128 });
            mk_event 3
              (Event.Split
                 { rid = rid 3 1; decision = Event.Cluster; fill = 0.875; record_bytes = 4000 });
            mk_event 4 (Event.Span { name = "load"; dur_ms = 12.5; id = 1; parent = 0; depth = 0 });
          ]
        in
        List.iter (Sink.emit s) emitted;
        Sink.close s;
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        let parsed = List.rev_map Json.parse !lines in
        Alcotest.(check int) "line per event" (List.length emitted) (List.length parsed);
        List.iter2
          (fun (e : Event.t) j ->
            (match Json.member "seq" j with
            | Some (Json.Int seq) -> Alcotest.(check int) "seq" e.seq seq
            | _ -> Alcotest.fail "seq missing");
            match Json.member "type" j with
            | Some (Json.String ty) ->
              Alcotest.(check string) "type" (Event.type_name e.kind) ty
            | _ -> Alcotest.fail "type missing")
          emitted parsed;
        (* Spot-check one payload field survives the roundtrip. *)
        (match List.nth parsed 2 |> Json.member "fill" with
        | Some (Json.Float f) -> Alcotest.(check (float 1e-9)) "fill" 0.875 f
        | _ -> Alcotest.fail "fill missing");
        Sys.remove path);
    Alcotest.test_case "multi fans out" `Quick (fun () ->
        let a = Sink.ring ~capacity:4 () and b = Sink.ring ~capacity:4 () in
        let m = Sink.multi [ a; b ] in
        Sink.emit m (mk_event 1 (Event.Page_fix { page = 0; hit = false }));
        Alcotest.(check int) "a got it" 1 (Sink.emitted a);
        Alcotest.(check int) "b got it" 1 (Sink.emitted b));
  ]

(* ------------------------------------------------------------------ *)
(* Obs handle                                                          *)

let obs_tests =
  [
    Alcotest.test_case "emit stamps sequence and counts per type" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        Obs.emit obs (Event.Page_fix { page = 0; hit = true });
        Obs.emit obs (Event.Page_fix { page = 1; hit = false });
        Obs.emit obs (Event.Page_flush { page = 0 });
        Alcotest.(check int) "emitted" 3 (Obs.emitted obs);
        Alcotest.(check int) "fix counter" 2 (Metrics.counter (Obs.metrics obs) "ev.page_fix");
        Alcotest.(check (list int)) "sequence" [ 1; 2; 3 ]
          (List.map (fun (e : Event.t) -> e.seq) (Obs.events obs)));
    Alcotest.test_case "span measures the installed clock" `Quick (fun () ->
        let obs = Obs.create ~sink:(Sink.ring ()) () in
        let now = ref 100. in
        Obs.set_clock obs (fun () -> !now);
        let v = Obs.span obs "work" (fun () -> now := 250.; "done") in
        Alcotest.(check string) "result passes through" "done" v;
        match Obs.events obs with
        | [ { Event.kind = Event.Span { name; dur_ms; _ }; at_ms; _ } ] ->
          Alcotest.(check string) "name" "work" name;
          Alcotest.(check (float 1e-9)) "duration" 150. dur_ms;
          Alcotest.(check (float 1e-9)) "stamped at end" 250. at_ms
        | _ -> Alcotest.fail "expected exactly one span event");
    Alcotest.test_case "sinkless handle still counts" `Quick (fun () ->
        let obs = Obs.create () in
        Obs.emit obs (Event.Page_flush { page = 9 });
        Alcotest.(check int) "counter" 1 (Metrics.counter (Obs.metrics obs) "ev.page_flush");
        Alcotest.(check (list int)) "no retained events" []
          (List.map (fun (e : Event.t) -> e.seq) (Obs.events obs)));
  ]

(* ------------------------------------------------------------------ *)
(* Buffer-pool measurement protocol                                    *)

let protocol_tests =
  [
    Alcotest.test_case "hit ratio under the measurement protocol" `Quick (fun () ->
        let page_size = 256 in
        let d = Disk.in_memory ~page_size () in
        let pool = Buffer_pool.create ~disk:d ~bytes:(4 * page_size) () in
        let p = Disk.allocate d in
        Alcotest.(check (float 1e-9)) "vacuous ratio is 1" 1.0 (Buffer_pool.hit_ratio pool);
        Buffer_pool.with_page pool p (fun _ -> ());
        Buffer_pool.with_page pool p (fun _ -> ());
        Buffer_pool.with_page pool p (fun _ -> ());
        (* 3 fixes, 1 miss. *)
        Alcotest.(check (float 1e-9)) "warm ratio" (2. /. 3.) (Buffer_pool.hit_ratio pool);
        (* Protocol: drop frames but keep counters, then reset explicitly. *)
        Buffer_pool.clear pool;
        Alcotest.(check int) "clear preserves fixes" 3 (Buffer_pool.fixes pool);
        Buffer_pool.reset_stats pool;
        Alcotest.(check int) "reset zeroes fixes" 0 (Buffer_pool.fixes pool);
        Buffer_pool.with_page pool p (fun _ -> ());
        Alcotest.(check (float 1e-9)) "cold op misses" 0.0 (Buffer_pool.hit_ratio pool));
  ]

let suites =
  [
    ("obs.json", json_tests);
    ("obs.metrics", metrics_tests);
    ("obs.sinks", sink_tests);
    ("obs.handle", obs_tests);
    ("obs.protocol", protocol_tests);
  ]
