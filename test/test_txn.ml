(* Transactional writers: group-commit contract on the simulated clock,
   store-level transaction semantics (atomicity, poisoning, no-mix), and
   the byte-by-byte torn-tail regression sweep over the redo+undo log. *)

open Natix_core
open Natix_store
open Natix_workload

let page_size = 1024

let config () =
  { (Config.default ()) with Config.page_size; buffer_bytes = 16 * page_size }

let fresh path =
  if Sys.file_exists path then Sys.remove path;
  let wal = Recovery.wal_path path in
  if Sys.file_exists wal then Sys.remove wal

let with_store_file f =
  let path = Filename.temp_file "natix_txn" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      fresh path;
      f path)

let play ~seed i =
  let params =
    {
      Shakespeare.plays = 1;
      seed = Int64.of_int seed;
      acts_per_play = 1;
      scenes_per_act = (1, 2);
      speeches_per_scene = (2, 3);
      lines_per_speech = (1, 3);
      words_per_line = (3, 6);
      personae = (2, 3);
      stagedir_every = 4;
    }
  in
  Shakespeare.generate_play params (Natix_util.Prng.create ~seed:params.Shakespeare.seed) i

let export store doc =
  Natix_xml.Xml_print.to_string (Option.get (Exporter.document_to_xml store doc))

(* ------------------------------------------------------------------ *)
(* Group-commit contract (WAL-level, fully deterministic)              *)

let with_wal f =
  let path = Filename.temp_file "natix_gc" ".wal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let wal = Wal.create ~page_size:256 ~base:0 path in
      Fun.protect ~finally:(fun () -> Wal.close wal) (fun () -> f wal))

let append_commit wal ~txn =
  let b = Wal.log_begin wal ~txn ~base:0 in
  Wal.log_commit wal ~txn ~prev_lsn:b ~page_count:0

let group_commit_tests =
  [
    Alcotest.test_case "lone committer pays exactly one delay window" `Quick (fun () ->
        with_wal (fun wal ->
            let charged = ref 0. in
            let gc =
              Group_commit.create ~commit_delay:3.5 ~charge:(fun ms -> charged := !charged +. ms)
                wal
            in
            let lsn = append_commit wal ~txn:1 in
            (match Group_commit.commit gc ~lsn with
            | Ok () -> ()
            | Error m -> Alcotest.failf "commit failed: %s" m);
            Alcotest.(check (float 1e-9)) "one batching window charged" 3.5 !charged;
            Alcotest.(check int) "one flush" 1 (Group_commit.flushes gc);
            Alcotest.(check int) "one commit" 1 (Group_commit.committed gc);
            Alcotest.(check bool) "record durable" true (Wal.durable_lsn wal >= lsn)));
    Alcotest.test_case "a group of committers shares one flush" `Quick (fun () ->
        with_wal (fun wal ->
            let charged = ref 0. in
            let gc =
              Group_commit.create ~commit_delay:2.0 ~charge:(fun ms -> charged := !charged +. ms)
                wal
            in
            (* Four transactions land their commit records in the pending
               buffer during the leader's batching window; the first commit
               call flushes them all, the rest find the watermark already
               past their LSN. *)
            let lsns = List.map (fun txn -> append_commit wal ~txn) [ 1; 2; 3; 4 ] in
            let last = List.fold_left max 0 lsns in
            (match Group_commit.commit gc ~lsn:last with
            | Ok () -> ()
            | Error m -> Alcotest.failf "leader commit failed: %s" m);
            List.iter
              (fun lsn ->
                match Group_commit.commit gc ~lsn with
                | Ok () -> ()
                | Error m -> Alcotest.failf "follower commit failed: %s" m)
              lsns;
            Alcotest.(check int) "one flush for the whole group" 1 (Group_commit.flushes gc);
            Alcotest.(check int) "all five requests committed" 5 (Group_commit.committed gc);
            Alcotest.(check (float 1e-9)) "one batching window charged" 2.0 !charged));
    Alcotest.test_case "zero delay charges nothing" `Quick (fun () ->
        with_wal (fun wal ->
            let charged = ref 0. in
            let gc = Group_commit.create ~charge:(fun ms -> charged := !charged +. ms) wal in
            let lsn = append_commit wal ~txn:1 in
            (match Group_commit.commit gc ~lsn with
            | Ok () -> ()
            | Error m -> Alcotest.failf "commit failed: %s" m);
            Alcotest.(check (float 0.)) "no simulated time charged" 0. !charged));
    Alcotest.test_case "a crashed flush poisons the daemon, commits never hang" `Quick
      (fun () ->
        let path = Filename.temp_file "natix_gc" ".wal" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let plan = Faulty_disk.create ~seed:11L () in
            let wal = Wal.create ~faults:plan ~page_size:256 ~base:0 path in
            Fun.protect
              ~finally:(fun () -> Wal.close wal)
              (fun () ->
                let gc = Group_commit.create ~charge:(fun _ -> ()) wal in
                let lsn = append_commit wal ~txn:1 in
                Faulty_disk.arm_fsync_crash plan 0;
                (match Group_commit.commit gc ~lsn with
                | exception Faulty_disk.Crash -> ()
                | Ok () -> Alcotest.fail "commit survived an armed fsync crash"
                | Error m -> Alcotest.failf "leader got Error %S, expected the crash" m);
                Alcotest.(check bool) "daemon poisoned" true (Group_commit.poisoned gc);
                (* Later committers get a typed error immediately. *)
                match Group_commit.commit gc ~lsn with
                | Error _ -> ()
                | Ok () -> Alcotest.fail "commit succeeded on a poisoned daemon")));
    Alcotest.test_case "acked commits survive a crash before any data write" `Quick (fun () ->
        (* No-force: the ack only proves the log records are durable.  Kill
           the process right after the ack — before a single data page is
           written back — and recovery must redo the transaction. *)
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~first_lsn:10 ~page_size:(Disk.page_size d)
                ~base:(Disk.page_count d) (Recovery.wal_path path)
            in
            let gc = Group_commit.create ~charge:(fun _ -> ()) wal in
            let b = Wal.log_begin wal ~txn:1 ~base:(Disk.page_count d) in
            let u =
              Wal.log_update wal ~txn:1 ~prev_lsn:b ~page:p ~before:(Bytes.make ps 'A')
                ~after:(Bytes.make ps 'B')
            in
            let c = Wal.log_commit wal ~txn:1 ~prev_lsn:u ~page_count:(Disk.page_count d) in
            (match Group_commit.commit gc ~lsn:c with
            | Ok () -> ()
            | Error m -> Alcotest.failf "commit failed: %s" m);
            (* Simulated death: nothing else reaches the store file. *)
            Wal.close wal;
            Disk.close d;
            let d2 = Disk.on_file ~page_size:256 path in
            let rep = Recovery.run d2 in
            Alcotest.(check int) "acked page redone" 1 rep.Recovery.redone;
            Alcotest.(check int) "no losers" 0 rep.Recovery.losers;
            let r = Bytes.create ps in
            Disk.read d2 p r;
            Alcotest.(check bytes) "acked content present" (Bytes.make ps 'B') r;
            Disk.close d2));
  ]

(* ------------------------------------------------------------------ *)
(* Store-level transactions                                            *)

let open_txn_store ?plan ?(commit_delay = 0.) path =
  let disk = Disk.on_file ~page_size path in
  (match plan with None -> () | Some p -> Disk.set_faults disk (Some p));
  Tree_store.open_store ~config:{ (config ()) with Config.commit_delay } disk

let txn_tests =
  [
    Alcotest.test_case "a committed transaction survives death before write-back" `Quick
      (fun () ->
        with_store_file (fun path ->
            let store = open_txn_store path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            let xml = play ~seed:41 0 in
            (match Document_manager.store_transactional dm ~name:"doc" xml with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e));
            let expected = export store "doc" in
            (* close ~commit:false: no checkpoint, so the buffer pool's
               dirty pages never reach the store file — only the WAL has
               the transaction.  Recovery must rebuild it from redo. *)
            Tree_store.close ~commit:false store;
            let store2 = open_txn_store path in
            Alcotest.(check (list string)) "document present" [ "doc" ]
              (Tree_store.list_documents store2);
            (let report = Fsck.run store2 in
             if not (Fsck.ok report) then
               Alcotest.failf "post-recovery fsck: %a" Fsck.pp report);
            Alcotest.(check string) "export byte-identical" expected (export store2 "doc");
            Tree_store.close ~commit:false store2));
    Alcotest.test_case "transactions on different documents commit from 3 domains" `Quick
      (fun () ->
        with_store_file (fun path ->
            let files =
              List.init 6 (fun i ->
                  ( Printf.sprintf "play-%d" i,
                    Natix_xml.Xml_print.to_string ~decl:true (play ~seed:(50 + i) i) ))
            in
            (* Sequential reference. *)
            let reference =
              let store = Tree_store.in_memory ~config:(config ()) () in
              let dm = Document_manager.create ~index:Document_manager.Off store in
              List.iter
                (fun (name, text) ->
                  match
                    Document_manager.store_document dm ~name (Natix_xml.Xml_parser.parse text)
                  with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "reference load: %s" (Error.to_string e))
                files;
              let r = List.map (fun (n, _) -> (n, export store n)) files in
              Tree_store.close ~commit:false store;
              r
            in
            let store = open_txn_store ~commit_delay:1.0 path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            let outcome = Natix_par.Par.load_files_txn ~jobs:3 dm files in
            List.iter2
              (fun (name, _) result ->
                match result with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" name (Error.to_string e))
              files outcome.Natix_par.Par.results;
            Alcotest.(check int) "no transaction left active" 0 (Tree_store.active_txns store);
            (let gc = Option.get (Tree_store.group_commit store) in
             Alcotest.(check int) "every document committed" (List.length files)
               (Group_commit.committed gc);
             Alcotest.(check bool) "commit fsyncs batched or equal" true
               (Group_commit.flushes gc <= Group_commit.committed gc));
            List.iter
              (fun (name, expected) ->
                Alcotest.(check string) (name ^ " export") expected (export store name))
              reference;
            Tree_store.close ~commit:false store;
            (* And again through recovery: nothing was checkpointed. *)
            let store2 = open_txn_store path in
            Alcotest.(check bool) "fsck clean after recovery" true
              (Fsck.ok (Fsck.run store2));
            List.iter
              (fun (name, expected) ->
                Alcotest.(check string) (name ^ " after recovery") expected
                  (export store2 name))
              reference;
            Tree_store.close ~commit:false store2));
    Alcotest.test_case "unscoped mutation and checkpoint are rejected mid-transaction" `Quick
      (fun () ->
        with_store_file (fun path ->
            let store = open_txn_store path in
            ignore (Loader.load store ~name:"base" (play ~seed:77 0));
            Tree_store.checkpoint store;
            let m = Mutex.create () and c = Condition.create () in
            let started = ref false and release = ref false in
            let signal r =
              Mutex.lock m;
              r := true;
              Condition.broadcast c;
              Mutex.unlock m
            in
            let wait r =
              Mutex.lock m;
              while not !r do
                Condition.wait c m
              done;
              Mutex.unlock m
            in
            let writer =
              Domain.spawn (fun () ->
                  Tree_store.with_txn store ~doc:"txn-doc" (fun () ->
                      ignore (Loader.load store ~name:"txn-doc" (play ~seed:78 1));
                      signal started;
                      wait release))
            in
            wait started;
            Alcotest.(check int) "one transaction in flight" 1 (Tree_store.active_txns store);
            (match Tree_store.create_document store ~name:"smuggled" ~root:"r" with
            | exception Error.Error (Error.Storage _) -> ()
            | _ -> Alcotest.fail "unscoped mutation accepted mid-transaction");
            (match Tree_store.checkpoint store with
            | exception Error.Error (Error.Storage _) -> ()
            | () -> Alcotest.fail "checkpoint accepted mid-transaction");
            signal release;
            ignore (Domain.join writer);
            Alcotest.(check int) "transaction drained" 0 (Tree_store.active_txns store);
            (* With no transaction in flight both work again. *)
            ignore (Tree_store.create_document store ~name:"ok-now" ~root:"r");
            Tree_store.checkpoint store;
            Tree_store.close store));
    Alcotest.test_case "a crashed commit poisons the store with typed errors" `Quick (fun () ->
        with_store_file (fun path ->
            let plan = Faulty_disk.create ~seed:5L () in
            let store = open_txn_store ~plan path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            (match Document_manager.store_transactional dm ~name:"first" (play ~seed:90 0) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "first store failed: %s" (Error.to_string e));
            let expected = export store "first" in
            (* The next log fsync — the second document's commit — dies. *)
            Faulty_disk.arm_fsync_crash plan 0;
            (match Document_manager.store_transactional dm ~name:"second" (play ~seed:91 1) with
            | exception Faulty_disk.Crash -> ()
            | Ok _ -> Alcotest.fail "commit survived an armed fsync crash"
            | Error e -> Alcotest.failf "expected the crash, got %s" (Error.to_string e));
            Alcotest.(check bool) "store poisoned" true (Tree_store.poisoned store <> None);
            (* Every later operation fails with a typed error — no hang,
               no untyped exception. *)
            (match Document_manager.store_transactional dm ~name:"third" (play ~seed:92 2) with
            | exception Error.Error (Error.Storage _) -> ()
            | _ -> Alcotest.fail "poisoned store accepted a transaction");
            (match Tree_store.checkpoint store with
            | exception Error.Error (Error.Storage _) -> ()
            | () -> Alcotest.fail "poisoned store accepted a checkpoint");
            (* close must NOT checkpoint (that would promote the loser). *)
            Tree_store.close store;
            let store2 = open_txn_store path in
            Alcotest.(check (list string)) "loser rolled back, first survives" [ "first" ]
              (Tree_store.list_documents store2);
            Alcotest.(check bool) "fsck clean" true (Fsck.ok (Fsck.run store2));
            Alcotest.(check string) "first export intact" expected (export store2 "first");
            Tree_store.close ~commit:false store2));
    Alcotest.test_case "commit_delay lands on the simulated clock" `Quick (fun () ->
        with_store_file (fun path ->
            let store = open_txn_store ~commit_delay:4.25 path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            let before = (Tree_store.io_stats store).Io_stats.sim_ms in
            (match Document_manager.store_transactional dm ~name:"doc" (play ~seed:93 0) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "store failed: %s" (Error.to_string e));
            let after = (Tree_store.io_stats store).Io_stats.sim_ms in
            Alcotest.(check bool) "at least one batching window charged" true
              (after -. before >= 4.25);
            Tree_store.close store));
    Alcotest.test_case "transactions need a write-ahead log" `Quick (fun () ->
        let store = Tree_store.in_memory ~config:(config ()) () in
        (match Tree_store.with_txn store ~doc:"d" (fun () -> ()) with
        | exception Error.Error (Error.Storage _) -> ()
        | () -> Alcotest.fail "in-memory store accepted a transaction");
        Tree_store.close store);
    Alcotest.test_case "LSN sequence survives a crash at the checkpoint truncation" `Quick
      (fun () ->
        (* A checkpoint truncates the log; if the crash lands on the fresh
           log's first fsync, recovery finds a log with no records while
           data-page trailers still carry the previous incarnation's LSNs.
           The sequence must resume above them (the WAL header's high-water
           mark), or later committed transactions redo as no-ops — the
           pages "already contain" records they have never seen. *)
        with_store_file (fun path ->
            let plan = Faulty_disk.create ~seed:21L () in
            let store = open_txn_store ~plan path in
            (* Lots of logged records: the first incarnation's LSNs (and
               with them the trailer stamps its checkpoint flushes home)
               must dwarf anything the short second incarnation draws. *)
            ignore
              (Tree_store.with_txn store ~doc:"play" (fun () ->
                   for i = 0 to 3 do
                     ignore
                       (Loader.load store
                          ~name:(if i = 0 then "play" else Printf.sprintf "play_%d" i)
                          (play ~seed:(70 + i) i))
                   done));
            let reference = export store "play" in
            (* Survive the checkpoint's commit-record fsync; die on the
               post-truncation Begin fsync, leaving a bare header. *)
            Faulty_disk.arm_fsync_crash plan (Faulty_disk.fsyncs_seen plan + 1);
            (match Tree_store.checkpoint store with
            | exception Faulty_disk.Crash -> ()
            | () -> Alcotest.fail "checkpoint survived the armed fsync crash");
            Tree_store.close ~commit:false store;
            (* Reopen and commit one small document: its transaction
               updates catalog pages whose on-disk trailers carry
               first-incarnation LSNs far above a restarted sequence. *)
            let store2 = open_txn_store path in
            ignore
              (Tree_store.with_txn store2 ~doc:"play2" (fun () ->
                   ignore (Tree_store.create_document store2 ~name:"play2" ~root:"r")));
            let expected2 = export store2 "play2" in
            Tree_store.close ~commit:false store2;
            (* The ack is all this transaction ever got — recovery must
               redo it even onto pages with older (higher-looking) stamps. *)
            let store3 = open_txn_store path in
            Alcotest.(check bool) "fsck clean" true (Fsck.ok (Fsck.run store3));
            Alcotest.(check bool) "acked document present" true
              (List.mem "play2" (Tree_store.list_documents store3));
            Alcotest.(check string) "first document intact" reference (export store3 "play");
            Alcotest.(check string) "acked commit redone" expected2 (export store3 "play2");
            Tree_store.close ~commit:false store3));
    Alcotest.test_case "unscoped mutation after a commit is WAL-covered" `Quick (fun () ->
        (* After the last transaction commits, the pool stays in
           transaction mode until a checkpoint, where implicit steal
           logging is off.  Unscoped mutation entering that window must
           checkpoint out of it first — otherwise its dirty pages reach
           disk with no WAL coverage and a crash leaves the batch
           partially applied.  Sweep crash points across the flush. *)
        let crashed = ref 0 in
        let point = ref 0 in
        let continue = ref true in
        while !continue do
          with_store_file (fun path ->
              let plan = Faulty_disk.create ~seed:31L () in
              let store = open_txn_store ~plan path in
              ignore
                (Tree_store.with_txn store ~doc:"committed" (fun () ->
                     ignore (Loader.load store ~name:"committed" (play ~seed:80 0))));
              let reference = export store "committed" in
              (* Unscoped regime: mutate outside any transaction, then
                 crash partway through flushing the batch home. *)
              ignore (Loader.load store ~name:"batch" (play ~seed:81 1));
              let expected_batch = export store "batch" in
              Faulty_disk.arm_crash plan (Faulty_disk.writes_seen plan + !point);
              (match Tree_store.checkpoint store with
              | exception Faulty_disk.Crash ->
                incr crashed;
                Tree_store.close ~commit:false store
              | () ->
                (* The sweep walked past the flush: no more crash points. *)
                continue := false;
                Tree_store.close ~commit:false store);
              let store2 = open_txn_store path in
              Alcotest.(check bool)
                (Printf.sprintf "crash point %d: fsck clean" !point)
                true
                (Fsck.ok (Fsck.run store2));
              Alcotest.(check string)
                (Printf.sprintf "crash point %d: committed document intact" !point)
                reference (export store2 "committed");
              (* The batch is atomic: wholly absent (rolled back to the
                 checkpoint guard_mutate forced) or wholly present. *)
              (match Tree_store.document_rid store2 "batch" with
              | None -> ()
              | Some _ ->
                Alcotest.(check string)
                  (Printf.sprintf "crash point %d: batch complete if present" !point)
                  expected_batch (export store2 "batch"));
              Tree_store.close ~commit:false store2);
          incr point
        done;
        Alcotest.(check bool) "sweep hit at least one crash point" true (!crashed > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Torn-tail hardening: byte-by-byte sweep                             *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let torn_tail_tests =
  [
    Alcotest.test_case "recovery survives truncation at every byte offset" `Slow (fun () ->
        with_store_file (fun path ->
            (* One committed transaction: Begin0, Begin1, Update('A'->'B'),
               Commit.  The page itself is never written, so the recovered
               content is 'B' exactly when the whole log survived and 'A'
               for every proper prefix. *)
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~first_lsn:10 ~page_size:(Disk.page_size d)
                ~base:(Disk.page_count d) (Recovery.wal_path path)
            in
            let b = Wal.log_begin wal ~txn:1 ~base:(Disk.page_count d) in
            let u =
              Wal.log_update wal ~txn:1 ~prev_lsn:b ~page:p ~before:(Bytes.make ps 'A')
                ~after:(Bytes.make ps 'B')
            in
            ignore (Wal.log_commit wal ~txn:1 ~prev_lsn:u ~page_count:(Disk.page_count d));
            Wal.fsync wal;
            Wal.close wal;
            Disk.close d;
            let wal_path = Recovery.wal_path path in
            let pristine_store = read_whole path in
            let pristine_wal = read_whole wal_path in
            let n = String.length pristine_wal in
            for cut = 0 to n do
              write_whole path pristine_store;
              write_whole wal_path (String.sub pristine_wal 0 cut);
              let d2 = Disk.on_file ~page_size:256 path in
              (match Recovery.run d2 with
              | exception e ->
                Alcotest.failf "cut at %d/%d bytes: recovery raised %s" cut n
                  (Printexc.to_string e)
              | rep ->
                if cut < n then
                  Alcotest.(check bool)
                    (Printf.sprintf "cut at %d: torn tail reported or clean boundary" cut)
                    true
                    (rep.Recovery.torn_bytes > 0 || rep.Recovery.ran);
                let r = Bytes.create ps in
                Disk.read d2 p r;
                let expect = if cut = n then 'B' else 'A' in
                Alcotest.(check bytes)
                  (Printf.sprintf "cut at %d: content resolves to '%c'" cut expect)
                  (Bytes.make ps expect) r);
              Disk.close d2
            done));
    Alcotest.test_case "recovery survives a flipped byte at every offset" `Slow (fun () ->
        with_store_file (fun path ->
            let d = Disk.on_file ~page_size:256 path in
            let ps = Disk.payload_size d in
            let p = Disk.allocate d in
            Disk.write d p (Bytes.make ps 'A');
            let wal =
              Wal.create ~first_lsn:10 ~page_size:(Disk.page_size d)
                ~base:(Disk.page_count d) (Recovery.wal_path path)
            in
            let b = Wal.log_begin wal ~txn:1 ~base:(Disk.page_count d) in
            let u =
              Wal.log_update wal ~txn:1 ~prev_lsn:b ~page:p ~before:(Bytes.make ps 'A')
                ~after:(Bytes.make ps 'B')
            in
            ignore (Wal.log_commit wal ~txn:1 ~prev_lsn:u ~page_count:(Disk.page_count d));
            Wal.fsync wal;
            Wal.close wal;
            Disk.close d;
            let wal_path = Recovery.wal_path path in
            let pristine_store = read_whole path in
            let pristine_wal = read_whole wal_path in
            let n = String.length pristine_wal in
            (* Header bytes include don't-care padding, where a flip is
               legitimately invisible; the cut sweep above covers header
               damage.  Record bytes are all CRC-protected. *)
            for off = Wal.header_size to n - 1 do
              write_whole path pristine_store;
              let corrupt = Bytes.of_string pristine_wal in
              Bytes.set corrupt off (Char.chr (Char.code (Bytes.get corrupt off) lxor 0xff));
              write_whole wal_path (Bytes.to_string corrupt);
              let d2 = Disk.on_file ~page_size:256 path in
              (match Recovery.run d2 with
              | exception e ->
                Alcotest.failf "flip at %d/%d: recovery raised %s" off n
                  (Printexc.to_string e)
              | _rep ->
                (* A flip invalidates the CRC of the record containing it,
                   so parsing stops before the commit record: the page must
                   resolve to the pre-image. *)
                let r = Bytes.create ps in
                Disk.read d2 p r;
                Alcotest.(check bytes)
                  (Printf.sprintf "flip at %d: content rolls back to 'A'" off)
                  (Bytes.make ps 'A') r);
              Disk.close d2
            done));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrent writers: randomized differential harness                 *)

let parse s = Natix_xml.Xml_parser.parse s

let frag_text ~seed k =
  Printf.sprintf "<scene n=\"%d\"><line>appended %d by schedule %d</line></scene>" k k seed

let sum_reads outcome =
  List.fold_left
    (fun acc ws -> acc + ws.Natix_par.Par.io.Io_stats.reads)
    0 outcome.Natix_par.Par.workers

let sum_writes outcome =
  List.fold_left
    (fun acc ws -> acc + ws.Natix_par.Par.io.Io_stats.writes)
    0 outcome.Natix_par.Par.workers

(* One randomized schedule: [ndocs] documents created by disjoint
   concurrent writers, then [nappends] fragment transactions whose target
   documents overlap (every document gets at least one, the rest are drawn
   at random).  The commit order observed under the document latches is
   recorded with a ticket taken inside each transaction; replaying the
   same committed transactions sequentially in ticket order on a fresh
   store must yield byte-identical exports — concurrency may only change
   the schedule, never the result.  Also asserted: the per-writer I/O
   accounting partitions the disk totals exactly, and the store is
   fsck-clean (ownership tags included) after crash recovery. *)
let run_schedule ~seed ~jobs =
  with_store_file (fun path ->
      let label what = Printf.sprintf "schedule %d jobs %d: %s" seed jobs what in
      let ndocs = 3 + (seed mod 3) in
      let nappends = ndocs + 6 in
      let prng = Natix_util.Prng.create ~seed:(Int64.of_int (0xC0 + seed)) in
      let doc i = Printf.sprintf "doc-%d-%d" seed i in
      let files =
        List.init ndocs (fun i ->
            (doc i, Natix_xml.Xml_print.to_string ~decl:true (play ~seed:((seed * 100) + i) i)))
      in
      let store = open_txn_store ~commit_delay:0.25 path in
      let dm = Document_manager.create ~index:Document_manager.Off store in
      let disk = Buffer_pool.disk (Tree_store.buffer_pool store) in
      let io = Tree_store.io_stats store in
      (* Phase A: disjoint writers, one document each. *)
      let before_a = Io_stats.copy io in
      let created = Natix_par.Par.load_files_txn ~jobs dm files in
      List.iter2
        (fun (name, _) -> function
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" (label name) (Error.to_string e))
        files created.Natix_par.Par.results;
      let delta_a = Io_stats.diff (Io_stats.copy io) before_a in
      Alcotest.(check int) (label "disjoint reads partition") delta_a.Io_stats.reads
        (sum_reads created);
      Alcotest.(check int)
        (label "disjoint writes partition")
        delta_a.Io_stats.writes (sum_writes created);
      (* Phase B: overlapping writers — every document gets one append,
         the remainder target random documents. *)
      let appends =
        List.init nappends (fun k ->
            let d = if k < ndocs then doc k else doc (Natix_util.Prng.int prng ndocs) in
            (k, d, frag_text ~seed k))
      in
      let order = Array.make nappends (-1) in
      let ticket = Atomic.make 0 in
      let before_b = Io_stats.copy io in
      let appended =
        Natix_par.Par.map_tasks ~jobs ~disk
          ~make_ctx:(fun () -> ())
          ~f:(fun () (k, d, text) ->
            Tree_store.with_txn store ~doc:d (fun () ->
                let root = Option.get (Tree_store.open_document store d) in
                match
                  Document_manager.insert_fragment dm ~doc:d (Tree_store.First_under root)
                    (parse text)
                with
                | Ok _ -> order.(k) <- Atomic.fetch_and_add ticket 1
                | Error e -> Alcotest.failf "append %d on %s: %s" k d (Error.to_string e)))
          (Array.of_list appends)
      in
      let delta_b = Io_stats.diff (Io_stats.copy io) before_b in
      Alcotest.(check int)
        (label "overlapping reads partition")
        delta_b.Io_stats.reads (sum_reads appended);
      Alcotest.(check int)
        (label "overlapping writes partition")
        delta_b.Io_stats.writes (sum_writes appended);
      Alcotest.(check int) (label "every append committed") nappends (Atomic.get ticket);
      (* Sequential replay of the same committed transactions, in ticket
         order, on a fresh store. *)
      let expected =
        let ref_store = Tree_store.in_memory ~config:(config ()) () in
        let ref_dm = Document_manager.create ~index:Document_manager.Off ref_store in
        List.iter
          (fun (name, text) ->
            match Document_manager.store_document ref_dm ~name (parse text) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: replay load: %s" (label name) (Error.to_string e))
          files;
        List.iter
          (fun (k, d, text) ->
            let root = Option.get (Tree_store.open_document ref_store d) in
            match
              Document_manager.insert_fragment ref_dm ~doc:d (Tree_store.First_under root)
                (parse text)
            with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "replay append %d on %s: %s" k d (Error.to_string e))
          (List.sort (fun (a, _, _) (b, _, _) -> compare order.(a) order.(b)) appends);
        let exports = List.init ndocs (fun i -> (doc i, export ref_store (doc i))) in
        Tree_store.close ~commit:false ref_store;
        exports
      in
      List.iter (fun (d, x) -> Alcotest.(check string) (label d) x (export store d)) expected;
      Tree_store.close ~commit:false store;
      (* Everything was acked and nothing checkpointed: recovery must
         rebuild the identical store, with no orphaned pages. *)
      let store2 = open_txn_store path in
      let report = Fsck.run store2 in
      if not (Fsck.ok report) then Alcotest.failf "%s: %a" (label "post-recovery fsck") Fsck.pp report;
      List.iter
        (fun (d, x) -> Alcotest.(check string) (label (d ^ " after recovery")) x (export store2 d))
        expected;
      Tree_store.close ~commit:false store2)

let concurrent_tests =
  [
    Alcotest.test_case "randomized schedules match sequential replay at jobs 1/2/4" `Quick
      (fun () ->
        (* 7 seeds x 3 job counts = 21 schedules, all under lock-rank
           checking: the arena/alloc order must hold under real
           concurrent-writer stress. *)
        Lock_rank.enable ();
        let v0 = Lock_rank.violations () in
        Fun.protect
          ~finally:(fun () -> Lock_rank.disable ())
          (fun () ->
            List.iter (fun jobs -> for seed = 1 to 7 do run_schedule ~seed ~jobs done) [ 1; 2; 4 ]);
        Alcotest.(check int) "no lock-rank violations" v0 (Lock_rank.violations ()));
    Alcotest.test_case "two writers on the same document serialize on the doc latch" `Quick
      (fun () ->
        with_store_file (fun path ->
            let store = open_txn_store path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            (match Document_manager.store_transactional dm ~name:"shared" (play ~seed:60 0) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e));
            let k = 8 in
            let writer w =
              Domain.spawn (fun () ->
                  for i = 0 to k - 1 do
                    Tree_store.with_txn store ~doc:"shared" (fun () ->
                        let root = Option.get (Tree_store.open_document store "shared") in
                        match
                          Document_manager.insert_fragment dm ~doc:"shared"
                            (Tree_store.First_under root)
                            (parse (Printf.sprintf "<note w=\"%d\" i=\"%d\">x</note>" w i))
                        with
                        | Ok _ -> ()
                        | Error e -> failwith (Error.to_string e))
                  done)
            in
            let count_notes store =
              let root = Option.get (Tree_store.open_document store "shared") in
              Seq.fold_left
                (fun acc n ->
                  if Tree_store.is_element n && Tree_store.label_name store n.Phys_node.label = "note"
                  then acc + 1
                  else acc)
                0
                (Tree_store.logical_children store root)
            in
            let a = writer 0 and b = writer 1 in
            Domain.join a;
            Domain.join b;
            (* Lost updates would show as fewer than 2k notes: an insert
               that planned against a snapshot another writer overwrote. *)
            Alcotest.(check int) "no lost updates" (2 * k) (count_notes store);
            Tree_store.close ~commit:false store;
            let store2 = open_txn_store path in
            Alcotest.(check bool) "fsck clean" true (Fsck.ok (Fsck.run store2));
            Alcotest.(check int) "no lost updates after recovery" (2 * k) (count_notes store2);
            Tree_store.close ~commit:false store2));
    Alcotest.test_case "an idle document's checkpoint is not blocked by an unrelated writer"
      `Quick (fun () ->
        with_store_file (fun path ->
            let store = open_txn_store path in
            let dm = Document_manager.create ~index:Document_manager.Off store in
            (match Document_manager.store_transactional dm ~name:"idle" (play ~seed:61 0) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e));
            let expected = export store "idle" in
            let m = Mutex.create () and c = Condition.create () in
            let started = ref false and release = ref false in
            let signal r =
              Mutex.lock m;
              r := true;
              Condition.broadcast c;
              Mutex.unlock m
            in
            let wait r =
              Mutex.lock m;
              while not !r do
                Condition.wait c m
              done;
              Mutex.unlock m
            in
            let writer =
              Domain.spawn (fun () ->
                  Tree_store.with_txn store ~doc:"busy" (fun () ->
                      ignore (Loader.load store ~name:"busy" (play ~seed:62 1));
                      signal started;
                      wait release))
            in
            wait started;
            (* The store-wide checkpoint is rightly rejected... *)
            (match Tree_store.sync store with
            | exception Error.Error (Error.Storage _) -> ()
            | () -> Alcotest.fail "store-wide sync accepted mid-transaction");
            (* ... and so is the busy document's own checkpoint ... *)
            (match Tree_store.sync_document store "busy" with
            | exception Error.Error (Error.Storage _) -> ()
            | () -> Alcotest.fail "sync_document accepted on a document mid-transaction");
            (match Tree_store.sync_document store "ghost" with
            | exception Error.Error (Error.Storage _) -> ()
            | () -> Alcotest.fail "sync_document accepted an unknown document");
            (* ... but the idle document's is not: validation is against
               per-document transaction state, not the store-wide count. *)
            Tree_store.sync_document store "idle";
            Document_manager.checkpoint_document dm "idle";
            signal release;
            ignore (Domain.join writer);
            Alcotest.(check int) "transaction drained" 0 (Tree_store.active_txns store);
            Tree_store.close ~commit:false store;
            let store2 = open_txn_store path in
            Alcotest.(check bool) "fsck clean" true (Fsck.ok (Fsck.run store2));
            Alcotest.(check string) "idle document intact" expected (export store2 "idle");
            Tree_store.close ~commit:false store2));
  ]

let suites =
  [
    ("txn.group_commit", group_commit_tests);
    ("txn.store", txn_tests);
    ("txn.concurrent", concurrent_tests);
    ("txn.torn_tail", torn_tail_tests);
  ]
