(* Tests for the flat-stream baseline: the BLOB manager and flat XML
   documents. *)

open Natix_store
open Natix_flat

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let make_store ?(page_size = 512) () =
  let disk = Disk.in_memory ~model:Io_model.free ~page_size () in
  let pool = Buffer_pool.create ~disk ~bytes:(64 * page_size) () in
  Blob_store.create (Record_manager.create (Segment.create pool))

let blob_tests =
  [
    Alcotest.test_case "put/read_all roundtrip" `Quick (fun () ->
        let bs = make_store () in
        let data = String.init 5000 (fun i -> Char.chr (33 + (i mod 90))) in
        let b = Blob_store.put bs data in
        Alcotest.(check int) "length" 5000 (Blob_store.length b);
        Alcotest.(check bool) "spans several chunks" true (Blob_store.chunk_count b > 1);
        Alcotest.(check string) "content" data (Blob_store.read_all bs b));
    Alcotest.test_case "range reads" `Quick (fun () ->
        let bs = make_store () in
        let data = String.init 3000 (fun i -> Char.chr (65 + (i mod 26))) in
        let b = Blob_store.put bs data in
        Alcotest.(check string) "middle" (String.sub data 700 900)
          (Blob_store.read bs b ~off:700 ~len:900);
        Alcotest.(check string) "prefix" (String.sub data 0 10) (Blob_store.read bs b ~off:0 ~len:10);
        Alcotest.(check string) "suffix" (String.sub data 2990 10)
          (Blob_store.read bs b ~off:2990 ~len:10));
    Alcotest.test_case "insert in the middle splits at byte positions" `Quick (fun () ->
        let bs = make_store () in
        let b = Blob_store.put bs (String.make 1000 'a') in
        Blob_store.insert_at bs b ~off:500 (String.make 700 'b');
        let expect = String.make 500 'a' ^ String.make 700 'b' ^ String.make 500 'a' in
        Alcotest.(check string) "content" expect (Blob_store.read_all bs b));
    Alcotest.test_case "append extends the last chunk" `Quick (fun () ->
        let bs = make_store () in
        let b = Blob_store.put bs "start" in
        Blob_store.append bs b "-end";
        Alcotest.(check string) "content" "start-end" (Blob_store.read_all bs b);
        Alcotest.(check int) "still one chunk" 1 (Blob_store.chunk_count b));
    Alcotest.test_case "delete_range across chunk boundaries" `Quick (fun () ->
        let bs = make_store () in
        let data = String.init 2000 (fun i -> Char.chr (97 + (i mod 26))) in
        let b = Blob_store.put bs data in
        Blob_store.delete_range bs b ~off:300 ~len:1200;
        let expect = String.sub data 0 300 ^ String.sub data 1500 500 in
        Alcotest.(check string) "content" expect (Blob_store.read_all bs b);
        Alcotest.(check int) "length" 800 (Blob_store.length b));
    Alcotest.test_case "delete releases records" `Quick (fun () ->
        let bs = make_store () in
        let b = Blob_store.put bs (String.make 3000 'z') in
        Blob_store.delete bs b;
        Alcotest.(check int) "empty" 0 (Blob_store.length b);
        Alcotest.(check int) "no chunks" 0 (Blob_store.chunk_count b));
    qtest ~count:150 "random splice sequence matches a string reference"
      QCheck2.Gen.(
        list_size (int_bound 40)
          (pair (int_bound 2) (pair (int_bound 10000) (string_size ~gen:printable (int_bound 80)))))
      (fun ops ->
        let bs = make_store () in
        let b = Blob_store.put bs "seed-content" in
        let reference = ref "seed-content" in
        List.iter
          (fun (kind, (pos, payload)) ->
            let n = String.length !reference in
            match kind with
            | 0 ->
              let off = if n = 0 then 0 else pos mod (n + 1) in
              Blob_store.insert_at bs b ~off payload;
              reference :=
                String.sub !reference 0 off ^ payload
                ^ String.sub !reference off (n - off)
            | 1 ->
              if n > 0 then begin
                let off = pos mod n in
                let len = min (String.length payload) (n - off) in
                Blob_store.delete_range bs b ~off ~len;
                reference := String.sub !reference 0 off ^ String.sub !reference (off + len) (n - off - len)
              end
            | _ ->
              Blob_store.append bs b payload;
              reference := !reference ^ payload)
          ops;
        Blob_store.read_all bs b = !reference && Blob_store.length b = String.length !reference);
  ]

let flat_document_tests =
  [
    Alcotest.test_case "store/load roundtrip through parsing" `Quick (fun () ->
        let bs = make_store () in
        let xml =
          Natix_xml.Xml_parser.parse
            "<PLAY><TITLE>T</TITLE><ACT><SCENE><SPEECH><LINE>hello there</LINE></SPEECH></SCENE></ACT></PLAY>"
        in
        let d = Flat_document.store bs ~name:"p" xml in
        Alcotest.(check bool) "sized" true (Flat_document.size d > 0);
        Alcotest.(check bool) "roundtrip" true
          (Natix_xml.Xml_tree.equal xml (Flat_document.load bs d)));
    Alcotest.test_case "text splices keep the document well-formed" `Quick (fun () ->
        let bs = make_store () in
        let xml =
          Natix_xml.Xml_parser.parse
            "<PLAY><LINE>first line of text</LINE><LINE>second line of text</LINE></PLAY>"
        in
        let d = Flat_document.store bs ~name:"p" xml in
        let offsets = Flat_document.text_offsets bs d ~limit:5 in
        Alcotest.(check bool) "found offsets" true (offsets <> []);
        (* Splice in reverse offset order so earlier offsets stay valid. *)
        List.iter
          (fun at -> Flat_document.splice_text bs d ~at " spliced")
          (List.rev (List.sort Int.compare offsets));
        let reparsed = Flat_document.load bs d in
        Alcotest.(check bool) "still parses" true
          (Natix_xml.Xml_tree.element_count reparsed = Natix_xml.Xml_tree.element_count xml));
  ]

let suites = [ ("flat.blob_store", blob_tests); ("flat.document", flat_document_tests) ]
