(* Crash-consistency harness.

   A deterministic Shakespeare load+update workload runs against a
   file-backed store with a fault plan armed to crash on the [k+1]-th
   physical write (data pages, fresh allocations and WAL appends all
   count).  After the simulated process death the store is reopened —
   which runs {!Natix_store.Recovery} — and must come back to exactly the
   last committed checkpoint: [natix fsck] clean, and every document's
   export byte-identical to the reference run's snapshot at that
   checkpoint.  A crash landing inside a checkpoint is allowed to resolve
   to either side of its commit record.

   The sweep covers [NATIX_CRASH_POINTS] (default 12, CI uses 32) evenly
   spaced crash points over the write sequence; [NATIX_CRASH_TRACE=f.jsonl]
   additionally records every recovery's event stream as JSON lines. *)

open Natix_core
open Natix_store
open Natix_workload

let page_size = 1024

let config () =
  { (Config.default ()) with Config.page_size; buffer_bytes = 8 * page_size }

(* One small play: big enough to split pages and dirty the pool across
   several checkpoints, small enough to replay dozens of times. *)
let play =
  let params =
    {
      Shakespeare.plays = 1;
      seed = 0xC0FFEEL;
      acts_per_play = 2;
      scenes_per_act = (1, 2);
      speeches_per_scene = (3, 5);
      lines_per_speech = (2, 4);
      words_per_line = (4, 8);
      personae = (2, 4);
      stagedir_every = 4;
    }
  in
  Shakespeare.generate_play params (Natix_util.Prng.create ~seed:params.Shakespeare.seed) 0

let rounds = 3
let updates_per_round = 5

(* The workload: load, checkpoint, then rounds of text updates with a
   checkpoint after each.  [checkpoint] is instrumented by the caller. *)
let workload store ~checkpoint =
  ignore (Loader.load store ~name:"play" play);
  checkpoint ();
  for r = 1 to rounds do
    let lines = Path.query store ~doc:"play" "//LINE" in
    let n = List.length lines in
    for i = 0 to updates_per_round - 1 do
      let line = List.nth lines (((r * 37) + (i * 11)) mod n) in
      match Cursor.first_child line with
      | Some c when Cursor.is_text c ->
        Tree_store.update_text store (Cursor.node c)
          (Printf.sprintf "round %d update %d %s" r i (String.make (24 * ((r + i) mod 5)) 'x'))
      | Some _ | None -> ()
    done;
    checkpoint ()
  done

(* Every document's export, sorted by name — the unit of byte-for-byte
   comparison between reference snapshots and recovered stores. *)
let state_of store =
  Tree_store.list_documents store
  |> List.sort compare
  |> List.map (fun name ->
         ( name,
           Natix_xml.Xml_print.to_string (Option.get (Exporter.document_to_xml store name)) ))

let fresh path =
  if Sys.file_exists path then Sys.remove path;
  let wal = Recovery.wal_path path in
  if Sys.file_exists wal then Sys.remove wal

(* Reference run (fault plan attached but never armed): returns the total
   number of physical writes and the state snapshot after each checkpoint.
   Snapshot 0 is the empty store — where a crash before the first
   checkpoint must roll back to. *)
let reference path =
  fresh path;
  let plan = Faulty_disk.create ~seed:1L () in
  let disk = Disk.on_file ~page_size path in
  Disk.set_faults disk (Some plan);
  let store = Tree_store.open_store ~config:(config ()) disk in
  let snapshots = ref [ [] ] in
  workload store ~checkpoint:(fun () ->
      Tree_store.checkpoint store;
      snapshots := state_of store :: !snapshots);
  Tree_store.close ~commit:false store;
  (Faulty_disk.writes_seen plan, Array.of_list (List.rev !snapshots))

type crash_outcome = { crashed : bool; completed : int; in_checkpoint : bool }

(* Run the workload with a crash armed after [k] writes, closing every
   file descriptor on death without letting anything else reach disk. *)
let run_to_crash path k =
  fresh path;
  let plan = Faulty_disk.create ~seed:(Int64.of_int (1000 + k)) () in
  Faulty_disk.arm_crash plan k;
  let completed = ref 0 and in_checkpoint = ref false in
  let disk = Disk.on_file ~page_size path in
  Disk.set_faults disk (Some plan);
  let crashed =
    match Tree_store.open_store ~config:(config ()) disk with
    | exception Faulty_disk.Crash ->
      Disk.close disk;
      true
    | store -> (
      let checkpoint () =
        in_checkpoint := true;
        Tree_store.checkpoint store;
        in_checkpoint := false;
        incr completed
      in
      match workload store ~checkpoint with
      | () ->
        Tree_store.close ~commit:false store;
        false
      | exception Faulty_disk.Crash ->
        Tree_store.close ~commit:false store;
        true)
  in
  { crashed; completed = !completed; in_checkpoint = (if crashed then !in_checkpoint else false) }

(* Reopen after the crash (recovery runs inside [open_store]), fsck, and
   compare against the reference snapshot. *)
let verify_recovered ?obs path k (snapshots : (string * string) list array) outcome =
  let disk = Disk.on_file ?obs ~page_size path in
  let store = Tree_store.open_store ~config:(config ()) disk in
  let report = Fsck.run store in
  if not (Fsck.ok report) then
    Alcotest.failf "crash point %d: post-recovery fsck: %a" k Fsck.pp report;
  let actual = state_of store in
  let matches n = n < Array.length snapshots && actual = snapshots.(n) in
  let ok =
    matches outcome.completed || (outcome.in_checkpoint && matches (outcome.completed + 1))
  in
  if not ok then
    Alcotest.failf
      "crash point %d: recovered state matches neither checkpoint %d%s (completed %d, %d doc(s))"
      k outcome.completed
      (if outcome.in_checkpoint then " nor its in-flight successor" else "")
      outcome.completed (List.length actual);
  Tree_store.close ~commit:false store

let crash_points total =
  let n =
    match Sys.getenv_opt "NATIX_CRASH_POINTS" with
    | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 12)
    | None -> 12
  in
  if total <= 1 then [ 0 ]
  else
    List.init n (fun i -> i * (total - 1) / max 1 (n - 1)) |> List.sort_uniq compare

let sweep () =
  let path = Filename.temp_file "natix_crash" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      let total_writes, snapshots = reference path in
      Alcotest.(check bool) "workload writes pages" true (total_writes > 0);
      Alcotest.(check int) "snapshot per checkpoint" (rounds + 2) (Array.length snapshots);
      let obs =
        Option.map
          (fun p -> Natix_obs.Obs.create ~sink:(Natix_obs.Sink.jsonl p) ())
          (Sys.getenv_opt "NATIX_CRASH_TRACE")
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Natix_obs.Obs.close obs)
        (fun () ->
          List.iter
            (fun k ->
              let outcome = run_to_crash path k in
              Alcotest.(check bool)
                (Printf.sprintf "crash point %d fires" k)
                true outcome.crashed;
              verify_recovered ?obs path k snapshots outcome)
            (crash_points total_writes)))

(* Parallel bulk load killed mid-flight.  [Par.load_files] commits each
   document through its own WAL batch (store_committed) under the
   loader's commit lock, so whatever the domain schedule was, recovery
   must come back document-atomic: every surviving document exports
   byte-identical to a clean sequential load of the same file, and a
   document whose commit had not completed is fully absent — never a
   partial tree. *)
let parallel_load_crash () =
  let path = Filename.temp_file "natix_crash" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      let params =
        {
          Shakespeare.plays = 6;
          seed = 0xFA11L;
          acts_per_play = 2;
          scenes_per_act = (1, 2);
          speeches_per_scene = (2, 4);
          lines_per_speech = (1, 3);
          words_per_line = (3, 6);
          personae = (2, 3);
          stagedir_every = 3;
        }
      in
      let rng = Natix_util.Prng.create ~seed:params.Shakespeare.seed in
      let files =
        List.init params.Shakespeare.plays (fun i ->
            ( Printf.sprintf "play-%d" i,
              Natix_xml.Xml_print.to_string ~decl:true (Shakespeare.generate_play params rng i)
            ))
      in
      let load_all ~jobs dm =
        Natix_par.Par.load_files ~jobs (dm : Document_manager.t) files
      in
      (* Reference exports from a clean in-memory load. *)
      let reference =
        let store = Tree_store.in_memory ~config:(config ()) () in
        let dm = Document_manager.create ~index:Document_manager.Off store in
        List.iter
          (function
            | Ok () -> ()
            | Error e -> Alcotest.failf "reference load failed: %s" (Error.to_string e))
          (load_all ~jobs:1 dm).Natix_par.Par.results;
        state_of store
      in
      (* One unarmed parallel run to size the write sequence. *)
      let total =
        fresh path;
        let plan = Faulty_disk.create ~seed:3L () in
        let disk = Disk.on_file ~page_size path in
        Disk.set_faults disk (Some plan);
        let store = Tree_store.open_store ~config:(config ()) disk in
        let dm = Document_manager.create ~index:Document_manager.Off store in
        ignore (load_all ~jobs:3 dm);
        Tree_store.close ~commit:false store;
        Faulty_disk.writes_seen plan
      in
      Alcotest.(check bool) "parallel load writes pages" true (total > 0);
      List.iter
        (fun k ->
          fresh path;
          let plan = Faulty_disk.create ~seed:(Int64.of_int (7000 + k)) () in
          Faulty_disk.arm_crash plan k;
          let disk = Disk.on_file ~page_size path in
          Disk.set_faults disk (Some plan);
          let store = Tree_store.open_store ~config:(config ()) disk in
          let dm = Document_manager.create ~index:Document_manager.Off store in
          (match load_all ~jobs:3 dm with
          | _ -> Alcotest.failf "crash point %d: parallel load survived" k
          | exception Faulty_disk.Crash -> Tree_store.close ~commit:false store);
          (* Reopen without faults: recovery runs inside open_store. *)
          let disk2 = Disk.on_file ~page_size path in
          let store2 = Tree_store.open_store ~config:(config ()) disk2 in
          let report = Fsck.run store2 in
          if not (Fsck.ok report) then
            Alcotest.failf "crash point %d: post-recovery fsck: %a" k Fsck.pp report;
          let recovered = state_of store2 in
          Alcotest.(check bool)
            (Printf.sprintf "crash point %d: mid-load crash loses at least one document" k)
            true
            (List.length recovered < List.length files);
          List.iter
            (fun (name, exported) ->
              match List.assoc_opt name reference with
              | Some expected when String.equal expected exported -> ()
              | Some _ ->
                Alcotest.failf "crash point %d: %S recovered but differs from reference" k name
              | None -> Alcotest.failf "crash point %d: unexpected document %S" k name)
            recovered;
          Tree_store.close ~commit:false store2)
        (List.sort_uniq compare [ total / 4; total / 2; 3 * total / 4 ]))

(* Concurrent transactional committers under a crash sweep — the ARIES
   counterpart of [sweep].  Three domains commit documents through
   [Tree_store.with_txn] (via [Par.load_files_txn]: no commit lock, group
   commit batching the fsyncs) while the fault plan arms either a
   write-crash point or an fsync-crash point (batch lost, tail lost, or a
   reordered subset surviving).  After every simulated death the store is
   reopened — recovery runs analysis/redo/undo — and must satisfy, for
   every transaction: all-present (export byte-identical to the
   sequential reference) or all-absent; additionally every commit that
   was {e acked} before the crash must be present (durability of the
   group-commit ack), and fsck must be clean.  Selected points also
   re-crash {e during recovery} to check idempotence. *)
let concurrent_txn_crash () =
  let path = Filename.temp_file "natix_crash" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      let params =
        {
          Shakespeare.plays = 6;
          seed = 0xACE5L;
          acts_per_play = 2;
          scenes_per_act = (1, 2);
          speeches_per_scene = (2, 4);
          lines_per_speech = (1, 3);
          words_per_line = (3, 6);
          personae = (2, 3);
          stagedir_every = 3;
        }
      in
      let rng = Natix_util.Prng.create ~seed:params.Shakespeare.seed in
      let files =
        Array.init params.Shakespeare.plays (fun i ->
            ( Printf.sprintf "play-%d" i,
              Natix_xml.Xml_print.to_string ~decl:true (Shakespeare.generate_play params rng i)
            ))
      in
      let jobs = 3 in
      let txn_config () = { (config ()) with Config.commit_delay = 0.5 } in
      (* Sequential reference exports. *)
      let reference =
        let store = Tree_store.in_memory ~config:(config ()) () in
        let dm = Document_manager.create ~index:Document_manager.Off store in
        Array.iter
          (fun (name, text) ->
            match Document_manager.store_document dm ~name (Natix_xml.Xml_parser.parse text) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "reference load failed: %s" (Error.to_string e))
          files;
        let r = state_of store in
        Tree_store.close ~commit:false store;
        r
      in
      (* Three domains, files seeded round-robin; each acked commit is
         recorded so the verifier can demand it back after recovery.  Any
         exception on a worker is kept (the armed crash, or collateral
         poisoned-store errors on its siblings). *)
      let run ~seed arm =
        fresh path;
        let plan = Faulty_disk.create ~seed () in
        arm plan;
        let disk = Disk.on_file ~page_size path in
        Disk.set_faults disk (Some plan);
        let acked = Atomic.make [] in
        let track name =
          let rec go () =
            let cur = Atomic.get acked in
            if not (Atomic.compare_and_set acked cur (name :: cur)) then go ()
          in
          go ()
        in
        (match Tree_store.open_store ~config:(txn_config ()) disk with
        | exception _ -> ( try Disk.close disk with _ -> ())
        | store ->
          let dm = Document_manager.create ~index:Document_manager.Off store in
          let worker w () =
            Array.iteri
              (fun i (name, text) ->
                if i mod jobs = w then
                  match
                    Document_manager.store_transactional dm ~name
                      (Natix_xml.Xml_parser.parse text)
                  with
                  | Ok _ -> track name
                  | Error _ -> ()
                  | exception _ -> ())
              files
          in
          let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
          List.iter Domain.join domains;
          (try Tree_store.close ~commit:false store with _ -> ()));
        (Faulty_disk.crashed plan, Atomic.get acked)
      in
      let verify ?obs ~recrash_seed label acked =
        (* Optionally crash again during recovery itself before the clean
           reopen: repeated crashes mid-recovery must not change the
           outcome (CLRs are redone, undo resumes from undo-next). *)
        (match recrash_seed with
        | None -> ()
        | Some (seed, k) -> (
          let plan = Faulty_disk.create ~seed () in
          Faulty_disk.arm_crash plan k;
          let disk = Disk.on_file ~page_size path in
          Disk.set_faults disk (Some plan);
          match Tree_store.open_store ~config:(txn_config ()) disk with
          | exception _ -> ( try Disk.close disk with _ -> ())
          | store -> Tree_store.close ~commit:false store));
        let disk = Disk.on_file ?obs ~page_size path in
        let store = Tree_store.open_store ~config:(txn_config ()) disk in
        let report = Fsck.run store in
        if not (Fsck.ok report) then Alcotest.failf "%s: post-recovery fsck: %a" label Fsck.pp report;
        let recovered = state_of store in
        List.iter
          (fun (name, exported) ->
            match List.assoc_opt name reference with
            | Some expected when String.equal expected exported -> ()
            | Some _ ->
              Alcotest.failf "%s: %S present but differs from the reference (partial commit?)"
                label name
            | None -> Alcotest.failf "%s: unexpected document %S" label name)
          recovered;
        List.iter
          (fun name ->
            if not (List.mem_assoc name recovered) then
              Alcotest.failf "%s: commit of %S was acked before the crash but is gone" label
                name)
          acked;
        Tree_store.close ~commit:false store
      in
      (* Unarmed sizing runs: once through the hand-rolled domains (checks
         the clean path acks everything), once through the [Par] entry
         point to count writes and fsyncs. *)
      let total_writes, total_fsyncs =
        let crashed, acked = run ~seed:21L (fun _ -> ()) in
        Alcotest.(check bool) "unarmed run does not crash" false crashed;
        Alcotest.(check int) "unarmed run commits every document" (Array.length files)
          (List.length acked);
        fresh path;
        let plan2 = Faulty_disk.create ~seed:23L () in
        let disk2 = Disk.on_file ~page_size path in
        Disk.set_faults disk2 (Some plan2);
        let store2 = Tree_store.open_store ~config:(txn_config ()) disk2 in
        let dm = Document_manager.create ~index:Document_manager.Off store2 in
        let outcome = Natix_par.Par.load_files_txn ~jobs dm (Array.to_list files) in
        List.iter
          (function
            | Ok () -> ()
            | Error e -> Alcotest.failf "sizing load failed: %s" (Error.to_string e))
          outcome.Natix_par.Par.results;
        Tree_store.close ~commit:false store2;
        (Faulty_disk.writes_seen plan2, Faulty_disk.fsyncs_seen plan2)
      in
      Alcotest.(check bool) "transactional load writes pages" true (total_writes > 0);
      Alcotest.(check bool) "transactional load fsyncs the log" true (total_fsyncs > 0);
      let obs =
        Option.map
          (fun p -> Natix_obs.Obs.create ~sink:(Natix_obs.Sink.jsonl p) ())
          (Sys.getenv_opt "NATIX_CRASH_TRACE")
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Natix_obs.Obs.close obs)
        (fun () ->
          (* Write-crash points over the write sequence.  Parallel
             schedules shift write counts between runs, so a point is a
             probe: if the armed run survived, the store must simply be
             complete; if it crashed, recovery must hold the line. *)
          List.iteri
            (fun idx k ->
              let crashed, acked = run ~seed:(Int64.of_int (9000 + k)) (fun p -> Faulty_disk.arm_crash p k) in
              if not crashed then
                Alcotest.(check int)
                  (Printf.sprintf "write point %d survived: all committed" k)
                  (Array.length files) (List.length acked);
              let recrash_seed =
                if idx mod 4 = 0 then Some (Int64.of_int (9500 + k), 2 + (idx mod 3)) else None
              in
              if Sys.getenv_opt "NATIX_CRASH_DEBUG" <> None then Printf.eprintf "write point %d: crashed=%b acked=%d\n%!" k crashed (List.length acked);
              verify ?obs ~recrash_seed (Printf.sprintf "write point %d" k) acked)
            (crash_points total_writes);
          (* Fsync-crash points: each probe kills one log flush with one of
             the three failure shapes. *)
          let fsync_points =
            let n = max 4 (List.length (crash_points total_writes) / 3) in
            if total_fsyncs <= 1 then [ 0 ]
            else
              List.init n (fun i -> i * (total_fsyncs - 1) / max 1 (n - 1))
              |> List.sort_uniq compare
          in
          List.iteri
            (fun idx k ->
              let mode =
                match idx mod 3 with 0 -> `Lose_all | 1 -> `Lose_tail | _ -> `Subset
              in
              let crashed, acked =
                run ~seed:(Int64.of_int (11000 + k)) (fun p ->
                    Faulty_disk.arm_fsync_crash ~mode p k)
              in
              if not crashed then
                Alcotest.(check int)
                  (Printf.sprintf "fsync point %d survived: all committed" k)
                  (Array.length files) (List.length acked);
              if Sys.getenv_opt "NATIX_CRASH_DEBUG" <> None then Printf.eprintf "fsync point %d: crashed=%b acked=%d\n%!" k crashed (List.length acked);
              verify ?obs ~recrash_seed:None (Printf.sprintf "fsync point %d" k) acked)
            fsync_points))

(* Two writers provably inside their mutation phases at the same moment:
   each loads its document under [with_txn], then parks at a barrier
   before growing it further — the barrier only opens once both have
   arrived, which is itself a regression check (a serialised mutation
   phase would deadlock here: the second writer could never reach the
   barrier while the first holds the structure lock across it).  With
   both mid-phase, a crash is armed a few writes ahead, landing inside
   the overlapping phases or the commit sections that follow.  Recovery
   must keep every acked commit byte-identical, drop unacked losers
   entirely, and leave no orphaned pages (fsck's ownership layer). *)
let overlapping_phase_crash () =
  let path = Filename.temp_file "natix_crash" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      let txn_config () = { (config ()) with Config.commit_delay = 0.5 } in
      let parse s = Natix_xml.Xml_parser.parse s in
      let small_play seed i =
        let params =
          {
            Shakespeare.plays = 1;
            seed = Int64.of_int seed;
            acts_per_play = 1;
            scenes_per_act = (1, 2);
            speeches_per_scene = (2, 3);
            lines_per_speech = (1, 3);
            words_per_line = (3, 6);
            personae = (2, 3);
            stagedir_every = 4;
          }
        in
        Shakespeare.generate_play params (Natix_util.Prng.create ~seed:params.Shakespeare.seed) i
      in
      let frag w i =
        Printf.sprintf "<scene n=\"%d\"><line>late growth %d of writer %d</line></scene>" i i w
      in
      let grow store name w =
        let root = Option.get (Tree_store.open_document store name) in
        for i = 0 to 5 do
          ignore (Loader.insert_fragment store (Tree_store.First_under root) (parse (frag w i)))
        done
      in
      (* Sequential reference: same load + growth, unscoped, in memory. *)
      let reference =
        let store = Tree_store.in_memory ~config:(config ()) () in
        List.iteri
          (fun w name ->
            ignore (Loader.load store ~name (small_play (40 + w) w));
            grow store name w)
          [ "left"; "right" ];
        let r = state_of store in
        Tree_store.close ~commit:false store;
        r
      in
      List.iter
        (fun delta ->
          fresh path;
          let plan = Faulty_disk.create ~seed:(Int64.of_int (31000 + delta)) () in
          let disk = Disk.on_file ~page_size path in
          Disk.set_faults disk (Some plan);
          let store = Tree_store.open_store ~config:(txn_config ()) disk in
          let m = Mutex.create () and c = Condition.create () in
          let arrived = ref 0 and go = ref false in
          let barrier () =
            Mutex.lock m;
            incr arrived;
            Condition.broadcast c;
            while not !go do
              Condition.wait c m
            done;
            Mutex.unlock m
          in
          let acked = Atomic.make [] in
          let track name =
            let rec loop () =
              let cur = Atomic.get acked in
              if not (Atomic.compare_and_set acked cur (name :: cur)) then loop ()
            in
            loop ()
          in
          let writer w name =
            Domain.spawn (fun () ->
                match
                  Tree_store.with_txn store ~doc:name (fun () ->
                      ignore (Loader.load store ~name (small_play (40 + w) w));
                      barrier ();
                      grow store name w)
                with
                | () -> track name
                | exception _ -> ())
          in
          let a = writer 0 "left" and b = writer 1 "right" in
          Mutex.lock m;
          while !arrived < 2 do
            Condition.wait c m
          done;
          (* Both writers are mid-phase right now.  Arm the crash relative
             to this moment and release them into the overlap. *)
          Faulty_disk.arm_crash plan (Faulty_disk.writes_seen plan + delta);
          go := true;
          Condition.broadcast c;
          Mutex.unlock m;
          ignore (Domain.join a);
          ignore (Domain.join b);
          (try Tree_store.close ~commit:false store with _ -> ());
          let acked = Atomic.get acked in
          if not (Faulty_disk.crashed plan) then
            Alcotest.(check int)
              (Printf.sprintf "overlap delta %d survived: both committed" delta)
              2 (List.length acked);
          let disk2 = Disk.on_file ~page_size path in
          let store2 = Tree_store.open_store ~config:(txn_config ()) disk2 in
          let report = Fsck.run store2 in
          if not (Fsck.ok report) then
            Alcotest.failf "overlap delta %d: post-recovery fsck: %a" delta Fsck.pp report;
          let recovered = state_of store2 in
          List.iter
            (fun (name, exported) ->
              match List.assoc_opt name reference with
              | Some expected when String.equal expected exported -> ()
              | Some _ ->
                Alcotest.failf "overlap delta %d: %S present but differs (partial commit?)" delta
                  name
              | None -> Alcotest.failf "overlap delta %d: unexpected document %S" delta name)
            recovered;
          List.iter
            (fun name ->
              if not (List.mem_assoc name recovered) then
                Alcotest.failf "overlap delta %d: acked commit of %S is gone" delta name)
            acked;
          Tree_store.close ~commit:false store2)
        [ 0; 1; 2; 4; 8; 16; 32; 64; 128 ])

(* Crash armed from inside an arena refill: the [Segment.set_on_refill]
   hook fires at the start of the [target]-th refill (before any page is
   grabbed from the global allocator) and arms the fault plan on the very
   next physical write.  With [arena_batch = 2] the loading transaction
   refills several times, so the sweep covers a refill that logged
   nothing yet, one mid-batch, and one whose pages were already
   formatted.  Recovery must keep the committed base document, drop the
   loser entirely, and leave neither orphaned ownership tags nor
   half-formatted pages (the all-zero pages its undo leaves are carried
   as permanently-full shared space).  [arena_batch = 1] makes every
   page a refill, so later targets land deep inside the loser's load. *)
let arena_refill_crash () =
  let path = Filename.temp_file "natix_crash" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      let txn_config () =
        { (config ()) with Config.commit_delay = 0.5; Config.arena_batch = 1 }
      in
      let text = Natix_xml.Xml_print.to_string ~decl:true play in
      (* Unarmed sizing run: count the loser's refills, so the sweep can
         probe the first, a middle, and the last one. *)
      let total_refills =
        fresh path;
        let disk = Disk.on_file ~page_size path in
        let store = Tree_store.open_store ~config:(txn_config ()) disk in
        let dm = Document_manager.create ~index:Document_manager.Off store in
        (match Document_manager.store_transactional dm ~name:"base" (Natix_xml.Xml_parser.parse text) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "sizing base load failed: %s" (Error.to_string e));
        let seg = Record_manager.segment (Tree_store.record_manager store) in
        let seen = ref 0 in
        Segment.set_on_refill seg (Some (fun () -> incr seen));
        (match Document_manager.store_transactional dm ~name:"loser" (Natix_xml.Xml_parser.parse text) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "sizing loser load failed: %s" (Error.to_string e));
        Tree_store.close ~commit:false store;
        !seen
      in
      Alcotest.(check bool) "the loser refills its arena" true (total_refills >= 1);
      List.iter
        (fun target ->
          fresh path;
          let plan = Faulty_disk.create ~seed:(Int64.of_int (33000 + target)) () in
          let disk = Disk.on_file ~page_size path in
          Disk.set_faults disk (Some plan);
          let store = Tree_store.open_store ~config:(txn_config ()) disk in
          let dm = Document_manager.create ~index:Document_manager.Off store in
          (match
             Document_manager.store_transactional dm ~name:"base"
               (Natix_xml.Xml_parser.parse text)
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "base load failed: %s" (Error.to_string e));
          let expected =
            Natix_xml.Xml_print.to_string (Option.get (Exporter.document_to_xml store "base"))
          in
          let seg = Record_manager.segment (Tree_store.record_manager store) in
          let seen = ref 0 in
          Segment.set_on_refill seg
            (Some
               (fun () ->
                 incr seen;
                 if !seen = target then Faulty_disk.arm_crash plan (Faulty_disk.writes_seen plan)));
          (match
             Document_manager.store_transactional dm ~name:"loser"
               (Natix_xml.Xml_parser.parse text)
           with
          | exception Faulty_disk.Crash -> ()
          | exception Error.Error (Error.Storage _) -> ()
          | Ok _ -> Alcotest.failf "refill %d: load survived the armed crash" target
          | Error e -> Alcotest.failf "refill %d: expected the crash, got %s" target (Error.to_string e));
          Alcotest.(check bool)
            (Printf.sprintf "refill %d: the hook fired" target)
            true (!seen >= target);
          Alcotest.(check bool)
            (Printf.sprintf "refill %d: the crash fired" target)
            true (Faulty_disk.crashed plan);
          (try Tree_store.close ~commit:false store with _ -> ());
          let disk2 = Disk.on_file ~page_size path in
          let store2 = Tree_store.open_store ~config:(txn_config ()) disk2 in
          let report = Fsck.run store2 in
          if not (Fsck.ok report) then
            Alcotest.failf "refill %d: post-recovery fsck: %a" target Fsck.pp report;
          Alcotest.(check (list string))
            (Printf.sprintf "refill %d: loser fully absent" target)
            [ "base" ]
            (List.sort compare (Tree_store.list_documents store2));
          Alcotest.(check string)
            (Printf.sprintf "refill %d: base intact" target)
            expected
            (Natix_xml.Xml_print.to_string (Option.get (Exporter.document_to_xml store2 "base")));
          Tree_store.close ~commit:false store2)
        (List.sort_uniq compare [ 1; (total_refills + 1) / 2; total_refills ]))

let harness_tests =
  [
    Alcotest.test_case "recovery reaches the last checkpoint at every crash point" `Slow sweep;
    Alcotest.test_case "concurrent committers recover atomically at every crash point" `Slow
      concurrent_txn_crash;
    Alcotest.test_case "parallel bulk load recovers document-atomically" `Slow
      parallel_load_crash;
    Alcotest.test_case "overlapping mutation phases recover atomically" `Slow
      overlapping_phase_crash;
    Alcotest.test_case "a crash inside an arena refill leaves no orphaned pages" `Slow
      arena_refill_crash;
    Alcotest.test_case "raw page sweep finds a flipped byte" `Quick (fun () ->
        let path = Filename.temp_file "natix_crash" ".db" in
        Fun.protect
          ~finally:(fun () -> fresh path)
          (fun () ->
            fresh path;
            let disk = Disk.on_file ~page_size path in
            let store = Tree_store.open_store ~config:(config ()) disk in
            ignore (Loader.load store ~name:"play" play);
            Tree_store.close store;
            let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
            let off = page_size + (page_size / 2) in
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            let b = Bytes.create 1 in
            ignore (Unix.read fd b 0 1);
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
            ignore (Unix.write fd b 0 1);
            Unix.close fd;
            let disk2 = Disk.on_file ~page_size path in
            let report = Fsck.run_disk disk2 in
            Disk.close disk2;
            Alcotest.(check bool) "sweep flags corruption" false (Fsck.ok report);
            Alcotest.(check int) "exactly one bad page" 1 (List.length report.Fsck.issues)));
    Alcotest.test_case "a clean run needs no recovery" `Quick (fun () ->
        let path = Filename.temp_file "natix_crash" ".db" in
        Fun.protect
          ~finally:(fun () -> fresh path)
          (fun () ->
            fresh path;
            let disk = Disk.on_file ~page_size path in
            let store = Tree_store.open_store ~config:(config ()) disk in
            workload store ~checkpoint:(fun () -> Tree_store.checkpoint store);
            let final = state_of store in
            Tree_store.close store;
            let disk2 = Disk.on_file ~page_size path in
            let rep = Recovery.run disk2 in
            Alcotest.(check int) "nothing undone" 0 rep.Recovery.undone;
            Disk.close disk2;
            let disk3 = Disk.on_file ~page_size path in
            let store3 = Tree_store.open_store ~config:(config ()) disk3 in
            Alcotest.(check bool) "fsck clean" true (Fsck.ok (Fsck.run store3));
            Alcotest.(check bool) "state survives" true (state_of store3 = final);
            Tree_store.close ~commit:false store3));
  ]

let suites = [ ("crash.consistency", harness_tests) ]
