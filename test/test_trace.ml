(* End-to-end request tracing: the span tree's two dimensions (global
   simulated clock, private-stream I/O), the reconciliation invariant
   (span selves sum to the request's exact stream delta, which equals
   the store's global counter delta for a lone request), deterministic
   exports, the WAL commit decomposition, per-tenant SLO edges, the
   tenant gate's wait spans, and the flight-dump satellites. *)

open Natix_core
module Api = Natix.Api
module Registry = Natix_server.Registry
module Rw_lock = Natix_server.Rw_lock
module Server = Natix_server.Server
module Trace = Natix_trace.Trace
module Slo = Natix_mon.Slo
module Recorder = Natix_mon.Recorder
module Io_stats = Natix_store.Io_stats
module Disk = Natix_store.Disk
module Recovery = Natix_store.Recovery
module Json = Natix_obs.Json

let config () = { (Config.default ()) with Config.page_size = 1024; buffer_bytes = 16 * 1024 }

let play_xml name =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<PLAY><TITLE>";
  Buffer.add_string b name;
  Buffer.add_string b "</TITLE>";
  for act = 1 to 2 do
    Buffer.add_string b "<ACT>";
    for sp = 1 to 20 do
      Buffer.add_string b
        (Printf.sprintf
           "<SPEECH><SPEAKER>S%d</SPEAKER><LINE>act %d speech %d of %s with some more words \
            to fill the page</LINE></SPEECH>"
           sp act sp name)
    done;
    Buffer.add_string b "</ACT>"
  done;
  Buffer.add_string b "</PLAY>";
  Buffer.contents b

let cold s = Tree_store.clear_buffers (Natix.Session.store s)

let session_with_docs names =
  let s = Natix.Session.in_memory ~config:(config ()) () in
  List.iter
    (fun doc ->
      match
        Natix.Session.exec s (Api.Load { doc; xml = play_xml doc; order = Loader.Preorder })
      with
      | Api.Loaded _ -> ()
      | r -> Alcotest.failf "load %s: %a" doc Api.pp_response r)
    names;
  s

(* Wait for a cross-domain condition; the deadline turns a hang into a
   test failure instead of a stuck CI job. *)
let wait_for what f =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

let close_ms a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a)

let find_span name (r : Trace.report) =
  match List.find_opt (fun (s : Trace.span_report) -> s.Trace.name = name) r.Trace.spans with
  | Some s -> s
  | None ->
    Alcotest.failf "span %s missing; have [%s]" name
      (String.concat "; " (List.map (fun (s : Trace.span_report) -> s.Trace.name) r.Trace.spans))

let has_span name (r : Trace.report) =
  List.exists (fun (s : Trace.span_report) -> s.Trace.name = name) r.Trace.spans

let has_span_prefix p (r : Trace.report) =
  List.exists
    (fun (s : Trace.span_report) ->
      String.length s.Trace.name >= String.length p
      && String.sub s.Trace.name 0 (String.length p) = p)
    r.Trace.spans

(* The reconciliation invariant every report must satisfy: the root
   comes first, parents precede children, and the spans' self figures
   sum back to the root's private-stream delta — integers exactly,
   stream milliseconds up to float association. *)
let check_reconciles (r : Trace.report) =
  (match r.Trace.spans with
  | [] -> Alcotest.failf "%s: no spans" r.Trace.trace_id
  | root :: rest ->
    Alcotest.(check string) "root span name" "request" root.Trace.name;
    Alcotest.(check int) "root parent" 0 root.Trace.parent;
    Alcotest.(check bool) "root duration covers queue wait" true
      (close_ms root.Trace.dur_ms r.Trace.dur_ms && r.Trace.dur_ms >= r.Trace.queued_ms);
    List.iter
      (fun (s : Trace.span_report) ->
        if not (s.Trace.parent >= 1 && s.Trace.parent < s.Trace.id) then
          Alcotest.failf "%s: span %s (id %d) has parent %d" r.Trace.trace_id s.Trace.name
            s.Trace.id s.Trace.parent)
      rest);
  let sum =
    List.fold_left
      (fun acc (s : Trace.span_report) -> Trace.add_io acc s.Trace.self)
      Trace.zero_io r.Trace.spans
  in
  Alcotest.(check int)
    (r.Trace.trace_id ^ " reads reconcile")
    r.Trace.total.Trace.reads sum.Trace.reads;
  Alcotest.(check int)
    (r.Trace.trace_id ^ " writes reconcile")
    r.Trace.total.Trace.writes sum.Trace.writes;
  Alcotest.(check bool)
    (r.Trace.trace_id ^ " stream ms reconcile")
    true
    (close_ms r.Trace.total.Trace.io_ms sum.Trace.io_ms)

(* ------------------------------------------------------------------ *)
(* The span tree on a hand-driven clock                                 *)

(* A scripted trace with known figures: submitted at 0, picked up at 2,
   one exec span [2,8] reading 5 pages with one operator row [6,7]
   claiming 3 of them, root closing at 9. *)
let scripted () =
  let now = ref 0. in
  let reads = ref 0 in
  let io () = { Trace.reads = !reads; writes = 0; io_ms = 0. } in
  let tr =
    Trace.create ~trace_id:"t-unit" ~tenant:"t" ~kind:"query" ~detail:"//x"
      ~clock:(fun () -> !now)
  in
  now := 2.;
  Trace.run tr ~io (fun () ->
      Trace.span tr "exec.query" (fun () ->
          now := 6.;
          Trace.io_child tr "op1.scan" ~io:{ Trace.reads = 3; writes = 0; io_ms = 0. }
            ~dur_ms:1.;
          reads := 5;
          now := 8.);
      now := 9.);
  Trace.finish tr

let unit_tests =
  [
    Alcotest.test_case "span tree: wall intervals, io deltas, self vs total" `Quick (fun () ->
        let r = scripted () in
        Alcotest.(check (float 1e-9)) "queued" 2. r.Trace.queued_ms;
        Alcotest.(check (float 1e-9)) "duration" 9. r.Trace.dur_ms;
        Alcotest.(check int) "total reads" 5 r.Trace.total.Trace.reads;
        Alcotest.(check (list string)) "opening order"
          [ "request"; "queue.wait"; "exec.query"; "op1.scan" ]
          (List.map (fun (s : Trace.span_report) -> s.Trace.name) r.Trace.spans);
        let root = find_span "request" r in
        let qw = find_span "queue.wait" r in
        let ex = find_span "exec.query" r in
        let op = find_span "op1.scan" r in
        Alcotest.(check int) "queue.wait under root" root.Trace.id qw.Trace.parent;
        Alcotest.(check int) "exec under root" root.Trace.id ex.Trace.parent;
        Alcotest.(check int) "operator under exec" ex.Trace.id op.Trace.parent;
        Alcotest.(check (float 1e-9)) "queue.wait duration" 2. qw.Trace.dur_ms;
        Alcotest.(check int) "queue.wait moves no io" 0 qw.Trace.total.Trace.reads;
        Alcotest.(check (float 1e-9)) "exec start" 2. ex.Trace.start_ms;
        Alcotest.(check (float 1e-9)) "exec duration" 6. ex.Trace.dur_ms;
        Alcotest.(check int) "exec total" 5 ex.Trace.total.Trace.reads;
        Alcotest.(check int) "exec self = total - operator rows" 2 ex.Trace.self.Trace.reads;
        Alcotest.(check int) "operator total" 3 op.Trace.total.Trace.reads;
        Alcotest.(check int) "root self telescopes to zero" 0 root.Trace.self.Trace.reads;
        check_reconciles r);
    Alcotest.test_case "folded flamegraph lines: self weights, sorted, stable" `Quick (fun () ->
        let r = scripted () in
        Alcotest.(check string) "folded"
          "request 1000\n\
           request;exec.query 5000\n\
           request;exec.query;op1.scan 1000\n\
           request;queue.wait 2000"
          (Trace.folded r);
        Alcotest.(check string) "json is deterministic"
          (Json.to_string (Trace.report_to_json (scripted ())))
          (Json.to_string (Trace.report_to_json r)));
    Alcotest.test_case "ambient install, restore, and exception safety" `Quick (fun () ->
        Alcotest.(check bool) "no ambient trace outside run" true (Trace.active () = None);
        let now = ref 0. in
        let tr =
          Trace.create ~trace_id:"t-boom" ~tenant:"t" ~kind:"load" ~detail:""
            ~clock:(fun () -> !now)
        in
        (try
           Trace.run tr
             ~io:(fun () -> Trace.zero_io)
             (fun () ->
               (match Trace.active () with
               | Some t -> Alcotest.(check string) "ambient is ours" "t-boom" (Trace.trace_id t)
               | None -> Alcotest.fail "no ambient trace inside run");
               Trace.span tr "exec.boom" (fun () ->
                   now := 3.;
                   raise Exit))
         with Exit -> ());
        Alcotest.(check bool) "ambient restored after raise" true (Trace.active () = None);
        let r = Trace.finish tr in
        List.iter
          (fun (s : Trace.span_report) ->
            if Float.is_nan s.Trace.dur_ms then
              Alcotest.failf "span %s left open through the exception" s.Trace.name)
          r.Trace.spans;
        Alcotest.(check bool) "raising span recorded" true (has_span "exec.boom" r);
        Alcotest.(check (float 1e-9)) "root closed at raise time" 3. r.Trace.dur_ms);
  ]

(* ------------------------------------------------------------------ *)
(* Through the server: loopback requests, reconciliation, determinism   *)

let with_traced_server ?(jobs = 0) ?(trace = Server.default_trace) f =
  let s = session_with_docs [ "a"; "b" ] in
  let registry = Registry.create () in
  Registry.mount registry "t" s;
  let server =
    Server.create
      ~config:{ Server.default_config with Server.jobs; trace = Some trace }
      registry
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Natix.Session.close s)
    (fun () -> f server s)

let mix =
  [
    Api.Ping;
    Api.Query { doc = "a"; path = "//SPEAKER"; texts = false };
    Api.Scan { element = "SPEAKER"; texts = true };
    Api.Load { doc = "c"; xml = play_xml "c"; order = Loader.Preorder };
    Api.Query { doc = "b"; path = "//LINE"; texts = true };
    Api.Stat { doc = None };
  ]

let call_mix server =
  let conn = Server.Loopback.connect server ~tenant:"t" in
  List.iter
    (fun req ->
      match Server.Loopback.call conn req with
      | Api.Err e -> Alcotest.failf "%a: %s" Api.pp_request req (Error.to_string e)
      | Api.Overloaded { reason } -> Alcotest.failf "%a: shed (%s)" Api.pp_request req reason
      | _ -> ())
    mix

let server_tests =
  [
    Alcotest.test_case "every request reconciles, inline and across workers" `Quick (fun () ->
        List.iter
          (fun jobs ->
            with_traced_server ~jobs (fun server s ->
                cold s;
                call_mix server;
                let reports = Server.trace_reports server in
                Alcotest.(check int)
                  (Printf.sprintf "jobs=%d: one report per request" jobs)
                  (List.length mix) (List.length reports);
                List.iter check_reconciles reports;
                Alcotest.(check (list string)) "kinds in submission order"
                  (List.map Api.kind mix)
                  (List.map (fun (r : Trace.report) -> r.Trace.kind) reports);
                Alcotest.(check (list string)) "server-assigned ids are sequential"
                  [ "t-000001"; "t-000002"; "t-000003"; "t-000004"; "t-000005"; "t-000006" ]
                  (List.map (fun (r : Trace.report) -> r.Trace.trace_id) reports);
                List.iter
                  (fun (r : Trace.report) ->
                    Alcotest.(check bool) "queue.wait present" true (has_span "queue.wait" r);
                    match r.Trace.kind with
                    | "query" ->
                      Alcotest.(check bool) "query ran under the shared gate" true
                        (has_span "gate.read" r);
                      Alcotest.(check bool) "exec span" true (has_span "exec.query" r);
                      Alcotest.(check bool) "operator rows attached" true (has_span_prefix "op" r);
                      Alcotest.(check bool) "EXPLAIN ANALYZE kept" true (r.Trace.plan <> None)
                    | "load" ->
                      Alcotest.(check bool) "load ran under the exclusive gate" true
                        (has_span "gate.write" r);
                      Alcotest.(check bool) "exec span" true (has_span "exec.load" r);
                      Alcotest.(check bool) "parse phase" true (has_span "xml.parse" r);
                      Alcotest.(check bool) "store phase" true (has_span "load.store" r)
                    | _ -> ())
                  reports))
          [ 0; 1; 4 ]);
    Alcotest.test_case "a lone cold query's trace equals the store's counter delta" `Quick
      (fun () ->
        with_traced_server ~jobs:0 (fun server s ->
            let conn = Server.Loopback.connect server ~tenant:"t" in
            cold s;
            let store = Natix.Session.store s in
            let before = Io_stats.copy (Tree_store.io_stats store) in
            (match
               Server.Loopback.call conn (Api.Query { doc = "a"; path = "//SPEAKER"; texts = false })
             with
            | Api.Hits hits -> Alcotest.(check bool) "hits" true (hits <> [])
            | r -> Alcotest.failf "query: %a" Api.pp_response r);
            let after = Io_stats.copy (Tree_store.io_stats store) in
            let r =
              match Server.trace_reports server with
              | [ r ] -> r
              | l -> Alcotest.failf "expected one report, got %d" (List.length l)
            in
            Alcotest.(check bool) "cold query did real reads" true (r.Trace.total.Trace.reads > 0);
            Alcotest.(check int) "global reads delta"
              (after.Io_stats.reads - before.Io_stats.reads)
              r.Trace.total.Trace.reads;
            Alcotest.(check int) "global writes delta"
              (after.Io_stats.writes - before.Io_stats.writes)
              r.Trace.total.Trace.writes;
            Alcotest.(check bool) "global sim-ms delta" true
              (close_ms (after.Io_stats.sim_ms -. before.Io_stats.sim_ms) r.Trace.total.Trace.io_ms);
            check_reconciles r));
    Alcotest.test_case "twin runs export byte-identical traces" `Quick (fun () ->
        let run_once () =
          with_traced_server ~jobs:0 (fun server s ->
              cold s;
              call_mix server;
              let reports = Server.trace_reports server in
              ( List.map (fun r -> Json.to_string (Trace.report_to_json r)) reports,
                List.map Trace.folded reports ))
        in
        let json1, folded1 = run_once () in
        let json2, folded2 = run_once () in
        Alcotest.(check bool) "traces exported" true (json1 <> []);
        Alcotest.(check (list string)) "json byte-identical" json1 json2;
        Alcotest.(check (list string)) "folded byte-identical" folded1 folded2);
    Alcotest.test_case "client trace ids ride the frame; the ring caps; slow log" `Quick
      (fun () ->
        with_traced_server
          ~trace:{ Server.slow_ms = 0.; trace_ring = 4; slo_target_p99_ms = None }
          (fun server s ->
            cold s;
            let conn = Server.Loopback.connect server ~tenant:"t" in
            let query = Api.Query { doc = "a"; path = "//SPEAKER"; texts = false } in
            (match Server.Loopback.call ~trace_id:"req-7f3" conn query with
            | Api.Hits _ -> ()
            | r -> Alcotest.failf "query: %a" Api.pp_response r);
            for _ = 1 to 5 do
              ignore (Server.Loopback.call conn query)
            done;
            let ids =
              List.map (fun (r : Trace.report) -> r.Trace.trace_id) (Server.trace_reports server)
            in
            (* Six requests, ring of four: the client-named one fell off;
               server-assigned ids never consumed a sequence number for
               it. *)
            Alcotest.(check (list string)) "ring keeps the newest, oldest first"
              [ "t-000002"; "t-000003"; "t-000004"; "t-000005" ]
              ids;
            let slow = Server.slow_reports server in
            Alcotest.(check int) "slow_ms = 0 logs every request (capped)" 4 (List.length slow);
            List.iter
              (fun (r : Trace.report) ->
                Alcotest.(check bool) "slow query keeps its plan" true (r.Trace.plan <> None))
              slow));
    Alcotest.test_case "server stats answer matches the dispatcher, untraced" `Quick (fun () ->
        with_traced_server (fun server _s ->
            call_mix server;
            let conn = Server.Loopback.connect server ~tenant:"t" in
            let st = Server.stats server in
            (match Server.Loopback.call conn Api.Server_stats with
            | Api.Server_statted w ->
              Alcotest.(check int) "served" st.Server.served w.Api.served;
              Alcotest.(check int) "shed" st.Server.shed w.Api.shed;
              Alcotest.(check int) "queued" 0 w.Api.queued;
              Alcotest.(check int) "running" 0 w.Api.running;
              let c = Server.config server in
              Alcotest.(check int) "jobs" c.Server.jobs w.Api.jobs;
              Alcotest.(check int) "max_inflight" c.Server.max_inflight w.Api.max_inflight;
              Alcotest.(check int) "queue_depth" c.Server.queue_depth w.Api.queue_depth
            | r -> Alcotest.failf "server stats: %a" Api.pp_response r);
            Alcotest.(check int) "stats request leaves no trace" (List.length mix)
              (List.length (Server.trace_reports server))));
  ]

(* ------------------------------------------------------------------ *)
(* WAL commit decomposition                                             *)

let fresh path =
  if Sys.file_exists path then Sys.remove path;
  let wal = Recovery.wal_path path in
  if Sys.file_exists wal then Sys.remove wal

let with_store_file f =
  let path = Filename.temp_file "natix_trace" ".db" in
  Fun.protect
    ~finally:(fun () -> fresh path)
    (fun () ->
      fresh path;
      f path)

let commit_tests =
  [
    Alcotest.test_case "group commit decomposes into queue and fsync spans" `Quick (fun () ->
        with_store_file (fun path ->
            let disk = Disk.on_file ~page_size:1024 path in
            let store =
              Tree_store.open_store ~config:{ (config ()) with Config.commit_delay = 5. } disk
            in
            Fun.protect
              ~finally:(fun () -> Tree_store.close ~commit:false store)
              (fun () ->
                let dm = Document_manager.create ~index:Document_manager.Off store in
                let clock () = (Disk.stats disk).Io_stats.sim_ms in
                let io () =
                  let s = Disk.active_stats disk in
                  {
                    Trace.reads = s.Io_stats.reads;
                    writes = s.Io_stats.writes;
                    io_ms = s.Io_stats.sim_ms;
                  }
                in
                let tr =
                  Trace.create ~trace_id:"t-commit" ~tenant:"t" ~kind:"load" ~detail:"doc" ~clock
                in
                Trace.run tr ~io (fun () ->
                    Trace.span tr "load.store" (fun () ->
                        match
                          Document_manager.store_transactional dm ~name:"doc"
                            (Natix_xml.Xml_parser.parse (play_xml "doc"))
                        with
                        | Ok _ -> ()
                        | Error e -> Alcotest.failf "store: %s" (Error.to_string e)));
                let r = Trace.finish tr in
                check_reconciles r;
                let parent = find_span "load.store" r in
                let queue = find_span "commit.queue" r in
                let fsync = find_span "commit.fsync" r in
                Alcotest.(check int) "commit.queue under the store span" parent.Trace.id
                  queue.Trace.parent;
                Alcotest.(check int) "commit.fsync under the store span" parent.Trace.id
                  fsync.Trace.parent;
                (* A lone committer leads immediately and pays the whole
                   delay window inside its own fsync span. *)
                Alcotest.(check bool) "no leadership wait" true (queue.Trace.dur_ms >= 0.);
                Alcotest.(check bool)
                  (Printf.sprintf "fsync absorbs the delay window (%g ms)" fsync.Trace.dur_ms)
                  true (fsync.Trace.dur_ms >= 5.);
                Alcotest.(check bool) "queue hands off to fsync" true
                  (close_ms (queue.Trace.start_ms +. queue.Trace.dur_ms) fsync.Trace.start_ms);
                Alcotest.(check int) "waits move no private io" 0
                  (queue.Trace.total.Trace.reads + fsync.Trace.total.Trace.reads
                 + queue.Trace.total.Trace.writes + fsync.Trace.total.Trace.writes))));
  ]

(* ------------------------------------------------------------------ *)
(* SLO windows: edge-triggered breaches that re-arm                     *)

let slo_tests =
  [
    Alcotest.test_case "a burn fires once, re-arms on recovery, fires again" `Quick (fun () ->
        let slo = Slo.create ~bucket_ms:100. ~buckets:10 ~target_p99_ms:50. () in
        Alcotest.(check bool) "below target: quiet" true
          (Slo.observe slo ~tenant:"t" ~at_ms:0. ~dur_ms:10. = None);
        (match Slo.observe slo ~tenant:"t" ~at_ms:1. ~dur_ms:100. with
        | Some b ->
          Alcotest.(check string) "breach tenant" "t" b.Slo.tenant;
          Alcotest.(check (float 1e-9)) "breach target" 50. b.Slo.target_ms;
          Alcotest.(check (float 1e-9)) "breach stamp" 1. b.Slo.at_ms;
          Alcotest.(check bool) "breach p99 over target" true (b.Slo.p99_ms > 50.)
        | None -> Alcotest.fail "crossing the target must fire");
        Alcotest.(check bool) "still burning: no second event" true
          (Slo.observe slo ~tenant:"t" ~at_ms:2. ~dur_ms:120. = None);
        (* The window spans 1000 ms; by 2000 the burn has slid out and a
           healthy observation re-arms the trigger. *)
        Alcotest.(check bool) "recovered: quiet" true
          (Slo.observe slo ~tenant:"t" ~at_ms:2000. ~dur_ms:5. = None);
        (match Slo.observe slo ~tenant:"t" ~at_ms:2001. ~dur_ms:200. with
        | Some _ -> ()
        | None -> Alcotest.fail "a second burn after recovery must fire again");
        Slo.set_target slo ~tenant:"a" ~p99_ms:(Some 1.);
        (match Slo.observe slo ~tenant:"a" ~at_ms:2002. ~dur_ms:2. with
        | Some b -> Alcotest.(check (float 1e-9)) "per-tenant target" 1. b.Slo.target_ms
        | None -> Alcotest.fail "per-tenant target must apply");
        match Slo.snapshot slo ~at_ms:2002. with
        | [ a; t ] ->
          Alcotest.(check string) "sorted by tenant" "a" a.Slo.tenant;
          Alcotest.(check string) "sorted by tenant" "t" t.Slo.tenant;
          Alcotest.(check int) "t burned twice" 2 t.Slo.breaches;
          Alcotest.(check bool) "t currently burning" true t.Slo.breached;
          Alcotest.(check int) "t window holds the live observations" 2 t.Slo.count;
          Alcotest.(check (option (float 1e-9))) "targets surface" (Some 50.) t.Slo.target_ms
        | l -> Alcotest.failf "expected two tenants, got %d" (List.length l));
    Alcotest.test_case "the server's slo wiring burns once per sustained breach" `Quick
      (fun () ->
        with_traced_server
          ~trace:{ Server.default_trace with Server.slo_target_p99_ms = Some 0. }
          (fun server s ->
            cold s;
            let conn = Server.Loopback.connect server ~tenant:"t" in
            for _ = 1 to 4 do
              ignore
                (Server.Loopback.call conn (Api.Query { doc = "a"; path = "//SPEAKER"; texts = false }))
            done;
            (match Server.slo_breaches server with
            | [ b ] ->
              Alcotest.(check string) "tenant" "t" b.Slo.tenant;
              Alcotest.(check (float 1e-9)) "target" 0. b.Slo.target_ms
            | l -> Alcotest.failf "expected one breach event, got %d" (List.length l));
            let store = Natix.Session.store s in
            let at_ms = (Tree_store.io_stats store).Io_stats.sim_ms in
            match Server.slo_snapshot server ~at_ms with
            | [ st ] ->
              Alcotest.(check string) "tenant" "t" st.Slo.tenant;
              Alcotest.(check int) "observations" 4 st.Slo.count;
              Alcotest.(check bool) "burning" true st.Slo.breached;
              Alcotest.(check int) "one edge" 1 st.Slo.breaches
            | l -> Alcotest.failf "expected one tenant, got %d" (List.length l)));
  ]

(* ------------------------------------------------------------------ *)
(* The tenant gate: writer preference and its wait spans                *)

(* Hold the gate shared from a helper domain until [release] is set;
   [held] reports acquisition so the main domain can sequence. *)
let holding_reader gate ~held ~release =
  Domain.spawn (fun () ->
      Rw_lock.with_read gate (fun () ->
          Atomic.set held true;
          while not (Atomic.get release) do
            Unix.sleepf 0.001
          done))

let gate_tests =
  [
    Alcotest.test_case "late readers queue behind a waiting writer" `Quick (fun () ->
        let gate = Rw_lock.create () in
        let order = ref [] in
        let mu = Mutex.create () in
        let record tag = Mutex.protect mu (fun () -> order := tag :: !order) in
        let seen tag = Mutex.protect mu (fun () -> List.mem tag !order) in
        let held = Atomic.make false and release = Atomic.make false in
        let holder = holding_reader gate ~held ~release in
        wait_for "holder shared acquisition" (fun () -> Atomic.get held);
        let writer =
          Domain.spawn (fun () ->
              record "w-queued";
              Rw_lock.with_write gate (fun () -> record "w-held"))
        in
        wait_for "writer queued" (fun () -> seen "w-queued");
        (* Give the writer time to block on the gate before the reader
           arrives; preference is what keeps this deterministic. *)
        Unix.sleepf 0.05;
        let reader =
          Domain.spawn (fun () -> Rw_lock.with_read gate (fun () -> record "r2-held"))
        in
        Unix.sleepf 0.05;
        Alcotest.(check bool) "writer blocked by the active reader" false (seen "w-held");
        Alcotest.(check bool) "late reader blocked by the waiting writer" false (seen "r2-held");
        Atomic.set release true;
        Domain.join holder;
        Domain.join writer;
        Domain.join reader;
        match List.rev !order with
        | [ "w-queued"; "w-held"; "r2-held" ] -> ()
        | l -> Alcotest.failf "acquisition order: [%s]" (String.concat "; " l));
    Alcotest.test_case "a writer is never starved by reader churn" `Quick (fun () ->
        let gate = Rw_lock.create () in
        let stop = Atomic.make false in
        let acquired = Atomic.make false in
        let readers =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  while not (Atomic.get stop) do
                    Rw_lock.with_read gate (fun () -> Unix.sleepf 0.0005)
                  done))
        in
        let writer =
          Domain.spawn (fun () -> Rw_lock.with_write gate (fun () -> Atomic.set acquired true))
        in
        wait_for "writer acquisition under churn" (fun () -> Atomic.get acquired);
        Atomic.set stop true;
        Domain.join writer;
        List.iter Domain.join readers);
    Alcotest.test_case "gate blocking shows up as a wait span" `Quick (fun () ->
        let gate = Rw_lock.create () in
        let now = ref 0. in
        let report = ref None in
        let held = Atomic.make false and release = Atomic.make false in
        let holder = holding_reader gate ~held ~release in
        wait_for "holder shared acquisition" (fun () -> Atomic.get held);
        let writer =
          Domain.spawn (fun () ->
              let tr =
                Trace.create ~trace_id:"t-gate" ~tenant:"t" ~kind:"load" ~detail:""
                  ~clock:(fun () -> !now)
              in
              Trace.run tr
                ~io:(fun () -> Trace.zero_io)
                (fun () -> Rw_lock.with_write gate (fun () -> ()));
              report := Some (Trace.finish tr))
        in
        (* Let the writer reach the gate, then advance the simulated
           clock while it blocks: the wait span must cover exactly the
           window the clock moved. *)
        Unix.sleepf 0.05;
        now := 10.;
        Atomic.set release true;
        Domain.join holder;
        Domain.join writer;
        let r = match !report with Some r -> r | None -> Alcotest.fail "no report" in
        let span = find_span "gate.write" r in
        Alcotest.(check (float 1e-9)) "blocked window" 10. span.Trace.dur_ms;
        Alcotest.(check int) "waiting moved no io" 0 span.Trace.total.Trace.reads;
        let tr2 =
          Trace.create ~trace_id:"t-free" ~tenant:"t" ~kind:"query" ~detail:""
            ~clock:(fun () -> !now)
        in
        Trace.run tr2
          ~io:(fun () -> Trace.zero_io)
          (fun () -> Rw_lock.with_read gate (fun () -> ()));
        let free = find_span "gate.read" (Trace.finish tr2) in
        Alcotest.(check (float 1e-9)) "a free gate is a zero-length wait" 0. free.Trace.dur_ms);
  ]

(* ------------------------------------------------------------------ *)
(* Flight-dump satellites: the path override and the trace id in meta   *)

let flight_tests =
  [
    Alcotest.test_case "NATIX_FLIGHT_PATH overrides the dump destination" `Quick (fun () ->
        Unix.putenv "NATIX_FLIGHT_PATH" "/tmp/natix-test-flight.jsonl";
        Alcotest.(check string) "env wins" "/tmp/natix-test-flight.jsonl"
          (Natix.Session.flight_path ());
        Unix.putenv "NATIX_FLIGHT_PATH" "";
        Alcotest.(check string) "empty env falls back" "natix-flight.jsonl"
          (Natix.Session.flight_path ()));
    Alcotest.test_case "a flight dump names the request that triggered it" `Quick (fun () ->
        let s = session_with_docs [ "d" ] in
        let dump trace_id =
          let path = Filename.temp_file "natix_flight" ".jsonl" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let oc = open_out path in
              Natix.Session.dump_flight ?trace_id s oc;
              close_out oc;
              let meta, ops = Recorder.load path in
              Alcotest.(check bool) "flight ring captured the load" true (ops <> []);
              meta.Recorder.trace_id)
        in
        Alcotest.(check (option string)) "trace id rides the meta line" (Some "t-000042")
          (dump (Some "t-000042"));
        Alcotest.(check (option string)) "absent without a failing request" None (dump None);
        Natix.Session.close s);
  ]

let suites =
  [
    ("trace.spans", unit_tests);
    ("trace.server", server_tests);
    ("trace.commit", commit_tests);
    ("trace.slo", slo_tests);
    ("trace.gate", gate_tests);
    ("trace.flight", flight_tests);
  ]
