module Api = Natix.Api

type t = { fd : Unix.file_descr; mutable seq : int; version : int }

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off = if off < n then go (off + Unix.write fd buf off (n - off)) in
  go 0

let connect ~host ~port ~tenant =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let read = read_exactly fd and write s = write_all fd s in
  Protocol.write_header write;
  let version =
    match Protocol.read_header read with
    | Ok peer -> min peer Protocol.version
    | Error msg ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith ("server handshake: " ^ msg)
  in
  Protocol.write_frame write ~version ~seq:0 tenant;
  { fd; seq = 0; version }

let call ?trace_id t req =
  t.seq <- t.seq + 1;
  Protocol.write_frame (write_all t.fd) ~version:t.version ~seq:t.seq ?trace_id
    (Api.encode_request req);
  match Protocol.read_frame ~version:t.version (read_exactly t.fd) with
  | Ok None -> raise End_of_file
  | Error msg -> failwith ("response frame: " ^ msg)
  | Ok (Some f) ->
    if f.Protocol.seq <> t.seq then
      failwith (Printf.sprintf "response out of order: frame %d, expected %d" f.Protocol.seq t.seq);
    (match Api.decode_response f.Protocol.payload with
    | Ok resp -> resp
    | Error msg -> failwith ("response decode: " ^ msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
