(** The tenant → store registry: many stores mounted in one process.

    A tenant is one {!Natix.Session} (one store file) plus the serving
    state the dispatcher needs around it: the {!Rw_lock} gate, the
    stats-merge lock, and the shed/crash flags.  Tenants arrive two
    ways:

    - {!mount} hands the registry an already-open session (tests,
      in-memory tenants).  The registry does {e not} close these.
    - {!find} on an unknown name lazily opens [<root>/<name>.natix]
      when the registry was created with a [root] directory — the
      serve-from-a-directory deployment.  The file must already exist:
      a client-supplied name never materialises a fresh store.  Lazily
      opened tenants are owned: {!close_all} checkpoints and closes
      them.

    The table itself is guarded at {!Natix_store.Lock_rank.registry},
    the lowest rank: a lazy open runs under it and takes every engine
    lock above.

    {b Budget shedding.}  Whenever a tenant's session carries a monitor,
    the registry registers a {!Natix_mon.Mon.on_budget} hook that
    latches the first breach into [shed] (e.g. ["budget:reads"]).  The
    dispatcher turns that latch into typed [Overloaded] replies when its
    configuration says to; the registry only records. *)

type tenant = {
  name : string;
  session : Natix.Session.t;
  gate : Rw_lock.t;
  stats_mu : Mutex.t;
      (** serialises merging per-request I/O streams into the tenant
          disk's default accumulator; a leaf lock — nothing else is ever
          taken while holding it *)
  owned : bool;  (** opened lazily by the registry, closed by {!close_all} *)
  mutable shed : string option;  (** latched budget-breach shed reason *)
  mutable crashed : bool;
      (** a request hit {!Natix_store.Faulty_disk.Crash}: the store's
          disk refuses further writes, so the dispatcher answers with a
          typed error instead of touching it *)
}

type t

(** [create ?root ?options ()] — [root] enables lazy opening of
    [<root>/<name>.natix]; [options] configures those opens (default
    {!Natix.Session.Options.default}). *)
val create : ?root:string -> ?options:Natix.Session.Options.t -> unit -> t

(** [mount t name session] registers an externally-owned session.
    @raise Invalid_argument when [name] is already registered. *)
val mount : t -> string -> Natix.Session.t -> unit

(** Look a tenant up, lazily opening its store when a [root] is
    configured.  Unknown tenant (no mounted session and no existing
    [<root>/<name>.natix]) and invalid names (path separators and
    dot-prefixes are rejected, tenant names are not paths) are typed
    [Error]s; so is a lazy open that fails with a typed error.
    Non-typed open failures (corrupt store file) propagate. *)
val find : t -> string -> (tenant, Natix_core.Error.t) result

(** Registered tenant names, sorted. *)
val names : t -> string list

(** Checkpoint and close every {e owned} tenant (mounted sessions stay
    open — their owner closes them) and empty the table. *)
val close_all : t -> unit
