(** Wire framing for the serve protocol.

    A connection is, per direction, one 6-byte stream header followed by
    CRC-framed messages.  Version 2 added an optional trace-id field so
    clients can propagate (and the server can echo) a request's trace
    identity; version 1 frames carry none:

    {v
      header   ::=  "NTXS"  u16 version              (once per direction)
      frame_v1 ::=  u32 len  u32 seq  payload[len]  u32 crc
      frame_v2 ::=  u32 len  u32 seq  u8 tlen  trace[tlen]  payload[len]  u32 crc
    v}

    All integers are big-endian.  [len] counts payload bytes only.
    [crc] is CRC-32 (the WAL's {!Natix_store.Checksum}) over the 4
    [seq] bytes, then (v2) the [tlen] byte and trace bytes, then the
    payload, so a frame that arrives at all arrives intact — a mismatch
    means the stream is unusable and the connection must close (framing
    cannot resynchronise).  The payload is one encoded {!Natix.Api}
    message; this layer neither knows nor cares which.

    Version negotiation is one-shot and header-driven: each side sends
    the newest version it speaks and accepts any version in
    [{!min_version} .. {!version}] from the peer; both directions then
    frame at the {e lower} of the two headers.  A v1 stream is
    byte-identical to what a pre-v2 build produced.

    I/O happens through two callbacks so the same code drives a socket,
    a pipe, or the in-process loopback buffer:
    - a writer [string -> unit] that must write the whole string;
    - a reader [int -> string] that returns {e exactly} [n] bytes or
      raises [End_of_file]. *)

(** Newest protocol version this build speaks (2). *)
val version : int

(** Oldest version still accepted from a peer (1). *)
val min_version : int

(** The 6-byte stream header ("NTXS" + {!version}). *)
val header : string

(** [header_for v] is the stream header advertising version [v]. *)
val header_for : int -> string

type frame = { seq : int; trace_id : string option; payload : string }

(** Refuse frames larger than this (64 MiB): a huge length field is far
    more likely a desynchronised or hostile stream than a real message. *)
val max_payload : int

(** Trace ids longer than this (255 bytes) are refused. *)
val max_trace_id : int

val write_header : (string -> unit) -> unit

(** Consume and check the peer's stream header; [Ok v] is the peer's
    advertised version, clamped nowhere — the caller frames at
    [min v version]. *)
val read_header : (int -> string) -> (int, string) result

(** [write_frame ?version ?trace_id write ~seq payload] frames at
    [version] (default {!version}).  A [trace_id] is dropped silently
    when framing at version 1, which cannot carry one.
    @raise Invalid_argument when the payload exceeds {!max_payload},
    the trace id exceeds {!max_trace_id}, or [version] is unknown. *)
val write_frame : ?version:int -> ?trace_id:string -> (string -> unit) -> seq:int -> string -> unit

(** [Ok None] on a clean end of stream (EOF at a frame boundary);
    [Error _] on a truncated frame, oversized length or CRC mismatch —
    all fatal to the connection.  [version] (default {!version})
    selects the frame layout negotiated for the stream. *)
val read_frame : ?version:int -> (int -> string) -> (frame option, string) result
