(** Wire framing for the serve protocol.

    A connection is, per direction, one 6-byte stream header followed by
    CRC-framed messages:

    {v
      header   ::=  "NTXS"  u16 version           (once per direction)
      frame    ::=  u32 len  u32 seq  payload[len]  u32 crc
    v}

    All integers are big-endian.  [crc] is CRC-32 (the WAL's
    {!Natix_store.Checksum}) over the 4 [seq] bytes followed by the
    payload, so a frame that arrives at all arrives intact — a mismatch
    means the stream is unusable and the connection must close (framing
    cannot resynchronise).  The payload is one encoded {!Natix.Api}
    message; this layer neither knows nor cares which.

    I/O happens through two callbacks so the same code drives a socket,
    a pipe, or the in-process loopback buffer:
    - a writer [string -> unit] that must write the whole string;
    - a reader [int -> string] that returns {e exactly} [n] bytes or
      raises [End_of_file]. *)

val version : int

(** The 6-byte stream header ("NTXS" + version). *)
val header : string

type frame = { seq : int; payload : string }

(** Refuse frames larger than this (64 MiB): a huge length field is far
    more likely a desynchronised or hostile stream than a real message. *)
val max_payload : int

val write_header : (string -> unit) -> unit

(** Consume and check the peer's stream header. *)
val read_header : (int -> string) -> (unit, string) result

(** @raise Invalid_argument when the payload exceeds {!max_payload}. *)
val write_frame : (string -> unit) -> seq:int -> string -> unit

(** [Ok None] on a clean end of stream (EOF at a frame boundary);
    [Error _] on a truncated frame, oversized length or CRC mismatch —
    all fatal to the connection. *)
val read_frame : (int -> string) -> (frame option, string) result
