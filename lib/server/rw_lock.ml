module Lock_rank = Natix_store.Lock_rank

type t = {
  mu : Mutex.t;
  turn : Condition.t;
  mutable readers : int;  (* active shared holders *)
  mutable writer : bool;  (* an exclusive holder is active *)
  mutable waiting_writers : int;
}

let create () =
  { mu = Mutex.create (); turn = Condition.create (); readers = 0; writer = false;
    waiting_writers = 0 }

(* The internal mutex is only ever held for the state transition below —
   never across a request — so the rank checker tracks the *gate* (rank
   [tenant], held across execution), not the mutex. *)

(* Gate waits show up in request traces as [gate.read]/[gate.write]
   intervals on the global simulated clock — zero-length when the gate
   was free, the blocked window (other requests' I/O advancing the
   clock) when it was not.  Sampling happens outside the mutex; the
   tracer is per-domain state and charges nothing. *)
let gate_now () =
  match Natix_trace.Trace.active () with
  | None -> 0.
  | Some tr -> Natix_trace.Trace.clock tr

let gate_waited name t0 =
  match Natix_trace.Trace.active () with
  | None -> ()
  | Some tr -> Natix_trace.Trace.interval tr name ~t0 ~t1:(Natix_trace.Trace.clock tr)

let lock_read t =
  let t0 = gate_now () in
  Lock_rank.acquire Lock_rank.tenant;
  Mutex.lock t.mu;
  (* Queue behind waiting writers, or a query stream starves loads. *)
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.turn t.mu
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mu;
  gate_waited "gate.read" t0

let unlock_read t =
  Mutex.lock t.mu;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.turn;
  Mutex.unlock t.mu;
  Lock_rank.release Lock_rank.tenant

let lock_write t =
  let t0 = gate_now () in
  Lock_rank.acquire Lock_rank.tenant;
  Mutex.lock t.mu;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.turn t.mu
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mu;
  gate_waited "gate.write" t0

let unlock_write t =
  Mutex.lock t.mu;
  t.writer <- false;
  Condition.broadcast t.turn;
  Mutex.unlock t.mu;
  Lock_rank.release Lock_rank.tenant

let with_read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let with_write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
