module Lock_rank = Natix_store.Lock_rank
module Error = Natix_core.Error

type tenant = {
  name : string;
  session : Natix.Session.t;
  gate : Rw_lock.t;
  stats_mu : Mutex.t;
  owned : bool;
  mutable shed : string option;
  mutable crashed : bool;
}

type t = {
  root : string option;
  options : Natix.Session.Options.t;
  mu : Mutex.t;  (* rank registry *)
  table : (string, tenant) Hashtbl.t;
}

let create ?root ?(options = Natix.Session.Options.default) () =
  { root; options; mu = Mutex.create (); table = Hashtbl.create 8 }

let locked t f =
  Lock_rank.acquire Lock_rank.registry;
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.mu;
      Lock_rank.release Lock_rank.registry)
    f

(* Latch the first budget breach so the dispatcher can shed; later
   breaches keep the first reason, which is the one that tripped. *)
let watch_budget tenant =
  match Natix.Session.mon tenant.session with
  | None -> ()
  | Some mon ->
    Natix.Mon.on_budget mon (fun (b : Natix_mon.Account.breach) ->
        if tenant.shed = None then tenant.shed <- Some ("budget:" ^ b.resource))

let make ~name ~owned session =
  let tenant =
    { name; session; gate = Rw_lock.create (); stats_mu = Mutex.create (); owned; shed = None;
      crashed = false }
  in
  watch_budget tenant;
  tenant

let mount t name session =
  locked t (fun () ->
      if Hashtbl.mem t.table name then
        invalid_arg (Printf.sprintf "Registry.mount: tenant %S already registered" name);
      Hashtbl.replace t.table name (make ~name ~owned:false session))

(* Tenant names are identifiers, not paths: anything that could escape
   the root directory (separators, leading dots, NULs) is refused with a
   typed error before it reaches the filesystem. *)
let valid_name name =
  name <> ""
  && name.[0] <> '.'
  && String.for_all (fun c -> c <> '/' && c <> '\\' && c <> '\x00') name

let find t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some tenant -> Ok tenant
      | None ->
        if not (valid_name name) then
          Error (Error.Storage (Printf.sprintf "invalid tenant name %S" name))
        else (
          match t.root with
          | None -> Error (Error.Storage (Printf.sprintf "unknown tenant %S" name))
          | Some root -> (
            let path = Filename.concat root (name ^ ".natix") in
            (* [Session.open_store] creates missing files; a server must
               not let an arbitrary client-supplied name materialise a
               fresh store, so lazy opens require the file to exist. *)
            if not (Sys.file_exists path) then
              Error (Error.Storage (Printf.sprintf "unknown tenant %S" name))
            else
              match Natix.Session.open_store ~options:t.options path with
            | session ->
              let tenant = make ~name ~owned:true session in
              Hashtbl.replace t.table name tenant;
              Ok tenant
            | exception Error.Error e -> Error e)))

let names t =
  locked t (fun () -> List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []))

let close_all t =
  locked t (fun () ->
      Hashtbl.iter (fun _ tenant -> if tenant.owned then Natix.Session.close tenant.session)
        t.table;
      Hashtbl.reset t.table)
