(** The per-tenant read-write gate.

    The engine has no MVCC: readers under a concurrent writer would see
    torn trees.  So the server gives every tenant one of these gates and
    holds it across the whole execution of a request — {e shared} for
    queries (each runs on its own {!Natix_core.Tree_store.reader} view,
    the parallel executor's proven model) and {e exclusive} for anything
    that mutates or walks shared session state (load, checkpoint, scan,
    stat).

    Writer-preferring: once a writer waits, new readers queue behind it,
    so a stream of queries cannot starve a load.

    Registered with {!Natix_store.Lock_rank} at rank [tenant]: the gate
    is taken before any storage-engine lock and held until the request
    finishes, so it sits below [doc] in the lock order. *)

type t

val create : unit -> t

(** [with_read t f] runs [f] holding the gate shared. *)
val with_read : t -> (unit -> 'a) -> 'a

(** [with_write t f] runs [f] holding the gate exclusively. *)
val with_write : t -> (unit -> 'a) -> 'a
