(** The request dispatcher: many tenants, one domain pool, bounded
    admission.

    A {!t} owns [jobs] worker domains fed through the parallel
    executor's work-stealing deques ({!Natix_par.Deque}) — with the
    roles reversed: {e submitters}, serialised by the connection lock,
    act as the single logical owner pushing round-robin, and every
    worker only ever [steal]s (the thief side is safe from any domain).
    A submitted request becomes a ticket; {!submit} blocks its caller
    until a worker fills in the reply, so one connection maps naturally
    onto one submitting thread.

    {b Admission.}  Before queueing, under the connection lock (rank
    [conn], never held across execution):
    - dispatcher shutting down → [Overloaded "shutting_down"];
    - the tenant's budget-breach latch is set (and [shed_on_breach]) →
      [Overloaded "budget:<resource>"];
    - [running + queued >= max_inflight] → [Overloaded "inflight_limit"];
    - [queued >= queue_depth] (or every deque full) →
      [Overloaded "queue_full"].

    Shedding is the {e only} overload behaviour: an admitted request is
    always executed and always answered, and {!shutdown} drains the
    queue before the workers exit, so no submitter is left hanging.

    {b Execution.}  A worker runs a request under the tenant's
    {!Rw_lock} gate — shared for queries (each on a private
    {!Natix_core.Tree_store.reader} view with a navigation-only engine),
    exclusive for everything else (via {!Natix.Session.exec}) — inside a
    per-request I/O stream on the tenant's disk, with the observability
    context set to (tenant doc, ["serve:<kind>"]).  Exceptions map
    {e exhaustively} to typed [Err] replies: a raising request never
    takes a worker down and never leaves a frame latched.  A simulated
    crash additionally latches the tenant's [crashed] flag so later
    requests are refused with a typed error instead of touching the torn
    store.

    With [jobs = 0] there are no workers and {!submit} executes inline
    on the calling domain (admission still applies) — the deterministic
    mode the traffic bench and differential tests build on. *)

type config = {
  jobs : int;  (** worker domains; [0] executes inline in {!submit} *)
  max_inflight : int;  (** running + queued admission ceiling *)
  queue_depth : int;  (** queued-only ceiling *)
  shed_on_breach : bool;
      (** turn a tenant's budget-breach latch into [Overloaded] replies *)
}

(** [{ jobs = 4; max_inflight = 64; queue_depth = 32; shed_on_breach = true }] *)
val default_config : config

type stats = {
  served : int;  (** requests executed and answered *)
  shed : int;  (** requests refused with [Overloaded] *)
  max_queue : int;  (** high-water mark of the queue *)
  queued : int;  (** tickets waiting in the deques right now *)
  running : int;  (** requests executing right now *)
}

type t

val create : ?config:config -> Registry.t -> t
val registry : t -> Registry.t
val config : t -> config

(** Dispatch one request for [tenant] and block until its reply. *)
val submit : t -> tenant:string -> Natix.Api.request -> Natix.Api.response

val stats : t -> stats

(** Drain the queue, answer everything admitted, join the workers.
    Further {!submit}s shed.  Idempotent.  Does {e not} close the
    registry's tenants — callers that own the registry follow with
    {!Registry.close_all}. *)
val shutdown : t -> unit

(** {2 In-process loopback client}

    The same bytes as a socket client — requests and responses go
    through {!Natix.Api}'s codec {e and} {!Protocol}'s CRC framing, via
    an in-memory buffer — without a file descriptor.  This is what the
    differential tests and the traffic bench drive. *)

module Loopback : sig
  type conn

  val connect : t -> tenant:string -> conn

  (** Encode → frame → unframe → decode → {!submit} → encode → frame →
      unframe → decode.  @raise Failure if the codec or framing does not
      round-trip (a bug, not an I/O condition). *)
  val call : conn -> Natix.Api.request -> Natix.Api.response
end

(** {2 Socket serving}

    Stream layout per connection: both sides send {!Protocol.header};
    the client's first frame carries the raw tenant name; every later
    client frame is one encoded request, answered in order with one
    encoded response frame (same [seq]).  A malformed {e payload} in a
    valid frame gets a typed [Err] reply and the connection continues; a
    framing violation (bad CRC, truncation) closes the connection. *)

(** Serve one established connection until EOF; closes [fd]. *)
val serve_connection : t -> Unix.file_descr -> unit

(** Accept loop on [addr]:[port] ([addr] defaults to loopback), one
    domain per connection, at most [max_connections] (default 8)
    concurrent.  Runs until the calling thread is interrupted. *)
val serve : t -> ?addr:string -> ?max_connections:int -> port:int -> unit -> unit
