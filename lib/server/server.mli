(** The request dispatcher: many tenants, one domain pool, bounded
    admission.

    A {!t} owns [jobs] worker domains fed through the parallel
    executor's work-stealing deques ({!Natix_par.Deque}) — with the
    roles reversed: {e submitters}, serialised by the connection lock,
    act as the single logical owner pushing round-robin, and every
    worker only ever [steal]s (the thief side is safe from any domain).
    A submitted request becomes a ticket; {!submit} blocks its caller
    until a worker fills in the reply, so one connection maps naturally
    onto one submitting thread.

    {b Admission.}  Before queueing, under the connection lock (rank
    [conn], never held across execution):
    - dispatcher shutting down → [Overloaded "shutting_down"];
    - the tenant's budget-breach latch is set (and [shed_on_breach]) →
      [Overloaded "budget:<resource>"];
    - [running + queued >= max_inflight] → [Overloaded "inflight_limit"];
    - [queued >= queue_depth] (or every deque full) →
      [Overloaded "queue_full"].

    Shedding is the {e only} overload behaviour: an admitted request is
    always executed and always answered, and {!shutdown} drains the
    queue before the workers exit, so no submitter is left hanging.

    {b Execution.}  A worker runs a request under the tenant's
    {!Rw_lock} gate — shared for queries (each on a private
    {!Natix_core.Tree_store.reader} view with a navigation-only engine),
    exclusive for everything else (via {!Natix.Session.exec}) — inside a
    per-request I/O stream on the tenant's disk, with the observability
    context set to (tenant doc, ["serve:<kind>"]).  Exceptions map
    {e exhaustively} to typed [Err] replies: a raising request never
    takes a worker down and never leaves a frame latched.  A simulated
    crash additionally latches the tenant's [crashed] flag so later
    requests are refused with a typed error instead of touching the torn
    store.

    With [jobs = 0] there are no workers and {!submit} executes inline
    on the calling domain (admission still applies) — the deterministic
    mode the traffic bench and differential tests build on. *)

(** Tracing knobs, active only when {!config}[.trace] is [Some _]. *)
type trace_config = {
  slow_ms : float;
      (** requests with simulated duration [>= slow_ms] also land in the
          slow-request log (with their EXPLAIN ANALYZE text for queries);
          [infinity] disables the slow log *)
  trace_ring : int;  (** finished reports (and slow entries) kept, newest win *)
  slo_target_p99_ms : float option;
      (** default per-tenant p99 latency target; [None] tracks latency
          windows without breach events *)
}

(** [{ slow_ms = infinity; trace_ring = 256; slo_target_p99_ms = None }] *)
val default_trace : trace_config

type config = {
  jobs : int;  (** worker domains; [0] executes inline in {!submit} *)
  max_inflight : int;  (** running + queued admission ceiling *)
  queue_depth : int;  (** queued-only ceiling *)
  shed_on_breach : bool;
      (** turn a tenant's budget-breach latch into [Overloaded] replies *)
  trace : trace_config option;
      (** [Some _] traces every admitted request end to end: a
          {!Natix_trace.Trace.report} per request — queue wait, gate
          wait, per-operator execution, commit queue/fsync — whose span
          I/O figures reconcile exactly with the request's private disk
          stream.  The tracer only {e reads} the simulated clock, so
          simulated figures are identical with tracing on or off. *)
}

(** [{ jobs = 4; max_inflight = 64; queue_depth = 32; shed_on_breach = true;
      trace = None }] *)
val default_config : config

type stats = {
  served : int;  (** requests executed and answered *)
  shed : int;  (** requests refused with [Overloaded] *)
  max_queue : int;  (** high-water mark of the queue *)
  queued : int;  (** tickets waiting in the deques right now *)
  running : int;  (** requests executing right now *)
}

type t

val create : ?config:config -> Registry.t -> t
val registry : t -> Registry.t
val config : t -> config

(** Dispatch one request for [tenant] and block until its reply.

    [trace_id] names the request's trace when tracing is on (propagated
    from the wire at protocol v2); when absent the server assigns
    ["t-NNNNNN"] sequentially under the connection lock, so single-
    threaded submission yields deterministic ids.

    {!Natix.Api.Server_stats} is answered here, before tenant
    resolution — it reports on the dispatcher itself and needs no
    store. *)
val submit : ?trace_id:string -> t -> tenant:string -> Natix.Api.request -> Natix.Api.response

val stats : t -> stats

(** {2 Trace and SLO introspection}

    All accessors are safe from any thread.  Report lists are capped at
    [trace_ring] (oldest evicted) and returned oldest-first.  Empty when
    tracing is off. *)

(** Every finished trace report. *)
val trace_reports : t -> Natix_trace.Trace.report list

(** Reports whose simulated duration reached [slow_ms]. *)
val slow_reports : t -> Natix_trace.Trace.report list

(** Edge-triggered SLO breach events, oldest first.  A tenant fires
    again only after its windowed p99 drops back under target. *)
val slo_breaches : t -> Natix_mon.Slo.breach list

(** Per-tenant latency window stats as of [at_ms] (the tenant disk's
    simulated clock). *)
val slo_snapshot : t -> at_ms:float -> Natix_mon.Slo.stat list

(** Override one tenant's p99 target ([None] clears it). *)
val set_slo_target : t -> tenant:string -> p99_ms:float option -> unit

(** Drain the queue, answer everything admitted, join the workers.
    Further {!submit}s shed.  Idempotent.  Does {e not} close the
    registry's tenants — callers that own the registry follow with
    {!Registry.close_all}. *)
val shutdown : t -> unit

(** {2 In-process loopback client}

    The same bytes as a socket client — requests and responses go
    through {!Natix.Api}'s codec {e and} {!Protocol}'s CRC framing, via
    an in-memory buffer — without a file descriptor.  This is what the
    differential tests and the traffic bench drive. *)

module Loopback : sig
  type conn

  val connect : t -> tenant:string -> conn

  (** Encode → frame → unframe → decode → {!submit} → encode → frame →
      unframe → decode.  [trace_id] rides the v2 frame's trace field,
      exactly as a socket client's would.  @raise Failure if the codec
      or framing does not round-trip (a bug, not an I/O condition). *)
  val call : ?trace_id:string -> conn -> Natix.Api.request -> Natix.Api.response
end

(** {2 Socket serving}

    Stream layout per connection: both sides send {!Protocol.header};
    the client's first frame carries the raw tenant name; every later
    client frame is one encoded request, answered in order with one
    encoded response frame (same [seq]).  A malformed {e payload} in a
    valid frame gets a typed [Err] reply and the connection continues; a
    framing violation (bad CRC, truncation) closes the connection. *)

(** Serve one established connection until EOF; closes [fd]. *)
val serve_connection : t -> Unix.file_descr -> unit

(** Accept loop on [addr]:[port] ([addr] defaults to loopback), one
    domain per connection, at most [max_connections] (default 8)
    concurrent.  Runs until the calling thread is interrupted. *)
val serve : t -> ?addr:string -> ?max_connections:int -> port:int -> unit -> unit
