module Checksum = Natix_store.Checksum

let version = 1
let magic = "NTXS"

let u32 v =
  String.init 4 (fun i -> Char.chr ((v lsr ((3 - i) * 8)) land 0xff))

let u32_of s =
  (Char.code s.[0] lsl 24)
  lor (Char.code s.[1] lsl 16)
  lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3]

let header = magic ^ String.init 2 (fun i -> Char.chr ((version lsr ((1 - i) * 8)) land 0xff))

type frame = { seq : int; payload : string }

let max_payload = 1 lsl 26

let write_header write = write header

let read_header read =
  match read (String.length header) with
  | exception End_of_file -> Error "connection closed before the stream header"
  | h ->
    if String.sub h 0 4 <> magic then Error "bad stream magic"
    else
      let v = (Char.code h.[4] lsl 8) lor Char.code h.[5] in
      if v <> version then Error (Printf.sprintf "protocol version %d, expected %d" v version)
      else Ok ()

(* CRC over the seq bytes then the payload, chained through [~init] the
   way the WAL chains record checksums. *)
let crc ~seq payload = Checksum.crc32_string ~init:(Checksum.crc32_string (u32 seq)) payload

let write_frame write ~seq payload =
  if String.length payload > max_payload then invalid_arg "Protocol.write_frame: payload too large";
  let seq = seq land 0xffff_ffff in
  write (u32 (String.length payload));
  write (u32 seq);
  write payload;
  write (u32 (crc ~seq payload))

let read_frame read =
  match read 4 with
  | exception End_of_file -> Ok None
  | len_bytes -> (
    let len = u32_of len_bytes in
    if len > max_payload then
      Error (Printf.sprintf "frame length %d exceeds the %d-byte limit" len max_payload)
    else
      match
        let seq = u32_of (read 4) in
        let payload = read len in
        let got = u32_of (read 4) in
        (seq, payload, got)
      with
      | exception End_of_file -> Error "truncated frame"
      | seq, payload, got ->
        if got <> crc ~seq payload then Error (Printf.sprintf "CRC mismatch on frame %d" seq)
        else Ok (Some { seq; payload }))
