module Checksum = Natix_store.Checksum

let version = 2
let min_version = 1
let magic = "NTXS"

let u32 v =
  String.init 4 (fun i -> Char.chr ((v lsr ((3 - i) * 8)) land 0xff))

let u32_of s =
  (Char.code s.[0] lsl 24)
  lor (Char.code s.[1] lsl 16)
  lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3]

let header_for v = magic ^ String.init 2 (fun i -> Char.chr ((v lsr ((1 - i) * 8)) land 0xff))
let header = header_for version

type frame = { seq : int; trace_id : string option; payload : string }

let max_payload = 1 lsl 26
let max_trace_id = 255

let write_header write = write header

let read_header read =
  match read (String.length header) with
  | exception End_of_file -> Error "connection closed before the stream header"
  | h ->
    if String.sub h 0 4 <> magic then Error "bad stream magic"
    else
      let v = (Char.code h.[4] lsl 8) lor Char.code h.[5] in
      if v < min_version || v > version then
        Error (Printf.sprintf "protocol version %d, expected %d..%d" v min_version version)
      else Ok v

(* CRC over the seq bytes, then (v2) the trace-id length byte and trace
   bytes, then the payload — chained through [~init] the way the WAL
   chains record checksums.  [trace] is the already-framed trace field
   ("" at v1). *)
let crc ~seq ~trace payload =
  Checksum.crc32_string ~init:(Checksum.crc32_string ~init:(Checksum.crc32_string (u32 seq)) trace)
    payload

let trace_field version trace_id =
  match version with
  | 1 -> ""
  | 2 ->
    let id = Option.value ~default:"" trace_id in
    if String.length id > max_trace_id then invalid_arg "Protocol.write_frame: trace id too large";
    String.make 1 (Char.chr (String.length id)) ^ id
  | v -> invalid_arg (Printf.sprintf "Protocol.write_frame: unknown version %d" v)

let write_frame ?version:(v = version) ?trace_id write ~seq payload =
  if String.length payload > max_payload then invalid_arg "Protocol.write_frame: payload too large";
  let trace = trace_field v trace_id in
  let seq = seq land 0xffff_ffff in
  write (u32 (String.length payload));
  write (u32 seq);
  if trace <> "" then write trace;
  write payload;
  write (u32 (crc ~seq ~trace payload))

let read_frame ?version:(v = version) read =
  match read 4 with
  | exception End_of_file -> Ok None
  | len_bytes -> (
    let len = u32_of len_bytes in
    if len > max_payload then
      Error (Printf.sprintf "frame length %d exceeds the %d-byte limit" len max_payload)
    else
      match
        let seq = u32_of (read 4) in
        let trace =
          if v < 2 then ""
          else
            let tlen = Char.code (read 1).[0] in
            String.make 1 (Char.chr tlen) ^ read tlen
        in
        let payload = read len in
        let got = u32_of (read 4) in
        (seq, trace, payload, got)
      with
      | exception End_of_file -> Error "truncated frame"
      | seq, trace, payload, got ->
        if got <> crc ~seq ~trace payload then
          Error (Printf.sprintf "CRC mismatch on frame %d" seq)
        else
          let trace_id =
            if String.length trace <= 1 then None else Some (String.sub trace 1 (String.length trace - 1))
          in
          Ok (Some { seq; trace_id; payload }))
