module Io_stats = Natix_store.Io_stats
module Tree_store = Natix_core.Tree_store

type point = {
  rate : float;
  offered : int;
  completed : int;
  shed : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_queue : int;
  latencies_ms : float option array;
}

let measure server ~tenant reqs =
  let conn = Server.Loopback.connect server ~tenant in
  let store =
    match Registry.find (Server.registry server) tenant with
    | Ok t -> Natix.Session.store t.Registry.session
    | Error e -> Natix_core.Error.raise_error e
  in
  List.map
    (fun req ->
      let before = (Io_stats.copy (Tree_store.io_stats store)).Io_stats.sim_ms in
      let resp = Server.Loopback.call conn req in
      let after = (Io_stats.copy (Tree_store.io_stats store)).Io_stats.sim_ms in
      (resp, after -. before))
    reqs

(* Nearest-rank quantile over a sorted array; 0 on an empty one. *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let saturation ~capacity service_ms =
  if capacity <= 0 then invalid_arg "Traffic.saturation: capacity must be positive";
  let n = Array.length service_ms in
  if n = 0 then 0.
  else
    let mean = Array.fold_left ( +. ) 0. service_ms /. float_of_int n in
    if mean <= 0. then infinity else float_of_int capacity *. 1000. /. mean

let simulate ~capacity ~queue_depth ~rate service_ms =
  if capacity <= 0 then invalid_arg "Traffic.simulate: capacity must be positive";
  if queue_depth <= 0 then invalid_arg "Traffic.simulate: queue_depth must be positive";
  if rate <= 0. then invalid_arg "Traffic.simulate: rate must be positive";
  let n = Array.length service_ms in
  let latencies = Array.make n None in
  let free_at = Array.make capacity 0. in
  (* FIFO of (index, arrival_ms); depth-bounded like the dispatcher. *)
  let queue = Queue.create () in
  let max_queue = ref 0 in
  let shed = ref 0 in
  let earliest () =
    let k = ref 0 in
    for i = 1 to capacity - 1 do
      if free_at.(i) < free_at.(!k) then k := i
    done;
    !k
  in
  let start_service i arrival not_before =
    let k = earliest () in
    let start = Float.max free_at.(k) not_before in
    let finish = start +. service_ms.(i) in
    free_at.(k) <- finish;
    latencies.(i) <- Some (finish -. arrival)
  in
  (* Advance the queue: admit queued requests whose service can begin at
     or before [now] (a slot freed up while they waited). *)
  let drain_until now =
    let continue = ref true in
    while !continue && not (Queue.is_empty queue) do
      let k = earliest () in
      if free_at.(k) <= now then begin
        let i, arrival = Queue.pop queue in
        start_service i arrival free_at.(k)
      end
      else continue := false
    done
  in
  for i = 0 to n - 1 do
    let arrival = float_of_int i *. 1000. /. rate in
    drain_until arrival;
    if Queue.is_empty queue && free_at.(earliest ()) <= arrival then
      start_service i arrival arrival
    else if Queue.length queue < queue_depth then begin
      Queue.push (i, arrival) queue;
      if Queue.length queue > !max_queue then max_queue := Queue.length queue
    end
    else incr shed
  done;
  (* Open loop over: everything still queued runs to completion. *)
  while not (Queue.is_empty queue) do
    let i, arrival = Queue.pop queue in
    start_service i arrival free_at.(earliest ())
  done;
  let completed = Array.to_list latencies |> List.filter_map Fun.id in
  let sorted = Array.of_list completed in
  Array.sort compare sorted;
  {
    rate;
    offered = n;
    completed = Array.length sorted;
    shed = !shed;
    p50_ms = quantile sorted 0.50;
    p95_ms = quantile sorted 0.95;
    p99_ms = quantile sorted 0.99;
    max_queue = !max_queue;
    latencies_ms = latencies;
  }
