(** Minimal blocking socket client for the serve protocol.

    {[
      let c = Natix_server.Client.connect ~host:"127.0.0.1" ~port:7733 ~tenant:"plays" in
      match Natix_server.Client.call c (Natix.Api.Query { doc = "hamlet"; path = "//SPEAKER"; texts = false }) with
      | Natix.Api.Hits hits -> List.iter print_endline hits
      | resp -> Format.printf "%a@." Natix.Api.pp_response resp
    ]} *)

type t

(** Connect, exchange stream headers, and send the tenant frame.  Both
    sides frame at the lower of the two advertised protocol versions, so
    talking to a v1 server transparently drops back to trace-less
    frames.
    @raise Failure on a protocol violation. *)
val connect : host:string -> port:int -> tenant:string -> t

(** One request, blocking for its response.  [trace_id] (at protocol v2)
    propagates a client-chosen trace id to the server's tracer; the
    server assigns one otherwise.
    @raise Failure on a framing/codec violation or a [seq] mismatch.
    @raise End_of_file when the server closes mid-call. *)
val call : ?trace_id:string -> t -> Natix.Api.request -> Natix.Api.response

val close : t -> unit
