(** Minimal blocking socket client for the serve protocol.

    {[
      let c = Natix_server.Client.connect ~host:"127.0.0.1" ~port:7733 ~tenant:"plays" in
      match Natix_server.Client.call c (Natix.Api.Query { doc = "hamlet"; path = "//SPEAKER"; texts = false }) with
      | Natix.Api.Hits hits -> List.iter print_endline hits
      | resp -> Format.printf "%a@." Natix.Api.pp_response resp
    ]} *)

type t

(** Connect, exchange stream headers, and send the tenant frame.
    @raise Failure on a protocol violation. *)
val connect : host:string -> port:int -> tenant:string -> t

(** One request, blocking for its response.
    @raise Failure on a framing/codec violation or a [seq] mismatch.
    @raise End_of_file when the server closes mid-call. *)
val call : t -> Natix.Api.request -> Natix.Api.response

val close : t -> unit
