open Natix_core
module Api = Natix.Api
module Deque = Natix_par.Deque
module Disk = Natix_store.Disk
module Io_stats = Natix_store.Io_stats
module Lock_rank = Natix_store.Lock_rank
module Trace = Natix_trace.Trace
module Slo = Natix_mon.Slo

type trace_config = {
  slow_ms : float;
  trace_ring : int;
  slo_target_p99_ms : float option;
}

let default_trace = { slow_ms = infinity; trace_ring = 256; slo_target_p99_ms = None }

type config = {
  jobs : int;
  max_inflight : int;
  queue_depth : int;
  shed_on_breach : bool;
  trace : trace_config option;
}

let default_config =
  { jobs = 4; max_inflight = 64; queue_depth = 32; shed_on_breach = true; trace = None }

type stats = { served : int; shed : int; max_queue : int; queued : int; running : int }

type ticket = {
  tenant : Registry.tenant;
  req : Api.request;
  trace : Trace.t option;
  tmu : Mutex.t;
  tcond : Condition.t;
  mutable reply : Api.response option;
}

type t = {
  config : config;
  registry : Registry.t;
  conn_mu : Mutex.t;  (* rank conn: admission + queue state, never held across execution *)
  work : Condition.t;
  deques : ticket Deque.t array;  (* empty in inline mode (jobs = 0) *)
  mutable next_deque : int;
  mutable queued : int;
  mutable running : int;
  mutable served : int;
  mutable shed_count : int;
  mutable max_queue : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  (* Tracing state, all under [trace_mu] (a leaf: taken after execution,
     never while holding any other lock of ours). *)
  trace_mu : Mutex.t;
  mutable trace_seq : int;
  mutable reports : Trace.report list;  (* newest first, capped at trace_ring *)
  mutable slow : Trace.report list;  (* newest first, capped at trace_ring *)
  slo : Slo.t;
  mutable slo_breaches : Slo.breach list;  (* newest first *)
}

let registry t = t.registry
let config t = t.config

let with_conn t f =
  Lock_rank.acquire Lock_rank.conn;
  Mutex.lock t.conn_mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.conn_mu;
      Lock_rank.release Lock_rank.conn)
    f

(* ---- request execution -------------------------------------------- *)

let doc_of = function
  | Api.Load { doc; _ } | Api.Query { doc; _ } -> Some doc
  | Api.Stat { doc } -> doc
  | Api.Ping | Api.Scan _ | Api.Checkpoint | Api.Server_stats -> None

(* What a trace report shows as the request's argument. *)
let detail_of = function
  | Api.Query { path; _ } -> path
  | Api.Load { doc; _ } -> doc
  | Api.Scan { element; _ } -> element
  | Api.Stat { doc } -> Option.value doc ~default:"*"
  | Api.Ping | Api.Checkpoint | Api.Server_stats -> ""

(* Every failure a request can produce becomes a typed reply.  This
   mapping must stay exhaustive: an exception that escaped here would
   take the worker domain (and with it every queued ticket) down.  The
   catch-all keeps it total against exceptions we did not enumerate. *)
let guarded (tenant : Registry.tenant) f =
  try f () with
  | Error.Error e -> Api.Err e
  | Natix_store.Faulty_disk.Crash ->
    tenant.crashed <- true;
    Api.Err (Error.Storage "store crashed (injected fault); tenant disabled")
  | Natix_store.Faulty_disk.Read_error page ->
    Api.Err (Error.Storage (Printf.sprintf "transient read failure at page %d" page))
  | Natix_store.Disk.Bad_page { page; reason } ->
    Api.Err (Error.Storage (Printf.sprintf "bad page %d: %s" page reason))
  | Natix_store.Btree.Corrupt detail -> Api.Err (Error.Storage ("element index corrupt: " ^ detail))
  | Natix_store.Buffer_pool.All_frames_pinned ->
    Api.Err (Error.Storage "buffer pool exhausted: all frames pinned")
  | Natix_store.Record_manager.Record_too_large n ->
    Api.Err (Error.Storage (Printf.sprintf "record too large: %d bytes" n))
  | Tree_store.Unsplittable detail -> Api.Err (Error.Storage ("unsplittable: " ^ detail))
  | Natix_xml.Xml_parser.Error { line; col; msg } ->
    Api.Err (Error.Parse (Printf.sprintf "%d:%d: %s" line col msg))
  | e -> Api.Err (Error.Storage ("request failed: " ^ Printexc.to_string e))

(* A query on the worker: private reader view + navigation-only engine —
   decoded records are mutable and must not cross domains, so each
   request decodes into its own cache (the parallel executor's model,
   per-request instead of per-worker).  Runs under the tenant's shared
   gate; rendering matches the CLI byte for byte. *)
let run_query (tenant : Registry.tenant) ~doc ~path ~texts =
  let store = Natix.Session.store tenant.session in
  let disk = Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store) in
  let before = Io_stats.copy (Disk.active_stats disk) in
  let reader = Tree_store.reader store in
  let engine = Natix_query.Engine.create reader in
  let render c =
    if texts then Cursor.text_content c
    else if Cursor.is_element c then Exporter.to_string reader (Cursor.node c)
    else Cursor.text c
  in
  let resp =
    match Trace.active () with
    | None -> (
      match Natix_query.Engine.query engine ~doc path with
      | Error e -> Api.Err e
      | Ok seq -> Api.Hits (List.map render (List.of_seq seq)))
    | Some tr -> (
      (* Traced: one instrumented execution serves the reply, the
         per-operator spans and the slow log's EXPLAIN ANALYZE.  The
         operator rows are [Exec.eval_instrumented]'s, reconciling with
         this request's private stream because the probes read
         [Disk.active_stats]. *)
      match Natix_query.Engine.analyze_query engine ~doc path with
      | Error e -> Api.Err e
      | Ok (hits, a) ->
        List.iteri
          (fun i (op : Natix_query.Engine.op_report) ->
            Trace.io_child tr
              (Printf.sprintf "op%d.%s" (i + 1)
                 (Natix_query.Ast.step_to_string op.step.Natix_query.Plan.step))
              ~io:{ Trace.reads = op.reads; writes = 0; io_ms = op.sim_ms }
              ~dur_ms:op.sim_ms)
          a.Natix_query.Engine.ops;
        Trace.set_plan tr (Natix_query.Engine.analysis_to_string a);
        Api.Hits (List.map render hits))
  in
  (match Natix.Session.mon tenant.session with
  | None -> ()
  | Some mon ->
    (* The active accumulator is this request's stream, so the delta is
       the request's exact I/O — attribution stays exact even with other
       requests of the same tenant in flight. *)
    let d = Io_stats.diff (Io_stats.copy (Disk.active_stats disk)) before in
    let rows = match resp with Api.Hits hits -> Some (List.length hits) | _ -> None in
    Natix.Mon.record_op mon
      {
        Natix_mon.Recorder.seq = 0;
        at_ms = (Tree_store.io_stats store).Io_stats.sim_ms;
        kind = "query";
        doc = Some doc;
        detail = path;
        plan = None;
        reads = d.Io_stats.reads;
        writes = d.Io_stats.writes;
        sim_ms = d.Io_stats.sim_ms;
        outcome = (match resp with Api.Err e -> "error:" ^ Natix_mon.Replay.error_class e | _ -> "ok");
        digest = None;
        rows;
      });
  resp

(* The global simulated clock of one tenant's disk: the default
   accumulator's [sim_ms], which every request's merge and every
   group-commit delay charge advances — the clock queue waits and gate
   blocks are visible on. *)
let global_clock disk () = (Disk.stats disk).Io_stats.sim_ms

(* Book a finished trace: report ring, slow log, SLO window.  [trace_mu]
   is a leaf taken after the request fully completed. *)
let record_trace t (report : Trace.report) =
  let cap = match t.config.trace with Some tc -> tc.trace_ring | None -> 0 in
  let keep n l = if List.length l > n then List.filteri (fun i _ -> i < n) l else l in
  let slow_ms = match t.config.trace with Some tc -> tc.slow_ms | None -> infinity in
  let breach =
    Slo.observe t.slo ~tenant:report.Trace.tenant
      ~at_ms:(report.Trace.submitted_ms +. report.Trace.dur_ms)
      ~dur_ms:report.Trace.dur_ms
  in
  Mutex.lock t.trace_mu;
  t.reports <- keep cap (report :: t.reports);
  if report.Trace.dur_ms >= slow_ms then t.slow <- keep cap (report :: t.slow);
  (match breach with None -> () | Some b -> t.slo_breaches <- b :: t.slo_breaches);
  Mutex.unlock t.trace_mu

(* Execute one admitted request: exception guard outermost, then the
   tenant gate, then the (tenant doc, "serve:<kind>") observability
   context, then the store work.  Wrapped in a per-request I/O stream on
   the tenant's disk so concurrent requests charge private accumulators
   (the disk's default record is not safe for concurrent charging), with
   the merge back serialised by the tenant's leaf [stats_mu].

   When tracing is on, the stream body runs under the request's trace:
   the root span brackets exactly the [Disk.with_stream] body, so the
   root's I/O delta {e is} the private stream delta and the span tree's
   self figures sum to it. *)
let execute t ?trace (tenant : Registry.tenant) req =
  let session = tenant.session in
  let store = Natix.Session.store session in
  let disk = Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store) in
  let with_ctx f =
    match Tree_store.obs store with
    | None -> f ()
    | Some obs -> Natix_obs.Obs.with_context obs ?doc:(doc_of req) ~phase:("serve:" ^ Api.kind req) f
  in
  let exec_span f = Trace.span_here ("exec." ^ Api.kind req) f in
  let body () =
    guarded tenant (fun () ->
        if tenant.crashed then
          Api.Err (Error.Storage (Printf.sprintf "tenant %S: store crashed; disabled" tenant.name))
        else
          match req with
          | Api.Query { doc; path; texts } ->
            Rw_lock.with_read tenant.gate (fun () ->
                exec_span (fun () -> with_ctx (fun () -> run_query tenant ~doc ~path ~texts)))
          | _ ->
            (* Everything else mutates the store or walks shared session
               state (the session engine, the document manager's decoded
               caches), so it gets the gate exclusively. *)
            Rw_lock.with_write tenant.gate (fun () ->
                exec_span (fun () -> with_ctx (fun () -> Natix.Session.exec session req))))
  in
  let traced_body () =
    match trace with
    | None -> body ()
    | Some tr ->
      let io () =
        let s = Disk.active_stats disk in
        { Trace.reads = s.Io_stats.reads; writes = s.Io_stats.writes; io_ms = s.Io_stats.sim_ms }
      in
      Trace.run tr ~io body
  in
  let crashed_before = tenant.crashed in
  Disk.enter_parallel_region disk;
  let resp, io =
    Fun.protect ~finally:(fun () -> Disk.exit_parallel_region disk) (fun () ->
        Disk.with_stream disk traced_body)
  in
  Mutex.lock tenant.stats_mu;
  Io_stats.add (Disk.stats disk) io;
  Mutex.unlock tenant.stats_mu;
  (match trace with
  | None -> ()
  | Some tr ->
    record_trace t (Trace.finish tr);
    (* A request that just crashed its tenant is the flight recorder's
       moment: dump the ring with the culprit's trace id in the meta
       line, where a post-mortem starts. *)
    if tenant.crashed && not crashed_before then (
      try
        let oc = open_out (Natix.Session.flight_path ()) in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Natix.Session.dump_flight ~trace_id:(Trace.trace_id tr) session oc)
      with _ -> ()));
  resp

(* ---- the worker pool ---------------------------------------------- *)

let steal_any t w =
  let n = Array.length t.deques in
  let rec go k =
    if k >= n then None
    else
      match Deque.steal t.deques.((w + k) mod n) with Some _ as r -> r | None -> go (k + 1)
  in
  go 0

let answer ticket reply =
  Mutex.lock ticket.tmu;
  ticket.reply <- Some reply;
  Condition.signal ticket.tcond;
  Mutex.unlock ticket.tmu

let worker t w () =
  let rec loop () =
    let next =
      with_conn t (fun () ->
          let rec wait () =
            match steal_any t w with
            | Some ticket ->
              t.queued <- t.queued - 1;
              t.running <- t.running + 1;
              Some ticket
            | None ->
              if t.stopping then None
              else begin
                Condition.wait t.work t.conn_mu;
                wait ()
              end
          in
          wait ())
    in
    match next with
    | None -> ()
    | Some ticket ->
      (* [execute] is total by construction; the backstop below is for
         bugs in the dispatcher itself — a ticket must always be
         answered or its submitter hangs forever. *)
      let reply =
        try execute t ?trace:ticket.trace ticket.tenant ticket.req
        with e -> Api.Err (Error.Storage ("dispatcher failure: " ^ Printexc.to_string e))
      in
      answer ticket reply;
      with_conn t (fun () ->
          t.running <- t.running - 1;
          t.served <- t.served + 1);
      loop ()
  in
  loop ()

let create ?(config = default_config) registry =
  if config.jobs < 0 then invalid_arg "Server.create: jobs must be >= 0";
  if config.max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth must be >= 1";
  let t =
    {
      config;
      registry;
      conn_mu = Mutex.create ();
      work = Condition.create ();
      deques = Array.init config.jobs (fun _ -> Deque.create ~capacity:config.queue_depth);
      next_deque = 0;
      queued = 0;
      running = 0;
      served = 0;
      shed_count = 0;
      max_queue = 0;
      stopping = false;
      workers = [];
      trace_mu = Mutex.create ();
      trace_seq = 0;
      reports = [];
      slow = [];
      slo =
        Slo.create
          ?target_p99_ms:(Option.bind config.trace (fun tc -> tc.slo_target_p99_ms))
          ();
      slo_breaches = [];
    }
  in
  t.workers <- List.init config.jobs (fun w -> Domain.spawn (worker t w));
  t

let stats t =
  with_conn t (fun () ->
      {
        served = t.served;
        shed = t.shed_count;
        max_queue = t.max_queue;
        queued = t.queued;
        running = t.running;
      })

(* Trace accessors: snapshots are oldest-first so exports read in
   submission order. *)
let trace_reports t = Mutex.protect t.trace_mu (fun () -> List.rev t.reports)
let slow_reports t = Mutex.protect t.trace_mu (fun () -> List.rev t.slow)
let slo_breaches t = Mutex.protect t.trace_mu (fun () -> List.rev t.slo_breaches)
let slo_snapshot t ~at_ms = Slo.snapshot t.slo ~at_ms
let set_slo_target t ~tenant ~p99_ms = Slo.set_target t.slo ~tenant ~p99_ms

let server_statted t =
  let s = stats t in
  Api.Server_statted
    {
      Api.served = s.served;
      shed = s.shed;
      max_queue = s.max_queue;
      queued = s.queued;
      running = s.running;
      jobs = t.config.jobs;
      max_inflight = t.config.max_inflight;
      queue_depth = t.config.queue_depth;
    }

let submit ?trace_id t ~tenant:name req =
  (* The dispatcher's own counters are tenant-independent and answered
     here, before tenant resolution — they must work even when every
     tenant is shedding or crashed. *)
  if req = Api.Server_stats then server_statted t
  else
  match Registry.find t.registry name with
  | Error e -> Api.Err e
  | Ok tenant -> (
    let trace =
      match t.config.trace with
      | None -> None
      | Some _ ->
        (* Client-propagated ids pass through; otherwise assign a
           sequential one under the connection lock, so inline-mode
           (jobs = 0) workloads get byte-identical exports run to run. *)
        let id =
          match trace_id with
          | Some id when id <> "" -> id
          | _ ->
            with_conn t (fun () ->
                t.trace_seq <- t.trace_seq + 1;
                Printf.sprintf "t-%06d" t.trace_seq)
        in
        let store = Natix.Session.store tenant.session in
        let disk = Natix_store.Buffer_pool.disk (Tree_store.buffer_pool store) in
        Some
          (Trace.create ~trace_id:id ~tenant:name ~kind:(Api.kind req) ~detail:(detail_of req)
             ~clock:(global_clock disk))
    in
    let decision =
      with_conn t (fun () ->
          let shed reason =
            t.shed_count <- t.shed_count + 1;
            `Shed reason
          in
          if t.stopping then shed "shutting_down"
          else
            match (if t.config.shed_on_breach then tenant.shed else None) with
            | Some reason -> shed reason
            | None ->
              if t.running + t.queued >= t.config.max_inflight then shed "inflight_limit"
              else if t.queued >= t.config.queue_depth then shed "queue_full"
              else if Array.length t.deques = 0 then begin
                t.running <- t.running + 1;
                `Inline
              end
              else begin
                let ticket =
                  { tenant; req; trace; tmu = Mutex.create (); tcond = Condition.create ();
                    reply = None }
                in
                let n = Array.length t.deques in
                (* Round-robin with fallback: the per-deque capacity sums
                   past [queue_depth], so a full deque just means this
                   slot is unlucky — try the rest before shedding. *)
                let rec push k =
                  if k >= n then shed "queue_full"
                  else if Deque.push t.deques.((t.next_deque + k) mod n) ticket then begin
                    t.next_deque <- (t.next_deque + k + 1) mod n;
                    t.queued <- t.queued + 1;
                    if t.queued > t.max_queue then t.max_queue <- t.queued;
                    Condition.signal t.work;
                    `Queued ticket
                  end
                  else push (k + 1)
                in
                push 0
              end)
    in
    match decision with
    | `Shed reason -> Api.Overloaded { reason }
    | `Inline ->
      let reply =
        try execute t ?trace tenant req
        with e -> Api.Err (Error.Storage ("dispatcher failure: " ^ Printexc.to_string e))
      in
      with_conn t (fun () ->
          t.running <- t.running - 1;
          t.served <- t.served + 1);
      reply
    | `Queued ticket ->
      Mutex.lock ticket.tmu;
      while ticket.reply = None do
        Condition.wait ticket.tcond ticket.tmu
      done;
      let reply = Option.get ticket.reply in
      Mutex.unlock ticket.tmu;
      reply)

let shutdown t =
  let workers =
    with_conn t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  (* Workers drain the deques before exiting (the take loop steals until
     empty even once [stopping] is set), so every admitted ticket gets
     its answer before the join returns. *)
  List.iter Domain.join workers

(* ---- in-process loopback ------------------------------------------ *)

let reader_of_string s =
  let pos = ref 0 in
  fun n ->
    if !pos + n > String.length s then raise End_of_file
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      r
    end

module Loopback = struct
  type nonrec conn = { server : t; tenant : string; mutable seq : int }

  let connect server ~tenant =
    (* Exercise the header exchange the way a socket peer would. *)
    let b = Buffer.create 8 in
    Protocol.write_header (Buffer.add_string b);
    (match Protocol.read_header (reader_of_string (Buffer.contents b)) with
    | Ok _version -> ()
    | Error msg -> failwith ("loopback header: " ^ msg));
    { server; tenant; seq = 0 }

  let round what frame_of decode =
    let b = Buffer.create 256 in
    frame_of (Buffer.add_string b);
    match Protocol.read_frame (reader_of_string (Buffer.contents b)) with
    | Ok (Some f) -> (
      match decode f.Protocol.payload with
      | Ok v -> (f.Protocol.seq, f.Protocol.trace_id, v)
      | Error msg -> failwith (Printf.sprintf "loopback %s decode: %s" what msg))
    | Ok None -> failwith (Printf.sprintf "loopback %s: empty stream" what)
    | Error msg -> failwith (Printf.sprintf "loopback %s frame: %s" what msg)

  let call ?trace_id conn req =
    conn.seq <- conn.seq + 1;
    let seq, trace_id', req' =
      round "request"
        (fun w ->
          Protocol.write_frame w ~seq:conn.seq ?trace_id (Api.encode_request req))
        Api.decode_request
    in
    let resp = submit ?trace_id:trace_id' conn.server ~tenant:conn.tenant req' in
    let _, _, resp' =
      round "response"
        (fun w -> Protocol.write_frame w ~seq ?trace_id:trace_id' (Api.encode_response resp))
        Api.decode_response
    in
    resp'
end

(* ---- sockets ------------------------------------------------------- *)

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Bytes.unsafe_to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec go off = if off < n then go (off + Unix.write fd buf off (n - off)) in
  go 0

let serve_connection t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let read = read_exactly fd and write s = write_all fd s in
      Protocol.write_header write;
      match Protocol.read_header read with
      | Error _ -> ()
      | Ok peer -> (
        (* Both sides frame at the lower of the two advertised versions,
           so a v1 peer never sees the trace-id field. *)
        let version = min peer Protocol.version in
        (* First frame: the raw tenant name this connection serves. *)
        match Protocol.read_frame ~version read with
        | Ok (Some { Protocol.payload = tenant; _ }) ->
          let rec loop () =
            match Protocol.read_frame ~version read with
            | Ok None -> ()  (* clean EOF *)
            | Error _ -> ()  (* framing broken: the stream cannot resync *)
            | Ok (Some f) ->
              (* A malformed payload inside an intact frame is the
                 client's bug, not a stream failure: answer typed and
                 keep serving. *)
              let resp =
                match Api.decode_request f.Protocol.payload with
                | Error msg -> Api.Err (Error.Storage ("malformed request: " ^ msg))
                | Ok req -> submit ?trace_id:f.Protocol.trace_id t ~tenant req
              in
              Protocol.write_frame write ~version ~seq:f.Protocol.seq
                ?trace_id:f.Protocol.trace_id (Api.encode_response resp);
              loop ()
          in
          loop ()
        | Ok None | Error _ -> ()))

let serve t ?(addr = "127.0.0.1") ?(max_connections = 8) ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen sock max_connections;
  (* One domain per connection, capped: connections above the cap wait in
     the accept backlog rather than spawning unbounded domains. *)
  let mu = Mutex.create () and freed = Condition.create () in
  let active = ref 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let rec accept_loop () =
        Mutex.lock mu;
        while !active >= max_connections do
          Condition.wait freed mu
        done;
        incr active;
        Mutex.unlock mu;
        let fd, _ = Unix.accept sock in
        ignore
          (Domain.spawn (fun () ->
               Fun.protect
                 ~finally:(fun () ->
                   Mutex.lock mu;
                   decr active;
                   Condition.signal freed;
                   Mutex.unlock mu)
                 (fun () -> serve_connection t fd))
            : unit Domain.t);
        accept_loop ()
      in
      accept_loop ())
