(** Simulated open-loop traffic against the serve path — deterministic
    by construction.

    Two stages, cleanly split so every figure lives on the simulated
    clock:

    + {!measure} executes the request mix {e once}, sequentially,
      through the {!Server.Loopback} client (full codec + framing +
      dispatcher + admission path) and records each request's service
      time as the tenant store's simulated-I/O delta.  Run it against an
      inline ([jobs = 0]) server and the outcome is bit-identical across
      machines and runs.
    + {!simulate} replays those service times through an open-loop
      queueing model at a given arrival rate: [capacity] service slots,
      a bounded FIFO of [queue_depth], arrival [i] at [i / rate]
      seconds.  A request that arrives to a full queue is shed — exactly
      the dispatcher's admission rule — and everything else completes;
      [offered = completed + shed] always.

    Nothing here calls a wall clock or a random generator: the sweep in
    the benchmark suite is gated byte-identical against its baseline. *)

type point = {
  rate : float;  (** offered arrival rate, requests per simulated second *)
  offered : int;
  completed : int;
  shed : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (** latency quantiles over completed requests *)
  max_queue : int;  (** queue high-water mark; never exceeds [queue_depth] *)
  latencies_ms : float option array;
      (** per-request outcome in arrival order: [Some latency] or [None]
          when shed — every offered request is accounted for *)
}

(** [measure server ~tenant reqs] — loopback-execute each request once,
    returning its response and service time (simulated ms). *)
val measure :
  Server.t -> tenant:string -> Natix.Api.request list -> (Natix.Api.response * float) list

(** [simulate ~capacity ~queue_depth ~rate service_ms].
    @raise Invalid_argument on a non-positive [rate], [capacity] or
    [queue_depth]. *)
val simulate :
  capacity:int -> queue_depth:int -> rate:float -> float array -> point

(** [saturation ~capacity service_ms] — the arrival rate (req/s) at
    which [capacity] slots are busy full-time: [capacity / mean_service].
    Zero-cost workloads (fully cached) saturate at infinity; callers
    sweep multiples of this. *)
val saturation : capacity:int -> float array -> float
