(** A sliding time window: a ring of equal-width buckets over a clock.

    The clock is whatever the caller stamps observations with — for the
    monitoring layer that is the {e simulated} I/O clock, so windows (and
    everything derived from them: rates, moving quantiles, budget checks)
    are deterministic for a deterministic workload.

    Each bucket accumulates a count, a sum, and optionally a fixed-edge
    histogram (shared edges for the whole window) for moving quantiles.
    Recording at time [t] lazily retires buckets that fell out of the
    window; a snapshot at time [t] aggregates only buckets still inside
    [[t - span_ms, t]].

    {b Determinism under parallel feeds.}  Bucket placement depends only
    on the stamp, and per-bucket aggregation is addition.  Events fed
    concurrently from worker domains arrive in nondeterministic order,
    but every value fed from the event stream is a small integer (a page
    count, a byte count, 1.), so the float sums are exact and
    order-independent; fractional values (simulated milliseconds) enter
    only from operation records, which the session appends in
    deterministic submission order after a parallel region joins. *)

type t

(** [create ~bucket_ms ~buckets ()] — a window spanning
    [bucket_ms * buckets] clock-milliseconds.  [quantile_edges] attaches
    a per-bucket histogram (finite, strictly increasing edges) enabling
    {!quantile}.  Raises [Invalid_argument] on a non-positive width or
    count. *)
val create : bucket_ms:float -> buckets:int -> ?quantile_edges:float array -> unit -> t

(** Total window span in clock-milliseconds. *)
val span_ms : t -> float

(** [add t ~at_ms v] accumulates [v] into the bucket covering [at_ms]
    (count + sum, and the histogram when edges were given).  Non-finite
    [v] or [at_ms] is dropped.  Stamps may arrive slightly out of order;
    anything older than the window is dropped. *)
val add : t -> at_ms:float -> float -> unit

(** Aggregate of the buckets inside the window ending at [at_ms]. *)
type agg = {
  count : int;  (** observations in the window *)
  sum : float;
  rate_per_s : float;  (** [sum] per clock-second of window span *)
}

val agg : t -> at_ms:float -> agg

(** Moving quantile over the histograms of the live buckets, interpolated
    like {!Natix_obs.Metrics.quantile}.  [None] when the window has no
    histogram or no observation in range.  Raises [Invalid_argument] when
    [q] is outside [0, 1]. *)
val quantile : t -> at_ms:float -> float -> float option

(** All three of p50/p95/p99, or [None] on an empty window. *)
val p50_95_99 : t -> at_ms:float -> (float * float * float) option
