module Json = Natix_obs.Json

(* Latency edges: the query_sim_ms edges extended upward — an
   end-to-end request duration includes queue and commit wait, which
   under load dwarfs a single query's engine time. *)
let latency_edges =
  [|
    0.1; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000.;
    25000.; 50000.; 100000.;
  |]

type entry = {
  win : Window.t;
  mutable target : float option;
  mutable breached : bool;
  mutable breaches : int;
}

type t = {
  bucket_ms : float;
  buckets : int;
  default_target : float option;
  lock : Mutex.t;
  tenants : (string, entry) Hashtbl.t;
}

type breach = { tenant : string; p99_ms : float; target_ms : float; at_ms : float }

type stat = {
  tenant : string;
  count : int;
  p50_ms : float option;
  p95_ms : float option;
  p99_ms : float option;
  target_ms : float option;
  breached : bool;
  breaches : int;
}

let create ?(bucket_ms = 1000.) ?(buckets = 60) ?target_p99_ms () =
  {
    bucket_ms;
    buckets;
    default_target = target_p99_ms;
    lock = Mutex.create ();
    tenants = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some e -> e
  | None ->
    let e =
      {
        win =
          Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets ~quantile_edges:latency_edges
            ();
        target = t.default_target;
        breached = false;
        breaches = 0;
      }
    in
    Hashtbl.replace t.tenants tenant e;
    e

let set_target t ~tenant ~p99_ms =
  locked t (fun () -> (entry t tenant).target <- p99_ms)

(* Edge trigger, Account-style: one event per crossing.  Unlike the
   budget latch it re-arms when the moving p99 drops back under the
   target — an SLO burn that ended and restarted is two events. *)
let observe t ~tenant ~at_ms ~dur_ms =
  locked t (fun () ->
      let e = entry t tenant in
      Window.add e.win ~at_ms dur_ms;
      match e.target with
      | None -> None
      | Some target -> (
        match Window.quantile e.win ~at_ms 0.99 with
        | None -> None
        | Some p99 ->
          if p99 > target then
            if e.breached then None
            else (
              e.breached <- true;
              e.breaches <- e.breaches + 1;
              Some { tenant; p99_ms = p99; target_ms = target; at_ms })
          else (
            e.breached <- false;
            None)))

let snapshot t ~at_ms =
  locked t (fun () ->
      Hashtbl.fold
        (fun tenant e acc ->
          let q p = Window.quantile e.win ~at_ms p in
          {
            tenant;
            count = (Window.agg e.win ~at_ms).Window.count;
            p50_ms = q 0.50;
            p95_ms = q 0.95;
            p99_ms = q 0.99;
            target_ms = e.target;
            breached = e.breached;
            breaches = e.breaches;
          }
          :: acc)
        t.tenants []
      |> List.sort (fun a b -> String.compare a.tenant b.tenant))

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let stat_to_json s =
  Json.Obj
    [
      ("tenant", Json.String s.tenant);
      ("count", Json.Int s.count);
      ("p50_ms", opt_float s.p50_ms);
      ("p95_ms", opt_float s.p95_ms);
      ("p99_ms", opt_float s.p99_ms);
      ("target_ms", opt_float s.target_ms);
      ("breached", Json.Bool s.breached);
      ("breaches", Json.Int s.breaches);
    ]

let breach_to_json (b : breach) =
  Json.Obj
    [
      ("tenant", Json.String b.tenant);
      ("p99_ms", Json.Float b.p99_ms);
      ("target_ms", Json.Float b.target_ms);
      ("at_ms", Json.Float b.at_ms);
    ]
