module Json = Natix_obs.Json
module Event = Natix_obs.Event
module Io_stats = Natix_store.Io_stats

type t = {
  registry : Registry.t;
  account : Account.t;
  recorder : Recorder.t;
  obs : Natix_obs.Obs.t;
  lock : Mutex.t;
  mutable on_budget : (Account.breach -> unit) list;  (* newest first *)
  mutable pending : Account.breach list;
      (* breaches detected inside the event subscriber, which runs under
         the handle's delivery lock and therefore cannot emit; drained
         (and emitted) at the next call that enters from outside *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Event feed: runs under the obs delivery lock; must stay cheap and must
   not call back into the handle.  Every value fed here is a small
   integer, so window sums are exact however worker domains interleave.
   Document read accounting comes from here rather than from operation
   records: the event context attributes reads per document even inside
   a parallel batch, and read {e counts} are schedule-independent. *)
let on_event t (ev : Event.t) =
  let record name v = Registry.record t.registry ?ctx:ev.ctx ~at_ms:ev.at_ms name v in
  locked t (fun () ->
      match ev.kind with
      | Event.Io { write = false; _ } ->
        record "reads" 1.;
        (match ev.ctx with
        | Some { Event.doc = Some doc; _ } ->
          let breaches = Account.charge_reads t.account ~doc ~at_ms:ev.at_ms 1 in
          if breaches <> [] then t.pending <- t.pending @ breaches
        | _ -> ())
      | Event.Io { write = true; _ } -> record "writes" 1.
      | Event.Page_fix { hit; _ } ->
        record "fixes" 1.;
        if hit then record "fix_hits" 1.
      | Event.Wal_append { bytes; _ } -> record "wal_bytes" (float_of_int bytes)
      | _ -> ())

(* Emit breaches (as events + callbacks) with no lock held: emitting
   re-enters the handle, and thus this monitor's own subscriber. *)
let fire_breaches t breaches =
  List.iter
    (fun (b : Account.breach) ->
      Natix_obs.Obs.emit t.obs
        (Event.Budget_exceeded
           { doc = b.doc; resource = b.resource; used = b.used; limit = b.limit });
      List.iter (fun f -> f b) (List.rev t.on_budget))
    breaches

let drain_pending t =
  let pending = locked t (fun () -> let p = t.pending in t.pending <- []; p) in
  fire_breaches t pending

let query_ms_edges =
  [| 0.1; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000. |]

let attach ?(bucket_ms = 1000.) ?(buckets = 60) ?(ring_capacity = 1024) obs =
  let registry = Registry.create ~bucket_ms ~buckets () in
  Registry.define registry "query_sim_ms" ~quantile_edges:query_ms_edges;
  let t =
    {
      registry;
      account = Account.create ~bucket_ms ~buckets ();
      recorder = Recorder.create ~capacity:ring_capacity;
      obs;
      lock = Mutex.create ();
      on_budget = [];
      pending = [];
    }
  in
  Natix_obs.Obs.subscribe obs (on_event t);
  t

let obs t = t.obs

let set_budget t ~doc ?max_reads ?max_sim_ms () =
  locked t (fun () -> Account.set_budget t.account ~doc { Account.max_reads; max_sim_ms })

let on_budget t f = t.on_budget <- f :: t.on_budget

let record_op t ?(pinned = 0) (op : Recorder.op) =
  let breaches =
    locked t (fun () ->
        Recorder.add t.recorder op;
        let ctx = Some { Event.doc = op.doc; phase = op.kind } in
        Registry.record t.registry ?ctx ~at_ms:op.at_ms "ops" 1.;
        if op.kind = "query" then
          Registry.record t.registry ?ctx ~at_ms:op.at_ms "query_sim_ms" op.sim_ms;
        let breaches =
          match op.doc with
          | None -> []
          | Some doc ->
            Account.charge_op t.account ~doc ~at_ms:op.at_ms ~sim_ms:op.sim_ms ~pinned
        in
        let pending = t.pending in
        t.pending <- [];
        pending @ breaches)
  in
  fire_breaches t breaches

let metrics_snapshot t ~at_ms =
  drain_pending t;
  locked t (fun () -> Registry.snapshot t.registry ~at_ms)

let accounts t ~at_ms =
  drain_pending t;
  locked t (fun () -> Account.snapshot t.account ~at_ms)

let flight_ops t = locked t (fun () -> Recorder.ops t.recorder)
let flight_added t = locked t (fun () -> Recorder.added t.recorder)

let export_json t ~at_ms =
  drain_pending t;
  locked t (fun () ->
      Json.Obj
        [
          ("at_ms", Json.Float at_ms);
          ("metrics", Registry.to_json (Registry.snapshot t.registry ~at_ms));
          ("accounts", Account.to_json (Account.snapshot t.account ~at_ms));
          ( "flight",
            Json.Obj
              [
                ("added", Json.Int (Recorder.added t.recorder));
                ("retained", Json.Int (List.length (Recorder.ops t.recorder)));
              ] );
        ])

let export_prometheus t ~at_ms =
  drain_pending t;
  locked t (fun () -> Registry.to_prometheus (Registry.snapshot t.registry ~at_ms))

let dump_flight t ~io ~jobs ?store ?trace_id oc =
  let meta, ops =
    locked t (fun () ->
        ( {
            Recorder.version = 1;
            store;
            jobs;
            cold = false;
            reads = io.Io_stats.reads;
            writes = io.Io_stats.writes;
            total_ios = Io_stats.total_ios io;
            sim_ms = io.Io_stats.sim_ms;
            trace_id;
          },
          Recorder.ops t.recorder ))
  in
  Recorder.dump oc meta ops
