module Json = Natix_obs.Json
module Io_stats = Natix_store.Io_stats

let digest_hits hits = Digest.to_hex (Digest.string (String.concat "\n" hits))

let error_class (e : Natix_core.Error.t) =
  match e with
  | Parse _ -> "parse"
  | Validation _ -> "validation"
  | Dtd _ -> "dtd"
  | Query _ -> "query"
  | Storage _ -> "storage"

(* One op record out of one task result.  [d] is the task's own I/O
   delta as measured by the executor; per-task read counts are
   schedule-dependent at jobs >= 2, so they are recorded for inspection
   but the comparison ({!render_outcome}) never looks at them — the
   meta totals carry the schedule-independent figures. *)
let op_of_result at_ms (doc, path) (result, (d : Io_stats.t)) : Recorder.op =
  let outcome, digest, rows =
    match result with
    | Ok hits -> ("ok", Some (digest_hits hits), Some (List.length hits))
    | Error e -> ("error:" ^ error_class e, None, None)
  in
  {
    Recorder.seq = 0;
    at_ms;
    kind = "query";
    doc = Some doc;
    detail = path;
    plan = None;
    reads = d.Io_stats.reads;
    writes = d.Io_stats.writes;
    sim_ms = d.Io_stats.sim_ms;
    outcome;
    digest;
    rows;
  }

let cold_run ~jobs store tasks =
  Natix_core.Tree_store.clear_buffers store;
  Natix_core.Tree_store.reset_io_stats store;
  let outcome = Natix_par.Par.run_queries ~jobs store tasks in
  let io = Io_stats.copy (Natix_core.Tree_store.io_stats store) in
  (List.combine outcome.Natix_par.Par.results outcome.Natix_par.Par.task_io, io)

let capture ?(jobs = 1) ?store_path store tasks =
  let results, io = cold_run ~jobs store tasks in
  let at_ms = io.Io_stats.sim_ms in
  let ops = List.map2 (op_of_result at_ms) tasks results in
  let meta =
    {
      Recorder.version = 1;
      store = store_path;
      jobs;
      cold = true;
      reads = io.Io_stats.reads;
      writes = io.Io_stats.writes;
      total_ios = Io_stats.total_ios io;
      sim_ms = io.Io_stats.sim_ms;
      trace_id = None;
    }
  in
  (meta, ops)

type mismatch = { seq : int; doc : string option; detail : string; expected : string; got : string }

type report = {
  replayed : int;
  skipped : int;
  mismatches : mismatch list;
  io_checked : bool;
  io_ok : bool;
  captured_io : int * int * int;
  replayed_io : int * int * int;
  captured_sim_ms : float;
  replayed_sim_ms : float;
}

let ok r = r.mismatches = [] && r.io_ok

let render_outcome (op : Recorder.op) =
  match (op.outcome, op.digest, op.rows) with
  | "ok", Some d, Some n -> Printf.sprintf "ok rows=%d digest=%s" n d
  | outcome, _, _ -> outcome

type executor = jobs:int -> (string * string) list -> (string list, Natix_core.Error.t) result list

let run ?jobs ?exec store (meta : Recorder.meta) ops =
  let jobs = Option.value jobs ~default:meta.Recorder.jobs in
  let queries, others = List.partition (fun (o : Recorder.op) -> o.kind = "query") ops in
  let tasks =
    List.map
      (fun (o : Recorder.op) -> (Option.value o.Recorder.doc ~default:"", o.Recorder.detail))
      queries
  in
  let results, io =
    match exec with
    | None -> cold_run ~jobs store tasks
    | Some exec ->
      (* The caller supplies the execution surface (the session's
         [exec_batch], i.e. the Api command layer); the cold protocol —
         buffers cleared, counters zeroed — stays ours so the totals
         assertion keeps meaning the same thing on every surface.  The
         per-task I/O deltas are informational-only in a replay, so the
         custom path reports zeros rather than pretending to attribute. *)
      Natix_core.Tree_store.clear_buffers store;
      Natix_core.Tree_store.reset_io_stats store;
      let results = exec ~jobs tasks in
      let io = Io_stats.copy (Natix_core.Tree_store.io_stats store) in
      (List.map (fun r -> (r, Io_stats.create ())) results, io)
  in
  let mismatches =
    List.map2
      (fun (o : Recorder.op) result ->
        let got = op_of_result 0. (Option.value o.doc ~default:"", o.detail) result in
        let expected_s = render_outcome o and got_s = render_outcome got in
        if expected_s = got_s then None
        else Some { seq = o.seq; doc = o.doc; detail = o.detail; expected = expected_s; got = got_s })
      queries results
    |> List.filter_map Fun.id
  in
  let io_checked = meta.Recorder.cold && others = [] in
  let captured_io = (meta.Recorder.reads, meta.Recorder.writes, meta.Recorder.total_ios) in
  let replayed_io = (io.Io_stats.reads, io.Io_stats.writes, Io_stats.total_ios io) in
  {
    replayed = List.length queries;
    skipped = List.length others;
    mismatches;
    io_checked;
    io_ok = (not io_checked) || captured_io = replayed_io;
    captured_io;
    replayed_io;
    captured_sim_ms = meta.Recorder.sim_ms;
    replayed_sim_ms = io.Io_stats.sim_ms;
  }

let json_of_io (r, w, t) =
  Json.Obj [ ("reads", Json.Int r); ("writes", Json.Int w); ("total_ios", Json.Int t) ]

let report_to_json r =
  Json.Obj
    [
      ("ok", Json.Bool (ok r));
      ("replayed", Json.Int r.replayed);
      ("skipped", Json.Int r.skipped);
      ( "mismatches",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("seq", Json.Int m.seq);
                   ("doc", match m.doc with None -> Json.Null | Some d -> Json.String d);
                   ("detail", Json.String m.detail);
                   ("expected", Json.String m.expected);
                   ("got", Json.String m.got);
                 ])
             r.mismatches) );
      ("io_checked", Json.Bool r.io_checked);
      ("io_ok", Json.Bool r.io_ok);
      ("captured_io", json_of_io r.captured_io);
      ("replayed_io", json_of_io r.replayed_io);
      ("captured_sim_ms", Json.Float r.captured_sim_ms);
      ("replayed_sim_ms", Json.Float r.replayed_sim_ms);
    ]
