(** Per-tenant latency SLO tracking on the simulated clock.

    The server feeds each traced request's end-to-end duration (global
    simulated milliseconds, submission → reply) into a per-tenant
    {!Window}; the tracker compares the window's moving p99 against a
    target and raises {e edge-triggered} breach events, mirroring
    {!Account}'s budget machinery — one event when the p99 first
    crosses the target (the burn starts), none while it stays above,
    and a fresh event only after the window has recovered below the
    target and burns again.  Unlike {!Account}'s latch (whose job is to
    let the dispatcher shed until an operator intervenes), an SLO
    breach re-arms on recovery: it is a reporting signal, not an
    admission input.

    Everything is keyed by the caller's clock stamps, so a
    deterministic workload yields deterministic breach sequences. *)

type t

type breach = {
  tenant : string;
  p99_ms : float;  (** the window's p99 at the crossing *)
  target_ms : float;
  at_ms : float;  (** clock stamp of the observation that crossed *)
}

type stat = {
  tenant : string;
  count : int;  (** observations inside the window *)
  p50_ms : float option;
  p95_ms : float option;
  p99_ms : float option;
  target_ms : float option;
  breached : bool;  (** currently burning (p99 above target) *)
  breaches : int;  (** total edge-triggered breach events so far *)
}

(** [create ?bucket_ms ?buckets ?target_p99_ms ()] — the window spans
    [bucket_ms * buckets] simulated milliseconds (default 1000 × 60,
    matching {!Mon.attach}); [target_p99_ms] applies to every tenant
    unless {!set_target} overrides it.  Thread-safe. *)
val create : ?bucket_ms:float -> ?buckets:int -> ?target_p99_ms:float -> unit -> t

(** Override (or clear) one tenant's target. *)
val set_target : t -> tenant:string -> p99_ms:float option -> unit

(** Record one request latency; [Some breach] exactly when this
    observation pushed the tenant's moving p99 over its target from
    below. *)
val observe : t -> tenant:string -> at_ms:float -> dur_ms:float -> breach option

(** Per-tenant snapshot at [at_ms], sorted by tenant name. *)
val snapshot : t -> at_ms:float -> stat list

val stat_to_json : stat -> Natix_obs.Json.t
val breach_to_json : breach -> Natix_obs.Json.t
