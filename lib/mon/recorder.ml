module Json = Natix_obs.Json

type op = {
  seq : int;
  at_ms : float;
  kind : string;
  doc : string option;
  detail : string;
  plan : string option;
  reads : int;
  writes : int;
  sim_ms : float;
  outcome : string;
  digest : string option;
  rows : int option;
}

type meta = {
  version : int;
  store : string option;
  jobs : int;
  cold : bool;
  reads : int;
  writes : int;
  total_ios : int;
  sim_ms : float;
  trace_id : string option;
      (* the request whose failure triggered the dump, when tracing was
         on; absent from the emitted JSON when [None] so pre-trace dumps
         stay byte-identical *)
}

type t = { ring : op option array; mutable next : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0 }

let add t op =
  let n = Array.length t.ring in
  t.ring.(t.next mod n) <- Some { op with seq = t.next + 1 };
  t.next <- t.next + 1

let added t = t.next

let ops t =
  let n = Array.length t.ring in
  let lo = max 0 (t.next - n) in
  List.init (t.next - lo) (fun i -> Option.get t.ring.((lo + i) mod n))

let opt_string = function None -> Json.Null | Some s -> Json.String s

let op_to_json o =
  Json.Obj
    ([
       ("seq", Json.Int o.seq);
       ("at_ms", Json.Float o.at_ms);
       ("kind", Json.String o.kind);
       ("doc", opt_string o.doc);
       ("detail", Json.String o.detail);
       ("plan", opt_string o.plan);
       ("reads", Json.Int o.reads);
       ("writes", Json.Int o.writes);
       ("sim_ms", Json.Float o.sim_ms);
       ("outcome", Json.String o.outcome);
     ]
    @ (match o.digest with None -> [] | Some d -> [ ("digest", Json.String d) ])
    @ match o.rows with None -> [] | Some r -> [ ("rows", Json.Int r) ])

let get name v = match Json.member name v with Some x -> x | None -> failwith ("missing " ^ name)

let to_int name = function
  | Json.Int i -> i
  | _ -> failwith (name ^ ": expected int")

let to_float name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> failwith (name ^ ": expected number")

let to_string_j name = function
  | Json.String s -> s
  | _ -> failwith (name ^ ": expected string")

let to_opt_string name = function
  | Json.Null -> None
  | Json.String s -> Some s
  | _ -> failwith (name ^ ": expected string or null")

let op_of_json v =
  {
    seq = to_int "seq" (get "seq" v);
    at_ms = to_float "at_ms" (get "at_ms" v);
    kind = to_string_j "kind" (get "kind" v);
    doc = to_opt_string "doc" (get "doc" v);
    detail = to_string_j "detail" (get "detail" v);
    plan = to_opt_string "plan" (get "plan" v);
    reads = to_int "reads" (get "reads" v);
    writes = to_int "writes" (get "writes" v);
    sim_ms = to_float "sim_ms" (get "sim_ms" v);
    outcome = to_string_j "outcome" (get "outcome" v);
    digest = (match Json.member "digest" v with None -> None | Some d -> to_opt_string "digest" d);
    rows = (match Json.member "rows" v with None | Some Json.Null -> None | Some r -> Some (to_int "rows" r));
  }

let meta_to_json m =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          ([
            ("version", Json.Int m.version);
            ("store", opt_string m.store);
            ("jobs", Json.Int m.jobs);
            ("cold", Json.Bool m.cold);
            ("reads", Json.Int m.reads);
            ("writes", Json.Int m.writes);
            ("total_ios", Json.Int m.total_ios);
            ("sim_ms", Json.Float m.sim_ms);
          ]
          @ (match m.trace_id with None -> [] | Some id -> [ ("trace_id", Json.String id) ])) );
    ]

let meta_of_json v =
  let m = get "meta" v in
  {
    version = to_int "version" (get "version" m);
    store = to_opt_string "store" (get "store" m);
    jobs = to_int "jobs" (get "jobs" m);
    cold = (match get "cold" m with Json.Bool b -> b | _ -> failwith "cold: expected bool");
    reads = to_int "reads" (get "reads" m);
    writes = to_int "writes" (get "writes" m);
    total_ios = to_int "total_ios" (get "total_ios" m);
    sim_ms = to_float "sim_ms" (get "sim_ms" m);
    trace_id =
      (match Json.member "trace_id" m with
      | None | Some Json.Null -> None
      | Some id -> Some (to_string_j "trace_id" id));
  }

let dump oc meta ops =
  output_string oc (Json.to_string (meta_to_json meta));
  output_char oc '\n';
  List.iter
    (fun op ->
      output_string oc (Json.to_string (op_to_json op));
      output_char oc '\n')
    ops;
  flush oc

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let l = String.trim (input_line ic) in
           if l <> "" then lines := l :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> failwith "Recorder.load: empty dump"
      | meta_line :: op_lines ->
        let meta = meta_of_json (Json.parse meta_line) in
        if meta.version <> 1 then failwith "Recorder.load: unsupported dump version";
        (meta, List.map (fun l -> op_of_json (Json.parse l)) op_lines))
