(** Named metric series over sliding windows, keyed by operation context.

    A registry holds one {!Window.t} per series plus one per
    [(doc, phase)] context that has fed the series inside the window, and
    cumulative totals since creation.  {!snapshot} renders the whole
    registry at a given clock instant into a plain, {e deterministically
    ordered} value (series sorted by name, contexts by [(doc, phase)]),
    so a deterministic workload produces byte-identical exports.

    The registry itself is not thread-safe; {!Mon} serialises access. *)

type t

(** [create ()] — windows default to 60 buckets of 1000 simulated
    milliseconds (a one-minute sim-clock window). *)
val create : ?bucket_ms:float -> ?buckets:int -> unit -> t

(** Declare [name] with histogram edges so its snapshot carries moving
    p50/p95/p99.  Must precede the first {!record} of [name]. *)
val define : t -> string -> quantile_edges:float array -> unit

(** [record t ?ctx ~at_ms name v] feeds the series' global window and, when
    [ctx] is present, its per-context window.  Unknown series are created
    on first use (no histogram). *)
val record : t -> ?ctx:Natix_obs.Event.ctx -> at_ms:float -> string -> float -> unit

type series = {
  name : string;
  total_count : int;  (** observations since creation *)
  total_sum : float;
  window : Window.agg;  (** aggregate over the live window *)
  quantiles : (float * float * float) option;  (** moving p50/p95/p99 *)
  by_ctx : ((string option * string) * Window.agg) list;
      (** windowed per-[(doc, phase)] aggregates, sorted *)
}

type snapshot = { at_ms : float; span_ms : float; series : series list }

val snapshot : t -> at_ms:float -> snapshot
val to_json : snapshot -> Natix_obs.Json.t

(** Prometheus-style text exposition: [natix_<name>_total] counters,
    [natix_<name>_window{...}] gauges (labelled per context), and
    [natix_<name>_p50/p95/p99] gauges for histogram series. *)
val to_prometheus : snapshot -> string
