(** The monitor: always-on telemetry over one observability handle.

    {!attach} subscribes to an {!Natix_obs.Obs.t} and from then on feeds
    three structures from the event stream and from session-level
    operation records:

    - a {!Registry} of sliding-window series — [reads], [writes],
      [fixes], [fix_hits] (windowed hit ratio = [fix_hits]/[fixes]),
      [wal_bytes] from events, keyed by the emitting [(doc, phase)]
      context; [ops] and [query_sim_ms] (with moving p50/p95/p99) from
      operation records;
    - an {!Account} per document: reads fed from the event stream (the
      context attributes them even inside parallel batches), simulated
      time and peak pages-pinned from operation records, each cumulative
      and windowed, with soft budgets;
    - a {!Recorder} flight ring of recent operations.

    Everything is stamped with the {e simulated} clock, so a
    deterministic workload yields byte-identical exports.

    {b Cost when idle.}  The subscriber does constant work per event
    (a few window-bucket additions under one mutex); no allocation grows
    with time except the bounded flight ring and one window per live
    [(doc, phase)] pair.  A store opened without monitoring pays nothing.

    {b Locking.}  One internal mutex serialises all feeds and snapshots.
    The event subscriber runs under the observability handle's delivery
    lock and only ever takes the monitor's lock (never the reverse
    order), and budget breaches are emitted {e after} the monitor's lock
    is released — the monitor never calls into the handle while holding
    its own lock. *)

type t

val attach :
  ?bucket_ms:float -> ?buckets:int -> ?ring_capacity:int -> Natix_obs.Obs.t -> t

val obs : t -> Natix_obs.Obs.t

(** {2 Budgets} *)

(** Install a soft budget; omitted limits are unbounded.  Crossing a
    limit emits a [Budget_exceeded] event through the handle and invokes
    every {!on_budget} callback, once per (doc, resource).  A breach
    detected inside the event subscriber (a [reads] budget crossed
    mid-operation) cannot emit from under the delivery lock; it fires at
    the next operation record or snapshot call. *)
val set_budget : t -> doc:string -> ?max_reads:int -> ?max_sim_ms:float -> unit -> unit

val on_budget : t -> (Account.breach -> unit) -> unit

(** {2 Operation records} *)

(** [record_op t ?pinned op] appends to the flight ring ([op.seq] is
    reassigned), charges [op.doc]'s account with the op's simulated time
    and [pinned] (pages pinned at completion), and feeds the [ops] /
    [query_sim_ms] series.  Emits budget-breach events on the way out. *)
val record_op : t -> ?pinned:int -> Recorder.op -> unit

(** {2 Snapshots and export} *)

val metrics_snapshot : t -> at_ms:float -> Registry.snapshot
val accounts : t -> at_ms:float -> Account.doc_stats list
val flight_ops : t -> Recorder.op list
val flight_added : t -> int

(** One JSON object: [{"at_ms", "metrics", "accounts", "flight"}]. *)
val export_json : t -> at_ms:float -> Natix_obs.Json.t

(** Prometheus-style text exposition of the registry. *)
val export_prometheus : t -> at_ms:float -> string

(** [dump_flight t ~io ~jobs ?store ?trace_id oc] writes the flight
    ring as a JSONL dump with [cold = false] (see {!Replay}): [io] is
    the store's cumulative {!Natix_store.Io_stats} at dump time, and
    [trace_id] names the request whose failure triggered the dump, when
    known. *)
val dump_flight :
  t -> io:Natix_store.Io_stats.t -> jobs:int -> ?store:string -> ?trace_id:string ->
  out_channel -> unit
