(** The workload flight recorder: a bounded ring of recent operations.

    Every session-level operation (query, scan, load, bulkload) appends
    one {!op} — what ran, against which document, the plan choice, the
    I/O delta the operation observed, and its outcome (including an MD5
    digest of the rendered result for queries, which is what replay
    compares).  The ring keeps the most recent [capacity] records; older
    ones fall off.

    {!dump} serialises the ring as JSONL — one {!meta} header line, then
    one line per op, oldest first — the format [natix replay] consumes
    (see {!Replay}).  Not thread-safe; {!Mon} serialises. *)

type op = {
  seq : int;  (** assigned by {!add}, monotone over the recorder's life *)
  at_ms : float;  (** sim-clock stamp when the op completed *)
  kind : string;  (** ["query"] | ["scan"] | ["load"] | ["bulkload"] *)
  doc : string option;
  detail : string;  (** query path text, loaded file name, … *)
  plan : string option;  (** planner's choice, when the op reports one *)
  reads : int;  (** I/O delta observed across the op *)
  writes : int;
  sim_ms : float;
  outcome : string;  (** ["ok"] or ["error:<class>"] *)
  digest : string option;  (** MD5 hex of rendered query output *)
  rows : int option;  (** rendered hit count, queries only *)
}

type meta = {
  version : int;
  store : string option;  (** backing file path, when file-backed *)
  jobs : int;
  cold : bool;
      (** captured from cleared buffers + zeroed I/O counters: replay may
          assert equal I/O totals, not just equal results *)
  reads : int;  (** I/O totals across the whole capture *)
  writes : int;
  total_ios : int;
  sim_ms : float;
  trace_id : string option;
      (** the failing request's trace id when a server dumped this ring
          on a request crash; omitted from the JSON when [None], so
          pre-tracing dumps are unchanged byte for byte *)
}

type t

val create : capacity:int -> t

(** Append an op (the [seq] field of the argument is ignored and
    reassigned); drops the oldest record when full. *)
val add : t -> op -> unit

(** Ops currently retained, oldest first. *)
val ops : t -> op list

(** Total ops ever added (≥ [List.length (ops t)]). *)
val added : t -> int

val op_to_json : op -> Natix_obs.Json.t
val op_of_json : Natix_obs.Json.t -> op
val meta_to_json : meta -> Natix_obs.Json.t
val meta_of_json : Natix_obs.Json.t -> meta

(** [dump oc meta ops] writes the JSONL dump. *)
val dump : out_channel -> meta -> op list -> unit

(** [load path] parses a dump file.
    @raise Failure on malformed input. *)
val load : string -> meta * op list
