type bucket = {
  mutable epoch : int;  (* absolute bucket index this slot currently holds; -1 = empty *)
  mutable count : int;
  mutable sum : float;
  hist : int array;  (* length = edges + 1 (overflow); [||] without edges *)
}

type t = {
  bucket_ms : float;
  buckets : bucket array;
  edges : float array;  (* [||] = no histogram *)
}

let create ~bucket_ms ~buckets ?(quantile_edges = [||]) () =
  if not (bucket_ms > 0.) then invalid_arg "Window.create: bucket_ms must be positive";
  if buckets <= 0 then invalid_arg "Window.create: buckets must be positive";
  Array.iteri
    (fun i e ->
      if (not (Float.is_finite e)) || (i > 0 && e <= quantile_edges.(i - 1)) then
        invalid_arg "Window.create: quantile edges must be finite and strictly increasing")
    quantile_edges;
  let hist_len = if Array.length quantile_edges = 0 then 0 else Array.length quantile_edges + 1 in
  {
    bucket_ms;
    buckets =
      Array.init buckets (fun _ ->
          { epoch = -1; count = 0; sum = 0.; hist = Array.make hist_len 0 });
    edges = quantile_edges;
  }

let span_ms t = t.bucket_ms *. float_of_int (Array.length t.buckets)

let abs_index t at_ms = int_of_float (Float.floor (at_ms /. t.bucket_ms))

let reset_bucket b epoch =
  b.epoch <- epoch;
  b.count <- 0;
  b.sum <- 0.;
  Array.fill b.hist 0 (Array.length b.hist) 0

(* Same upper-inclusive bucketing as [Metrics]. *)
let hist_slot edges v =
  let n = Array.length edges in
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if v <= edges.(mid) then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let add t ~at_ms v =
  if Float.is_finite v && Float.is_finite at_ms then begin
    let epoch = abs_index t at_ms in
    let n = Array.length t.buckets in
    let b = t.buckets.(((epoch mod n) + n) mod n) in
    (* A slot whose epoch differs holds either a retired bucket (reuse it)
       or a newer one (the stamp is older than the window: drop). *)
    if b.epoch < epoch then reset_bucket b epoch;
    if b.epoch = epoch then begin
      b.count <- b.count + 1;
      b.sum <- b.sum +. v;
      if Array.length t.edges > 0 then begin
        let s = hist_slot t.edges v in
        b.hist.(s) <- b.hist.(s) + 1
      end
    end
  end

type agg = { count : int; sum : float; rate_per_s : float }

(* Buckets live iff their epoch is within the last [buckets] indices
   ending at the bucket covering [at_ms].  Iterating the slot array in
   order visits live epochs in a fixed (arbitrary but deterministic)
   order; sums are accumulated in ascending-epoch order to keep float
   totals independent of the ring's phase. *)
let live t ~at_ms =
  let newest = abs_index t at_ms in
  let oldest = newest - Array.length t.buckets + 1 in
  Array.to_list t.buckets
  |> List.filter (fun b -> b.epoch >= oldest && b.epoch <= newest)
  |> List.sort (fun a b -> compare a.epoch b.epoch)

let agg t ~at_ms =
  let bs = live t ~at_ms in
  let count = List.fold_left (fun acc (b : bucket) -> acc + b.count) 0 bs in
  let sum = List.fold_left (fun acc (b : bucket) -> acc +. b.sum) 0. bs in
  { count; sum; rate_per_s = sum /. (span_ms t /. 1000.) }

let quantile t ~at_ms q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Window.quantile: q must be in [0, 1]";
  if Array.length t.edges = 0 then None
  else begin
    let bs = live t ~at_ms in
    let nslots = Array.length t.edges + 1 in
    let counts = Array.make nslots 0 in
    List.iter (fun b -> Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.hist) bs;
    let n = Array.fold_left ( + ) 0 counts in
    if n = 0 then None
    else begin
      let rank = q *. float_of_int n in
      let rec go i cum =
        if i >= nslots then Some t.edges.(Array.length t.edges - 1)
        else begin
          let cum' = cum +. float_of_int counts.(i) in
          if cum' >= rank && counts.(i) > 0 then
            if i >= Array.length t.edges then Some t.edges.(Array.length t.edges - 1)
            else begin
              let lo = if i = 0 then 0. else t.edges.(i - 1) in
              let hi = t.edges.(i) in
              let frac = (rank -. cum) /. float_of_int counts.(i) in
              Some (lo +. (frac *. (hi -. lo)))
            end
          else go (i + 1) cum'
        end
      in
      go 0 0.
    end
  end

let p50_95_99 t ~at_ms =
  match (quantile t ~at_ms 0.5, quantile t ~at_ms 0.95, quantile t ~at_ms 0.99) with
  | Some a, Some b, Some c -> Some (a, b, c)
  | _ -> None
