module Json = Natix_obs.Json

type budget = { max_reads : int option; max_sim_ms : float option }
type breach = { doc : string; resource : string; used : float; limit : float }

let no_budget = { max_reads = None; max_sim_ms = None }

type acct = {
  mutable reads_total : int;
  mutable sim_ms_total : float;
  mutable pinned_peak : int;
  win_reads : Window.t;
  win_sim_ms : Window.t;
  mutable budget : budget;
  mutable fired : string list;  (* resources whose breach already fired *)
}

type t = { bucket_ms : float; buckets : int; accounts : (string, acct) Hashtbl.t }

let create ?(bucket_ms = 1000.) ?(buckets = 60) () =
  { bucket_ms; buckets; accounts = Hashtbl.create 8 }

let acct t doc =
  match Hashtbl.find_opt t.accounts doc with
  | Some a -> a
  | None ->
    let a =
      {
        reads_total = 0;
        sim_ms_total = 0.;
        pinned_peak = 0;
        win_reads = Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets ();
        win_sim_ms = Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets ();
        budget = no_budget;
        fired = [];
      }
    in
    Hashtbl.add t.accounts doc a;
    a

let set_budget t ~doc budget =
  let a = acct t doc in
  a.budget <- budget;
  a.fired <- []

let breach a ~doc resource used limit =
  if List.mem resource a.fired then None
  else begin
    a.fired <- resource :: a.fired;
    Some { doc; resource; used; limit }
  end

let charge_reads t ~doc ~at_ms n =
  let a = acct t doc in
  a.reads_total <- a.reads_total + n;
  Window.add a.win_reads ~at_ms (float_of_int n);
  match a.budget.max_reads with
  | Some limit when a.reads_total > limit ->
    Option.to_list (breach a ~doc "reads" (float_of_int a.reads_total) (float_of_int limit))
  | _ -> []

let charge_op t ~doc ~at_ms ~sim_ms ~pinned =
  let a = acct t doc in
  a.sim_ms_total <- a.sim_ms_total +. sim_ms;
  if pinned > a.pinned_peak then a.pinned_peak <- pinned;
  Window.add a.win_sim_ms ~at_ms sim_ms;
  match a.budget.max_sim_ms with
  | Some limit when a.sim_ms_total > limit ->
    Option.to_list (breach a ~doc "sim_ms" a.sim_ms_total limit)
  | _ -> []

type doc_stats = {
  doc : string;
  reads_total : int;
  sim_ms_total : float;
  pinned_peak : int;
  win_reads : Window.agg;
  win_sim_ms : Window.agg;
  budget : budget;
  breached : string list;
}

let snapshot t ~at_ms =
  Hashtbl.fold (fun doc a acc -> (doc, a) :: acc) t.accounts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (doc, (a : acct)) ->
         {
           doc;
           reads_total = a.reads_total;
           sim_ms_total = a.sim_ms_total;
           pinned_peak = a.pinned_peak;
           win_reads = Window.agg a.win_reads ~at_ms;
           win_sim_ms = Window.agg a.win_sim_ms ~at_ms;
           budget = a.budget;
           breached = List.sort String.compare a.fired;
         })

let json_of_agg (a : Window.agg) =
  Json.Obj
    [ ("count", Json.Int a.count); ("sum", Json.Float a.sum); ("rate_per_s", Json.Float a.rate_per_s) ]

let to_json stats =
  Json.List
    (List.map
       (fun d ->
         let budget =
           (match d.budget.max_reads with
           | None -> []
           | Some r -> [ ("max_reads", Json.Int r) ])
           @
           match d.budget.max_sim_ms with
           | None -> []
           | Some ms -> [ ("max_sim_ms", Json.Float ms) ]
         in
         Json.Obj
           ([
              ("doc", Json.String d.doc);
              ("reads_total", Json.Int d.reads_total);
              ("sim_ms_total", Json.Float d.sim_ms_total);
              ("pinned_peak", Json.Int d.pinned_peak);
              ("win_reads", json_of_agg d.win_reads);
              ("win_sim_ms", json_of_agg d.win_sim_ms);
            ]
           @ (if budget = [] then [] else [ ("budget", Json.Obj budget) ])
           @
           if d.breached = [] then []
           else [ ("breached", Json.List (List.map (fun r -> Json.String r) d.breached)) ]))
       stats)
