(** Deterministic replay of captured query workloads.

    {!capture} runs a batch of query tasks from a {e cold} store (buffers
    cleared, I/O counters zeroed) through {!Natix_par.Par.run_queries}
    and produces a dump: per-op result digests plus whole-capture I/O
    totals in the {!Recorder.meta} line.  {!run} re-executes the query
    ops of a dump the same way and checks, per op, that outcome, row
    count and result digest are byte-identical, and — when the dump was
    captured cold and contains only query ops — that the replay's
    [reads]/[writes]/[total_ios] equal the captured totals {e exactly}.
    The totals check is exact even at [jobs > 1]: those counters are
    schedule-independent (see {!Natix_par.Par}).  [sim_ms] is reported
    but never asserted — it legitimately varies with the job count.

    Dumps written from the session flight ring ([natix mon dump], or the
    automatic dump on a typed-error exit) have [cold = false]; replaying
    them still verifies result digests, only the totals assertion is
    skipped. *)

(** MD5 hex over the rendered hits, one per line — the digest stored in
    and compared against dump records. *)
val digest_hits : string list -> string

(** Short class tag for an error outcome (["parse"], ["validation"],
    ["dtd"], ["query"], ["storage"]). *)
val error_class : Natix_core.Error.t -> string

(** [capture ?jobs ?store_path store tasks] — cold-runs [(doc, path)]
    query tasks and returns the dump contents.  Per-op [reads]/[writes]
    come from the executor's per-task deltas ([Par.task_io]) and are
    schedule-dependent at [jobs >= 2] — informational only; the meta
    line carries the schedule-independent whole-capture totals, which
    are what {!run} asserts. *)
val capture :
  ?jobs:int ->
  ?store_path:string ->
  Natix_core.Tree_store.t ->
  (string * string) list ->
  Recorder.meta * Recorder.op list

type mismatch = {
  seq : int;
  doc : string option;
  detail : string;
  expected : string;  (** captured outcome/digest/rows rendering *)
  got : string;
}

type report = {
  replayed : int;  (** query ops re-executed *)
  skipped : int;  (** non-query ops (not replayable: they mutate) *)
  mismatches : mismatch list;
  io_checked : bool;  (** totals assertion applied (cold, all-query dump) *)
  io_ok : bool;  (** [true] when the check was skipped *)
  captured_io : int * int * int;  (** reads, writes, total_ios *)
  replayed_io : int * int * int;
  captured_sim_ms : float;
  replayed_sim_ms : float;
}

val ok : report -> bool

(** A replacement execution surface for {!run}: given a job count and
    the [(doc, path)] query tasks, return per-task results in task
    order.  {!run} still owns the cold protocol (buffers cleared,
    counters zeroed before the call; totals read after), so the exact
    I/O assertion keeps its meaning on any surface.  This is how the
    session routes replay through its [Api] command layer
    ([Natix.Session.replay]) without this library depending on it. *)
type executor = jobs:int -> (string * string) list -> (string list, Natix_core.Error.t) result list

(** [run ?jobs ?exec store meta ops] replays against an already-open
    store.  [jobs] defaults to the dump's job count; [exec] defaults to
    the {!Natix_par.Par.run_queries} cold path used by {!capture}. *)
val run :
  ?jobs:int ->
  ?exec:executor ->
  Natix_core.Tree_store.t ->
  Recorder.meta ->
  Recorder.op list ->
  report

val report_to_json : report -> Natix_obs.Json.t
