(** Per-document resource accounting with soft budgets.

    Each document's account accumulates physical page reads (fed
    per-event, see {!charge_reads}), simulated milliseconds and the peak
    number of pages pinned (fed per completed operation, see
    {!charge_op}).  Cumulative totals live for the account's lifetime;
    windowed totals ride the same sliding windows as {!Registry}.

    Budgets are {e soft}: crossing one never fails the operation, it
    produces a {!breach} the caller turns into a [Budget_exceeded] event.
    Breaches are edge-triggered — one per (doc, resource) when the
    cumulative total first crosses the limit, re-armed by {!set_budget}.

    Not thread-safe; {!Mon} serialises. *)

type budget = { max_reads : int option; max_sim_ms : float option }

type breach = { doc : string; resource : string; used : float; limit : float }
(** [resource] is ["reads"] or ["sim_ms"]. *)

type t

val create : ?bucket_ms:float -> ?buckets:int -> unit -> t

(** Install (or replace) a document's budget; re-arms its breaches. *)
val set_budget : t -> doc:string -> budget -> unit

(** [charge_reads t ~doc ~at_ms n] accumulates [n] physical page reads —
    fed from [Io] events, whose (doc, phase) context attributes them even
    inside parallel batches — and returns any newly crossed budget. *)
val charge_reads : t -> doc:string -> at_ms:float -> int -> breach list

(** [charge_op t ~doc ~at_ms ~sim_ms ~pinned] accumulates one completed
    operation's simulated time and peak pages-pinned (per-op figures only
    exist for operations recorded individually). *)
val charge_op : t -> doc:string -> at_ms:float -> sim_ms:float -> pinned:int -> breach list

type doc_stats = {
  doc : string;
  reads_total : int;
  sim_ms_total : float;
  pinned_peak : int;  (** highest pages-pinned any single op reached *)
  win_reads : Window.agg;
  win_sim_ms : Window.agg;
  budget : budget;
  breached : string list;  (** resources over budget, sorted *)
}

(** All accounts, sorted by document name. *)
val snapshot : t -> at_ms:float -> doc_stats list

val to_json : doc_stats list -> Natix_obs.Json.t
