module Json = Natix_obs.Json

type entry = {
  edges : float array;  (* [||] = no histogram *)
  global : Window.t;
  by_ctx : (string option * string, Window.t) Hashtbl.t;
  mutable total_count : int;
  mutable total_sum : float;
}

type t = {
  bucket_ms : float;
  buckets : int;
  entries : (string, entry) Hashtbl.t;
}

let create ?(bucket_ms = 1000.) ?(buckets = 60) () =
  if not (bucket_ms > 0.) then invalid_arg "Registry.create: bucket_ms must be positive";
  if buckets <= 0 then invalid_arg "Registry.create: buckets must be positive";
  { bucket_ms; buckets; entries = Hashtbl.create 16 }

let make_window t edges =
  if Array.length edges = 0 then Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets ()
  else Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets ~quantile_edges:edges ()

let entry t name edges =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e =
      { edges; global = make_window t edges; by_ctx = Hashtbl.create 4; total_count = 0; total_sum = 0. }
    in
    Hashtbl.add t.entries name e;
    e

let define t name ~quantile_edges =
  if Hashtbl.mem t.entries name then invalid_arg ("Registry.define: duplicate series " ^ name);
  ignore (entry t name quantile_edges)

let record t ?ctx ~at_ms name v =
  if Float.is_finite v then begin
    let e = entry t name [||] in
    e.total_count <- e.total_count + 1;
    e.total_sum <- e.total_sum +. v;
    Window.add e.global ~at_ms v;
    match ctx with
    | None -> ()
    | Some { Natix_obs.Event.doc; phase } ->
      let key = (doc, phase) in
      let w =
        match Hashtbl.find_opt e.by_ctx key with
        | Some w -> w
        | None ->
          (* Per-context windows skip the histogram: quantiles are global. *)
          let w = Window.create ~bucket_ms:t.bucket_ms ~buckets:t.buckets () in
          Hashtbl.add e.by_ctx key w;
          w
      in
      Window.add w ~at_ms v
  end

type series = {
  name : string;
  total_count : int;
  total_sum : float;
  window : Window.agg;
  quantiles : (float * float * float) option;
  by_ctx : ((string option * string) * Window.agg) list;
}

type snapshot = { at_ms : float; span_ms : float; series : series list }

let snapshot t ~at_ms =
  let series =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, (e : entry)) ->
           let by_ctx =
             Hashtbl.fold (fun key w acc -> (key, Window.agg w ~at_ms) :: acc) e.by_ctx []
             |> List.filter (fun (_, (a : Window.agg)) -> a.count > 0)
             |> List.sort (fun (a, _) (b, _) -> compare a b)
           in
           {
             name;
             total_count = e.total_count;
             total_sum = e.total_sum;
             window = Window.agg e.global ~at_ms;
             quantiles =
               (if Array.length e.edges = 0 then None else Window.p50_95_99 e.global ~at_ms);
             by_ctx;
           })
  in
  { at_ms; span_ms = t.bucket_ms *. float_of_int t.buckets; series }

let json_of_agg (a : Window.agg) =
  Json.Obj
    [ ("count", Json.Int a.count); ("sum", Json.Float a.sum); ("rate_per_s", Json.Float a.rate_per_s) ]

let json_of_ctx (doc, phase) =
  Json.Obj
    [
      ("doc", match doc with None -> Json.Null | Some d -> Json.String d);
      ("phase", Json.String phase);
    ]

let to_json (s : snapshot) =
  Json.Obj
    [
      ("at_ms", Json.Float s.at_ms);
      ("span_ms", Json.Float s.span_ms);
      ( "series",
        Json.List
          (List.map
             (fun sr ->
               let base =
                 [
                   ("name", Json.String sr.name);
                   ("total_count", Json.Int sr.total_count);
                   ("total_sum", Json.Float sr.total_sum);
                   ("window", json_of_agg sr.window);
                 ]
               in
               let q =
                 match sr.quantiles with
                 | None -> []
                 | Some (p50, p95, p99) ->
                   [
                     ( "quantiles",
                       Json.Obj
                         [
                           ("p50", Json.Float p50); ("p95", Json.Float p95); ("p99", Json.Float p99);
                         ] );
                   ]
               in
               let ctxs =
                 match sr.by_ctx with
                 | [] -> []
                 | cs ->
                   [
                     ( "by_ctx",
                       Json.List
                         (List.map
                            (fun (key, agg) ->
                              Json.Obj [ ("ctx", json_of_ctx key); ("window", json_of_agg agg) ])
                            cs) );
                   ]
               in
               Json.Obj (base @ q @ ctxs))
             s.series) );
    ]

(* Prometheus exposition.  Series names become metric names with dots
   replaced; label values escape backslash, quote and newline. *)
let prom_name name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') name

let prom_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_prometheus (s : snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun sr ->
      let n = prom_name sr.name in
      line "# TYPE natix_%s_total counter" n;
      line "natix_%s_total %s" n (Json.float_repr sr.total_sum);
      line "# TYPE natix_%s_window gauge" n;
      line "natix_%s_window %s" n (Json.float_repr sr.window.sum);
      line "natix_%s_rate_per_s %s" n (Json.float_repr sr.window.rate_per_s);
      List.iter
        (fun ((doc, phase), (agg : Window.agg)) ->
          line {|natix_%s_window{doc="%s",phase="%s"} %s|} n
            (prom_label_value (Option.value doc ~default:""))
            (prom_label_value phase) (Json.float_repr agg.sum))
        sr.by_ctx;
      match sr.quantiles with
      | None -> ()
      | Some (p50, p95, p99) ->
        line "natix_%s_p50 %s" n (Json.float_repr p50);
        line "natix_%s_p95 %s" n (Json.float_repr p95);
        line "natix_%s_p99 %s" n (Json.float_repr p99))
    s.series;
  Buffer.contents buf
