(** Synthetic Shakespeare-like corpus (paper §4.1 substitution).

    The paper's evaluation stores the UNC Sunsite XML markup of
    Shakespeare's plays: 37 plays, ~8 MB of text, ~320,000 tree nodes.
    This generator reproduces the corpus {e structure} deterministically —
    the same element names (PLAY, TITLE, PERSONAE, PERSONA, ACT, SCENE,
    SPEECH, SPEAKER, LINE, STAGEDIR, ...), fan-outs and text lengths — from
    a seeded PRNG, so every benchmark series is exactly repeatable.
    Figures depend on tree shape, not literary content (DESIGN.md §1). *)

type params = {
  plays : int;
  seed : int64;
  acts_per_play : int;
  scenes_per_act : int * int;  (** inclusive range *)
  speeches_per_scene : int * int;
  lines_per_speech : int * int;
  words_per_line : int * int;
  personae : int * int;
  stagedir_every : int;  (** one STAGEDIR about every n speeches *)
}

(** Paper-scale defaults: 37 plays, ≈320k logical nodes, ≈8 MB of text. *)
val default_params : params

(** [scaled f] keeps the per-play shape but generates [ceil (f * 37)]
    plays (at least 1). *)
val scaled : float -> params

(** [generate_play params rng i] builds play number [i]. *)
val generate_play : params -> Natix_util.Prng.t -> int -> Natix_xml.Xml_tree.t

(** All plays of the corpus (a fresh PRNG seeded from [params.seed]). *)
val generate : params -> Natix_xml.Xml_tree.t list

(** Logical nodes and serialized bytes of a corpus — for sanity-checking
    against the paper's "about 8 MB / about 320000 nodes". *)
val corpus_measure : Natix_xml.Xml_tree.t list -> int * int
