open Natix_core

let nth seq k =
  (* 1-based k-th element of a lazy sequence; pulls no further. *)
  let rec go k seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons (x, rest) -> if k = 1 then Some x else go (k - 1) rest
  in
  go k seq

let children_named c name = Cursor.children_named c name

let full_traversal store ~docs =
  List.fold_left
    (fun acc doc ->
      match Cursor.of_document store doc with
      | None -> acc
      | Some root -> acc + Seq.fold_left (fun n _ -> n + 1) 0 (Cursor.descendants_or_self root))
    0 docs

let q1 store ~docs =
  List.concat_map
    (fun doc ->
      match Cursor.of_document store doc with
      | None -> []
      | Some root -> (
        match nth (children_named root "ACT") 3 with
        | None -> []
        | Some act -> (
          match nth (children_named act "SCENE") 2 with
          | None -> []
          | Some scene ->
            Seq.fold_left
              (fun acc c ->
                if Cursor.is_element c && String.equal (Cursor.name c) "SPEAKER" then
                  Cursor.text_content c :: acc
                else acc)
              [] (Cursor.descendants_or_self scene)
            |> List.rev)))
    docs

let q2 store ~docs =
  List.concat_map
    (fun doc ->
      match Cursor.of_document store doc with
      | None -> []
      | Some root ->
        Seq.concat_map
          (fun act ->
            Seq.filter_map
              (fun scene ->
                Option.map
                  (fun speech -> Exporter.to_string store (Cursor.node speech))
                  (nth (children_named scene "SPEECH") 1))
              (children_named act "SCENE"))
          (children_named root "ACT")
        |> List.of_seq)
    docs

let q3 store ~docs =
  List.filter_map
    (fun doc ->
      match Cursor.of_document store doc with
      | None -> None
      | Some root ->
        Option.bind (nth (children_named root "ACT") 1) (fun act ->
            Option.bind (nth (children_named act "SCENE") 1) (fun scene ->
                Option.map
                  (fun speech -> Exporter.to_string store (Cursor.node speech))
                  (nth (children_named scene "SPEECH") 1))))
    docs
