open Natix_core

(* The engine is created without an element index: the paper's four
   retrieval operations measure pure navigation, and the figure tables
   compare storage layouts, not access paths.  The planner therefore
   compiles every step to cursor navigation, and the streaming evaluator
   reproduces the access pattern the hand-coded walks used to have (lazy
   positional predicates pull no further than their position). *)

let run store ~doc path =
  let engine = Natix_query.Engine.create store in
  match Natix_query.Engine.query engine ~doc path with
  | Ok seq -> seq
  | Error (Error.Storage _) -> Seq.empty (* unknown document: no hits *)
  | Error e -> failwith (Error.to_string e)

let full_traversal store ~docs =
  List.fold_left
    (fun acc doc ->
      match Tree_store.open_document store doc with
      | None -> acc
      | Some _ ->
        (* //node() yields every logical node below the root; + 1 counts
           the root itself, like the pre-order traversal it replaces. *)
        acc + 1 + Seq.length (run store ~doc "//node()"))
    0 docs

let q1 store ~docs =
  List.concat_map
    (fun doc ->
      run store ~doc "/ACT[3]/SCENE[2]//SPEAKER" |> Seq.map Cursor.text_content |> List.of_seq)
    docs

let q2 store ~docs =
  List.concat_map
    (fun doc ->
      run store ~doc "/ACT/SCENE/SPEECH[1]"
      |> Seq.map (fun c -> Exporter.to_string store (Cursor.node c))
      |> List.of_seq)
    docs

let q3 store ~docs =
  List.concat_map
    (fun doc ->
      run store ~doc "/ACT[1]/SCENE[1]/SPEECH[1]"
      |> Seq.map (fun c -> Exporter.to_string store (Cursor.node c))
      |> List.of_seq)
    docs
