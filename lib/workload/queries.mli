(** The four retrieval operations of the paper's evaluation (§4.3).

    All four are declarative {!Natix_query} paths evaluated by the
    streaming engine (no element index, so every step is navigation);
    lazy positional predicates preserve the access pattern of the
    hand-coded walks they replaced: e.g. query 3 reads a root-to-speech
    path without expanding later acts.

    - {!full_traversal}: a full pre-order tree traversal;
    - {!q1}: all speakers in the third act, second scene of every play —
      leaf nodes of one type in one selected subtree;
    - {!q2}: the textual representation of the complete first speech in
      every scene — many small contiguous fragments;
    - {!q3}: the opening speech of each play — a single path per
      document. *)

open Natix_core

(** Number of logical nodes visited. *)
val full_traversal : Tree_store.t -> docs:string list -> int

(** Speaker texts of ACT[3]/SCENE[2], over all documents. *)
val q1 : Tree_store.t -> docs:string list -> string list

(** Serialised first SPEECH of every scene of every document. *)
val q2 : Tree_store.t -> docs:string list -> string list

(** Serialised opening speech (ACT[1]/SCENE[1]/SPEECH[1]) per document. *)
val q3 : Tree_store.t -> docs:string list -> string list
