open Natix_core
open Natix_store

type matrix_kind = One_to_one | Native

type series = { matrix : matrix_kind; order : Loader.order }

let all_series =
  [
    { matrix = One_to_one; order = Loader.Bfs_binary };
    { matrix = Native; order = Loader.Bfs_binary };
    { matrix = One_to_one; order = Loader.Preorder };
    { matrix = Native; order = Loader.Preorder };
  ]

let series_name s =
  let m = match s.matrix with One_to_one -> "1:1" | Native -> "1:n" in
  let o = match s.order with Loader.Preorder -> "append" | Loader.Bfs_binary -> "incremental" in
  m ^ " " ^ o

type built = {
  store : Tree_store.t;
  docs : string list;
  build_io : Io_stats.t;
  build_wall_s : float;
  disk_bytes : int;
  splits : int;
  nodes : int;
}

let build ~page_size ?(buffer_bytes = 2 * 1024 * 1024) ?(merge_threshold = 0.5) ?(read_ahead = 0)
    ?(scan_resistant = false) ?obs series corpus =
  let matrix =
    match series.matrix with
    | One_to_one -> Split_matrix.one_to_one ()
    | Native -> Split_matrix.native ()
  in
  let config =
    {
      (Config.default ()) with
      Config.page_size;
      buffer_bytes;
      matrix;
      split_target = 0.5;
      split_tolerance = 0.1;
      merge_threshold;
      standalone_first_fit = (series.matrix = One_to_one);
      read_ahead;
      scan_resistant;
      obs;
    }
  in
  let store = Tree_store.in_memory ~config () in
  let io = Tree_store.io_stats store in
  let before = Io_stats.copy io in
  let t0 = Unix.gettimeofday () in
  let docs = List.mapi (fun i play -> (Printf.sprintf "play-%d" i, play)) corpus in
  Loader.load_collection store docs ~order:series.order;
  let nodes = List.fold_left (fun n play -> n + Natix_xml.Xml_tree.node_count play) 0 corpus in
  Tree_store.sync store;
  let build_wall_s = Unix.gettimeofday () -. t0 in
  let build_io = Io_stats.diff (Io_stats.copy io) before in
  {
    store;
    docs = List.map fst docs;
    build_io;
    build_wall_s;
    disk_bytes = Stats.disk_bytes store;
    splits = Tree_store.split_count store;
    nodes;
  }

let measure built f =
  Tree_store.clear_buffers built.store;
  let io = Tree_store.io_stats built.store in
  let before = Io_stats.copy io in
  let result = f () in
  (result, Io_stats.diff (Io_stats.copy io) before)
