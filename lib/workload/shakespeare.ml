open Natix_util
open Natix_xml

type params = {
  plays : int;
  seed : int64;
  acts_per_play : int;
  scenes_per_act : int * int;
  speeches_per_scene : int * int;
  lines_per_speech : int * int;
  words_per_line : int * int;
  personae : int * int;
  stagedir_every : int;
}

let default_params =
  {
    plays = 37;
    seed = 0x5EED_0BADL;
    acts_per_play = 5;
    scenes_per_act = (3, 6);
    speeches_per_scene = (22, 38);
    lines_per_speech = (1, 8);
    words_per_line = (5, 9);
    personae = (15, 30);
    stagedir_every = 8;
  }

let scaled f =
  { default_params with plays = max 1 (int_of_float (ceil (f *. float_of_int default_params.plays))) }

(* A compact Early-Modern-English-flavoured vocabulary; lines are drawn
   from it uniformly, giving text statistics close to the original corpus
   (mean word ~5.2 chars, line ~38 chars). *)
let vocabulary =
  [|
    "thou"; "thee"; "thy"; "hath"; "doth"; "wherefore"; "art"; "lord"; "lady"; "king";
    "queen"; "crown"; "sword"; "blood"; "night"; "morrow"; "love"; "death"; "grave"; "ghost";
    "heart"; "tongue"; "honour"; "grace"; "noble"; "gentle"; "sweet"; "fair"; "foul"; "brave";
    "speak"; "hear"; "swear"; "pray"; "stand"; "come"; "hence"; "away"; "within"; "without";
    "heaven"; "earth"; "soul"; "spirit"; "fortune"; "nature"; "reason"; "madness"; "folly"; "wit";
    "eyes"; "face"; "hand"; "head"; "breast"; "words"; "deeds"; "tears"; "smiles"; "sighs";
    "villain"; "traitor"; "friend"; "cousin"; "father"; "mother"; "daughter"; "son"; "brother"; "sister";
    "castle"; "court"; "field"; "forest"; "sea"; "storm"; "tempest"; "thunder"; "lightning"; "rain";
  |]

let speaker_names =
  [|
    "ORLANDO"; "ROSALIND"; "BEATRICE"; "BENEDICK"; "MALVOLIO"; "VIOLA"; "ORSINO"; "FESTE";
    "PROSPERO"; "MIRANDA"; "CALIBAN"; "ARIEL"; "HAMLET"; "HORATIO"; "OPHELIA"; "GERTRUDE";
    "CLAUDIUS"; "LAERTES"; "POLONIUS"; "MACBETH"; "BANQUO"; "DUNCAN"; "MALCOLM"; "MACDUFF";
    "OTHELLO"; "IAGO"; "DESDEMONA"; "CASSIO"; "EMILIA"; "BRUTUS"; "CASSIUS"; "ANTONY";
    "PORTIA"; "SHYLOCK"; "BASSANIO"; "LEAR"; "CORDELIA"; "REGAN"; "GONERIL"; "EDmund";
  |]

let roman n =
  let rec go n = function
    | [] -> ""
    | (v, s) :: rest -> if n >= v then s ^ go (n - v) ((v, s) :: rest) else go n rest
  in
  go n [ (10, "X"); (9, "IX"); (5, "V"); (4, "IV"); (1, "I") ]

let line rng p =
  let lo, hi = p.words_per_line in
  let n = Prng.range rng lo hi in
  let words = List.init n (fun _ -> Prng.pick rng vocabulary) in
  let s = String.concat " " words in
  (* Sentence case with light punctuation. *)
  let s = String.capitalize_ascii s in
  match Prng.int rng 5 with
  | 0 -> s ^ "!"
  | 1 -> s ^ "?"
  | 2 | 3 -> s ^ ","
  | _ -> s ^ "."

let speech rng p =
  let speaker = Prng.pick rng speaker_names in
  let lo, hi = p.lines_per_speech in
  let n_lines = Prng.range rng lo hi in
  Xml_tree.element "SPEECH"
    (Xml_tree.element "SPEAKER" [ Xml_tree.text speaker ]
    :: List.init n_lines (fun _ -> Xml_tree.element "LINE" [ Xml_tree.text (line rng p) ]))

let stagedir rng p =
  let verbs = [| "Enter"; "Exit"; "Exeunt"; "Alarum within:"; "Flourish:" |] in
  Xml_tree.element "STAGEDIR"
    [ Xml_tree.text (Prng.pick rng verbs ^ " " ^ Prng.pick rng speaker_names ^ ". " ^ line rng p) ]

let scene rng p ~scene_no =
  let lo, hi = p.speeches_per_scene in
  let n = Prng.range rng lo hi in
  let body =
    List.concat_map
      (fun i ->
        let sp = speech rng p in
        if p.stagedir_every > 0 && (i + 1) mod p.stagedir_every = 0 then [ sp; stagedir rng p ]
        else [ sp ])
      (List.init n Fun.id)
  in
  Xml_tree.element "SCENE"
    (Xml_tree.element "TITLE"
       [ Xml_tree.text (Printf.sprintf "SCENE %s.  %s" (roman scene_no) (line rng p)) ]
    :: (stagedir rng p :: body))

let act rng p ~act_no =
  let lo, hi = p.scenes_per_act in
  let n = Prng.range rng lo hi in
  Xml_tree.element "ACT"
    (Xml_tree.element "TITLE" [ Xml_tree.text (Printf.sprintf "ACT %s" (roman act_no)) ]
    :: List.init n (fun i -> scene rng p ~scene_no:(i + 1)))

let generate_play p rng i =
  let title =
    Printf.sprintf "The %s of %s, Part %d"
      (if i mod 3 = 0 then "Tragedy" else if i mod 3 = 1 then "Comedy" else "History")
      (String.capitalize_ascii (String.lowercase_ascii (Prng.pick rng speaker_names)))
      (i + 1)
  in
  let lo, hi = p.personae in
  let n_personae = Prng.range rng lo hi in
  Xml_tree.element "PLAY"
    ([
       Xml_tree.element "TITLE" [ Xml_tree.text title ];
       Xml_tree.element "FM"
         (List.init 3 (fun _ -> Xml_tree.element "P" [ Xml_tree.text (line rng p) ]));
       Xml_tree.element "PERSONAE"
         (Xml_tree.element "TITLE" [ Xml_tree.text "Dramatis Personae" ]
         :: List.init n_personae (fun _ ->
                Xml_tree.element "PERSONA"
                  [ Xml_tree.text (Prng.pick rng speaker_names ^ ", " ^ line rng p) ]));
       Xml_tree.element "SCNDESCR" [ Xml_tree.text ("SCENE  " ^ line rng p) ];
       Xml_tree.element "PLAYSUBT" [ Xml_tree.text title ];
     ]
    @ List.init p.acts_per_play (fun a -> act rng p ~act_no:(a + 1)))

let generate p =
  let rng = Prng.create ~seed:p.seed in
  List.init p.plays (fun i -> generate_play p rng i)

let corpus_measure plays =
  List.fold_left
    (fun (nodes, bytes) play ->
      (nodes + Xml_tree.node_count play, bytes + String.length (Xml_print.to_string play)))
    (0, 0) plays
