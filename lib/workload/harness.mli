(** Measurement harness for the paper's evaluation cells.

    A cell = (page size, configuration series, operation).  The series are
    §4.2/§4.3's four: {1:1, 1:n(native)} × {append(pre-order),
    incremental(BFS-binary)}.  Per the paper: split target ½, split
    tolerance 1/10 page, 2 MB buffer, buffer cleared at the start of every
    measured operation.  Results are simulated milliseconds under the
    {!Natix_store.Io_model} plus raw I/O counters. *)

open Natix_core
open Natix_store

type matrix_kind = One_to_one | Native

type series = { matrix : matrix_kind; order : Loader.order }

(** The evaluation's four series, in the figures' legend order. *)
val all_series : series list

(** e.g. ["1:1 incremental"], ["1:n append"]. *)
val series_name : series -> string

type built = {
  store : Tree_store.t;
  docs : string list;
  build_io : Io_stats.t;  (** I/O during the insertion phase *)
  build_wall_s : float;
  disk_bytes : int;  (** Fig. 14 metric *)
  splits : int;
  nodes : int;  (** logical nodes inserted *)
}

(** [build ~page_size series corpus] creates a fresh in-memory store and
    loads every play as document ["play-<i>"] in the series' insertion
    order.  [read_ahead]/[scan_resistant] (both off by default, like the
    paper's pool) configure the buffer pool's scan optimisations. *)
val build :
  page_size:int ->
  ?buffer_bytes:int ->
  ?merge_threshold:float ->
  ?read_ahead:int ->
  ?scan_resistant:bool ->
  ?obs:Natix_obs.Obs.t ->
  series ->
  Natix_xml.Xml_tree.t list ->
  built

(** [measure built f] clears buffers (and the decoded-record memo), runs
    [f], and returns its result with the I/O delta. *)
val measure : built -> (unit -> 'a) -> 'a * Io_stats.t
