(** The typed request/response command surface.

    One vocabulary for every front end: the CLI's store-touching
    commands, the network server ({!Natix_server}), the in-process
    loopback client and deterministic replay all build an {!request},
    hand it to {!Session.exec} (or a connection), and branch on the
    {!response}.  Nothing here touches a store — this module is the
    {e types and their wire codec} only, so a client can link it without
    pulling in the engine.

    {b Codec.}  {!encode_request}/{!decode_request} (and the response
    pair) are a hand-rolled binary codec: length-prefixed strings,
    fixed-width unsigned integers, one tag byte per constructor.  The
    codec carries no framing, checksum or version — that is the
    transport's job (see [Natix_server.Protocol], which CRC-frames each
    encoded message under a versioned stream header).  Decoding is total:
    malformed bytes yield [Error], never an exception. *)

open Natix_core

type request =
  | Ping  (** liveness/echo; never touches a store *)
  | Load of { doc : string; xml : string; order : Loader.order }
      (** parse [xml] and store it as document [doc] *)
  | Query of { doc : string; path : string; texts : bool }
      (** evaluate a path query; [texts] renders text content instead of
          markup (the CLI's [--text]) *)
  | Scan of { element : string; texts : bool }
      (** all elements of a type across the store, via the element index *)
  | Checkpoint  (** durable checkpoint of the whole store *)
  | Stat of { doc : string option }
      (** physical statistics for one document, or all of them *)
  | Server_stats
      (** the dispatcher's own counters; answered by the server before
          tenant resolution, never by {!Session.exec} *)

(** One document's physical footprint, the wire subset of
    {!Natix_core.Stats.doc_stats}. *)
type doc_stat = { doc : string; records : int; pages : int; record_bytes : int }

(** Dispatcher counters as served over the wire (the remote face of
    [Natix_server.Server.stats], plus the server's static limits so a
    client can tell "queued 30" from "queued 30 of 32"). *)
type server_stats = {
  served : int;
  shed : int;
  max_queue : int;
  queued : int;
  running : int;
  jobs : int;
  max_inflight : int;
  queue_depth : int;
}

type response =
  | Pong
  | Loaded of { doc : string; nodes : int }  (** logical nodes stored *)
  | Hits of string list
      (** rendered query hits, exactly as the CLI prints them: elements
          as exported XML, text/attribute nodes as their text *)
  | Scanned of string list  (** rendered scan hits, same convention *)
  | Checkpointed
  | Stats of { docs : doc_stat list; disk_bytes : int }
  | Err of Error.t  (** typed failure, same classes as the direct API *)
  | Overloaded of { reason : string }
      (** shed by admission control before execution — the request was
          {e not} run; retry later.  [reason] is diagnostic
          (["queue_full"], ["inflight_limit"], ["budget:reads"], ...) *)
  | Server_statted of server_stats

(** Short stable tag (["ping"], ["load"], ["query"], ["scan"],
    ["checkpoint"], ["stat"]) — the request half of the (tenant, request)
    observability context, and the dispatcher's log vocabulary. *)
val kind : request -> string

(** Requests that may write to the store (Load, Checkpoint) or rebuild
    the element index (Scan).  The server gives these an exclusive
    per-tenant gate; non-mutating requests share it. *)
val mutates : request -> bool

(** {2 Binary codec}

    [decode_* s] consumes exactly [String.length s] bytes; trailing
    garbage is an error (a frame carries one message). *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
