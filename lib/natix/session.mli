(** One handle to a whole store.

    A session bundles the layers an application would otherwise wire by
    hand — {!Natix_store.Disk} + {!Natix_core.Tree_store} +
    {!Natix_core.Document_manager} + the {!Natix_query.Engine} — behind
    three constructors:

    {[
      Natix.Session.with_session "plays.natix" (fun s ->
          match Natix.Session.query s ~doc:"hamlet" "//ACT[3]//SPEAKER" with
          | Ok hits -> Seq.iter print_hit hits
          | Error e -> prerr_endline (Natix.Error.to_string e))
    ]}

    File sessions detect the page size of an existing store file (the
    configured size only applies on creation), run recovery on open, and
    checkpoint on {!close}.

    {b Monitoring is on by default.}  Every constructor attaches a
    {!Natix_mon.Mon} monitor to the store's observability handle —
    creating a sink-less handle when the configuration has none — so
    sliding-window metrics, per-document accounts and the operation
    flight ring are always live (see {!mon}, {!set_budget},
    {!dump_flight}).  [~monitor:false] opts out; a custom [config] with
    its own handle is monitored through that handle. *)

open Natix_core

type t

(** Construction options, one record instead of a keyword argument per
    knob.  Build from {!Options.default} with record update syntax:

    {[
      Natix.Session.open_store
        ~options:{ Natix.Session.Options.default with index = Fresh_only }
        "plays.natix"
    ]} *)
module Options : sig
  type t = {
    config : Config.t option;
        (** full store configuration; [None] uses {!Config.default} *)
    create_page_size : int;
        (** page size when creating a new file and no [config] is given
            (an existing file dictates its own); default 8192 *)
    index : Document_manager.index_mode;
        (** element-index policy, default {!Document_manager.Ensure}:
            open or create the index, rebuilding it when stale.
            Index-seeded query plans need an index; read-only sessions
            should use [Fresh_only] so a stale index is skipped instead
            of rebuilt. *)
    monitor : bool;  (** attach a {!Natix_mon.Mon} monitor; default [true] *)
    model : Natix_store.Io_model.t option;
        (** I/O cost model for {!open_memory} (ignored by file stores) *)
  }

  val default : t
end

(** [open_store ?options path] opens (or creates) a file-backed store. *)
val open_store : ?options:Options.t -> string -> t

(** An in-memory session (benchmarks, tests). *)
val open_memory : ?options:Options.t -> unit -> t

(** [with_store ?options path f] opens, applies [f], and {!close}s (also
    on exceptions). *)
val with_store : ?options:Options.t -> string -> (t -> 'a) -> 'a

(** {2 Deprecated keyword-argument constructors}

    Thin shims over the {!Options}-based constructors above, kept for
    existing call sites.  Each optional argument corresponds to the
    {!Options.t} field of the same name; defaults are
    {!Options.default}'s. *)

(** Deprecated alias: {!open_store} with the corresponding
    {!Options.t} fields. *)
val open_file :
  ?config:Config.t ->
  ?create_page_size:int ->
  ?index:Document_manager.index_mode ->
  ?monitor:bool ->
  string ->
  t

(** Deprecated alias: {!open_memory} with the corresponding
    {!Options.t} fields. *)
val in_memory :
  ?config:Config.t ->
  ?model:Natix_store.Io_model.t ->
  ?index:Document_manager.index_mode ->
  ?monitor:bool ->
  unit ->
  t

(** Wrap an existing store (takes no ownership of closing it).  With
    [monitor] (default [true]) a monitor is attached to the store's
    handle, if it has one — attach at most one session per handle, a
    second attachment would double-feed.  [path] labels flight dumps. *)
val of_store :
  ?index:Document_manager.index_mode -> ?monitor:bool -> ?path:string -> Tree_store.t -> t

(** Deprecated alias: {!with_store} with the corresponding
    {!Options.t} fields. *)
val with_session :
  ?config:Config.t ->
  ?create_page_size:int ->
  ?index:Document_manager.index_mode ->
  ?monitor:bool ->
  string ->
  (t -> 'a) ->
  'a

(** {2 The bundled layers} *)

val store : t -> Tree_store.t
val manager : t -> Document_manager.t
val engine : t -> Natix_query.Engine.t

(** The session's monitor; [None] with [~monitor:false] or when the
    store has no observability handle. *)
val mon : t -> Natix_mon.Mon.t option

(** {2 Monitoring}

    Conveniences over {!mon}; no-ops on an unmonitored session. *)

(** Soft per-document budget: crossing a limit emits a
    [Budget_exceeded] event (and fires {!Natix_mon.Mon.on_budget}
    callbacks), it never fails the operation. *)
val set_budget : t -> doc:string -> ?max_reads:int -> ?max_sim_ms:float -> unit -> unit

(** Write the operation flight ring as a JSONL dump (see
    {!Natix_mon.Recorder}); the meta line carries the session's
    cumulative I/O totals and [cold = false].  [trace_id], when given,
    names the request whose failure triggered the dump. *)
val dump_flight : ?trace_id:string -> t -> out_channel -> unit

(** Where error paths write the flight ring: [$NATIX_FLIGHT_PATH] when
    set and non-empty, else ["natix-flight.jsonl"].  Shared by the
    CLI's exit handler, the server's request-crash dump and the
    open-failure path inside {!open_store}. *)
val flight_path : unit -> string

(** Stored document names, sorted. *)
val documents : t -> string list

(** Durable checkpoint: element-index refresh, catalog save, buffer
    flush, WAL commit. *)
val checkpoint : t -> unit

(** {!checkpoint} (unless [~commit:false]), then close the WAL and the
    disk. *)
val close : ?commit:bool -> t -> unit

(** {2 Documents} *)

val store_document :
  t ->
  name:string ->
  ?dtd:Natix_xml.Dtd.t ->
  ?infer_dtd:bool ->
  ?order:Loader.order ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

val validate : t -> string -> (unit, Error.t) result

val insert_fragment :
  t ->
  doc:string ->
  Tree_store.insert_point ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

val delete_document : t -> string -> unit

(** Re-serialise a stored document; [None] if it does not exist. *)
val export : t -> string -> Natix_xml.Xml_tree.t option

(** {2 Queries}

    Thin wrappers over the session's {!Natix_query.Engine}. *)

val query : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result
val query_naive : t -> doc:string -> string -> (Cursor.t Seq.t, Error.t) result
val query_all : t -> string -> (Cursor.t Seq.t, Error.t) result
val explain : t -> doc:string -> string -> (string, Error.t) result

(** EXPLAIN ANALYZE: run the query strictly and report per-operator
    estimated vs actual cost (see {!Natix_query.Engine.analyze}). *)
val analyze : t -> doc:string -> string -> (Natix_query.Engine.analysis, Error.t) result

(** {2 Parallel execution}

    Thin wrappers over {!Natix_par.Par}: work partitioned by document
    across worker domains, results merged back in document order.  The
    session's [parallelism] (default [1]) is the job count when the
    [?jobs] argument is omitted; [1] runs inline on the calling domain,
    bit-identical to the sequential entry points. *)

val parallelism : t -> int

(** @raise Invalid_argument when [jobs < 1]. *)
val set_parallelism : t -> int -> unit

val run_queries :
  ?jobs:int ->
  t ->
  (string * string) list ->
  (string list, Error.t) result Natix_par.Par.outcome

val scan_all : ?jobs:int -> t -> (string * int) Natix_par.Par.outcome

val load_files :
  ?jobs:int -> t -> (string * string) list -> (unit, Error.t) result Natix_par.Par.outcome

(** {!Natix_par.Par.load_files_txn} with the same per-task flight
    recording as {!load_files}: each document commits as one ARIES
    transaction through the group-commit daemon instead of a store-wide
    checkpoint under the loader's commit lock. *)
val load_files_txn :
  ?jobs:int -> t -> (string * string) list -> (unit, Error.t) result Natix_par.Par.outcome

(** {2 The command surface}

    Every front end — the CLI's store-touching commands, the network
    server's dispatcher, the in-process loopback client and replay —
    funnels through [exec]: one {!Api.request} in, one {!Api.response}
    out, against this session's store. *)

(** [exec t req] executes one request.  Hits render exactly as the CLI
    prints them.  {e Typed} failures come back as [Err] (a [Load] of
    malformed XML is [Err (Parse _)], a [Stat] of an unknown document is
    [Err (Storage _)]); storage-{e corruption} exceptions (bad page,
    crash, frame exhaustion) still raise, so direct callers keep their
    exit codes and the server's dispatcher guard — not this function —
    decides what a connection sees.  [exec] never returns [Overloaded]:
    admission control lives in the server. *)
val exec : t -> Api.request -> Api.response

(** [exec_batch ?jobs t reqs] executes a batch, responses in request
    order.  A batch of plain queries ([Query] with [texts = false]) fans
    out through {!run_queries} — worker domains with private reader
    views, the same partitioning and I/O accounting as the parallel
    executor, inline and bit-identical to it at [jobs <= 1].  Any other
    batch runs inline in order ([jobs] is ignored): mutating requests
    must not interleave. *)
val exec_batch : ?jobs:int -> t -> Api.request list -> Api.response list

(** {!Natix_mon.Replay.run} routed through {!exec_batch}, so a replay
    verifies the command surface end to end — digests, row counts and
    (for cold all-query dumps) exact I/O totals — not just the engine
    under it. *)
val replay :
  ?jobs:int -> t -> Natix_mon.Recorder.meta -> Natix_mon.Recorder.op list -> Natix_mon.Replay.report
