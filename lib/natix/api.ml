open Natix_core

type request =
  | Ping
  | Load of { doc : string; xml : string; order : Loader.order }
  | Query of { doc : string; path : string; texts : bool }
  | Scan of { element : string; texts : bool }
  | Checkpoint
  | Stat of { doc : string option }
  | Server_stats

type doc_stat = { doc : string; records : int; pages : int; record_bytes : int }

(* Dispatcher counters, mirrored over the wire so a remote `natix top
   --serve` sees what an in-process [Server.stats] call sees. *)
type server_stats = {
  served : int;
  shed : int;
  max_queue : int;
  queued : int;
  running : int;
  jobs : int;
  max_inflight : int;
  queue_depth : int;
}

type response =
  | Pong
  | Loaded of { doc : string; nodes : int }
  | Hits of string list
  | Scanned of string list
  | Checkpointed
  | Stats of { docs : doc_stat list; disk_bytes : int }
  | Err of Error.t
  | Overloaded of { reason : string }
  | Server_statted of server_stats

let kind = function
  | Ping -> "ping"
  | Load _ -> "load"
  | Query _ -> "query"
  | Scan _ -> "scan"
  | Checkpoint -> "checkpoint"
  | Stat _ -> "stat"
  | Server_stats -> "server_stats"

(* Scan counts as mutating because its index policy may create or
   rebuild the element index (the CLI's `scan` repairs a stale one). *)
let mutates = function
  | Load _ | Checkpoint | Scan _ -> true
  | Ping | Query _ | Stat _ | Server_stats -> false

(* ---- codec -------------------------------------------------------- *)

(* Fixed-width big-endian integers and length-prefixed strings into a
   Buffer; decoding tracks a cursor over the input string and raises
   [Malformed] internally — the public decoders catch it, so malformed
   bytes are an [Error], never an exception. *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then bad "u32 out of range: %d" v;
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u48 b v =
  if v < 0 then bad "u48 out of range: %d" v;
  put_u8 b (v lsr 40);
  put_u8 b (v lsr 32);
  put_u32 b (v land 0xffff_ffff)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

type cursor = { s : string; mutable pos : int }

let take c n =
  if n < 0 || c.pos + n > String.length c.s then
    bad "truncated message (%d byte(s) needed at %d of %d)" n c.pos (String.length c.s);
  let off = c.pos in
  c.pos <- c.pos + n;
  off

let get_u8 c = Char.code c.s.[take c 1]
let get_u32 c =
  let off = take c 4 in
  (Char.code c.s.[off] lsl 24)
  lor (Char.code c.s.[off + 1] lsl 16)
  lor (Char.code c.s.[off + 2] lsl 8)
  lor Char.code c.s.[off + 3]

let get_u48 c =
  let hi = get_u8 c and mid = get_u8 c in
  (hi lsl 40) lor (mid lsl 32) lor get_u32 c

let get_str c =
  let len = get_u32 c in
  let off = take c len in
  String.sub c.s off len

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> bad "bad boolean byte %d" v

let get_list c get =
  let n = get_u32 c in
  List.init n (fun _ -> get c)

let put_list b put l =
  put_u32 b (List.length l);
  List.iter (put b) l

(* Decode drivers: one message per buffer, trailing bytes are an error. *)
let decode name f s =
  let c = { s; pos = 0 } in
  match f c with
  | v ->
    if c.pos <> String.length s then
      Error (Printf.sprintf "%s: %d trailing byte(s)" name (String.length s - c.pos))
    else Ok v
  | exception Malformed m -> Error (Printf.sprintf "%s: %s" name m)

(* ---- requests ----------------------------------------------------- *)

let order_tag = function Loader.Preorder -> 0 | Loader.Bfs_binary -> 1

let order_of_tag = function
  | 0 -> Loader.Preorder
  | 1 -> Loader.Bfs_binary
  | t -> bad "bad insertion-order tag %d" t

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Ping -> put_u8 b 1
  | Load { doc; xml; order } ->
    put_u8 b 2;
    put_str b doc;
    put_str b xml;
    put_u8 b (order_tag order)
  | Query { doc; path; texts } ->
    put_u8 b 3;
    put_str b doc;
    put_str b path;
    put_bool b texts
  | Scan { element; texts } ->
    put_u8 b 4;
    put_str b element;
    put_bool b texts
  | Checkpoint -> put_u8 b 5
  | Stat { doc } -> (
    put_u8 b 6;
    match doc with
    | None -> put_u8 b 0
    | Some d ->
      put_u8 b 1;
      put_str b d)
  | Server_stats -> put_u8 b 7);
  Buffer.contents b

let decode_request =
  decode "request" (fun c ->
      match get_u8 c with
      | 1 -> Ping
      | 2 ->
        let doc = get_str c in
        let xml = get_str c in
        Load { doc; xml; order = order_of_tag (get_u8 c) }
      | 3 ->
        let doc = get_str c in
        let path = get_str c in
        Query { doc; path; texts = get_bool c }
      | 4 ->
        let element = get_str c in
        Scan { element; texts = get_bool c }
      | 5 -> Checkpoint
      | 6 ->
        Stat
          {
            doc =
              (match get_u8 c with
              | 0 -> None
              | 1 -> Some (get_str c)
              | t -> bad "bad option tag %d" t);
          }
      | 7 -> Server_stats
      | t -> bad "bad request tag %d" t)

(* ---- errors ------------------------------------------------------- *)

let put_error b (e : Error.t) =
  match e with
  | Parse s ->
    put_u8 b 1;
    put_str b s
  | Validation { doc; detail } ->
    put_u8 b 2;
    put_str b doc;
    put_str b detail
  | Dtd { doc; detail } ->
    put_u8 b 3;
    put_str b doc;
    put_str b detail
  | Query s ->
    put_u8 b 4;
    put_str b s
  | Storage s ->
    put_u8 b 5;
    put_str b s

let get_error c : Error.t =
  match get_u8 c with
  | 1 -> Parse (get_str c)
  | 2 ->
    let doc = get_str c in
    Validation { doc; detail = get_str c }
  | 3 ->
    let doc = get_str c in
    Dtd { doc; detail = get_str c }
  | 4 -> Query (get_str c)
  | 5 -> Storage (get_str c)
  | t -> bad "bad error tag %d" t

(* ---- responses ---------------------------------------------------- *)

let put_stat b s =
  put_str b s.doc;
  put_u32 b s.records;
  put_u32 b s.pages;
  put_u48 b s.record_bytes

let get_stat c =
  let doc = get_str c in
  let records = get_u32 c in
  let pages = get_u32 c in
  { doc; records; pages; record_bytes = get_u48 c }

let encode_response r =
  let b = Buffer.create 256 in
  (match r with
  | Pong -> put_u8 b 1
  | Loaded { doc; nodes } ->
    put_u8 b 2;
    put_str b doc;
    put_u32 b nodes
  | Hits hits ->
    put_u8 b 3;
    put_list b put_str hits
  | Scanned hits ->
    put_u8 b 4;
    put_list b put_str hits
  | Checkpointed -> put_u8 b 5
  | Stats { docs; disk_bytes } ->
    put_u8 b 6;
    put_list b put_stat docs;
    put_u48 b disk_bytes
  | Err e ->
    put_u8 b 7;
    put_error b e
  | Overloaded { reason } ->
    put_u8 b 8;
    put_str b reason
  | Server_statted s ->
    put_u8 b 9;
    put_u48 b s.served;
    put_u48 b s.shed;
    put_u32 b s.max_queue;
    put_u32 b s.queued;
    put_u32 b s.running;
    put_u32 b s.jobs;
    put_u32 b s.max_inflight;
    put_u32 b s.queue_depth);
  Buffer.contents b

let decode_response =
  decode "response" (fun c ->
      match get_u8 c with
      | 1 -> Pong
      | 2 ->
        let doc = get_str c in
        Loaded { doc; nodes = get_u32 c }
      | 3 -> Hits (get_list c get_str)
      | 4 -> Scanned (get_list c get_str)
      | 5 -> Checkpointed
      | 6 ->
        let docs = get_list c get_stat in
        Stats { docs; disk_bytes = get_u48 c }
      | 7 -> Err (get_error c)
      | 8 -> Overloaded { reason = get_str c }
      | 9 ->
        let served = get_u48 c in
        let shed = get_u48 c in
        let max_queue = get_u32 c in
        let queued = get_u32 c in
        let running = get_u32 c in
        let jobs = get_u32 c in
        let max_inflight = get_u32 c in
        Server_statted
          { served; shed; max_queue; queued; running; jobs; max_inflight;
            queue_depth = get_u32 c }
      | t -> bad "bad response tag %d" t)

(* ---- printers ----------------------------------------------------- *)

let pp_request fmt = function
  | Ping -> Format.fprintf fmt "ping"
  | Load { doc; xml; _ } -> Format.fprintf fmt "load %s (%d bytes)" doc (String.length xml)
  | Query { doc; path; texts } ->
    Format.fprintf fmt "query %s %s%s" doc path (if texts then " --text" else "")
  | Scan { element; texts } ->
    Format.fprintf fmt "scan %s%s" element (if texts then " --text" else "")
  | Checkpoint -> Format.fprintf fmt "checkpoint"
  | Stat { doc } -> Format.fprintf fmt "stat %s" (Option.value doc ~default:"*")
  | Server_stats -> Format.fprintf fmt "server-stats"

let pp_response fmt = function
  | Pong -> Format.fprintf fmt "pong"
  | Loaded { doc; nodes } -> Format.fprintf fmt "loaded %s (%d nodes)" doc nodes
  | Hits hits -> Format.fprintf fmt "%d hit(s)" (List.length hits)
  | Scanned hits -> Format.fprintf fmt "%d scanned" (List.length hits)
  | Checkpointed -> Format.fprintf fmt "checkpointed"
  | Stats { docs; disk_bytes } ->
    Format.fprintf fmt "%d doc(s), %d bytes on disk" (List.length docs) disk_bytes
  | Err e -> Format.fprintf fmt "error: %a" Error.pp e
  | Overloaded { reason } -> Format.fprintf fmt "overloaded (%s)" reason
  | Server_statted s ->
    Format.fprintf fmt "server: served=%d shed=%d queued=%d running=%d max_queue=%d jobs=%d"
      s.served s.shed s.queued s.running s.max_queue s.jobs
