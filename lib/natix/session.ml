open Natix_core
module Io_stats = Natix_store.Io_stats
module Mon = Natix_mon.Mon

type t = {
  store : Tree_store.t;
  manager : Document_manager.t;
  engine : Natix_query.Engine.t;
  mutable parallelism : int;
  mon : Mon.t option;
  path : string option;  (* backing file, for flight-dump metadata *)
}

(* Monitoring is on by default: a session constructor that is not handed
   an observability handle makes one (no sink — events are consumed by
   the monitor and dropped) so the monitor has a stream to subscribe to.
   [~monitor:false] restores the bare store. *)
let ensure_obs ~monitor config =
  if not monitor then config
  else
    match config.Config.obs with
    | Some _ -> config
    | None -> Config.with_obs (Natix_obs.Obs.create ()) config

module Options = struct
  type t = {
    config : Config.t option;
    create_page_size : int;
    index : Document_manager.index_mode;
    monitor : bool;
    model : Natix_store.Io_model.t option;
  }

  let default =
    {
      config = None;
      create_page_size = 8192;
      index = Document_manager.Ensure;
      monitor = true;
      model = None;
    }
end

(* Where error paths drop the flight-recorder ring.  One resolution
   point for every dumper — the CLI's exit handler, the server's
   request-crash path and the open-failure path below all agree on the
   destination. *)
let flight_path () =
  match Sys.getenv_opt "NATIX_FLIGHT_PATH" with
  | Some p when p <> "" -> p
  | _ -> "natix-flight.jsonl"

let of_store_with_mon ~index ~mon ?path store =
  let manager = Document_manager.create ~index store in
  let engine = Natix_query.Engine.of_manager manager in
  { store; manager; engine; parallelism = 1; mon; path }

let of_store ?(index = Document_manager.Ensure) ?(monitor = true) ?path store =
  let mon = if monitor then Option.map Mon.attach (Tree_store.obs store) else None in
  of_store_with_mon ~index ~mon ?path store

let open_memory ?(options = Options.default) () =
  let { Options.config; index; monitor; model; _ } = options in
  let config = ensure_obs ~monitor (Option.value config ~default:(Config.default ())) in
  of_store ~index ~monitor (Tree_store.in_memory ~config ?model ())

let open_store ?(options = Options.default) path =
  let { Options.config; create_page_size; index; monitor; _ } = options in
  (* An existing file dictates its page size; the configured one only
     applies when the file is created. *)
  let page_size =
    match Natix_store.Disk.detect_page_size path with
    | Some ps -> ps
    | None -> (
      match config with Some c -> c.Config.page_size | None -> create_page_size)
  in
  let config =
    match config with
    | Some c -> { c with Config.page_size }
    | None -> { (Config.default ()) with Config.page_size }
  in
  let config = ensure_obs ~monitor config in
  let disk = Natix_store.Disk.on_file ~page_size path in
  (* Attach the monitor before the store opens so crash recovery's events
     land in its flight ring; if recovery (or any other part of opening)
     fails, the ring is dumped next to the store before the exception
     propagates — the only trace of a store that cannot even open. *)
  let mon = if monitor then Option.map Mon.attach config.Config.obs else None in
  let store =
    try Tree_store.open_store ~config disk
    with e ->
      (match mon with
      | None -> ()
      | Some mon -> (
        try
          let oc = open_out (flight_path ()) in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> Mon.dump_flight mon ~io:(Natix_store.Disk.stats disk) ~jobs:1 ~store:path oc)
        with _ -> ()));
      (try Natix_store.Disk.close disk with _ -> ());
      raise e
  in
  of_store_with_mon ~index ~mon ~path store

(* Keyword-argument shims over {!Options}: the historical constructor
   surface, kept so existing call sites keep compiling.  New code should
   build an [Options.t] (usually [{ Options.default with ... }]) and call
   the [open_*] constructors. *)

let options ?config ?create_page_size ?index ?monitor ?model () =
  let d = Options.default in
  {
    Options.config;
    create_page_size = Option.value create_page_size ~default:d.Options.create_page_size;
    index = Option.value index ~default:d.Options.index;
    monitor = Option.value monitor ~default:d.Options.monitor;
    model;
  }

let open_file ?config ?create_page_size ?index ?monitor path =
  open_store ~options:(options ?config ?create_page_size ?index ?monitor ()) path

let in_memory ?config ?model ?index ?monitor () =
  open_memory ~options:(options ?config ?index ?monitor ?model ()) ()

let store t = t.store
let manager t = t.manager
let engine t = t.engine
let mon t = t.mon
let documents t = List.sort String.compare (Tree_store.list_documents t.store)

let checkpoint t = Document_manager.checkpoint t.manager

let close ?(commit = true) t =
  if commit then Document_manager.checkpoint t.manager;
  Tree_store.close ~commit:false t.store

let with_store ?options path fn =
  let t = open_store ?options path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> fn t)

let with_session ?config ?create_page_size ?index ?monitor path fn =
  with_store ~options:(options ?config ?create_page_size ?index ?monitor ()) path fn

(* Operation records for the monitor *)

let io t = Tree_store.io_stats t.store
let now_ms t = (io t).Io_stats.sim_ms
let pinned t = Natix_store.Buffer_pool.pinned_frames (Tree_store.buffer_pool t.store)

let op ~at_ms ~kind ?doc ~detail ?plan ?(reads = 0) ?(writes = 0) ?(sim_ms = 0.) ?digest ?rows
    outcome =
  {
    Natix_mon.Recorder.seq = 0;
    at_ms;
    kind;
    doc;
    detail;
    plan;
    reads;
    writes;
    sim_ms;
    outcome;
    digest;
    rows;
  }

let outcome_of_result = function
  | Ok _ -> "ok"
  | Error e -> "error:" ^ Natix_mon.Replay.error_class e

(* Record an eager operation's flight entry: [before] is the I/O
   snapshot taken when it started. *)
let record_eager t ~kind ?doc ~detail ?plan ?rows ~outcome before =
  match t.mon with
  | None -> ()
  | Some mon ->
    let d = Io_stats.diff (Io_stats.copy (io t)) before in
    Mon.record_op mon ~pinned:(pinned t)
      (op ~at_ms:(now_ms t) ~kind ?doc ~detail ?plan ~reads:d.Io_stats.reads
         ~writes:d.Io_stats.writes ~sim_ms:d.Io_stats.sim_ms ?rows outcome)

let set_budget t ~doc ?max_reads ?max_sim_ms () =
  match t.mon with
  | None -> ()
  | Some mon -> Mon.set_budget mon ~doc ?max_reads ?max_sim_ms ()

let dump_flight ?trace_id t oc =
  match t.mon with
  | None -> ()
  | Some mon -> Mon.dump_flight mon ~io:(io t) ~jobs:t.parallelism ?store:t.path ?trace_id oc

(* Document management *)

let store_document t ~name ?dtd ?infer_dtd ?order xml =
  let before = Io_stats.copy (io t) in
  let result = Document_manager.store_document t.manager ~name ?dtd ?infer_dtd ?order xml in
  record_eager t ~kind:"load" ~doc:name ~detail:name ~outcome:(outcome_of_result result) before;
  result

let validate t doc = Document_manager.validate t.manager doc
let insert_fragment t ~doc point xml = Document_manager.insert_fragment t.manager ~doc point xml

let delete_document t doc =
  let before = Io_stats.copy (io t) in
  Document_manager.delete_document t.manager doc;
  record_eager t ~kind:"delete" ~doc ~detail:doc ~outcome:"ok" before

let export t doc = Exporter.document_to_xml t.store doc

(* Queries *)

(* Lazy query results are consumed after any [with_context] scope would
   have closed, so attribute their page accesses by re-installing the
   (doc, "query") context around each pull. *)
let contextual t ~doc seq =
  match Tree_store.obs t.store with
  | None -> seq
  | Some obs ->
    let ctx = Some { Natix_obs.Event.doc = Some doc; phase = "query" } in
    let rec wrap seq () =
      let saved = Natix_obs.Obs.context obs in
      Natix_obs.Obs.set_context obs ctx;
      let node =
        Fun.protect
          ~finally:(fun () -> Natix_obs.Obs.set_context obs saved)
          (fun () -> seq ())
      in
      match node with Seq.Nil -> Seq.Nil | Seq.Cons (x, rest) -> Seq.Cons (x, wrap rest)
    in
    wrap seq

(* The flight record for a lazy query closes when the sequence is
   exhausted (or the first pull raises): only then is the I/O delta the
   operation's true cost.  A sequence dropped before its end never
   records — the monitor sees completed operations. *)
let record_on_exhaust t ~doc ~path before seq =
  match t.mon with
  | None -> seq
  | Some mon ->
    let count = ref 0 in
    let done_ = ref false in
    let finish outcome =
      if not !done_ then begin
        done_ := true;
        let d = Io_stats.diff (Io_stats.copy (io t)) before in
        Mon.record_op mon ~pinned:(pinned t)
          (op ~at_ms:(now_ms t) ~kind:"query" ~doc ~detail:path ~reads:d.Io_stats.reads
             ~writes:d.Io_stats.writes ~sim_ms:d.Io_stats.sim_ms ~rows:!count outcome)
      end
    in
    let rec wrap seq () =
      match seq () with
      | Seq.Nil ->
        finish "ok";
        Seq.Nil
      | Seq.Cons (x, rest) ->
        incr count;
        Seq.Cons (x, wrap rest)
      | exception e ->
        finish
          (match e with
          | Error.Error err -> "error:" ^ Natix_mon.Replay.error_class err
          | _ -> "error:exception");
        raise e
    in
    wrap seq

let query t ~doc path =
  let before = Io_stats.copy (io t) in
  match Natix_query.Engine.query t.engine ~doc path with
  | Ok seq -> Ok (record_on_exhaust t ~doc ~path before (contextual t ~doc seq))
  | Error e as err ->
    record_eager t ~kind:"query" ~doc ~detail:path ~rows:0
      ~outcome:("error:" ^ Natix_mon.Replay.error_class e)
      before;
    err

let analyze t ~doc path = Natix_query.Engine.analyze t.engine ~doc path
let query_naive t ~doc path = Natix_query.Engine.query_naive t.engine ~doc path
let query_all t path = Natix_query.Engine.query_all t.engine path
let explain t ~doc path = Natix_query.Engine.explain t.engine ~doc path

(* Parallel execution *)

let parallelism t = t.parallelism

let set_parallelism t jobs =
  if jobs < 1 then invalid_arg "Session.set_parallelism: jobs must be >= 1";
  t.parallelism <- jobs

(* Batch entry points record one op per task, each carrying the task's
   exact I/O delta as measured by the executor ([Par.task_io]: the
   running domain's accumulator diffed around the task).  Per-task read
   counts are schedule-dependent at jobs >= 2 — whichever task touches a
   shared page first pays its miss — which is why replay compares
   digests, row counts and outcomes, never per-op I/O. *)
let record_batch t ops =
  match t.mon with
  | None -> ()
  | Some mon ->
    let at_ms = now_ms t in
    List.iter (fun f -> Mon.record_op mon (f ~at_ms)) ops

let task_results outcome =
  List.combine outcome.Natix_par.Par.results outcome.Natix_par.Par.task_io

let run_queries ?jobs t tasks =
  let jobs = Option.value jobs ~default:t.parallelism in
  let outcome = Natix_par.Par.run_queries ~jobs t.store tasks in
  record_batch t
    (List.map2
       (fun (doc, path) (result, d) ~at_ms ->
         let digest, rows =
           match result with
           | Ok hits -> (Some (Natix_mon.Replay.digest_hits hits), Some (List.length hits))
           | Error _ -> (None, None)
         in
         op ~at_ms ~kind:"query" ~doc ~detail:path ~reads:d.Io_stats.reads
           ~writes:d.Io_stats.writes ~sim_ms:d.Io_stats.sim_ms ?digest ?rows
           (outcome_of_result result))
       tasks (task_results outcome));
  outcome

let scan_all ?jobs t =
  let jobs = Option.value jobs ~default:t.parallelism in
  let outcome = Natix_par.Par.scan_all ~jobs t.store in
  record_batch t
    (List.map
       (fun ((doc, nodes), d) ~at_ms ->
         op ~at_ms ~kind:"scan" ~doc ~detail:doc ~reads:d.Io_stats.reads
           ~writes:d.Io_stats.writes ~sim_ms:d.Io_stats.sim_ms ~rows:nodes "ok")
       (task_results outcome));
  outcome

let record_load_batch t files outcome =
  record_batch t
    (List.map2
       (fun (name, _) (result, d) ~at_ms ->
         op ~at_ms ~kind:"bulkload" ~doc:name ~detail:name ~reads:d.Io_stats.reads
           ~writes:d.Io_stats.writes ~sim_ms:d.Io_stats.sim_ms
           (outcome_of_result result))
       files (task_results outcome));
  outcome

let load_files ?jobs t files =
  let jobs = Option.value jobs ~default:t.parallelism in
  record_load_batch t files (Natix_par.Par.load_files ~jobs t.manager files)

let load_files_txn ?jobs t files =
  let jobs = Option.value jobs ~default:t.parallelism in
  record_load_batch t files (Natix_par.Par.load_files_txn ~jobs t.manager files)

(* The Api command layer *)

(* Hit rendering matches the CLI's query output exactly: [--text] prints
   text content, otherwise elements export as markup and other nodes as
   their text.  The server's differential harness compares these strings
   against a direct CLI run byte for byte. *)
let render_hit t ~texts c =
  if texts then Cursor.text_content c
  else if Cursor.is_element c then Exporter.to_string t.store (Cursor.node c)
  else Cursor.text c

let exec t (req : Api.request) : Api.response =
  try
    match req with
    | Api.Ping -> Api.Pong
    | Api.Load { doc; xml; order } -> (
      match Natix_trace.Trace.span_here "xml.parse" (fun () -> Natix_xml.Xml_parser.parse xml) with
      | exception Natix_xml.Xml_parser.Error { line; col; msg } ->
        Api.Err (Error.Parse (Printf.sprintf "%s:%d:%d: %s" doc line col msg))
      | tree -> (
        match
          Natix_trace.Trace.span_here "load.store" (fun () -> store_document t ~name:doc ~order tree)
        with
        | Ok _ -> Api.Loaded { doc; nodes = Natix_xml.Xml_tree.node_count tree }
        | Error e -> Api.Err e))
    | Api.Query { doc; path; texts } -> (
      match query t ~doc path with
      | Ok seq -> Api.Hits (List.of_seq (Seq.map (render_hit t ~texts) seq))
      | Error e -> Api.Err e)
    | Api.Scan { element; texts } ->
      let before = Io_stats.copy (io t) in
      let nodes = Document_manager.elements_named t.manager element in
      let hits =
        List.map
          (fun n ->
            if texts then Cursor.text_content (Cursor.of_node t.store n)
            else Exporter.to_string t.store n)
          nodes
      in
      record_eager t ~kind:"scan" ~detail:element ~rows:(List.length hits) ~outcome:"ok" before;
      Api.Scanned hits
    | Api.Checkpoint ->
      checkpoint t;
      Api.Checkpointed
    | Api.Stat { doc } ->
      let names =
        match doc with
        | None -> documents t
        | Some d ->
          if List.mem d (documents t) then [ d ]
          else Error.raise_error (Error.Storage (Printf.sprintf "stat: no document %S" d))
      in
      let docs =
        List.map
          (fun d ->
            let s = Stats.document t.store d in
            {
              Api.doc = d;
              records = s.Stats.records;
              pages = s.Stats.pages;
              record_bytes = s.Stats.record_bytes;
            })
          names
      in
      Api.Stats { docs; disk_bytes = Stats.disk_bytes t.store }
    | Api.Server_stats ->
      (* Dispatcher counters live in the dispatcher; a bare session has
         none.  The server answers this before tenant dispatch, so
         reaching here means the request was sent somewhere it cannot
         mean anything. *)
      Api.Err (Error.Storage "server_stats: not a store request (ask a server)")
  with Error.Error e -> Api.Err e
(* Only {e typed} failures map to replies here: storage-corruption
   exceptions (bad page, crash, pinned-frame exhaustion) keep
   propagating, so a direct caller — the CLI with its exit codes, a test
   asserting poisoning — still sees them.  The server's dispatcher guard
   owns the exhaustive exception → [Err] mapping, because only there
   must a raising request never take down anything else. *)

let exec_batch ?jobs t reqs =
  let jobs = Option.value jobs ~default:t.parallelism in
  let plain_query = function Api.Query { texts = false; _ } -> true | _ -> false in
  if reqs <> [] && List.for_all plain_query reqs then
    (* Query-only batches fan out through {!run_queries} — per-worker
       reader views and navigation-only engines, results in submission
       order.  At any job count this renders and charges I/O exactly as
       the parallel executor does, which is what keeps replay's exact
       totals assertion valid through this surface. *)
    let tasks =
      List.map (function Api.Query { doc; path; _ } -> (doc, path) | _ -> assert false) reqs
    in
    let outcome = run_queries ~jobs t tasks in
    List.map
      (function Ok hits -> Api.Hits hits | Error e -> Api.Err e)
      outcome.Natix_par.Par.results
  else
    (* Mixed batches run inline in order: mutating requests must not
       interleave, and order is part of their meaning. *)
    List.map (exec t) reqs

let replay ?jobs t meta ops =
  let exec ~jobs tasks =
    let reqs = List.map (fun (doc, path) -> Api.Query { doc; path; texts = false }) tasks in
    List.map
      (function
        | Api.Hits hits -> Ok hits
        | Api.Err e -> Error e
        | _ -> assert false)
      (exec_batch ~jobs t reqs)
  in
  Natix_mon.Replay.run ?jobs ~exec t.store meta ops
