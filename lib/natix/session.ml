open Natix_core

type t = {
  store : Tree_store.t;
  manager : Document_manager.t;
  engine : Natix_query.Engine.t;
  mutable parallelism : int;
}

let of_store ?(index = Document_manager.Ensure) store =
  let manager = Document_manager.create ~index store in
  let engine = Natix_query.Engine.of_manager manager in
  { store; manager; engine; parallelism = 1 }

let in_memory ?config ?model ?index () =
  of_store ?index (Tree_store.in_memory ?config ?model ())

let open_file ?config ?(create_page_size = 8192) ?index path =
  (* An existing file dictates its page size; the configured one only
     applies when the file is created. *)
  let page_size =
    match Natix_store.Disk.detect_page_size path with
    | Some ps -> ps
    | None -> (
      match config with Some c -> c.Config.page_size | None -> create_page_size)
  in
  let config =
    match config with
    | Some c -> { c with Config.page_size }
    | None -> { (Config.default ()) with Config.page_size }
  in
  let disk = Natix_store.Disk.on_file ~page_size path in
  of_store ?index (Tree_store.open_store ~config disk)

let store t = t.store
let manager t = t.manager
let engine t = t.engine
let documents t = List.sort String.compare (Tree_store.list_documents t.store)

let checkpoint t = Document_manager.checkpoint t.manager

let close ?(commit = true) t =
  if commit then Document_manager.checkpoint t.manager;
  Tree_store.close ~commit:false t.store

let with_session ?config ?create_page_size ?index path fn =
  let t = open_file ?config ?create_page_size ?index path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> fn t)

(* Document management *)

let store_document t ~name ?dtd ?infer_dtd ?order xml =
  Document_manager.store_document t.manager ~name ?dtd ?infer_dtd ?order xml

let validate t doc = Document_manager.validate t.manager doc
let insert_fragment t ~doc point xml = Document_manager.insert_fragment t.manager ~doc point xml
let delete_document t doc = Document_manager.delete_document t.manager doc
let export t doc = Exporter.document_to_xml t.store doc

(* Queries *)

(* Lazy query results are consumed after any [with_context] scope would
   have closed, so attribute their page accesses by re-installing the
   (doc, "query") context around each pull. *)
let contextual t ~doc seq =
  match Tree_store.obs t.store with
  | None -> seq
  | Some obs ->
    let ctx = Some { Natix_obs.Event.doc = Some doc; phase = "query" } in
    let rec wrap seq () =
      let saved = Natix_obs.Obs.context obs in
      Natix_obs.Obs.set_context obs ctx;
      let node =
        Fun.protect
          ~finally:(fun () -> Natix_obs.Obs.set_context obs saved)
          (fun () -> seq ())
      in
      match node with Seq.Nil -> Seq.Nil | Seq.Cons (x, rest) -> Seq.Cons (x, wrap rest)
    in
    wrap seq

let query t ~doc path =
  Result.map (contextual t ~doc) (Natix_query.Engine.query t.engine ~doc path)

let analyze t ~doc path = Natix_query.Engine.analyze t.engine ~doc path
let query_naive t ~doc path = Natix_query.Engine.query_naive t.engine ~doc path
let query_all t path = Natix_query.Engine.query_all t.engine path
let explain t ~doc path = Natix_query.Engine.explain t.engine ~doc path

(* Parallel execution *)

let parallelism t = t.parallelism

let set_parallelism t jobs =
  if jobs < 1 then invalid_arg "Session.set_parallelism: jobs must be >= 1";
  t.parallelism <- jobs

let run_queries ?jobs t tasks =
  let jobs = Option.value jobs ~default:t.parallelism in
  Natix_par.Par.run_queries ~jobs t.store tasks

let scan_all ?jobs t =
  let jobs = Option.value jobs ~default:t.parallelism in
  Natix_par.Par.scan_all ~jobs t.store

let load_files ?jobs t files =
  let jobs = Option.value jobs ~default:t.parallelism in
  Natix_par.Par.load_files ~jobs t.manager files
