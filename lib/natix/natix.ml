(** Umbrella entry point.

    [Natix.Session] is the recommended way in: it bundles the disk, the
    tree store, the document manager and the query engine behind one
    handle.  The layer libraries ([natix.store], [natix.core],
    [natix.query], ...) remain available for code that needs to reach
    below the facade; the aliases here cover the names a facade user
    meets in signatures. *)

module Session = Session
module Api = Api
module Error = Natix_core.Error
module Config = Natix_core.Config
module Cursor = Natix_core.Cursor
module Query = Natix_query
module Mon = Natix_mon.Mon
