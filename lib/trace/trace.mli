(** Per-request causal tracing on the simulated clock.

    A trace follows one served request from admission to reply: every
    phase the request passes through (queue wait, tenant gate, engine
    execution, WAL group commit) opens a span, and every span records
    two independent dimensions:

    - a wall interval on the {e global} simulated clock (so waits on
      other requests' I/O — queue delay, gate blocking, group-commit
      fsync absorption — are visible), and
    - cumulative snapshots of the request's {e private} I/O stream
      (reads / writes / stream sim-ms), so per-span I/O deltas
      reconcile exactly with the request's `Disk` stream delta the way
      EXPLAIN ANALYZE reconciles with [Io_stats].

    The tracer never charges the simulated clock itself: enabling
    tracing moves no simulated figure, which the bench-diff gate
    enforces.

    Layering: this module depends only on [Natix_util]/[Natix_obs]
    (for JSON) and receives its clocks as closures, so deep layers
    (the store's group-commit daemon, the server's tenant gate) can
    depend on it and emit spans through the ambient per-domain trace
    installed by the dispatcher. *)

(** Private-stream I/O figures (cumulative or delta). *)
type io = { reads : int; writes : int; io_ms : float }

val zero_io : io
val add_io : io -> io -> io
val sub_io : io -> io -> io

type t

(** [create ~trace_id ~tenant ~kind ~detail ~clock] starts a trace at
    submission time: [clock] samples the global simulated clock and is
    read once immediately (the submission timestamp). *)
val create :
  trace_id:string -> tenant:string -> kind:string -> detail:string -> clock:(unit -> float) -> t

val trace_id : t -> string

(** Global simulated clock, as sampled by this trace. *)
val clock : t -> float

(** [run t ~io body] is called on the executing domain, inside the
    request's private stream: it installs [t] as the ambient trace for
    the calling domain, opens the root ["request"] span (whose start
    time is the submission timestamp, so its duration covers queue
    wait), emits the synthetic ["queue.wait"] child covering
    submission → pickup, runs [body], closes the root and restores the
    previous ambient trace.  [io] samples the private stream's
    cumulative counters. *)
val run : t -> io:(unit -> io) -> (unit -> 'a) -> 'a

(** The trace installed on the calling domain by [run], if any.
    Instrumentation points in lower layers use this to emit spans
    without threading a handle; when no trace is installed they cost
    one DLS read. *)
val active : unit -> t option

(** [span t name f] runs [f] under a span that samples both clocks at
    open and close.  The span closes even if [f] raises. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** Ambient variant of [span]: no-op wrapper when no trace is
    installed. *)
val span_here : string -> (unit -> 'a) -> 'a

(** [interval t name ~t0 ~t1] emits a child of the innermost open span
    covering an explicit global-clock window, with no private-stream
    I/O attributed.  Used for waits measured by the instrumented site
    itself (gate blocking, commit queue/fsync decomposition). *)
val interval : t -> string -> t0:float -> t1:float -> unit

(** [io_child t name ~io ~dur_ms] emits a zero-width child carrying an
    explicit private-stream I/O delta — used to attach EXPLAIN ANALYZE
    operator rows as spans. *)
val io_child : t -> string -> io:io -> dur_ms:float -> unit

(** Attach rendered EXPLAIN ANALYZE text (kept for the slow-request
    log). *)
val set_plan : t -> string -> unit

val set_plan_here : string -> unit

(** {1 Reports} *)

type span_report = {
  id : int;  (** ids are assigned in opening order; parents precede children *)
  parent : int;  (** 0 for the root *)
  name : string;
  start_ms : float;
  dur_ms : float;
  total : io;  (** private-stream delta over the span *)
  self : io;  (** [total] minus the totals of direct children *)
}

type report = {
  trace_id : string;
  tenant : string;
  kind : string;
  detail : string;
  submitted_ms : float;
  queued_ms : float;  (** pickup − submission, on the global clock *)
  dur_ms : float;  (** root duration (includes queue wait) *)
  total : io;  (** root private-stream delta; equals the sum of spans' selves *)
  plan : string option;
  spans : span_report list;  (** in opening order; the root is first *)
}

(** [finish t] closes the books after [run] returned and computes the
    report.  Invariant: the sum of [self] figures over [spans] equals
    [total] exactly (integers exactly; floats by construction of the
    simulated clock). *)
val finish : t -> report

(** Deterministic single-line JSON rendering (stable field order). *)
val report_to_json : report -> Natix_obs.Json.t

(** Folded flamegraph lines for one report, ["stack;path value"] with
    integer simulated-microsecond weights, sorted — the same dialect
    [Natix_prof.Flame] emits. *)
val folded : report -> string
