module Json = Natix_obs.Json

type io = { reads : int; writes : int; io_ms : float }

let zero_io = { reads = 0; writes = 0; io_ms = 0. }

let add_io a b =
  { reads = a.reads + b.reads; writes = a.writes + b.writes; io_ms = a.io_ms +. b.io_ms }

let sub_io a b =
  { reads = a.reads - b.reads; writes = a.writes - b.writes; io_ms = a.io_ms -. b.io_ms }

type span = {
  id : int;
  parent : int;
  name : string;
  t0 : float;
  mutable t1 : float;
  io0 : io;
  mutable io1 : io;
}

type t = {
  trace_id : string;
  tenant : string;
  kind : string;
  detail : string;
  clock : unit -> float;
  mutable io : unit -> io;
  submitted_ms : float;
  mutable plan : string option;
  mutable next_id : int;
  mutable stack : span list;  (* innermost open span first *)
  mutable spans : span list;  (* reverse opening order *)
  mutable pickup_ms : float;
}

let create ~trace_id ~tenant ~kind ~detail ~clock =
  {
    trace_id;
    tenant;
    kind;
    detail;
    clock;
    io = (fun () -> zero_io);
    submitted_ms = clock ();
    plan = None;
    next_id = 0;
    stack = [];
    spans = [];
    pickup_ms = nan;
  }

let trace_id t = t.trace_id
let clock t = t.clock ()
let set_plan t plan = t.plan <- Some plan

(* A trace is touched by one domain at a time (the submitting
   connection creates it, the executing worker runs it), so span
   bookkeeping needs no lock. *)
let fresh_span t ?t0 name =
  t.next_id <- t.next_id + 1;
  let parent = match t.stack with [] -> 0 | s :: _ -> s.id in
  let t0 = match t0 with Some t0 -> t0 | None -> t.clock () in
  { id = t.next_id; parent; name; t0; t1 = nan; io0 = t.io (); io1 = zero_io }

let open_span t ?t0 name =
  let s = fresh_span t ?t0 name in
  t.stack <- s :: t.stack;
  t.spans <- s :: t.spans;
  s

let close_span t s =
  s.t1 <- t.clock ();
  s.io1 <- t.io ();
  t.stack <-
    (match t.stack with
    | top :: rest when top == s -> rest
    | stack -> List.filter (fun x -> x != s) stack)

let span t name f =
  let s = open_span t name in
  Fun.protect ~finally:(fun () -> close_span t s) f

let interval t name ~t0 ~t1 =
  let s = fresh_span t ~t0 name in
  s.t1 <- t1;
  s.io1 <- s.io0;
  t.spans <- s :: t.spans

let io_child t name ~io ~dur_ms =
  let now = t.clock () in
  let s = { (fresh_span t ~t0:now name) with io0 = zero_io } in
  s.t1 <- now +. dur_ms;
  s.io1 <- io;
  t.spans <- s :: t.spans

(* Ambient per-domain trace.  One slot per domain: the dispatcher runs
   one request at a time per worker, and nested requests do not exist. *)
let ambient : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get ambient)

let span_here name f = match active () with None -> f () | Some t -> span t name f

let set_plan_here plan = match active () with None -> () | Some t -> set_plan t plan

let run t ~io body =
  let slot = Domain.DLS.get ambient in
  let saved = !slot in
  slot := Some t;
  t.io <- io;
  t.pickup_ms <- t.clock ();
  (* The root starts at submission so queue wait is inside it; its
     private-stream window starts now, on the worker, where the stream
     exists. *)
  let root = open_span t ~t0:t.submitted_ms "request" in
  interval t "queue.wait" ~t0:t.submitted_ms ~t1:t.pickup_ms;
  Fun.protect
    ~finally:(fun () ->
      close_span t root;
      slot := saved)
    body

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type span_report = {
  id : int;
  parent : int;
  name : string;
  start_ms : float;
  dur_ms : float;
  total : io;
  self : io;
}

type report = {
  trace_id : string;
  tenant : string;
  kind : string;
  detail : string;
  submitted_ms : float;
  queued_ms : float;
  dur_ms : float;
  total : io;
  plan : string option;
  spans : span_report list;
}

let finish (t : t) =
  let spans = List.rev t.spans in
  (* Self = total − Σ direct children totals.  Children carry
     cumulative-snapshot windows nested inside the parent's window, so
     the subtraction telescopes: Σ selves = root total. *)
  let totals = Hashtbl.create 16 in
  List.iter (fun (s : span) -> Hashtbl.replace totals s.id (sub_io s.io1 s.io0)) spans;
  let child_sum = Hashtbl.create 16 in
  List.iter
    (fun (s : span) ->
      if s.parent <> 0 then
        let prev = Option.value ~default:zero_io (Hashtbl.find_opt child_sum s.parent) in
        Hashtbl.replace child_sum s.parent (add_io prev (Hashtbl.find totals s.id)))
    spans;
  let reports =
    List.map
      (fun (s : span) ->
        let total = Hashtbl.find totals s.id in
        let children = Option.value ~default:zero_io (Hashtbl.find_opt child_sum s.id) in
        {
          id = s.id;
          parent = s.parent;
          name = s.name;
          start_ms = s.t0;
          dur_ms = s.t1 -. s.t0;
          total;
          self = sub_io total children;
        })
      spans
  in
  let root_total, root_dur =
    match reports with [] -> (zero_io, 0.) | r :: _ -> (r.total, r.dur_ms)
  in
  {
    trace_id = t.trace_id;
    tenant = t.tenant;
    kind = t.kind;
    detail = t.detail;
    submitted_ms = t.submitted_ms;
    queued_ms = (if Float.is_nan t.pickup_ms then 0. else t.pickup_ms -. t.submitted_ms);
    dur_ms = root_dur;
    total = root_total;
    plan = t.plan;
    spans = reports;
  }

let io_fields prefix io =
  [
    (prefix ^ "reads", Json.Int io.reads);
    (prefix ^ "writes", Json.Int io.writes);
    (prefix ^ "io_ms", Json.Float io.io_ms);
  ]

let span_to_json (s : span_report) =
  Json.Obj
    ([
       ("id", Json.Int s.id);
       ("parent", Json.Int s.parent);
       ("name", Json.String s.name);
       ("start_ms", Json.Float s.start_ms);
       ("dur_ms", Json.Float s.dur_ms);
     ]
    @ io_fields "" s.total
    @ io_fields "self_" s.self)

let report_to_json (r : report) =
  Json.Obj
    ([
       ("trace_id", Json.String r.trace_id);
       ("tenant", Json.String r.tenant);
       ("kind", Json.String r.kind);
       ("detail", Json.String r.detail);
       ("submitted_ms", Json.Float r.submitted_ms);
       ("queued_ms", Json.Float r.queued_ms);
       ("dur_ms", Json.Float r.dur_ms);
     ]
    @ io_fields "" r.total
    @ (match r.plan with None -> [] | Some p -> [ ("plan", Json.String p) ])
    @ [ ("spans", Json.List (List.map span_to_json r.spans)) ])

(* Same folding rules as Natix_prof.Flame: self weight in integer
   simulated microseconds, one line per stack, sorted bytewise. *)
let folded (r : report) =
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) r.spans;
  let rec stack s =
    if s.parent = 0 then [ s.name ]
    else
      match Hashtbl.find_opt by_id s.parent with
      | None -> [ s.name ]
      | Some p -> s.name :: stack p
  in
  let child_dur = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.parent <> 0 then
        let prev = Option.value ~default:0. (Hashtbl.find_opt child_dur s.parent) in
        Hashtbl.replace child_dur s.parent (prev +. s.dur_ms))
    r.spans;
  let sim_us ms = int_of_float (Float.round (ms *. 1000.)) in
  let lines =
    List.filter_map
      (fun s ->
        let children = Option.value ~default:0. (Hashtbl.find_opt child_dur s.id) in
        let self = sim_us (s.dur_ms -. children) in
        if self <= 0 then None
        else
          Some (Printf.sprintf "%s %d" (String.concat ";" (List.rev (stack s))) self))
      r.spans
  in
  String.concat "\n" (List.sort String.compare lines)
