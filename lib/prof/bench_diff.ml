open Natix_obs

type kind = Regression | Improvement | Change | Mismatch

type verdict = { path : string; kind : kind; detail : string }

type report = {
  threshold_pct : float;
  compared : int;
  verdicts : verdict list;
  regressions : int;
  mismatches : int;
}

let ok r = r.regressions = 0 && r.mismatches = 0

let kind_name = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Change -> "change"
  | Mismatch -> "mismatch"

let has_suffix s suf =
  let ls = String.length s and lsuf = String.length suf in
  ls >= lsuf && String.sub s (ls - lsuf) lsuf = suf

(* What a numeric leaf means is decided by its key name — the bench
   report uses the same vocabulary everywhere (reads, sim_ms, hit_ratio,
   ...).  [`Lower]/[`Higher] carry an absolute floor: a delta must clear
   both the relative threshold and the floor to count, so a 3-page figure
   moving to 4 does not fail a 10% gate. *)
let classify key =
  if has_suffix key "_wall_s" then `Skip (* wall time: not deterministic *)
  else if has_suffix key "_commits_per_s" then `Skip (* wall-derived: not deterministic *)
  else if has_suffix key "hit_ratio" then `Higher 0.01
  else if key = "sim_ms" || has_suffix key "_ms" then `Lower 1.0
  else if key = "reads" || key = "writes" || key = "disk_bytes" then `Lower 1.0
  else if List.mem key [ "hits"; "plays"; "nodes"; "bytes"; "scale"; "page_size" ] then `Exact
  else `Info

let num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let fmt_num v = if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%g" v

let rel_pct oldv newv =
  if oldv = 0. then if newv = 0. then 0. else Float.infinity
  else (newv -. oldv) /. Float.abs oldv *. 100.

let diff ?(threshold_pct = 10.) ~baseline ~current () =
  let verdicts = ref [] in
  let compared = ref 0 in
  let add path kind detail = verdicts := { path; kind; detail } :: !verdicts in
  let numeric path cls oldv newv =
    incr compared;
    if oldv = newv then ()
    else begin
      let pct = rel_pct oldv newv in
      let detail =
        Printf.sprintf "%s -> %s (%+.1f%%)" (fmt_num oldv) (fmt_num newv) pct
      in
      match cls with
      | `Skip -> ()
      | `Exact -> add path Mismatch detail
      | `Info -> add path Change detail
      | `Lower floor | `Higher floor ->
        (* Flip the sign so "worse" is always positive. *)
        let worse = match cls with `Lower _ -> pct | _ -> -.pct in
        if worse > threshold_pct && Float.abs (newv -. oldv) > floor then
          add path Regression detail
        else if worse < -.threshold_pct && Float.abs (newv -. oldv) > floor then
          add path Improvement detail
        else add path Change detail
    end
  in
  let rec walk path cls base cur =
    match (base, cur) with
    | Json.Obj bfields, Json.Obj cfields ->
      List.iter
        (fun (k, bv) ->
          let sub = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k cfields with
          | Some cv -> walk sub (classify k) bv cv
          | None -> add sub Mismatch "missing in current")
        bfields;
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k bfields) then
            add (if path = "" then k else path ^ "." ^ k) Change "added in current")
        cfields
    | Json.List bs, Json.List cs ->
      if List.length bs <> List.length cs then
        add path Mismatch
          (Printf.sprintf "array length %d -> %d" (List.length bs) (List.length cs))
      else
        List.iteri
          (fun i (bv, cv) -> walk (Printf.sprintf "%s[%d]" path i) cls bv cv)
          (List.combine bs cs)
    | _ when cls = `Skip -> ()
    | b, c -> (
      match (num b, num c) with
      | Some bn, Some cn -> numeric path cls bn cn
      | _ -> (
        incr compared;
        match (b, c) with
        | Json.String s1, Json.String s2 ->
          if not (String.equal s1 s2) then
            add path Mismatch (Printf.sprintf "%S -> %S" s1 s2)
        | Json.Bool b1, Json.Bool b2 ->
          if b1 <> b2 then add path Mismatch (Printf.sprintf "%b -> %b" b1 b2)
        | Json.Null, Json.Null -> ()
        | _ -> add path Mismatch "type changed"))
  in
  walk "" `Info baseline current;
  let verdicts = List.rev !verdicts in
  let count k = List.length (List.filter (fun v -> v.kind = k) verdicts) in
  {
    threshold_pct;
    compared = !compared;
    verdicts;
    regressions = count Regression;
    mismatches = count Mismatch;
  }

let to_json r =
  Json.Obj
    [
      ("ok", Json.Bool (ok r));
      ("threshold_pct", Json.Float r.threshold_pct);
      ("compared", Json.Int r.compared);
      ("regressions", Json.Int r.regressions);
      ("mismatches", Json.Int r.mismatches);
      ( "verdicts",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("path", Json.String v.path);
                   ("kind", Json.String (kind_name v.kind));
                   ("detail", Json.String v.detail);
                 ])
             r.verdicts) );
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>bench-diff: %d figure(s) compared, threshold %.0f%%" r.compared
    r.threshold_pct;
  List.iter
    (fun v -> Format.fprintf ppf "@,  %-11s %-55s %s" (kind_name v.kind) v.path v.detail)
    r.verdicts;
  Format.fprintf ppf "@,%s: %d regression(s), %d mismatch(es)"
    (if ok r then "OK" else "FAIL")
    r.regressions r.mismatches;
  Format.fprintf ppf "@]"
