(** Page-heat profiler: I/O attributed to (document, phase).

    Consumes trace events and groups buffer-pool fixes and physical page
    transfers by the {!Natix_obs.Event.ctx} stamped on them (installed by
    the document manager, the loader, the session's query wrapper and
    [doctor] probes).  Events without a context are ignored — they belong
    to no attributable operation.

    Reports are fully sorted, so the same workload yields the same
    bytes. *)

type t

val create : unit -> t

(** Account one event (can be used live via {!Natix_obs.Sink.callback}). *)
val feed : t -> Natix_obs.Event.t -> unit

(** Fold a retained trace (ring sink contents). *)
val of_events : Natix_obs.Event.t list -> t

type row = {
  doc : string;  (** [""] when the event carried no document *)
  phase : string;
  fixes : int;
  hits : int;
  reads : int;  (** physical page reads *)
  writes : int;
  pages_touched : int;  (** distinct pages fixed *)
  hottest : (int * int) list;  (** (page, fixes), hottest first *)
}

(** One row per (doc, phase), sorted by doc then phase; [top] (default 5)
    bounds the hottest-pages list. *)
val rows : ?top:int -> t -> row list

val pp : ?top:int -> Format.formatter -> t -> unit
