(** [natix doctor]: one deterministic tree-health report for a store.

    The report combines quantities readable from live state (document
    stats, clustering scores, a fill-factor histogram over the pages
    holding records, WAL write amplification) with trace-derived sections
    available when the store carries an {!Natix_obs.Obs.t} handle
    (proxy-chain and span-duration quantiles, split-decision tallies,
    checksum-failure/read-retry counters, and the page-heat breakdown by
    (document, phase)).

    {!run} probes every document with a clustering walk — under a
    [(doc, "doctor")] context and a ["doctor.probe"] span when
    instrumented — so the trace-derived sections are populated even on a
    freshly opened store.  Everything is keyed on sorted names and the
    simulated clock: the same store contents and workload produce a
    byte-identical report. *)

(** [run ?top_pages store] renders the report; [top_pages] (default 5)
    bounds each heat row's hottest-pages list.  Read-only: probing fixes
    pages but writes nothing. *)
val run : ?top_pages:int -> Natix_core.Tree_store.t -> string
