open Natix_core

type score = { steps : int; same_page : int }

let fraction s = if s.steps = 0 then 1. else float_of_int s.same_page /. float_of_int s.steps

(* The transitions scored are the ones a document-order traversal
   actually makes: parent -> first child, then previous sibling -> next
   sibling.  A transition is "clustered" when both endpoints' records
   live on the same page, i.e. following it faults no new page in. *)
let score store ~doc =
  match Tree_store.open_document store doc with
  | None -> None
  | Some root ->
    let rm = Tree_store.record_manager store in
    let page_of n =
      Natix_store.Record_manager.home_page rm (Tree_store.box_of store n).Phys_node.rid
    in
    let steps = ref 0 and same = ref 0 in
    let rec walk n page_n =
      let prev = ref page_n in
      Seq.iter
        (fun c ->
          let page_c = page_of c in
          incr steps;
          if page_c = !prev then incr same;
          prev := page_c;
          walk c page_c)
        (Tree_store.logical_children store n)
    in
    walk root (page_of root);
    Some { steps = !steps; same_page = !same }
