open Natix_obs

type span = { id : int; parent : int; name : string; dur_ms : float }

let spans_of_events events =
  List.filter_map
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Span { name; dur_ms; id; parent; depth = _ } -> Some { id; parent; name; dur_ms }
      | _ -> None)
    events

let spans_of_json lines =
  List.filter_map
    (fun j ->
      match Json.member "type" j with
      | Some (Json.String "span") -> (
        let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
        let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
        let num k =
          match Json.member k j with
          | Some (Json.Float f) -> Some f
          | Some (Json.Int i) -> Some (float_of_int i)
          | _ -> None
        in
        match (str "name", num "dur_ms", int "id", int "parent") with
        | Some name, Some dur_ms, Some id, Some parent -> Some { id; parent; name; dur_ms }
        | _ -> None)
      | _ -> None)
    lines

(* Durations are simulated milliseconds; folded weights must be integers,
   so export simulated microseconds. *)
let sim_us ms = int_of_float (Float.round (ms *. 1000.))

let folded spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  (* Self time = own duration minus the durations of direct children. *)
  let children_ms = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.parent <> 0 && Hashtbl.mem by_id s.parent then
        Hashtbl.replace children_ms s.parent
          (s.dur_ms +. Option.value ~default:0. (Hashtbl.find_opt children_ms s.parent)))
    spans;
  (* Ids are allocated in opening order, so a span's parent always has a
     smaller id and the climb terminates. *)
  let stack_of s =
    let rec up s acc =
      let acc = s.name :: acc in
      if s.parent = 0 then acc
      else match Hashtbl.find_opt by_id s.parent with Some p -> up p acc | None -> acc
    in
    String.concat ";" (up s [])
  in
  let weights = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self = s.dur_ms -. Option.value ~default:0. (Hashtbl.find_opt children_ms s.id) in
      let self = if self < 0. then 0. else self in
      let key = stack_of s in
      Hashtbl.replace weights key
        (sim_us self + Option.value ~default:0 (Hashtbl.find_opt weights key)))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_string spans =
  let buf = Buffer.create 256 in
  List.iter (fun (stack, us) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack us))
    (folded spans);
  Buffer.contents buf
