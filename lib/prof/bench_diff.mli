(** Bench regression gate: compare two bench JSON reports metric by
    metric.

    Both inputs are the deterministic simulated-I/O reports written by
    the bench harness ([--query-bench --json-file]); identical code on
    identical inputs produces identical JSON, so any difference is a real
    behaviour change.  The comparison walks both documents structurally
    and classifies each leaf by its key name:

    - cost figures ([reads], [writes], [sim_ms]/[*_ms], [disk_bytes]) are
      lower-better: an increase beyond the relative threshold {e and} an
      absolute floor is a {e regression};
    - [*hit_ratio] is higher-better, with the same gating;
    - result shape ([hits], corpus figures, strings, array lengths, the
      set of keys) must match exactly — a difference is a {e mismatch};
    - wall-clock figures ([*_wall_s]) are skipped; anything else numeric
      is reported as an informational change.

    The gate fails (see {!ok}) on any regression or mismatch;
    improvements and informational changes are reported but pass. *)

type kind = Regression | Improvement | Change | Mismatch

type verdict = { path : string; kind : kind; detail : string }

type report = {
  threshold_pct : float;
  compared : int;  (** leaves compared *)
  verdicts : verdict list;  (** every leaf that differed, in document order *)
  regressions : int;
  mismatches : int;
}

val ok : report -> bool
val kind_name : kind -> string

(** [diff ~baseline ~current ()] with [threshold_pct] defaulting to
    10%. *)
val diff :
  ?threshold_pct:float -> baseline:Natix_obs.Json.t -> current:Natix_obs.Json.t -> unit -> report

(** Machine-readable verdict
    [{"ok":.., "threshold_pct":.., "compared":.., "regressions":..,
    "mismatches":.., "verdicts":[{"path":..,"kind":..,"detail":..}]}]. *)
val to_json : report -> Natix_obs.Json.t

val pp : Format.formatter -> report -> unit
