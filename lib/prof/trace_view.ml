open Natix_obs

let keep_event ?kind ?doc ?since_ms (e : Event.t) =
  (match kind with None -> true | Some k -> String.equal (Event.type_name e.kind) k)
  && (match doc with
     | None -> true
     | Some d -> (
       match e.ctx with Some { Event.doc = Some d'; _ } -> String.equal d d' | _ -> false))
  && match since_ms with None -> true | Some ms -> e.at_ms >= ms

let filter ?kind ?doc ?since_ms events = List.filter (keep_event ?kind ?doc ?since_ms) events
