(** Trace filters for the CLI inspector: by event type, by attributed
    document, and by trace time (simulated milliseconds). *)

(** [keep_event ?kind ?doc ?since_ms e] — [kind] matches
    {!Natix_obs.Event.type_name} exactly; [doc] requires the event's
    context to name that document (events without a context never match a
    [doc] filter); [since_ms] keeps events stamped at or after the given
    simulated time. *)
val keep_event : ?kind:string -> ?doc:string -> ?since_ms:float -> Natix_obs.Event.t -> bool

val filter :
  ?kind:string -> ?doc:string -> ?since_ms:float -> Natix_obs.Event.t list -> Natix_obs.Event.t list
