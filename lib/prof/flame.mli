(** Flamegraph export: folded call stacks from span events.

    {!Natix_obs.Obs.span} events carry an (id, parent) link, so the span
    nesting of a trace can be rebuilt offline.  The exporter aggregates
    each span's {e self} time — its duration minus its direct children's —
    under its semicolon-joined ancestor stack, the folded-stack format
    consumed by [flamegraph.pl] and speedscope.

    All durations are {e simulated} milliseconds (the trace clock is the
    I/O cost model, not wall time), exported as integer simulated
    microseconds; output lines are sorted by stack, so identical
    workloads produce byte-identical folded files. *)

type span = { id : int; parent : int; name : string; dur_ms : float }

(** Span events of an in-memory trace (ring sink). *)
val spans_of_events : Natix_obs.Event.t list -> span list

(** Span events of a parsed JSONL trace; lines that are not span events
    (other event types, the trailing metrics snapshot) are skipped. *)
val spans_of_json : Natix_obs.Json.t list -> span list

(** [(stack, self simulated µs)] per distinct stack, sorted by stack.
    Zero-weight stacks are kept so the total weight reconciles with the
    sum of root-span durations. *)
val folded : span list -> (string * int) list

(** The folded lines, newline-terminated: ["a;b;c 120\n..."]. *)
val to_string : span list -> string
