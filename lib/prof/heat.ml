open Natix_obs

type cell = {
  mutable fixes : int;
  mutable hits : int;
  mutable reads : int;
  mutable writes : int;
  pages : (int, int) Hashtbl.t;  (* page -> fix count *)
}

type t = { cells : (string * string, cell) Hashtbl.t }
(* Keyed by (doc, phase); contextless documents appear as "". *)

let create () = { cells = Hashtbl.create 16 }

let cell_of t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = { fixes = 0; hits = 0; reads = 0; writes = 0; pages = Hashtbl.create 64 } in
    Hashtbl.replace t.cells key c;
    c

let feed t (e : Event.t) =
  match e.ctx with
  | None -> ()
  | Some { Event.doc; phase } -> (
    let key = (Option.value ~default:"" doc, phase) in
    match e.kind with
    | Event.Page_fix { page; hit } ->
      let c = cell_of t key in
      c.fixes <- c.fixes + 1;
      if hit then c.hits <- c.hits + 1;
      Hashtbl.replace c.pages page
        (1 + Option.value ~default:0 (Hashtbl.find_opt c.pages page))
    | Event.Io { write; _ } ->
      let c = cell_of t key in
      if write then c.writes <- c.writes + 1 else c.reads <- c.reads + 1
    | _ -> ())

let of_events events =
  let t = create () in
  List.iter (feed t) events;
  t

type row = {
  doc : string;
  phase : string;
  fixes : int;
  hits : int;
  reads : int;
  writes : int;
  pages_touched : int;
  hottest : (int * int) list;  (** (page, fixes), hottest first *)
}

let rows ?(top = 5) t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.cells []
  |> List.sort (fun ((d1, p1), _) ((d2, p2), _) ->
         match String.compare d1 d2 with 0 -> String.compare p1 p2 | c -> c)
  |> List.map (fun ((doc, phase), c) ->
         let hottest =
           Hashtbl.fold (fun page n acc -> (page, n) :: acc) c.pages []
           |> List.sort (fun (p1, n1) (p2, n2) ->
                  match compare n2 n1 with 0 -> compare p1 p2 | c -> c)
           |> List.filteri (fun i _ -> i < top)
         in
         {
           doc;
           phase;
           fixes = c.fixes;
           hits = c.hits;
           reads = c.reads;
           writes = c.writes;
           pages_touched = Hashtbl.length c.pages;
           hottest;
         })

let pp_row ppf r =
  Format.fprintf ppf "%-20s %-10s fixes=%-7d hits=%-7d reads=%-6d writes=%-6d pages=%-5d hot:"
    (if r.doc = "" then "-" else r.doc)
    r.phase r.fixes r.hits r.reads r.writes r.pages_touched;
  List.iter (fun (page, n) -> Format.fprintf ppf " %d:%d" page n) r.hottest

let pp ?top ppf t =
  let rows = rows ?top t in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_row ppf r)
    rows;
  Format.fprintf ppf "@]"
