open Natix_core
open Natix_store

module Int_set = Set.Make (Int)

(* Fixed fill-factor buckets: upper-inclusive tenths. *)
let fill_edges = [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]

let record_pages store doc =
  match Tree_store.document_rid store doc with
  | None -> Int_set.empty
  | Some rid ->
    let rm = Tree_store.record_manager store in
    let pages = ref Int_set.empty in
    Tree_store.iter_records store rid (fun rid _ _ ->
        pages := Int_set.add (Record_manager.home_page rm rid) !pages);
    !pages

let quantiles_line ppf metrics hist =
  match Natix_obs.Metrics.histogram metrics hist with
  | None | Some (_, _, _, 0) -> Format.fprintf ppf "n=0"
  | Some (_, _, sum, n) ->
    let q p =
      match Natix_obs.Metrics.quantile metrics hist p with
      | Some v -> Printf.sprintf "%.2f" v
      | None -> "-"
    in
    Format.fprintf ppf "n=%d mean=%.2f p50=%s p95=%s p99=%s" n
      (sum /. float_of_int n)
      (q 0.5) (q 0.95) (q 0.99)

let run ?(top_pages = 5) store =
  let obs = Tree_store.obs store in
  let docs = List.sort String.compare (Tree_store.list_documents store) in
  let pool = Tree_store.buffer_pool store in
  let disk = Buffer_pool.disk pool in
  let seg = Record_manager.segment (Tree_store.record_manager store) in
  (* Probe every document: the clustering walk doubles as the event
     source for proxy-chain and heat statistics when the store is
     instrumented. *)
  let probe doc =
    let work () =
      let stats = Stats.document store doc in
      let cluster = Cluster.score store ~doc in
      let pages = record_pages store doc in
      (doc, stats, cluster, pages)
    in
    match obs with
    | None -> work ()
    | Some o ->
      Natix_obs.Obs.with_context o ~doc ~phase:"doctor" (fun () ->
          Natix_obs.Obs.span o "doctor.probe" work)
  in
  let probed = List.map probe docs in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>== store ==@,";
  Format.fprintf ppf "documents=%d pages=%d page_size=%d disk_bytes=%d@," (List.length docs)
    (Disk.page_count disk) (Disk.page_size disk) (Stats.disk_bytes store);
  Format.fprintf ppf "splits=%d merges=%d (since open)@,@," (Tree_store.split_count store)
    (Tree_store.merge_count store);
  Format.fprintf ppf "== documents ==@,";
  List.iter
    (fun (doc, (s : Stats.doc_stats), cluster, _) ->
      Format.fprintf ppf
        "%-20s records=%-5d nodes=%-7d proxies=%-5d depth=%-2d pages=%-4d fill=%.2f" doc
        s.Stats.records s.Stats.facade_nodes s.Stats.proxy_count s.Stats.record_tree_depth
        s.Stats.pages s.Stats.avg_fill_factor;
      (match cluster with
      | Some c ->
        Format.fprintf ppf "  clustering=%.3f (%d/%d same-page)" (Cluster.fraction c)
          c.Cluster.same_page c.Cluster.steps
      | None -> ());
      Format.fprintf ppf "@,")
    probed;
  (* Fill-factor histogram over the distinct pages holding document
     records, from the free-space inventory (charges no I/O). *)
  let all_pages =
    List.fold_left (fun acc (_, _, _, pages) -> Int_set.union acc pages) Int_set.empty probed
  in
  let counts = Array.make (Array.length fill_edges) 0 in
  Int_set.iter
    (fun page ->
      let fill = Segment.fill_factor seg page in
      let rec bucket i =
        if i >= Array.length fill_edges - 1 then i
        else if fill <= fill_edges.(i) then i
        else bucket (i + 1)
      in
      let b = bucket 0 in
      counts.(b) <- counts.(b) + 1)
    all_pages;
  Format.fprintf ppf "@,== fill factor (%d record pages) ==@," (Int_set.cardinal all_pages);
  let max_count = Array.fold_left max 1 counts in
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "<=%.1f %6d |%s@," fill_edges.(i) c
        (String.make (c * 40 / max_count) '#'))
    counts;
  (* WAL write amplification: log bytes on top of the data pages
     written. *)
  (match Buffer_pool.wal pool with
  | None -> Format.fprintf ppf "@,== wal ==@,none (in-memory or WAL-less store)@,"
  | Some wal ->
    let io = Tree_store.io_stats store in
    let data_bytes = io.Io_stats.writes * Disk.page_size disk in
    let wal_bytes = Wal.bytes_logged wal in
    Format.fprintf ppf "@,== wal ==@,appends=%d bytes_logged=%d" (Wal.appends wal) wal_bytes;
    if data_bytes > 0 then
      Format.fprintf ppf " write_amplification=%.2fx"
        (float_of_int (data_bytes + wal_bytes) /. float_of_int data_bytes);
    Format.fprintf ppf "@,");
  (match obs with
  | None ->
    Format.fprintf ppf
      "@,== instrumentation ==@,store opened without an obs handle; proxy-chain, span and heat \
       sections unavailable@,"
  | Some o ->
    let metrics = Natix_obs.Obs.metrics o in
    Format.fprintf ppf "@,== distributions (simulated clock) ==@,";
    Format.fprintf ppf "proxy_chain_len: ";
    quantiles_line ppf metrics Natix_obs.Obs.proxy_chain_hist;
    Format.fprintf ppf "@,span_ms:         ";
    quantiles_line ppf metrics Natix_obs.Obs.span_ms_hist;
    Format.fprintf ppf "@,";
    (* Split-decision tallies from the retained trace (ring sinks); the
       counter covers splits since the handle was attached. *)
    let events = Natix_obs.Obs.events o in
    let splits = List.filter_map
        (fun (e : Natix_obs.Event.t) ->
          match e.kind with Natix_obs.Event.Split { decision; _ } -> Some decision | _ -> None)
        events
    in
    let tally d = List.length (List.filter (fun d' -> d' = d) splits) in
    Format.fprintf ppf "split decisions (traced): cluster=%d standalone=%d other=%d@,"
      (tally Natix_obs.Event.Cluster) (tally Natix_obs.Event.Standalone)
      (tally Natix_obs.Event.Other);
    Format.fprintf ppf "integrity: checksum_fail=%d read_retry=%d@,"
      (Natix_obs.Metrics.counter metrics "ev.checksum_fail")
      (Natix_obs.Metrics.counter metrics "ev.read_retry");
    let heat = Heat.of_events events in
    Format.fprintf ppf "@,== page heat (fixes by document/phase) ==@,";
    Format.fprintf ppf "%a@," (Heat.pp ~top:top_pages) heat);
  Format.fprintf ppf "@]";
  Format.pp_print_flush ppf ();
  Buffer.contents buf
