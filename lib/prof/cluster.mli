(** Clustering quality: how well logical proximity maps to physical
    proximity — the property the NATIX split matrix exists to preserve.

    The score walks a document's logical tree and checks, for every
    parent→first-child and next-sibling transition, whether the target
    node's record lives on the {e same page} as the source's.  The
    fraction of same-page transitions is the clustering score: 1.0 means
    a document-order traversal never leaves a page except when it is
    full; a 1:1 node-per-record configuration scatters children and
    scores visibly lower than the native multi-node records. *)

type score = { steps : int; same_page : int }

(** [same_page / steps]; 1.0 for a zero-step (single-node) document. *)
val fraction : score -> float

(** [score store ~doc] walks the document (faulting its pages in) and
    counts transitions.  [None] when the document does not exist. *)
val score : Natix_core.Tree_store.t -> doc:string -> score option
