type 'a t = {
  lock : Mutex.t;
  buf : 'a option array;
  mutable top : int;  (* next steal slot; top < bottom when nonempty *)
  mutable bottom : int;  (* next push slot *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  { lock = Mutex.create (); buf = Array.make capacity None; top = 0; bottom = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Indices grow monotonically and wrap modulo the capacity; [bottom - top]
   is the live count, so the buffer is full at exactly [capacity]. *)
let slot t i = i mod Array.length t.buf

let length t = locked t (fun () -> t.bottom - t.top)

let push t x =
  locked t (fun () ->
      if t.bottom - t.top >= Array.length t.buf then false
      else begin
        t.buf.(slot t t.bottom) <- Some x;
        t.bottom <- t.bottom + 1;
        true
      end)

let pop t =
  locked t (fun () ->
      if t.bottom = t.top then None
      else begin
        t.bottom <- t.bottom - 1;
        let i = slot t t.bottom in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        x
      end)

let steal t =
  locked t (fun () ->
      if t.bottom = t.top then None
      else begin
        let i = slot t t.top in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.top <- t.top + 1;
        x
      end)
