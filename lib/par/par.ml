open Natix_core
module Io_stats = Natix_store.Io_stats
module Disk = Natix_store.Disk
module Buffer_pool = Natix_store.Buffer_pool

type worker_stats = { worker : int; io : Io_stats.t }
type 'a outcome = { results : 'a list; task_io : Io_stats.t list; workers : worker_stats list }

let disk_of store = Buffer_pool.disk (Tree_store.buffer_pool store)

(* Per-task operation attribution.  The pool and disk emit through the
   {e base} store's observability handle from whichever domain runs the
   task; the handle's context slot is domain-local (see
   {!Natix_obs.Obs}), so each worker installs the (doc, phase) of the
   task it is executing without clobbering its siblings. *)
let with_ctx obs ?doc ~phase f =
  match obs with None -> f () | Some obs -> Natix_obs.Obs.with_context obs ?doc ~phase f

(* The generic executor: run [f ctx task] over [tasks] on [jobs] domains
   and hand results back in task order.

   jobs <= 1 must stay bit-identical to the sequential code path, so it
   runs inline: no domain, no parallel region, no per-domain stream —
   the only addition is a stats snapshot around the run to fill in the
   single worker entry.

   jobs >= 2: tasks are seeded round-robin into per-worker deques; each
   worker drains its own (LIFO) and then steals round-robin from the
   others (FIFO).  A worker failure sets [stop] so the rest drain out;
   the first exception is re-raised on the caller after every domain has
   joined and the streams are merged — stats stay consistent even on a
   crash. *)
let map_tasks ~jobs ~disk ~make_ctx ~f tasks =
  let n = Array.length tasks in
  let jobs = if n = 0 then 1 else max 1 (min jobs n) in
  (* Per-task I/O attribution: a task runs on one domain, and a domain
     charges one accumulator (its stream inside a region, the default
     stats outside), so diffing that accumulator around the task is the
     task's exact I/O delta — no sampling, no cross-task bleed. *)
  let timed ctx task =
    let before = Io_stats.copy (Disk.active_stats disk) in
    let r = f ctx task in
    (r, Io_stats.diff (Io_stats.copy (Disk.active_stats disk)) before)
  in
  if jobs <= 1 then begin
    let before = Io_stats.copy (Disk.stats disk) in
    let ctx = make_ctx () in
    let results = Array.map (fun task -> timed ctx task) tasks in
    let io = Io_stats.diff (Io_stats.copy (Disk.stats disk)) before in
    {
      results = Array.to_list (Array.map fst results);
      task_io = Array.to_list (Array.map snd results);
      workers = [ { worker = 0; io } ];
    }
  end
  else begin
    let deques = Array.init jobs (fun _ -> Deque.create ~capacity:n) in
    Array.iteri (fun i task -> ignore (Deque.push deques.(i mod jobs) (i, task) : bool)) tasks;
    let results = Array.make n None in
    let stop = Atomic.make false in
    let fatal = Atomic.make None in
    let body w () =
      Disk.with_stream disk (fun () ->
          match
            let ctx = make_ctx () in
            let next () =
              match Deque.pop deques.(w) with
              | Some _ as r -> r
              | None ->
                let rec go k =
                  if k >= jobs then None
                  else
                    match Deque.steal deques.((w + k) mod jobs) with
                    | Some _ as r -> r
                    | None -> go (k + 1)
                in
                go 1
            in
            let rec loop () =
              if not (Atomic.get stop) then
                match next () with
                | None -> ()
                | Some (i, task) ->
                  results.(i) <- Some (timed ctx task);
                  loop ()
            in
            loop ()
          with
          | () -> ()
          | exception e ->
            if Atomic.compare_and_set fatal None (Some e) then Atomic.set stop true)
    in
    Disk.enter_parallel_region disk;
    let streams =
      Fun.protect
        ~finally:(fun () -> Disk.exit_parallel_region disk)
        (fun () ->
          let domains = Array.init jobs (fun w -> Domain.spawn (body w)) in
          Array.map Domain.join domains)
    in
    (* Merge per-worker accumulators into the default stream in worker
       index order: float addition is not associative, and a fixed order
       keeps the merged totals deterministic for a fixed partition. *)
    let workers =
      Array.to_list (Array.mapi (fun w ((), io) -> { worker = w; io }) streams)
    in
    List.iter (fun ws -> Io_stats.add (Disk.stats disk) ws.io) workers;
    (match Atomic.get fatal with Some e -> raise e | None -> ());
    let results =
      Array.to_list
        (Array.map
           (function
             | Some r -> r
             | None -> invalid_arg "Par.map_tasks: task left unexecuted")
           results)
    in
    { results = List.map fst results; task_io = List.map snd results; workers }
  end

(* Hits render exactly as the CLI does ([bin/natix_cli.ml]): elements as
   exported XML, text/attribute nodes as their text — the differential
   harness compares these strings byte for byte across job counts. *)
let render reader c =
  if Cursor.is_element c then Exporter.to_string reader (Cursor.node c) else Cursor.text c

let run_queries ?(jobs = 1) store tasks =
  let obs = Tree_store.obs store in
  map_tasks ~jobs ~disk:(disk_of store)
    ~make_ctx:(fun () ->
      let reader = Tree_store.reader store in
      (reader, Natix_query.Engine.create reader))
    ~f:(fun (reader, engine) (doc, path) ->
      with_ctx obs ~doc ~phase:"query" (fun () ->
          match Natix_query.Engine.query engine ~doc path with
          | Error _ as e -> e
          | Ok seq -> Ok (List.map (render reader) (List.of_seq seq))))
    (Array.of_list tasks)

let scan_all ?(jobs = 1) store =
  let docs = List.sort String.compare (Tree_store.list_documents store) in
  let obs = Tree_store.obs store in
  map_tasks ~jobs ~disk:(disk_of store)
    ~make_ctx:(fun () -> Tree_store.reader store)
    ~f:(fun reader doc ->
      with_ctx obs ~doc ~phase:"scan" @@ fun () ->
      Buffer_pool.with_scan (Tree_store.buffer_pool reader) (fun () ->
          match Cursor.of_document reader doc with
          | None -> (doc, 0)
          | Some root ->
            (doc, Seq.fold_left (fun acc _ -> acc + 1) 0 (Cursor.descendants_or_self root))))
    (Array.of_list docs)

let load_files ?(jobs = 1) dm files =
  let disk = disk_of (Document_manager.store dm) in
  let obs = Tree_store.obs (Document_manager.store dm) in
  let commit_lock = Mutex.create () in
  let crashed = Atomic.make false in
  let store_one name xml =
    Mutex.lock commit_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock commit_lock)
      (fun () ->
        (* A crash on another worker leaves the disk refusing writes;
           don't pile further failures onto it. *)
        if Atomic.get crashed then
          Error (Error.Storage "parallel load aborted: store crashed")
        else
          match Document_manager.store_committed dm ~name xml with
          | Ok _ -> Ok ()
          | Error _ as e -> e
          | exception e ->
            Atomic.set crashed true;
            raise e)
  in
  map_tasks ~jobs ~disk
    ~make_ctx:(fun () -> ())
    ~f:(fun () (name, text) ->
      with_ctx obs ~doc:name ~phase:"load" @@ fun () ->
      match Natix_xml.Xml_parser.parse text with
      | exception Natix_xml.Xml_parser.Error { line; col; msg } ->
        Error (Error.Parse (Printf.sprintf "%s:%d:%d: %s" name line col msg))
      | xml -> store_one name xml)
    (Array.of_list files)

(* Transactional bulk load: no commit lock.  Each worker parses its file
   off-lock, then commits it as one ARIES transaction
   ({!Document_manager.store_transactional}); [Tree_store.with_txn]
   serialises only the in-memory mutation phase internally, while commit
   fsyncs from different workers overlap and batch in the group-commit
   daemon.  A failed commit poisons the store, so the remaining tasks
   come back as typed [Error]s instead of piling writes onto a store in
   an unknown state; a simulated crash still aborts the fleet. *)
let load_files_txn ?(jobs = 1) dm files =
  let disk = disk_of (Document_manager.store dm) in
  let obs = Tree_store.obs (Document_manager.store dm) in
  map_tasks ~jobs ~disk
    ~make_ctx:(fun () -> ())
    ~f:(fun () (name, text) ->
      with_ctx obs ~doc:name ~phase:"load" @@ fun () ->
      match Natix_xml.Xml_parser.parse text with
      | exception Natix_xml.Xml_parser.Error { line; col; msg } ->
        Error (Error.Parse (Printf.sprintf "%s:%d:%d: %s" name line col msg))
      | xml -> (
        match Document_manager.store_transactional dm ~name xml with
        | Ok _ -> Ok ()
        | Error _ as e -> e
        | exception Error.Error e -> Error e))
    (Array.of_list files)
