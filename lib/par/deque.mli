(** Bounded work-stealing deque.

    The owner pushes and pops at the bottom (LIFO, cache-friendly for the
    owner's own work); thieves steal from the top (FIFO, so they take the
    oldest — typically largest-granularity — task).  A small mutex guards
    the whole structure: task granularity in the parallel executor is a
    whole document, so the deque is touched a handful of times per task
    and a lock-free implementation would buy nothing measurable. *)

type 'a t

(** [create ~capacity] makes an empty deque holding at most [capacity]
    elements.  @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> 'a t

(** Owner end: [push t x] is [false] when the deque is full. *)
val push : 'a t -> 'a -> bool

(** Owner end: newest element, if any. *)
val pop : 'a t -> 'a option

(** Thief end: oldest element, if any.  Safe from any domain. *)
val steal : 'a t -> 'a option

val length : 'a t -> int
