(** Domain-parallel query and bulk-load execution.

    Work is partitioned {e by document}: each task (one document to
    query, scan, or load) goes to one of [jobs] worker domains via a
    bounded work-stealing {!Deque} (round-robin seeding, owner-LIFO /
    thief-FIFO), and results come back in task-submission order — an
    ordered merge, so output is document-order deterministic regardless
    of which domain ran what.

    Read-path workers share the process-wide buffer pool (latch-striped,
    see {!Natix_store.Buffer_pool}) but each gets a private
    {!Natix_core.Tree_store.reader} view — own decoded-record cache, no
    observer — because decoded records are mutable and must not be
    shared across domains.  For the same reason workers plan by
    navigation only (no element index: its postings carry physical
    node identity through the owning store's cache).

    I/O accounting: each worker domain accumulates into a private
    {!Natix_store.Io_stats} stream ({!Natix_store.Disk.with_stream});
    on join the streams are merged into the disk's default accumulator
    in worker-index order, so the merged float totals are deterministic
    for a fixed partition.  [reads], [writes] and [total_ios] are
    moreover {e schedule}-independent (every distinct page is read
    exactly once into the shared pool, concurrent misses coalesce on the
    frame latch), which is what the differential harness asserts across
    job counts.  [sim_ms] and the [sequential_*] figures depend on
    per-stream access adjacency and legitimately vary with [jobs].

    With [jobs <= 1] everything runs inline on the calling domain — no
    spawn, no parallel region, no stream — and is bit-identical to the
    pre-parallel code path. *)

(** Per-worker I/O accounting, reported after the join. *)
type worker_stats = { worker : int; io : Natix_store.Io_stats.t }

(** [results] and [task_io] in task-submission (document) order;
    [workers] in worker index order.  At [jobs <= 1] there is exactly
    one worker entry, holding the stats delta of the whole inline run.

    [task_io] is each task's exact I/O delta, measured by diffing the
    executing domain's accumulator around the task (a domain runs one
    task at a time, so nothing bleeds between tasks).  Per-task {e read}
    counts are schedule-dependent at [jobs >= 2] — whichever task
    touches a shared page first pays its miss — while their sum stays
    schedule-independent; treat them as attribution for monitoring, not
    as replayable figures. *)
type 'a outcome = {
  results : 'a list;
  task_io : Natix_store.Io_stats.t list;
  workers : worker_stats list;
}

(** [map_tasks ~jobs ~disk ~make_ctx ~f tasks] is the generic executor
    behind the entry points below, exported so other batch surfaces
    ({!Natix.Session.exec_batch}, the server's dispatcher tests) reuse
    the same partitioning, I/O accounting and determinism story instead
    of wiring their own domains.  [make_ctx] runs once per worker domain
    (build reader views and engines there — decoded records are mutable
    and must not cross domains); [f ctx task] runs each task.  Results
    come back in task-submission order with per-task I/O deltas.  At
    [jobs <= 1] everything runs inline on the calling domain,
    bit-identical to a hand-written loop.  A task that raises aborts the
    fleet: the first exception re-raises on the caller after all domains
    have joined and the per-domain streams are merged. *)
val map_tasks :
  jobs:int ->
  disk:Natix_store.Disk.t ->
  make_ctx:(unit -> 'ctx) ->
  f:('ctx -> 'task -> 'a) ->
  'task array ->
  'a outcome

(** [run_queries ~jobs store tasks] evaluates each [(doc, path)] task
    and renders every hit exactly as the CLI does (elements as XML via
    {!Natix_core.Exporter}, other nodes as their text).  Per-task
    failures (bad path syntax, unknown document) come back as [Error];
    storage-level exceptions abort the whole run. *)
val run_queries :
  ?jobs:int ->
  Natix_core.Tree_store.t ->
  (string * string) list ->
  (string list, Natix_core.Error.t) result outcome

(** [scan_all ~jobs store] traverses every document (sorted by name)
    with the pool in scan mode and returns [(doc, node_count)] per
    document. *)
val scan_all : ?jobs:int -> Natix_core.Tree_store.t -> (string * int) outcome

(** [load_files ~jobs dm files] parses each [(name, xml_text)] in
    parallel, then serialises store mutation through a single commit
    lock: each document goes through
    {!Natix_core.Document_manager.store_committed}, i.e. its own WAL
    batch commits (checkpoint) before the lock is released.  A crash
    mid-run therefore loses only documents whose commit had not
    completed; everything already committed recovers byte-identical.
    Parse and validation failures come back per-task as [Error]; a
    storage crash ({!Natix_store.Faulty_disk.Crash}) stops the fleet and
    re-raises after all workers have joined. *)
val load_files :
  ?jobs:int ->
  Natix_core.Document_manager.t ->
  (string * string) list ->
  (unit, Natix_core.Error.t) result outcome

(** [load_files_txn ~jobs dm files] is {!load_files} over transactional
    commits: no commit lock — each document commits as one ARIES
    transaction via
    {!Natix_core.Document_manager.store_transactional}, so workers
    overlap their commit waits and the group-commit daemon batches their
    fsyncs.  Same per-document atomicity under crash; a transaction
    failure poisons the store and the remaining tasks return typed
    [Error]s.  Requires a file-backed store with the WAL enabled. *)
val load_files_txn :
  ?jobs:int ->
  Natix_core.Document_manager.t ->
  (string * string) list ->
  (unit, Natix_core.Error.t) result outcome
