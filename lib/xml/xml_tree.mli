(** The logical data model (paper §2.2): ordered labelled trees.

    Non-leaf nodes carry a symbol from the element alphabet Σ_DTD; leaves
    carry arbitrary strings.  Attributes are kept on elements and are mapped
    by the storage layer to ["@name"]-labelled children (DESIGN.md §4). *)

type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

(** Total number of nodes, counting every element, every attribute and
    every text leaf (attributes count as one node each, matching how the
    storage layer materialises them). *)
val node_count : t -> int

(** Number of element nodes only. *)
val element_count : t -> int

(** Height of the tree (a single node has depth 1; attributes ignored). *)
val depth : t -> int

(** Concatenation of all text leaves, in document order. *)
val text_content : t -> string

(** Children elements with the given name. *)
val children_named : t -> string -> t list

(** First child element with the given name, if any. *)
val child_named : t -> string -> t option

val attr : t -> string -> string option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Pre-order fold over all nodes (elements and texts; attributes are not
    visited). *)
val fold_preorder : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Distinct element and attribute names, in first-occurrence order. *)
val names : t -> string list
