let escape_into buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape_into buf ~attr:true v;
      Buffer.add_char buf '"')
    attrs

let rec add_to_buffer buf = function
  | Xml_tree.Text s -> escape_into buf ~attr:false s
  | Xml_tree.Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.name;
    add_attrs buf e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_to_buffer buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.name;
      Buffer.add_char buf '>'
    end

let to_string ?(decl = false) t =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add_to_buffer buf t;
  Buffer.contents buf

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let rec go level node =
    match node with
    | Xml_tree.Text s ->
      pad level;
      escape_into buf ~attr:false s;
      Buffer.add_char buf '\n'
    | Xml_tree.Element e ->
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.name;
      add_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Xml_tree.Text s ] ->
        (* Single text child stays on one line. *)
        Buffer.add_char buf '>';
        escape_into buf ~attr:false s;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.name;
        Buffer.add_string buf ">\n"
      | children ->
        Buffer.add_string buf ">\n";
        List.iter (go (level + 1)) children;
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.name;
        Buffer.add_string buf ">\n")
  in
  go 0 t;
  Buffer.contents buf
