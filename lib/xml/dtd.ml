type content_spec =
  | Any
  | Empty
  | Pcdata_only
  | Children_of of string list
  | Mixed of string list

type t = {
  name : string;
  specs : (string, content_spec) Hashtbl.t;
  mutable order : string list;  (* reversed declaration order *)
}

let create ~name = { name; specs = Hashtbl.create 32; order = [] }
let name t = t.name

let declare t element spec =
  if not (Hashtbl.mem t.specs element) then t.order <- element :: t.order;
  Hashtbl.replace t.specs element spec

let spec_of t element = Hashtbl.find_opt t.specs element
let alphabet t = List.rev t.order

let infer ~name tree =
  let t = create ~name in
  (* Accumulate per-element observations: child element names, has_text,
     has_children. *)
  let observed : (string, (string, unit) Hashtbl.t * bool ref * bool ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let obs el =
    match Hashtbl.find_opt observed el with
    | Some o -> o
    | None ->
      let o = (Hashtbl.create 8, ref false, ref false) in
      Hashtbl.add observed el o;
      t.order <- el :: t.order;
      o
  in
  let rec go = function
    | Xml_tree.Text _ -> ()
    | Xml_tree.Element e ->
      let children, has_text, has_elems = obs e.name in
      List.iter
        (function
          | Xml_tree.Text _ -> has_text := true
          | Xml_tree.Element c ->
            has_elems := true;
            Hashtbl.replace children c.name ())
        e.children;
      List.iter go e.children
  in
  go tree;
  List.iter
    (fun el ->
      let children, has_text, has_elems = Hashtbl.find observed el in
      let child_names = Hashtbl.fold (fun k () acc -> k :: acc) children [] in
      let child_names = List.sort String.compare child_names in
      let spec =
        match (!has_text, !has_elems) with
        | false, false -> Empty
        | true, false -> Pcdata_only
        | false, true -> Children_of child_names
        | true, true -> Mixed child_names
      in
      Hashtbl.replace t.specs el spec)
    (alphabet t);
  t

let validate t tree =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let allowed names child = List.mem child names in
  let rec go = function
    | Xml_tree.Text _ -> ()
    | Xml_tree.Element e ->
      (match spec_of t e.name with
      | None -> fail "undeclared element <%s>" e.name
      | Some Any -> ()
      | Some Empty -> if e.children <> [] then fail "<%s> must be empty" e.name
      | Some Pcdata_only ->
        List.iter
          (function
            | Xml_tree.Text _ -> ()
            | Xml_tree.Element c -> fail "<%s> allows only text, found <%s>" e.name c.name)
          e.children
      | Some (Children_of names) ->
        List.iter
          (function
            | Xml_tree.Text _ -> fail "<%s> does not allow text content" e.name
            | Xml_tree.Element c ->
              if not (allowed names c.name) then
                fail "<%s> does not allow child <%s>" e.name c.name)
          e.children
      | Some (Mixed names) ->
        List.iter
          (function
            | Xml_tree.Text _ -> ()
            | Xml_tree.Element c ->
              if not (allowed names c.name) then
                fail "<%s> does not allow child <%s>" e.name c.name)
          e.children);
      List.iter go e.children
  in
  match go tree with
  | () -> Ok ()
  | exception Bad msg -> Error msg

(* Line-oriented serialization: first line is the DTD name, then one
   "element<TAB>spec" line per declaration, in declaration order. *)
let encode t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.name;
  List.iter
    (fun el ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf el;
      Buffer.add_char buf '\t';
      match Hashtbl.find t.specs el with
      | Any -> Buffer.add_char buf 'A'
      | Empty -> Buffer.add_char buf 'E'
      | Pcdata_only -> Buffer.add_char buf 'P'
      | Children_of names ->
        Buffer.add_string buf "C:";
        Buffer.add_string buf (String.concat "," names)
      | Mixed names ->
        Buffer.add_string buf "M:";
        Buffer.add_string buf (String.concat "," names))
    (alphabet t);
  Buffer.contents buf

let decode s =
  match String.split_on_char '\n' s with
  | [] -> invalid_arg "Dtd.decode: empty input"
  | name :: lines ->
    let t = create ~name in
    List.iter
      (fun line ->
        if line <> "" then begin
          match String.index_opt line '\t' with
          | None -> invalid_arg "Dtd.decode: malformed line"
          | Some tab ->
            let el = String.sub line 0 tab in
            let spec = String.sub line (tab + 1) (String.length line - tab - 1) in
            let names payload =
              if payload = "" then [] else String.split_on_char ',' payload
            in
            let parsed =
              match spec with
              | "A" -> Any
              | "E" -> Empty
              | "P" -> Pcdata_only
              | _ when String.length spec >= 2 && spec.[0] = 'C' && spec.[1] = ':' ->
                Children_of (names (String.sub spec 2 (String.length spec - 2)))
              | _ when String.length spec >= 2 && spec.[0] = 'M' && spec.[1] = ':' ->
                Mixed (names (String.sub spec 2 (String.length spec - 2)))
              | other -> invalid_arg ("Dtd.decode: bad spec " ^ other)
            in
            declare t el parsed
        end)
      lines;
    t
