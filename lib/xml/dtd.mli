(** Minimal document-type support.

    The paper uses the DTD only "as a way of specifying the node alphabet
    Σ_DTD", with optional constraints on how labels combine (§2.2).  This
    module provides exactly that: a named alphabet of element declarations,
    each optionally constraining which child element names and text content
    are allowed, plus a structural validator used by the document manager
    ("document validation in the XML world", §2.1). *)

type content_spec =
  | Any  (** any children *)
  | Empty  (** no children at all *)
  | Pcdata_only  (** text children only *)
  | Children_of of string list  (** element children drawn from this set; no text *)
  | Mixed of string list  (** text plus element children drawn from this set *)

type t

val create : name:string -> t
val name : t -> string

(** [declare t element spec] declares (or re-declares) an element. *)
val declare : t -> string -> content_spec -> unit

val spec_of : t -> string -> content_spec option

(** All declared element names, in declaration order. *)
val alphabet : t -> string list

(** [infer ~name tree] builds a DTD whose alphabet is the tree's and whose
    specs are the loosest consistent with it ({!Mixed} of observed child
    names, or {!Pcdata_only}/{!Empty} where applicable). *)
val infer : name:string -> Xml_tree.t -> t

(** [validate t tree] checks every element against its spec.  Undeclared
    elements are errors.  Returns [Ok ()] or [Error message] describing the
    first violation. *)
val validate : t -> Xml_tree.t -> (unit, string) result

(** Serialization (used to persist DTDs in a store catalog). *)

val encode : t -> string

val decode : string -> t
