(** SAX-style parsing events. *)

type t =
  | Start_element of { name : string; attrs : (string * string) list }
  | End_element of string
  | Text of string  (** character data, entities already resolved *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
