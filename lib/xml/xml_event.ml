type t =
  | Start_element of { name : string; attrs : (string * string) list }
  | End_element of string
  | Text of string

let pp ppf = function
  | Start_element { name; attrs } ->
    Format.fprintf ppf "<%s%a>" name
      (fun ppf -> List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v))
      attrs
  | End_element name -> Format.fprintf ppf "</%s>" name
  | Text s -> Format.fprintf ppf "%S" s

let equal a b =
  match (a, b) with
  | Start_element x, Start_element y -> x.name = y.name && x.attrs = y.attrs
  | End_element x, End_element y -> String.equal x y
  | Text x, Text y -> String.equal x y
  | (Start_element _ | End_element _ | Text _), _ -> false
