(** Tokenizer for XML documents.

    A from-scratch, non-validating scanner covering the constructs needed to
    store real document corpora: elements, attributes (single- or
    double-quoted), character data, CDATA sections, comments, processing
    instructions, the XML declaration, DOCTYPE (skipped, including an
    internal subset), the five predefined entities and numeric character
    references.  Comments, PIs and DOCTYPE produce no events. *)

exception Error of { line : int; col : int; msg : string }

type t

val of_string : string -> t

(** Next event, or [None] at end of input. *)
val next : t -> Xml_event.t option

(** Drain the input into an event list. *)
val all : string -> Xml_event.t list
