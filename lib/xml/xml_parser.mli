(** Tree-building XML parser: turns a document string into an
    {!Xml_tree.t}, checking well-formedness (matching tags, single root).

    [keep_ws] controls whether whitespace-only text nodes between elements
    are preserved; they are dropped by default, matching how a document
    repository stores structural markup. *)

exception Error of { line : int; col : int; msg : string }

val parse : ?keep_ws:bool -> string -> Xml_tree.t

(** [parse_file path] reads and parses a whole file. *)
val parse_file : ?keep_ws:bool -> string -> Xml_tree.t
