(** Serialization of logical trees back to XML text (the paper's
    "reconstruction of a textual representation"). *)

(** [to_string ?decl t] renders [t] as compact XML (no inserted
    whitespace); [decl] prepends an XML declaration (default false). *)
val to_string : ?decl:bool -> Xml_tree.t -> string

(** Pretty-printed rendering with the given indent width (default 2).
    Note: indentation inserts whitespace text, so [parse ~keep_ws:true]
    of the output is not identical to the input tree. *)
val to_string_pretty : ?indent:int -> Xml_tree.t -> string

val add_to_buffer : Buffer.t -> Xml_tree.t -> unit

(** Escape character data ([&], [<], [>]). *)
val escape_text : string -> string

(** Escape an attribute value (ampersand, less-than, double quote). *)
val escape_attr : string -> string
