type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s

let rec node_count = function
  | Text _ -> 1
  | Element e -> 1 + List.length e.attrs + List.fold_left (fun n c -> n + node_count c) 0 e.children

let rec element_count = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun n c -> n + element_count c) 0 e.children

let rec depth = function
  | Text _ -> 1
  | Element e -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 e.children

let text_content t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter go e.children
  in
  go t;
  Buffer.contents buf

let children_named t name =
  match t with
  | Text _ -> []
  | Element e ->
    List.filter
      (function Element { name = n; _ } -> String.equal n name | Text _ -> false)
      e.children

let child_named t name =
  match children_named t name with
  | [] -> None
  | c :: _ -> Some c

let attr t name =
  match t with
  | Text _ -> None
  | Element e -> List.assoc_opt name e.attrs

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.name y.name
    && List.length x.attrs = List.length y.attrs
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && String.equal v v') x.attrs y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

let rec fold_preorder f acc t =
  let acc = f acc t in
  match t with
  | Text _ -> acc
  | Element e -> List.fold_left (fold_preorder f) acc e.children

let names t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  let rec go = function
    | Text _ -> ()
    | Element e ->
      add e.name;
      List.iter (fun (k, _) -> add ("@" ^ k)) e.attrs;
      List.iter go e.children
  in
  go t;
  List.rev !out

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element e ->
    Format.fprintf ppf "@[<hv 2>%s%a(%a)@]" e.name
      (fun ppf attrs ->
        List.iter (fun (k, v) -> Format.fprintf ppf "[@%s=%S]" k v) attrs)
      e.attrs
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      e.children
