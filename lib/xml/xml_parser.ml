exception Error of { line : int; col : int; msg : string }

let err ?(line = 0) ?(col = 0) msg = raise (Error { line; col; msg })

let is_all_ws s =
  let ok = ref true in
  String.iter (function ' ' | '\t' | '\n' | '\r' -> () | _ -> ok := false) s;
  !ok

let parse ?(keep_ws = false) input =
  let lexer = Xml_lexer.of_string input in
  let next () =
    try Xml_lexer.next lexer
    with Xml_lexer.Error { line; col; msg } -> raise (Error { line; col; msg })
  in
  (* Stack of open elements: (name, attrs, reversed children). *)
  let rec loop stack roots =
    match next () with
    | None -> begin
      match stack with
      | [] -> begin
        match roots with
        | [ root ] -> root
        | [] -> err "empty document"
        | _ -> err "multiple root elements"
      end
      | (name, _, _) :: _ -> err (Printf.sprintf "unclosed element <%s>" name)
    end
    | Some (Xml_event.Start_element { name; attrs }) -> loop ((name, attrs, []) :: stack) roots
    | Some (Xml_event.End_element name) -> begin
      match stack with
      | [] -> err (Printf.sprintf "unexpected </%s>" name)
      | (open_name, attrs, rev_children) :: rest ->
        if not (String.equal open_name name) then
          err (Printf.sprintf "mismatched tags: <%s> closed by </%s>" open_name name);
        let node = Xml_tree.element ~attrs name (List.rev rev_children) in
        (match rest with
        | [] -> loop [] (node :: roots)
        | (pn, pa, pc) :: up -> loop ((pn, pa, node :: pc) :: up) roots)
    end
    | Some (Xml_event.Text s) -> begin
      match stack with
      | [] ->
        if is_all_ws s then loop stack roots else err "character data outside the root element"
      | (name, attrs, children) :: rest ->
        if (not keep_ws) && is_all_ws s then loop stack roots
        else loop ((name, attrs, Xml_tree.text s :: children) :: rest) roots
    end
  in
  loop [] []

let parse_file ?keep_ws path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ?keep_ws content
