exception Error of { line : int; col : int; msg : string }

type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* position just after the last newline *)
  buf : Buffer.t;  (* scratch for text accumulation *)
  mutable pending_end : string option;  (* synthesised end of a self-closing tag *)
}

let of_string input =
  { input; pos = 0; line = 1; bol = 0; buf = Buffer.create 256; pending_end = None }
let len t = String.length t.input
let eof t = t.pos >= len t

let error t msg = raise (Error { line = t.line; col = t.pos - t.bol + 1; msg })

let peek t = if eof t then '\000' else t.input.[t.pos]

let advance t =
  if peek t = '\n' then begin
    t.line <- t.line + 1;
    t.bol <- t.pos + 1
  end;
  t.pos <- t.pos + 1

let next_char t =
  if eof t then error t "unexpected end of input";
  let c = peek t in
  advance t;
  c

let expect t c =
  let got = next_char t in
  if got <> c then error t (Printf.sprintf "expected %C, got %C" c got)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws t =
  while (not (eof t)) && is_ws (peek t) do
    advance t
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let name t =
  if not (is_name_start (peek t)) then error t "expected a name";
  let start = t.pos in
  while (not (eof t)) && is_name_char (peek t) do
    advance t
  done;
  String.sub t.input start (t.pos - start)

(* Resolve an entity or character reference; the leading '&' is consumed. *)
let reference t =
  if peek t = '#' then begin
    advance t;
    let hex = peek t = 'x' in
    if hex then advance t;
    let start = t.pos in
    while peek t <> ';' && not (eof t) do
      advance t
    done;
    let digits = String.sub t.input start (t.pos - start) in
    expect t ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> error t "malformed character reference"
    in
    (* Encode the code point as UTF-8. *)
    let b = Buffer.create 4 in
    (try Buffer.add_utf_8_uchar b (Uchar.of_int code)
     with Invalid_argument _ -> error t "character reference out of range");
    Buffer.contents b
  end
  else begin
    let n = name t in
    expect t ';';
    match n with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> error t (Printf.sprintf "unknown entity &%s;" other)
  end

let attr_value t =
  let quote = next_char t in
  if quote <> '"' && quote <> '\'' then error t "expected quoted attribute value";
  Buffer.clear t.buf;
  let rec loop () =
    let c = next_char t in
    if c = quote then Buffer.contents t.buf
    else if c = '&' then begin
      Buffer.add_string t.buf (reference t);
      loop ()
    end
    else if c = '<' then error t "'<' in attribute value"
    else begin
      Buffer.add_char t.buf c;
      loop ()
    end
  in
  loop ()

let attributes t =
  let rec loop acc =
    skip_ws t;
    match peek t with
    | '>' | '/' | '?' -> List.rev acc
    | _ ->
      let n = name t in
      skip_ws t;
      expect t '=';
      skip_ws t;
      let v = attr_value t in
      loop ((n, v) :: acc)
  in
  loop []

let skip_comment t =
  (* "<!--" already consumed *)
  let rec loop () =
    if next_char t = '-' && peek t = '-' then begin
      advance t;
      expect t '>'
    end
    else loop ()
  in
  loop ()

let skip_pi t =
  (* "<?" and the target already consumed *)
  let rec loop () = if next_char t = '?' && peek t = '>' then advance t else loop () in
  loop ()

let skip_doctype t =
  (* "<!DOCTYPE" already consumed; skip to the matching '>', allowing one
     level of internal subset brackets. *)
  let rec loop depth =
    match next_char t with
    | '[' -> loop (depth + 1)
    | ']' -> loop (depth - 1)
    | '>' when depth = 0 -> ()
    | '"' | '\'' ->
      (* quoted literal inside the declaration *)
      loop depth
    | _ -> loop depth
  in
  loop 0

let cdata t =
  (* "<![CDATA[" already consumed *)
  let start = t.pos in
  let rec find () =
    if t.pos + 2 >= len t then error t "unterminated CDATA section"
    else if t.input.[t.pos] = ']' && t.input.[t.pos + 1] = ']' && t.input.[t.pos + 2] = '>' then begin
      let s = String.sub t.input start (t.pos - start) in
      advance t;
      advance t;
      advance t;
      s
    end
    else begin
      advance t;
      find ()
    end
  in
  find ()

(* Character data up to the next '<'; resolves references.  Returns [None]
   for empty runs. *)
let char_data t =
  Buffer.clear t.buf;
  let rec loop () =
    if eof t || peek t = '<' then ()
    else if peek t = '&' then begin
      advance t;
      Buffer.add_string t.buf (reference t);
      loop ()
    end
    else begin
      Buffer.add_char t.buf (next_char t);
      loop ()
    end
  in
  loop ();
  if Buffer.length t.buf = 0 then None else Some (Buffer.contents t.buf)

let rec scan t : Xml_event.t option =
  if eof t then None
  else if peek t = '<' then begin
    advance t;
    match peek t with
    | '/' ->
      advance t;
      let n = name t in
      skip_ws t;
      expect t '>';
      Some (Xml_event.End_element n)
    | '?' ->
      advance t;
      let _target = name t in
      skip_pi t;
      scan t
    | '!' ->
      advance t;
      if t.pos + 1 < len t && t.input.[t.pos] = '-' && t.input.[t.pos + 1] = '-' then begin
        advance t;
        advance t;
        skip_comment t;
        scan t
      end
      else if t.pos + 6 < len t && String.sub t.input t.pos 7 = "[CDATA[" then begin
        for _ = 1 to 7 do
          advance t
        done;
        Some (Xml_event.Text (cdata t))
      end
      else begin
        let kw = name t in
        if kw = "DOCTYPE" then begin
          skip_doctype t;
          scan t
        end
        else error t (Printf.sprintf "unsupported declaration <!%s" kw)
      end
    | _ ->
      let n = name t in
      let attrs = attributes t in
      skip_ws t;
      if peek t = '/' then begin
        advance t;
        expect t '>';
        (* Self-closing: synthesise the end event on the next call. *)
        t.pending_end <- Some n;
        Some (Xml_event.Start_element { name = n; attrs })
      end
      else begin
        expect t '>';
        Some (Xml_event.Start_element { name = n; attrs })
      end
  end
  else
    match char_data t with
    | Some s -> Some (Xml_event.Text s)
    | None -> scan t

let next t =
  match t.pending_end with
  | Some n ->
    t.pending_end <- None;
    Some (Xml_event.End_element n)
  | None -> scan t

let all input =
  let t = of_string input in
  let rec loop acc =
    match next t with
    | None -> List.rev acc
    | Some e -> loop (e :: acc)
  in
  loop []
