(** Page-granular persistent store.

    A disk is a growable array of equal-sized pages.  Two backends are
    provided: a purely in-memory one (used by tests and benchmarks) and a
    file-backed one (used by the CLI for real persistence).  Both charge
    every page access to an {!Io_model} and record it in {!Io_stats}; the
    in-memory backend therefore behaves, for measurement purposes, like the
    paper's raw disk with no operating-system buffering. *)

type t

val in_memory : ?model:Io_model.t -> ?obs:Natix_obs.Obs.t -> page_size:int -> unit -> t

(** [on_file ~page_size path] opens (or creates) a file-backed disk.  The
    page size must match the one the file was created with; a fresh file is
    initialised with a small superblock recording it. *)
val on_file : ?model:Io_model.t -> ?obs:Natix_obs.Obs.t -> page_size:int -> string -> t

(** Observability handle; every page transfer emits an [Io] event through
    it.  [set_obs] also binds the handle's clock to this disk's simulated
    [sim_ms] accumulator, so traces are timestamped on the I/O model's
    clock.  Layers above (buffer pool, segment, record manager) pick the
    handle up from here at creation time. *)
val set_obs : t -> Natix_obs.Obs.t option -> unit

val obs : t -> Natix_obs.Obs.t option

(** Page size recorded in an existing disk file's superblock, if the file
    exists and is a natix disk. *)
val detect_page_size : string -> int option

val page_size : t -> int

(** Number of allocated pages. *)
val page_count : t -> int

(** [allocate t] appends a zeroed page and returns its id. *)
val allocate : t -> int

(** [read t page buf] fills [buf] (of length [page_size]) with the page's
    contents. *)
val read : t -> int -> bytes -> unit

(** [write t page buf] persists [buf] as the page's contents. *)
val write : t -> int -> bytes -> unit

val stats : t -> Io_stats.t

(** Total bytes occupied on disk ([page_count * page_size]). *)
val size_bytes : t -> int

val close : t -> unit
