(** Page-granular persistent store.

    A disk is a growable array of equal-sized pages.  Two backends are
    provided: a purely in-memory one (used by tests and benchmarks) and a
    file-backed one (used by the CLI for real persistence).  Both charge
    every page access to an {!Io_model} and record it in {!Io_stats}; the
    in-memory backend therefore behaves, for measurement purposes, like the
    paper's raw disk with no operating-system buffering.

    {b Page integrity.}  The last {!trailer_size} bytes of every physical
    page hold a trailer (CRC-32 checksum, write LSN, page id) maintained by
    {!write} and verified by {!read}; layers above the disk only ever see
    the remaining {!payload_size} bytes.  The in-memory backend reserves
    the same trailer space (so capacities match the file backend) without
    materialising it.  A checksum or page-id mismatch, a torn page, or a
    corrupt superblock raises {!Bad_page}. *)

(** Raised when a page (or, with [page = -1], the superblock) fails
    verification: checksum mismatch, wrong page-id stamp, short read/write,
    or an unusable superblock. *)
exception Bad_page of { page : int; reason : string }

(** Bytes of each physical page reserved for the integrity trailer. *)
val trailer_size : int

type t

val in_memory : ?model:Io_model.t -> ?obs:Natix_obs.Obs.t -> page_size:int -> unit -> t

(** [on_file ~page_size path] opens (or creates) a file-backed disk.  The
    page size must match the one the file was created with; a fresh file is
    initialised with a small superblock recording it.
    @raise Bad_page when the file exists but its superblock is truncated,
    has the wrong magic or layout version, or records a different page
    size. *)
val on_file : ?model:Io_model.t -> ?obs:Natix_obs.Obs.t -> page_size:int -> string -> t

(** Observability handle; every page transfer emits an [Io] event through
    it.  [set_obs] also binds the handle's clock to this disk's simulated
    [sim_ms] accumulator, so traces are timestamped on the I/O model's
    clock.  Layers above (buffer pool, segment, record manager) pick the
    handle up from here at creation time. *)
val set_obs : t -> Natix_obs.Obs.t option -> unit

val obs : t -> Natix_obs.Obs.t option

(** Attach (or detach) a fault-injection plan.  When present, every page
    write and read consults it; see {!Faulty_disk}. *)
val set_faults : t -> Faulty_disk.t option -> unit

val faults : t -> Faulty_disk.t option

(** Page size recorded in an existing disk file's superblock.  Total:
    returns [None] — never raises — when the file is missing or unreadable,
    shorter than the superblock, not a natix disk (bad magic or layout
    version), or records an absurd page size. *)
val detect_page_size : string -> int option

(** Physical page size (trailer included). *)
val page_size : t -> int

(** Usable bytes per page ([page_size - trailer_size]); the buffer size
    {!read} and {!write} operate on. *)
val payload_size : t -> int

(** Backing file path; [None] for the in-memory backend. *)
val path : t -> string option

(** Number of allocated pages. *)
val page_count : t -> int

(** [allocate t] appends a zeroed page and returns its id. *)
val allocate : t -> int

(** [read t page buf] fills [buf] (of length {!payload_size}) with the
    page's contents after verifying the trailer.
    @raise Bad_page on checksum/page-id mismatch or a short read.
    @raise Faulty_disk.Read_error when an attached fault plan fails the
    read transiently (the buffer pool retries these). *)
val read : t -> int -> bytes -> unit

(** [write t page buf] persists [buf] (of length {!payload_size}) as the
    page's contents, sealing a fresh trailer.  [lsn] overrides the stamp
    (recovery replaying a logged image stamps the record's own LSN so the
    pass is idempotent); by default a fresh LSN is drawn.
    @raise Faulty_disk.Crash when an attached fault plan kills this write
    (possibly tearing the page). *)
val write : ?lsn:int -> t -> int -> bytes -> unit

(** [read_run t ~first bufs] reads the physically contiguous run of pages
    [first, first + 1, ...] into the payload buffers [bufs], in ascending
    order so the I/O model charges one random access plus sequential
    transfers ({!Io_model.run_cost}).  Returns the number of pages read:
    the run ends early (without raising) at the first page that fails
    verification or is killed by a fault plan, because a speculative batch
    must never fail the demand access that triggered it.  When
    [speculative] (default [true]) each page read is also counted in
    [Io_stats.read_ahead_pages]. *)
val read_run : t -> first:int -> ?speculative:bool -> bytes list -> int

(** {2 Raw access — WAL and recovery only}

    Whole physical pages, trailer included, with no checksum verification
    and no fault injection: the WAL captures exact pre-images (torn or
    not), and recovery puts them back verbatim. *)

(** [read_raw t page buf] fills [buf] (of length {!page_size}) with the
    raw page image. *)
val read_raw : t -> int -> bytes -> unit

(** [write_raw t page buf] writes a raw page image back, preserving its
    embedded trailer. *)
val write_raw : t -> int -> bytes -> unit

(** Verify one page's trailer without raising; [Ok ()] always for the
    in-memory backend.  Used by [natix fsck]. *)
val verify : t -> int -> (unit, string) result

(** [image_lsn t ~page buf] is the trailer LSN of a raw physical image
    ([read_raw] output), or [-1] when the trailer fails verification — a
    torn page carries no trustworthy stamp, so redo applies
    unconditionally. *)
val image_lsn : t -> page:int -> bytes -> int

(** [set_page_count t n] shrinks the disk to [n] pages (recovery rolling
    back allocations of an uncommitted batch).  The file backend truncates
    the backing file and rewrites the superblock.
    @raise Invalid_argument when [n] exceeds the current page count. *)
val set_page_count : t -> int -> unit

(** The disk's {e default} I/O accumulator.  Outside a parallel region
    every access is charged here; inside one, worker domains that
    registered a stream with {!with_stream} charge their own accumulator
    instead, and the executor merges those back into this record (in
    worker-index order) when the region ends. *)
val stats : t -> Io_stats.t

(** [charge_sync_ms t ms] adds [ms] of simulated wall-time to the default
    accumulator without counting a page transfer — the group-commit
    daemon's commit-delay window. *)
val charge_sync_ms : t -> float -> unit

(** The accumulator the {e calling domain} is charging right now: its
    registered stream inside a parallel region, the default {!stats}
    otherwise.  An executor can attribute I/O to individual tasks by
    diffing this around each task — exact, because a task runs on one
    domain and a domain runs one task at a time. *)
val active_stats : t -> Io_stats.t

(** {2 Parallel regions}

    The disk is internally serialised by a single latch (shared file
    descriptor, scratch buffer and LSN counter), so concurrent domains are
    safe; these entry points additionally give each worker its own
    {!Io_stats} accumulator with independent sequential-access detection.
    The refcount is what {!Buffer_pool.reset_stats} and
    [Tree_store.reset_io_stats] consult to reject counter resets that
    would race with active workers. *)

(** Mark the start of a parallel region (refcounted; nestable). *)
val enter_parallel_region : t -> unit

(** Mark the end of a parallel region.
    @raise Invalid_argument when no region is active. *)
val exit_parallel_region : t -> unit

val in_parallel_region : t -> bool

(** [with_stream t f] registers a private accumulator for the {e calling
    domain}, runs [f] (all charges from this domain inside an active
    parallel region land in the private stream), unregisters it, and
    returns [f]'s result together with the accumulated stats.  Streams
    only take effect inside a region — outside one, charges always hit the
    default {!stats}, keeping single-domain behaviour bit-identical. *)
val with_stream : t -> (unit -> 'a) -> 'a * Io_stats.t

(** The cost model page accesses are charged to (used by the query planner
    to price candidate access paths in the same currency). *)
val model : t -> Io_model.t

(** Total bytes occupied on disk ([page_count * page_size]). *)
val size_bytes : t -> int

val close : t -> unit
