(* Three-pass ARIES-style recovery: analysis, redo, undo.

   The log file always starts at the most recent checkpoint (Wal.checkpoint
   truncates it), so the redo scan begins at the file's first record.

   Analysis walks the longest CRC-valid prefix of the log, truncating any
   torn tail, and classifies every transaction: committed (a Commit record
   is durable), ended (fully undone by a previous recovery attempt), or a
   loser.  Redo repeats history: every Update and Clr after-image whose LSN
   is newer than the page's trailer stamp is replayed, stamping the
   record's own LSN so the pass is idempotent.  Undo rolls the losers back
   newest-first along their prev_lsn chains, writing a compensation record
   (CLR, carrying the restored image and an undo-next pointer) before each
   page restore — WAL-before-data holds during recovery too — and an End
   record once a loser's Begin is reached.  A crash at any point during
   recovery leaves a log the next recovery handles: CLRs are redone like
   updates, and undo resumes from the last CLR's undo-next pointer.

   The LSN sequence handed to the next incarnation ([report.next_lsn])
   must dominate every LSN a data-page trailer may carry, or redo's
   [page_lsn < record_lsn] comparison would silently skip replay of new
   records.  Parsed records alone cannot guarantee that: a crash right
   after a checkpoint truncation (or during the fresh log's first flush)
   leaves a log with no records while trailers still carry LSNs from the
   previous incarnation.  So the WAL header persists a next-LSN
   high-water mark, rewritten at every truncation point, and recovery
   seeds the sequence from [max (log max LSN + 1) mark]; if the header
   itself is unreadable, the fallback is a scan of every data-page
   trailer on the disk. *)

type report = {
  ran : bool;
  clean : bool;
  redone : int;
  undone : int;
  losers : int;
  torn_bytes : int;
  page_count : int;
  next_lsn : int;
}

let no_op disk =
  {
    ran = false;
    clean = true;
    redone = 0;
    undone = 0;
    losers = 0;
    torn_bytes = 0;
    page_count = Disk.page_count disk;
    next_lsn = 1;
  }

let wal_path store_path = store_path ^ ".wal"

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = Unix.((fstat fd).st_size) in
      let buf = Bytes.create size in
      let rec fill off =
        if off < size then begin
          let n = Unix.read fd buf off (size - off) in
          if n = 0 then Bytes.sub buf 0 off else fill (off + n)
        end
        else buf
      in
      fill 0)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

(* Highest LSN stamped on any data-page trailer — the fallback seed for
   the LSN sequence when the log's header (and with it the persisted
   high-water mark) is unreadable.  Pages whose trailer fails its
   checksum contribute nothing: a torn page never completed the write
   that would have stamped a newer LSN. *)
let max_page_lsn disk =
  let buf = Bytes.create (Disk.page_size disk) in
  let m = ref 0 in
  for page = 0 to Disk.page_count disk - 1 do
    Disk.read_raw disk page buf;
    let lsn = Disk.image_lsn disk ~page buf in
    if lsn > !m then m := lsn
  done;
  !m

(* Parse the longest valid prefix; returns the records in log order and
   the offset where validity ends. *)
let parse buf =
  let records = ref [] in
  let off = ref Wal.header_size in
  let stop = ref false in
  while not !stop do
    match Wal.decode buf ~off:!off with
    | None -> stop := true
    | Some r ->
      records := r :: !records;
      off := r.Wal.next
  done;
  (List.rev !records, !off)

(* Per-transaction analysis state.  [cursor] is the LSN of the next record
   to examine when undoing: each Update moves it forward, each CLR snaps
   it back past the record that CLR already compensated. *)
type txn_state = {
  mutable committed : bool;
  mutable ended : bool;
  mutable cursor : int;
  mutable touched : bool;  (* logged at least one Update/Clr: real work to undo *)
}

(* Append one record to the log during undo, consulting the fault plan so
   crash-point sweeps cover recovery's own writes (a torn CLR at the tail
   is exactly what the next recovery's parser truncates). *)
let append_record fd ~faults buf =
  let total = Bytes.length buf in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let full () =
    if Unix.write fd buf 0 total <> total then failwith "Recovery: short log append"
  in
  match faults with
  | None -> full ()
  | Some plan -> (
    match Faulty_disk.on_write plan with
    | `Ok -> full ()
    | `Crash_lost -> raise Faulty_disk.Crash
    | `Crash_torn frac ->
      let keep = max 1 (min (total - 1) (int_of_float (frac *. float_of_int total))) in
      ignore (Unix.write fd buf 0 keep);
      raise Faulty_disk.Crash)

let run ?obs disk =
  match Disk.path disk with
  | None -> no_op disk
  | Some store_path ->
    let wal = wal_path store_path in
    if not (Sys.file_exists wal) then no_op disk
    else begin
      let buf = read_file wal in
      let size = Bytes.length buf in
      let page_size = Disk.page_size disk in
      let payload_size = page_size - Disk.trailer_size in
      let header_ok =
        size >= Wal.header_size
        && Natix_util.Bytes_util.get_u32 buf 0 = Wal.magic
        && Natix_util.Bytes_util.get_u16 buf 4 = Wal.version
        && Natix_util.Bytes_util.get_u32 buf 8 = page_size
      in
      (* Highest LSN possibly in use before this crash: the header's
         high-water mark (it stores the next LSN to assign), or — when the
         header itself is torn or from a foreign format — whatever the
         data-page trailers say. *)
      let lsn_floor =
        if header_ok then max 0 (Natix_util.Bytes_util.get_u48 buf 12 - 1)
        else max_page_lsn disk
      in
      let records, valid_end = if header_ok then parse buf else ([], 0) in
      let torn_bytes = size - valid_end in
      if torn_bytes > 0 then begin
        (* Torn-tail hardening: drop the invalid suffix rather than fail —
           WAL-before-data means a record torn mid-flush never covered a
           completed data write. *)
        truncate_file wal (max valid_end 0);
        match obs with
        | None -> ()
        | Some o ->
          Natix_obs.Obs.emit o (Natix_obs.Event.Wal_torn { offset = valid_end; dropped = torn_bytes })
      end;
      (* --- Analysis --- *)
      let txns : (int, txn_state) Hashtbl.t = Hashtbl.create 8 in
      let by_lsn : (int, Wal.record) Hashtbl.t = Hashtbl.create 64 in
      let max_lsn = ref 0 in
      let last_commit_pc = ref None in
      let first_begin_base = ref None in
      List.iter
        (fun (r : Wal.record) ->
          if r.lsn > !max_lsn then max_lsn := r.lsn;
          Hashtbl.replace by_lsn r.lsn r;
          let state =
            match Hashtbl.find_opt txns r.txn with
            | Some s -> s
            | None ->
              let s = { committed = false; ended = false; cursor = 0; touched = false } in
              Hashtbl.add txns r.txn s;
              s
          in
          match r.kind with
          | k when k = Wal.kind_begin ->
            if !first_begin_base = None then first_begin_base := Some r.arg;
            state.cursor <- r.lsn
          | k when k = Wal.kind_update ->
            state.cursor <- r.lsn;
            state.touched <- true
          | k when k = Wal.kind_commit ->
            state.committed <- true;
            last_commit_pc := Some r.arg
          | k when k = Wal.kind_clr ->
            state.cursor <- r.prev_lsn;
            state.touched <- true
          | k when k = Wal.kind_end -> state.ended <- true
          | _ -> ())
        records;
      (* --- Redo: repeat history --- *)
      let redone = ref 0 in
      let scratch = Bytes.create page_size in
      let redo_image ~lsn ~page image =
        if page >= 0 && page < Disk.page_count disk && Bytes.length image = payload_size
        then begin
          Disk.read_raw disk page scratch;
          if Disk.image_lsn disk ~page scratch < lsn then begin
            Disk.write ~lsn disk page image;
            incr redone;
            match obs with
            | None -> ()
            | Some o -> Natix_obs.Obs.emit o (Natix_obs.Event.Recovery_redo { page })
          end
        end
      in
      List.iter
        (fun (r : Wal.record) ->
          if r.kind = Wal.kind_update then begin
            if Bytes.length r.payload = 2 * payload_size then
              redo_image ~lsn:r.lsn ~page:r.arg (Bytes.sub r.payload payload_size payload_size)
          end
          else if r.kind = Wal.kind_clr then redo_image ~lsn:r.lsn ~page:r.arg r.payload)
        records;
      (* --- Undo the losers, newest record first across transactions --- *)
      let losers = ref [] in
      (* A Begin with no logged work (the fresh implicit batch a clean
         shutdown leaves behind) needs no undo and is not a loser. *)
      Hashtbl.iter
        (fun txn s ->
          if (not s.committed) && (not s.ended) && s.touched then losers := (txn, s) :: !losers)
        txns;
      let loser_count = List.length !losers in
      let undone = ref 0 in
      let next_lsn = ref (max !max_lsn lsn_floor + 1) in
      if loser_count > 0 then begin
        let fd = Unix.openfile wal [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let faults = Disk.faults disk in
            let fresh_lsn () =
              let l = !next_lsn in
              next_lsn := l + 1;
              l
            in
            let active = ref !losers in
            while !active <> [] do
              (* The loser whose cursor is newest undoes next, so restores
                 land in exact reverse order of mutation history. *)
              let (txn, s), rest =
                match
                  List.sort (fun ((_, a) : int * txn_state) (_, b) -> compare b.cursor a.cursor) !active
                with
                | x :: r -> (x, r)
                | [] -> assert false
              in
              match Hashtbl.find_opt by_lsn s.cursor with
              | None ->
                (* Chain exhausted (cursor 0 or pointing past the torn
                   tail): seal the transaction. *)
                append_record fd ~faults
                  (Wal.encode ~kind:Wal.kind_end ~lsn:(fresh_lsn ()) ~txn ~prev_lsn:s.cursor
                     ~arg:0 None);
                active := rest
              | Some r when r.kind = Wal.kind_begin ->
                append_record fd ~faults
                  (Wal.encode ~kind:Wal.kind_end ~lsn:(fresh_lsn ()) ~txn ~prev_lsn:r.lsn ~arg:0
                     None);
                active := rest
              | Some r when r.kind = Wal.kind_update ->
                if Bytes.length r.payload = 2 * payload_size then begin
                  let before = Bytes.sub r.payload 0 payload_size in
                  let clr_lsn = fresh_lsn () in
                  append_record fd ~faults
                    (Wal.encode ~kind:Wal.kind_clr ~lsn:clr_lsn ~txn ~prev_lsn:r.prev_lsn
                       ~arg:r.arg (Some before));
                  if r.arg >= 0 && r.arg < Disk.page_count disk then begin
                    Disk.write ~lsn:clr_lsn disk r.arg before;
                    incr undone;
                    match obs with
                    | None -> ()
                    | Some o ->
                      Natix_obs.Obs.emit o (Natix_obs.Event.Recovery_undo { page = r.arg })
                  end
                end;
                s.cursor <- r.prev_lsn;
                active := (txn, s) :: rest
              | Some r ->
                (* A CLR (its work was redone) or a stray record: follow
                   the chain. *)
                s.cursor <- r.prev_lsn;
                active := (txn, s) :: rest
            done)
      end;
      (* Roll allocations back to the watermark of the last durable commit
         (fall back to the first Begin's base: nothing ever committed). *)
      (match (!last_commit_pc, !first_begin_base) with
      | Some pc, _ when pc < Disk.page_count disk -> Disk.set_page_count disk pc
      | Some _, _ -> ()
      | None, Some base when base < Disk.page_count disk -> Disk.set_page_count disk base
      | None, _ -> ());
      (* Everything is on disk and consistent; the records are moot — but
         the header's high-water mark must survive, or a crash before the
         fresh log's first durable record would restart the LSN sequence
         below the trailers just written. *)
      Wal.reset_file ~page_size ~next_lsn:!next_lsn wal;
      (match obs with
      | None -> ()
      | Some o ->
        if !undone > 0 || torn_bytes > 0 then
          Natix_obs.Obs.emit o (Natix_obs.Event.Recovery_done { undone = !undone; torn_bytes }));
      {
        ran = true;
        clean = loser_count = 0 && torn_bytes = 0;
        redone = !redone;
        undone = !undone;
        losers = loser_count;
        torn_bytes;
        page_count = Disk.page_count disk;
        next_lsn = !next_lsn;
      }
    end
