open Natix_util

type report = {
  ran : bool;
  committed : bool;
  undone : int;
  torn_bytes : int;
  page_count : int;
}

let no_op disk =
  { ran = false; committed = false; undone = 0; torn_bytes = 0; page_count = Disk.page_count disk }

let wal_path store_path = store_path ^ ".wal"

type entry = { kind : int; arg : int; payload_off : int }

(* Parse the longest valid prefix of the log body; anything after it —
   typically a single append torn by the crash — is reported as the torn
   tail.  Returns the entries and the offset where the valid prefix ends. *)
let parse_entries buf ~page_size =
  let size = Bytes.length buf in
  let entries = ref [] in
  let off = ref Wal.header_size in
  let stop = ref false in
  while not !stop do
    let o = !off in
    if o + Wal.entry_header_size + 4 > size then stop := true
    else begin
      let kind = Bytes_util.get_u8 buf o in
      let len = Bytes_util.get_u32 buf (o + 11) in
      let valid_shape =
        match kind with
        | k when k = Wal.kind_begin || k = Wal.kind_commit -> len = 0
        | k when k = Wal.kind_before -> len = page_size
        | _ -> false
      in
      let total = Wal.entry_header_size + len + 4 in
      if (not valid_shape) || o + total > size then stop := true
      else if
        Bytes_util.get_u32 buf (o + Wal.entry_header_size + len)
        <> Checksum.crc32 buf ~off:o ~len:(Wal.entry_header_size + len)
      then stop := true
      else begin
        entries :=
          { kind; arg = Bytes_util.get_u32 buf (o + 7); payload_off = o + Wal.entry_header_size }
          :: !entries;
        off := o + total
      end
    end
  done;
  (List.rev !entries, !off)

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = Unix.((fstat fd).st_size) in
      let buf = Bytes.create size in
      let rec fill off =
        if off < size then begin
          let n = Unix.read fd buf off (size - off) in
          if n = 0 then Bytes.sub buf 0 off else fill (off + n)
        end
        else buf
      in
      fill 0)

let truncate_file path =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd 0)

let run ?obs disk =
  match Disk.path disk with
  | None -> no_op disk
  | Some store_path ->
    let wal = wal_path store_path in
    if not (Sys.file_exists wal) then no_op disk
    else begin
      let buf = read_file wal in
      let size = Bytes.length buf in
      let page_size = Disk.page_size disk in
      let header_ok =
        size >= Wal.header_size
        && Bytes_util.get_u32 buf 0 = Wal.magic
        && Bytes_util.get_u16 buf 4 = Wal.version
        && Bytes_util.get_u32 buf 8 = page_size
      in
      let entries, valid_end = if header_ok then parse_entries buf ~page_size else ([], 0) in
      let torn_bytes = size - valid_end in
      (* Entries after the last commit form the uncommitted batch. *)
      let uncommitted =
        let rec after_last_commit acc = function
          | [] -> List.rev acc
          | e :: rest when e.kind = Wal.kind_commit -> after_last_commit [] rest
          | e :: rest -> after_last_commit (e :: acc) rest
        in
        after_last_commit [] entries
      in
      let committed =
        match List.rev entries with
        | last :: _ -> last.kind = Wal.kind_commit
        | [] -> false
      in
      let undone = ref 0 in
      (* Undo in reverse append order so the oldest (pre-batch) image of a
         page lands last — with first-touch logging there is at most one
         image per page, but recovery does not rely on that. *)
      List.iter
        (fun e ->
          if e.kind = Wal.kind_before && e.arg < Disk.page_count disk then begin
            Disk.write_raw disk e.arg (Bytes.sub buf e.payload_off page_size);
            incr undone;
            match obs with
            | None -> ()
            | Some o -> Natix_obs.Obs.emit o (Natix_obs.Event.Recovery_undo { page = e.arg })
          end)
        (List.rev uncommitted);
      (* Roll allocations of the uncommitted batch back to the page count
         recorded at batch start (also trims a torn tail page). *)
      (match List.find_opt (fun e -> e.kind = Wal.kind_begin) uncommitted with
      | Some { arg = base; _ } when base < Disk.page_count disk -> Disk.set_page_count disk base
      | Some _ | None -> ());
      truncate_file wal;
      (match obs with
      | None -> ()
      | Some o ->
        if !undone > 0 || torn_bytes > 0 then
          Natix_obs.Obs.emit o
            (Natix_obs.Event.Recovery_done { undone = !undone; torn_bytes }));
      {
        ran = true;
        committed;
        undone = !undone;
        torn_bytes;
        page_count = Disk.page_count disk;
      }
    end
