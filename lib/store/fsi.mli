(** Free-space inventory.

    Tracks, per page, how many bytes are available for inserting a record
    (the {!Slotted_page.free_for_insert} value), and answers "first page at
    or after [from] with at least [n] free bytes" in logarithmic time via a
    max segment tree.  Real NATIX persists FSI pages; here the inventory is
    in memory and rebuilt when a store is opened (see DESIGN.md §4). *)

type t

val create : unit -> t

(** Number of tracked pages. *)
val pages : t -> int

(** [append t free] registers a new page (ids are dense, starting at 0). *)
val append : t -> int -> unit

(** [set t page free] updates a page's free-byte count. *)
val set : t -> int -> int -> unit

val get : t -> int -> int

(** [find_first t ~from n] is the smallest page id [>= from] whose free
    count is [>= n], if any. *)
val find_first : t -> from:int -> int -> int option
