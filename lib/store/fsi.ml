(* Array-based max segment tree with doubling capacity.  Leaves for pages
   beyond [used] hold -1 so they never satisfy a search. *)

type t = { mutable tree : int array; mutable cap : int; mutable used : int }

let create () = { tree = Array.make 2 (-1); cap = 1; used = 0 }
let pages t = t.used
let leaf t i = t.cap + i

let rebuild_from_leaves t =
  for i = t.cap - 1 downto 1 do
    t.tree.(i) <- max t.tree.(2 * i) t.tree.((2 * i) + 1)
  done

let grow t =
  let new_cap = 2 * t.cap in
  let tree = Array.make (2 * new_cap) (-1) in
  Array.blit t.tree t.cap tree new_cap t.cap;
  t.tree <- tree;
  t.cap <- new_cap;
  rebuild_from_leaves t

let update_path t i =
  let rec up i =
    if i >= 1 then begin
      let v = max t.tree.(2 * i) t.tree.((2 * i) + 1) in
      if t.tree.(i) <> v then begin
        t.tree.(i) <- v;
        up (i / 2)
      end
    end
  in
  up i

let set t page free =
  assert (page >= 0 && page < t.used);
  t.tree.(leaf t page) <- free;
  update_path t (leaf t page / 2)

let append t free =
  if t.used = t.cap then grow t;
  t.used <- t.used + 1;
  set t (t.used - 1) free

let get t page =
  assert (page >= 0 && page < t.used);
  t.tree.(leaf t page)

(* First leaf >= from with value >= n within node [i] covering [lo, hi). *)
let find_first t ~from n =
  if t.used = 0 then None
  else begin
    let rec search i lo hi =
      if hi <= from || t.tree.(i) < n then None
      else if lo + 1 = hi then Some lo
      else begin
        let mid = (lo + hi) / 2 in
        match search (2 * i) lo mid with
        | Some _ as r -> r
        | None -> search ((2 * i) + 1) mid hi
      end
    in
    match search 1 0 t.cap with
    | Some page when page < t.used -> Some page
    | _ -> None
  end
