type t = {
  avg_seek_ms : float;
  track_to_track_ms : float;
  rot_latency_ms : float;
  transfer_mb_per_s : float;
}

let dcas_34330w =
  { avg_seek_ms = 8.5; track_to_track_ms = 1.0; rot_latency_ms = 5.55; transfer_mb_per_s = 12.0 }

let free =
  { avg_seek_ms = 0.; track_to_track_ms = 0.; rot_latency_ms = 0.; transfer_mb_per_s = infinity }

let cost t ~page_size ~sequential =
  let transfer = float_of_int page_size /. (t.transfer_mb_per_s *. 1_000_000.) *. 1000. in
  if sequential then t.track_to_track_ms +. transfer
  else t.avg_seek_ms +. t.rot_latency_ms +. transfer

let run_cost t ~page_size ~pages =
  if pages <= 0 then 0.
  else
    cost t ~page_size ~sequential:false
    +. (float_of_int (pages - 1) *. cost t ~page_size ~sequential:true)
