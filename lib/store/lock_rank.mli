(** Optional debug assertion for the storage-layer lock order.

    The documented order, by ascending rank — a domain may only block on a
    lock of strictly higher rank than any it already holds:

    {v registry (1)  <  conn (2)  <  tenant (3)  <  doc (4)  <  struct (5)
       <  arena (6)  <  alloc (7)  <  stripe (8)  <  frame latch (9)
       <  pool (10)  <  wal (11)  <  disk (12) v}

    The three lowest ranks belong to the serving layer ([Natix_server]):
    [registry] guards the tenant → store table (held while lazily opening
    a store, which takes every engine lock below it), [conn] guards the
    dispatcher's admission/queue state (never held across request
    execution), and [tenant] is the per-tenant read-write gate a worker
    holds for the whole execution of a request — below [doc] because a
    mutating request runs whole transactions while keeping it.

    [doc] is a per-document write latch held for the whole mutation phase
    of a transaction; it ranks {e below} stripe because a holder fixes
    pages (stripe, pool) while keeping it.  [struct] is the store-wide
    structure lock serialising transaction begin/commit sections.
    [arena] is a per-document allocation arena lock and [alloc] the
    global free-page allocator below it: a refill holds arena, then
    alloc, then fixes and formats the new pages (stripe/pool/disk), so
    both rank below the buffer-pool hierarchy.  [wal] is the
    log's append mutex: appends happen while holding the pool lock
    (write-back of a stolen page) but never take the disk latch inside.

    Three sanctioned exceptions, all deadlock-free by construction:
    - {b try-locks} (eviction taking a victim's stripe or latch) never
      block, so they cannot close a wait cycle; they are recorded with
      {!note_try} and skip the ordering check.
    - {b equal ranks} are allowed when they follow a total order of their
      own: [flush]/[clear] take all stripes in index order.
    - {b rank-{!unordered} holds} — the latches of frames read-ahead just
      created and is still filling.  The only threads that ever wait on a
      frame latch do so holding no other lock (the fix hit path releases
      stripe and pool first), so no wait cycle can pass {e through} such a
      latch; holding one therefore constrains nothing, and the prefetcher
      may take further stripe/pool/disk locks while keeping a batch of
      them latched.

    Disabled by default (every check is a single [Atomic.get]); enable for
    tests with {!enable} or the [NATIX_LOCK_RANK] environment variable.
    When enabled, a violation raises {!Violation} and increments
    {!violations} — the stress harness asserts the counter stays zero. *)

exception Violation of string

(** The ranks, for use at acquisition sites. *)

val registry : int

val conn : int
val tenant : int
val doc : int

val structure : int
val arena : int
val alloc : int
val stripe : int
val frame : int
val pool : int
val wal : int
val disk : int

(** Exempt rank for locks provably outside any wait cycle (see above):
    tracked for release balance, never checked, and transparent to later
    acquisitions. *)
val unordered : int

val enable : unit -> unit
val disable : unit -> unit

(** Number of violations detected since program start (cumulative across
    enable/disable cycles). *)
val violations : unit -> int

(** [acquire rank] records intent to block on a lock of [rank]; call
    immediately before the [Mutex.lock].  Raises {!Violation} if [rank] is
    strictly lower than a rank already held by this domain. *)
val acquire : int -> unit

(** [note_try rank] records a {e successful} [Mutex.try_lock] of [rank]
    without an ordering check. *)
val note_try : int -> unit

(** [release rank] drops the most recent hold of [rank] for this domain;
    call after the [Mutex.unlock]. *)
val release : int -> unit
