(** Redo+undo write-ahead log (ARIES-style, steal/no-force).

    Every mutation appends an LSN-stamped record carrying both the
    before-image and the after-image of the page it touches; records
    accumulate in a pending buffer and reach the file at {!fsync}.  The
    buffer pool enforces {e WAL-before-data}: a dirty page is written home
    only after the records covering it are durable.  Commit durability is
    a single [fsync] of the transaction's records — data pages may follow
    at leisure (no-force), since redo replays the after-images; and dirty
    pages of in-flight transactions may be stolen early, since undo
    restores the before-images.

    The log also owns the store's single LSN sequence; data pages are
    stamped with the LSN of the last record covering them, so recovery can
    compare a page's trailer LSN against a record's LSN to decide whether
    the page already contains that record's effect.

    Two clients share the one log:
    - {b explicit transactions} ([log_begin]/[log_update]/[log_commit]),
      forced at commit by the group-commit daemon;
    - {b the implicit checkpoint batch} (transaction id 0) covering
      unscoped mutation: {!log_steal} forces a record before each steal of
      a pre-existing page, and {!checkpoint} seals the batch and truncates
      the log (force-at-checkpoint, so the old records are moot).  The log
      file therefore always starts at the most recent checkpoint — the
      redo pass scans from the file start.

    Every record carries its own CRC-32, so a tail torn by a crash
    mid-flush is detected; recovery truncates the log at the last valid
    record.  One log file per store, at [<store path> ^ ".wal"]. *)

type t

(** [create ~page_size ~base path] truncates/creates the log and starts
    the implicit batch with [base] as the rollback page count — call only
    after {!Recovery.run} has consumed any previous log.  [first_lsn]
    (default 1) seeds the LSN sequence strictly above every LSN the
    recovered store has seen.  [faults] shares the disk's fault-injection
    plan so crash points cover log fsyncs too. *)
val create :
  ?obs:Natix_obs.Obs.t ->
  ?faults:Faulty_disk.t ->
  ?first_lsn:int ->
  page_size:int ->
  base:int ->
  string ->
  t

val path : t -> string

(** Page count rolled back to if the current implicit batch never
    commits. *)
val base : t -> int

val page_size : t -> int

(** Bytes per logged page image ([page_size - Disk.trailer_size]): images
    are payload-only; restores re-seal the trailer. *)
val payload_size : t -> int

(** {2 LSN sequence} *)

(** Next LSN to be assigned (peek; monotonically increasing). *)
val next_lsn : t -> int

(** Highest LSN known durable (last record of the last successful
    {!fsync}). *)
val durable_lsn : t -> int

(** Records appended but not yet fsynced. *)
val pending_records : t -> int

(** {2 Explicit transactions} *)

(** Append a transaction-begin record; [base] is the page count at begin.
    Returns the record's LSN.  Memory-only until {!fsync}. *)
val log_begin : t -> txn:int -> base:int -> int

(** Append an update record for [page]: [before] and [after] are
    payload-sized images.  [prev_lsn] chains the transaction's records for
    the undo pass. *)
val log_update : t -> txn:int -> prev_lsn:int -> page:int -> before:bytes -> after:bytes -> int

(** Append the commit record; [page_count] is the allocation watermark the
    store truncates to when rolling back {e later} losers. *)
val log_commit : t -> txn:int -> prev_lsn:int -> page_count:int -> int

(** Force all pending records to the file.  One fault-plan consultation
    per non-empty batch; a crash outcome persists the prescribed subset
    and raises {!Faulty_disk.Crash}. *)
val fsync : t -> unit

(** {2 Implicit checkpoint batch (transaction 0)} *)

(** True when [page] needs its record logged before its first write-back
    of this batch (false for pages allocated within the batch and for
    pages already logged). *)
val needs_before : t -> int -> bool

(** [log_steal t ~page ~before ~after] appends an update record for the
    implicit batch before a steal, returning its LSN (0 when not needed:
    in-batch allocations and already-logged pages).  The caller forces the
    log before the data write ({!fsync}). *)
val log_steal : t -> page:int -> before:bytes -> after:bytes -> int

(** [checkpoint t ~page_count] seals the implicit batch: forces a commit
    record, truncates the log, and opens the next batch with [page_count]
    as its rollback base.  Call only after every dirty page has been
    flushed. *)
val checkpoint : t -> page_count:int -> unit

(** {2 Counters} *)

(** Records appended since {!create}. *)
val appends : t -> int

(** Total log bytes appended since {!create} — the numerator of the WAL
    write-amplification ratio reported by the benchmarks. *)
val bytes_logged : t -> int

(** Successful fsync batches, and records they carried — the group-commit
    ablation reports [flushed_records / flushes]. *)
val flushes : t -> int

val flushed_records : t -> int
val set_faults : t -> Faulty_disk.t option -> unit
val close : t -> unit

(** [reset_file ~page_size ~next_lsn path] rewrites [path] as an empty
    log whose header carries [next_lsn] as the LSN high-water mark.
    Recovery finishes with this instead of a bare truncation: the mark is
    what keeps the LSN sequence monotone across incarnations when the log
    holds no records, so redo's [page_lsn < record_lsn] comparison never
    meets a re-issued LSN. *)
val reset_file : page_size:int -> next_lsn:int -> string -> unit

(** {2 On-disk format (shared with {!Recovery})} *)

val magic : int
val version : int
val header_size : int
val entry_header_size : int
val kind_begin : int
val kind_update : int
val kind_commit : int
val kind_clr : int
val kind_end : int

(** A decoded record.  [prev_lsn] is the same-transaction back-chain (for
    a CLR: the undo-next LSN).  [pos]/[next] delimit the record's bytes in
    the file. *)
type record = {
  kind : int;
  lsn : int;
  txn : int;
  prev_lsn : int;
  arg : int;
  payload : bytes;
  pos : int;
  next : int;
}

(** Encode a record (header, payload, CRC) — used by recovery to append
    CLR and end records to an existing log. *)
val encode : kind:int -> lsn:int -> txn:int -> prev_lsn:int -> arg:int -> bytes option -> bytes

(** Decode the record starting at [off]; [None] on a short or CRC-invalid
    tail. *)
val decode : bytes -> off:int -> record option
