(** Physical write-ahead log (undo logging).

    The buffer pool runs a {e steal} policy — dirty pages may be evicted
    and written home mid-batch — so durability works by undo: before the
    first write-back of a page in a batch, its raw on-disk pre-image is
    appended here ({!log_before}); a checkpoint flushes every dirty page
    and then {!commit}s, truncating the log.  A store killed at any point
    therefore reopens ({!Recovery.run}) to its last checkpoint: committed
    batches need nothing (their data writes all preceded the commit
    record), and an uncommitted batch is rolled back from its pre-images.

    Pages allocated {e during} a batch need no pre-image — the batch-start
    [Begin] record carries the page count to truncate back to.

    Every entry is protected by its own CRC-32, so a tail torn by a crash
    mid-append is detected and discarded; log-before-data ordering makes
    that safe (a torn pre-image entry means the page itself was never
    overwritten).

    One log file per store, at [<store path> ^ ".wal"]. *)

type t

(** [create ~page_size ~base path] truncates/creates the log and starts a
    batch with [base] as the rollback page count — call only after
    {!Recovery.run} has consumed any previous log.  [faults] shares the
    disk's fault-injection plan so crash points cover log appends too. *)
val create :
  ?obs:Natix_obs.Obs.t -> ?faults:Faulty_disk.t -> page_size:int -> base:int -> string -> t

val path : t -> string

(** Page count rolled back to if the current batch never commits. *)
val base : t -> int

(** True when [page] needs its pre-image logged before its first
    write-back of this batch (false for pages allocated within the batch
    and for pages already logged). *)
val needs_before : t -> int -> bool

(** [log_before t ~page image] appends the raw pre-image (length = the
    disk's physical page size, trailer included).  No-op unless
    {!needs_before}. *)
val log_before : t -> page:int -> bytes -> unit

(** [commit t ~page_count] seals the batch: appends a commit record,
    truncates the log, and opens the next batch with [page_count] as its
    rollback base.  Call only after every dirty page has been flushed. *)
val commit : t -> page_count:int -> unit

(** Entries appended since {!create} (pre-images, begins and commits). *)
val appends : t -> int

(** Total log bytes written since {!create} — the numerator of the WAL
    write-amplification ratio reported by the benchmarks. *)
val bytes_logged : t -> int

val set_faults : t -> Faulty_disk.t option -> unit
val close : t -> unit

(** {2 On-disk format constants (shared with {!Recovery})} *)

val magic : int
val version : int
val header_size : int
val entry_header_size : int
val kind_begin : int
val kind_before : int
val kind_commit : int
