(** CRC-32 checksums (IEEE 802.3 polynomial) for page trailers and
    write-ahead-log entries.

    The checksum is the standard reflected CRC-32 ("zlib" convention:
    pre- and post-inverted), returned as a non-negative [int] in
    [\[0, 2^32)].  Passing a previous result as [init] continues the
    checksum, i.e. [crc32 ~init:(crc32_string a) b] equals the checksum of
    the concatenation of [a] and [b]. *)

(** [crc32 ?init buf ~off ~len] checksums [len] bytes of [buf] starting at
    [off].  @raise Invalid_argument when the range is out of bounds. *)
val crc32 : ?init:int -> bytes -> off:int -> len:int -> int

val crc32_string : ?init:int -> string -> int
