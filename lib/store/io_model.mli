(** Disk cost model.

    The paper measures a real IBM DCAS-34330W disk under direct access with
    no OS buffering.  This module replaces the hardware with a deterministic
    cost model: every page access is classified as sequential (the page
    immediately follows the previously accessed page) or random, and charged

    - sequential: track-to-track seek + transfer time, or
    - random: average seek + rotational latency + transfer time,

    where transfer time is proportional to the page size.  All figures in
    the benchmark harness are simulated milliseconds computed this way, so
    the reproduction is hardware-independent and exactly repeatable. *)

type t = {
  avg_seek_ms : float;
  track_to_track_ms : float;
  rot_latency_ms : float;  (** average rotational latency *)
  transfer_mb_per_s : float;
}

(** Parameters of an IBM DCAS-34330W-class drive (5400 rpm, ~8.5 ms average
    seek, ~1 ms track-to-track, ~12 MB/s media rate). *)
val dcas_34330w : t

(** A zero-cost model (useful in unit tests). *)
val free : t

(** [cost t ~page_size ~sequential] is the simulated cost in milliseconds of
    one page access. *)
val cost : t -> page_size:int -> sequential:bool -> float

(** [run_cost t ~page_size ~pages] is the simulated cost of one run of
    [pages] physically contiguous page accesses: the head of the run pays
    the random-access cost, every following page the sequential one.  This
    is exactly what a batched read-ahead of the run costs, and what the
    query planner charges when it expects a scan to trigger read-ahead. *)
val run_cost : t -> page_size:int -> pages:int -> float
