(* Group commit: batch WAL fsyncs across concurrently committing
   transactions.

   Leader/follower, no dedicated thread.  A committer whose commit record
   is already covered by the durability watermark returns immediately — it
   shared a previous flush.  Otherwise the first committer to find no
   flush in progress becomes the leader: it releases the daemon lock,
   waits out the configured commit delay — the batching window during
   which concurrently committing transactions append their records into
   the same batch — then forces the log and republishes the watermark.
   The window is real wall-clock time (the leader sleeps, so followers
   genuinely pile in) and is also charged to the simulated clock so the
   I/O model prices it.  Followers wait on the condition variable; they
   never fsync themselves.

   Failure is total: if the leader's flush raises (an armed fsync fault
   killing the simulated process), the daemon is poisoned — the leader
   re-raises so the harness sees the crash, and every waiting or later
   committer gets a typed error immediately.  Nobody hangs. *)

type t = {
  wal : Wal.t;
  commit_delay : float;
  charge : float -> unit;  (* commit-delay window, on the simulated clock *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable acked_upto : int;  (* commit records at or below this LSN are durable *)
  mutable flushing : bool;
  mutable poisoned : string option;
  mutable flushes : int;  (* flushes led through this daemon *)
  mutable committed : int;  (* commit requests satisfied *)
}

let create ?(commit_delay = 0.) ~charge wal =
  {
    wal;
    commit_delay;
    charge;
    lock = Mutex.create ();
    cond = Condition.create ();
    acked_upto = Wal.durable_lsn wal;
    flushing = false;
    poisoned = None;
    flushes = 0;
    committed = 0;
  }

let flushes t = t.flushes
let committed t = t.committed
let commit_delay t = t.commit_delay
let poisoned t = t.poisoned <> None

(* The daemon lock nests inside a committer's document latch and outside
   nothing: the leader drops it before touching the log, so no wal/disk
   rank is ever taken under it. *)
let with_lock t f =
  Lock_rank.acquire Lock_rank.structure;
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Lock_rank.release Lock_rank.structure)
    f

(* Wait until the commit record at [lsn] is durable.  [Ok ()] when a flush
   (ours or a leader's we shared) covered it; [Error reason] when the
   daemon is poisoned.  Raises only in the leader whose own flush died, so
   the original crash propagates exactly once.

   When the calling domain carries an ambient request trace, commit
   latency decomposes into two sibling spans: [commit.queue] (entry
   until our covering flush began — leadership wait, or the whole stay
   for a follower/fast-path committer) and, for the leader only,
   [commit.fsync] (the commit-delay window plus the log force).  The
   tracer never charges the clock, so traced and untraced commits cost
   identical simulated time. *)
let commit t ~lsn =
  let trace = Natix_trace.Trace.active () in
  let tnow () = match trace with None -> 0. | Some tr -> Natix_trace.Trace.clock tr in
  let entered = tnow () in
  let led = ref None in
  let result =
    with_lock t (fun () ->
        let result = ref None in
        while !result = None do
          match t.poisoned with
          | Some reason -> result := Some (Error reason)
          | None ->
            if t.acked_upto >= lsn then begin
              t.committed <- t.committed + 1;
              result := Some (Ok ())
            end
            else if not t.flushing then begin
              t.flushing <- true;
              Mutex.unlock t.lock;
              Lock_rank.release Lock_rank.structure;
              let flush_start = tnow () in
              (match
                 if t.commit_delay > 0. then begin
                   t.charge t.commit_delay;
                   Unix.sleepf (t.commit_delay /. 1000.)
                 end;
                 Wal.fsync t.wal
               with
              | () ->
                led := Some (flush_start, tnow ());
                Lock_rank.acquire Lock_rank.structure;
                Mutex.lock t.lock;
                t.flushing <- false;
                t.acked_upto <- Wal.durable_lsn t.wal;
                t.flushes <- t.flushes + 1;
                Condition.broadcast t.cond
              | exception e ->
                (* Relock and re-raise; [with_lock]'s finally releases. *)
                Lock_rank.acquire Lock_rank.structure;
                Mutex.lock t.lock;
                t.flushing <- false;
                t.poisoned <- Some (Printexc.to_string e);
                Condition.broadcast t.cond;
                raise e)
            end
            else Condition.wait t.cond t.lock
        done;
        match !result with Some r -> r | None -> assert false)
  in
  (match trace with
  | None -> ()
  | Some tr -> (
    match !led with
    | Some (f0, f1) ->
      Natix_trace.Trace.interval tr "commit.queue" ~t0:entered ~t1:f0;
      Natix_trace.Trace.interval tr "commit.fsync" ~t0:f0 ~t1:f1
    | None -> Natix_trace.Trace.interval tr "commit.queue" ~t0:entered ~t1:(tnow ())));
  result
