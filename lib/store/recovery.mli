(** Crash recovery: replay of the write-ahead log on open.

    {!run} brings a file-backed disk back to its last checkpoint: it drops
    the log's torn tail (if the crash hit mid-append), rolls every
    uncommitted pre-image back onto the data file, truncates allocations
    the uncommitted batch made, and resets the log.  Idempotent, and a
    no-op for in-memory disks or when no log file exists.

    Runs {e before} any layer above the disk touches pages (the segment's
    reopen scan reads every page through checksum verification, so it must
    only ever see recovered state). *)

type report = {
  ran : bool;  (** a log file existed and was processed *)
  committed : bool;  (** the log ended in a commit record (clean batch) *)
  undone : int;  (** pages restored from pre-images *)
  torn_bytes : int;  (** discarded torn log tail *)
  page_count : int;  (** disk pages after recovery *)
}

(** Log file protecting the store at the given path. *)
val wal_path : string -> string

(** [run ?obs disk] recovers the disk from its log, emitting
    [Recovery_undo]/[Recovery_done] events through [obs]. *)
val run : ?obs:Natix_obs.Obs.t -> Disk.t -> report
