(** Crash recovery: three-pass replay of the write-ahead log on open.

    {!run} brings a file-backed disk back to a transaction-consistent
    state.  {b Analysis} parses the longest CRC-valid prefix of the log
    (truncating a torn tail with a [Wal_torn] event rather than failing)
    and classifies each transaction as committed, already ended, or a
    loser.  {b Redo} repeats history from the last checkpoint — the log
    file always starts there — replaying every Update and CLR after-image
    whose LSN is newer than the target page's trailer stamp, and stamping
    the record's LSN so the pass is idempotent.  {b Undo} rolls the losers
    back newest-first along their prev_lsn chains, logging a compensation
    record (CLR) before each restore and an End record per finished loser,
    then truncates allocations to the last committed watermark.

    Idempotent across repeated crashes {e during} recovery: CLRs are
    redone like updates and undo resumes from the last CLR's undo-next
    pointer.  A no-op for in-memory disks or when no log file exists.

    Runs {e before} any layer above the disk touches pages (the segment's
    reopen scan reads every page through checksum verification, so it must
    only ever see recovered state). *)

type report = {
  ran : bool;  (** a log file existed and was processed *)
  clean : bool;  (** no losers to undo and no torn tail *)
  redone : int;  (** pages rewritten from logged after-images *)
  undone : int;  (** page restores performed during undo (CLRs written) *)
  losers : int;  (** transactions rolled back *)
  torn_bytes : int;  (** discarded torn log tail *)
  page_count : int;  (** disk pages after recovery *)
  next_lsn : int;
      (** First LSN safe for the store's new log: above every parsed
          record, the WAL header's persisted high-water mark and — when
          the header is unreadable — every data-page trailer stamp, so
          the sequence never restarts below an LSN already on disk. *)
}

(** Log file protecting the store at the given path. *)
val wal_path : string -> string

(** The report of a recovery that had nothing to do (in-memory disk). *)
val no_op : Disk.t -> report

(** [run ?obs disk] recovers the disk from its log, emitting
    [Wal_torn]/[Recovery_redo]/[Recovery_undo]/[Recovery_done] events
    through [obs].  Page writes and CLR appends consult the disk's
    attached fault plan, so crash sweeps cover recovery itself. *)
val run : ?obs:Natix_obs.Obs.t -> Disk.t -> report
