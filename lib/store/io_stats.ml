type t = {
  mutable reads : int;
  mutable writes : int;
  mutable sequential_reads : int;
  mutable sequential_writes : int;
  mutable read_ahead_pages : int;
  mutable sim_ms : float;
}

let create () =
  {
    reads = 0;
    writes = 0;
    sequential_reads = 0;
    sequential_writes = 0;
    read_ahead_pages = 0;
    sim_ms = 0.;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.sequential_reads <- 0;
  t.sequential_writes <- 0;
  t.read_ahead_pages <- 0;
  t.sim_ms <- 0.

let copy t =
  {
    reads = t.reads;
    writes = t.writes;
    sequential_reads = t.sequential_reads;
    sequential_writes = t.sequential_writes;
    read_ahead_pages = t.read_ahead_pages;
    sim_ms = t.sim_ms;
  }

let diff later earlier =
  {
    reads = later.reads - earlier.reads;
    writes = later.writes - earlier.writes;
    sequential_reads = later.sequential_reads - earlier.sequential_reads;
    sequential_writes = later.sequential_writes - earlier.sequential_writes;
    read_ahead_pages = later.read_ahead_pages - earlier.read_ahead_pages;
    sim_ms = later.sim_ms -. earlier.sim_ms;
  }

let add t d =
  t.reads <- t.reads + d.reads;
  t.writes <- t.writes + d.writes;
  t.sequential_reads <- t.sequential_reads + d.sequential_reads;
  t.sequential_writes <- t.sequential_writes + d.sequential_writes;
  t.read_ahead_pages <- t.read_ahead_pages + d.read_ahead_pages;
  t.sim_ms <- t.sim_ms +. d.sim_ms

let total_ios t = t.reads + t.writes

(* The sequential counts are subsets of the totals; say so explicitly --
   "reads=120 (seq 40)" used to read as if 40 were on top of the 120. *)
let pp ppf t =
  Format.fprintf ppf "reads=%d (%d of them seq, %d read-ahead) writes=%d (%d of them seq) sim=%.2fms"
    t.reads t.sequential_reads t.read_ahead_pages t.writes t.sequential_writes t.sim_ms

let pp_json ppf t =
  Format.fprintf ppf
    {|{"reads":%d,"sequential_reads":%d,"read_ahead_pages":%d,"writes":%d,"sequential_writes":%d,"sim_ms":%s}|}
    t.reads t.sequential_reads t.read_ahead_pages t.writes t.sequential_writes
    (Natix_obs.Json.float_repr t.sim_ms)
