(** Slotted page layout.

    Pages holding records are organised as slotted pages (paper §2.1):
    a fixed header, a slot directory growing upward, and record data growing
    downward from the page end.  Records are addressed by slot number, so
    they can be moved around on the page (compaction) without invalidating
    their RIDs.

    Each slot carries two flag bits for the record manager's forwarding
    scheme ({!forward_flag}: the record body is a tombstone holding the RID
    of the moved record; {!moved_flag}: the record moved in from another
    home page).

    All functions operate directly on the page image [bytes] whose length is
    the page size. *)

val header_size : int
val slot_size : int

(** Largest record storable on an otherwise empty page of [page_size]. *)
val max_record_len : page_size:int -> int

(** Initialise an all-zero page as an empty slotted page. *)
val format : bytes -> unit

val slot_count : bytes -> int

(** Number of live (non-free) slots. *)
val live_count : bytes -> int

(** Bytes available for inserting one new record (slot entry accounted for;
    assumes compaction may run). *)
val free_for_insert : bytes -> int

(** Total free bytes including fragmentation gaps (excluding slot reuse). *)
val total_free : bytes -> int

(** Fraction of the usable area (page minus header) occupied by record
    data and slot entries: [1 - total_free / (page_size - header_size)].
    The observability layer reports this per page at split time. *)
val fill_ratio : bytes -> float

(** 32-bit field reserved for upper layers (e.g. catalog bootstrap). *)
val get_user32 : bytes -> int

val set_user32 : bytes -> int -> unit

type flags = { forward : bool; moved : bool }

val no_flags : flags
val forward_flag : flags
val moved_flag : flags

(** [insert page data flags] places a new record, returning its slot, or
    [None] if the page cannot hold it even after compaction. *)
val insert : bytes -> string -> flags -> int option

(** [read page slot] is [(offset, length, flags)] of a live record.
    @raise Invalid_argument on a free or out-of-range slot. *)
val read : bytes -> int -> int * int * flags

val is_live : bytes -> int -> bool

(** [write page slot data flags] replaces the record's contents, growing or
    shrinking it (with compaction if needed).  Returns [false] if the new
    size does not fit on the page; the old record is then left intact. *)
val write : bytes -> int -> string -> flags -> bool

val delete : bytes -> int -> unit

(** [iter page f] applies [f slot offset length flags] to each live record. *)
val iter : bytes -> (int -> int -> int -> flags -> unit) -> unit

(** Defragment the data area.  Exposed for tests; called internally as
    needed. *)
val compact : bytes -> unit

(** Internal-consistency check used by tests and debug assertions: verifies
    header bookkeeping against a full scan.  Raises [Failure] with a
    description on corruption. *)
val check : bytes -> unit
