(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.  The table is
   built on first use so linking the module costs nothing. *)

let polynomial = 0xedb88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let feed crc byte =
  let table = Lazy.force table in
  table.((crc lxor byte) land 0xff) lxor (crc lsr 8)

let crc32 ?(init = 0) buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.crc32: range out of bounds";
  let crc = ref (init lxor 0xffffffff) in
  for i = off to off + len - 1 do
    crc := feed !crc (Char.code (Bytes.unsafe_get buf i))
  done;
  !crc lxor 0xffffffff

let crc32_string ?init s =
  crc32 ?init (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
