exception Bad_page of { page : int; reason : string }

let bad ~page fmt = Printf.ksprintf (fun reason -> raise (Bad_page { page; reason })) fmt

(* Every physical page ends in a 16-byte trailer maintained by [write] and
   verified by [read]:

     [0..4)   CRC-32 over payload ^ lsn ^ page id (trailer bytes 4..14)
     [4..10)  LSN: monotone per-disk write stamp
     [10..14) page id (catches misdirected writes)
     [14..16) zero padding

   The in-memory backend stores bare payloads — there is no medium to
   corrupt — but reserves the same 16 bytes so both backends expose the
   identical [payload_size] and records pack identically. *)
let trailer_size = 16

type backend =
  | Mem of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable used : int; path : string }

(* One sequential-detection + accumulation context.  The default stream is
   the disk's own [stats]/[last_page] pair; inside a parallel region each
   worker domain registers a private stream so concurrent access patterns
   do not scramble each other's sequentiality and the per-domain figures
   can be merged deterministically on join. *)
type stream = { s_stats : Io_stats.t; mutable s_last_page : int }

type t = {
  page_size : int;
  payload_size : int;
  model : Io_model.t;
  stats : Io_stats.t;
  backend : backend;
  scratch : bytes;  (* one full physical page, for trailer assembly *)
  latch : Mutex.t;  (* rank 4: serialises fd/scratch/lsn/stats access *)
  mutable next_lsn : int;
  mutable last_page : int;  (* for sequential-access detection; -2 = none *)
  mutable streams : (int * stream) list;  (* domain id -> active stream *)
  mutable regions : int;  (* active parallel-region refcount *)
  mutable obs : Natix_obs.Obs.t option;
  mutable faults : Faulty_disk.t option;
}

(* The shared file descriptor (lseek-then-read), the [scratch] trailer
   buffer and the LSN counter force whole-operation serialisation; a single
   latch is both sufficient and honest about a one-spindle disk.  All
   public operations take it; [_u]-suffixed internals assume it held. *)
let with_latch t f =
  Lock_rank.acquire Lock_rank.disk;
  Mutex.lock t.latch;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.latch;
      Lock_rank.release Lock_rank.disk)
    f

(* The file backend stores a small superblock at offset 0 holding the page
   size and page count, so data page [i] lives at offset
   [(i + 1) * page_size]:

     [0..4)   magic "NATX"
     [4..6)   layout version (2 since pages grew trailers)
     [6..8)   zero padding
     [8..12)  page size
     [12..16) allocated page count *)
let superblock_magic = 0x4e415458 (* "NATX" *)

let superblock_version = 2
let superblock_size = 16

let check_page_size page_size =
  if page_size < 4 * trailer_size then
    invalid_arg (Printf.sprintf "Disk: page size %d too small (min %d)" page_size (4 * trailer_size))

(* The disk owns the simulated clock, so attaching a handle binds the
   handle's clock to this disk's [sim_ms] accumulator. *)
let set_obs t obs =
  t.obs <- obs;
  match obs with
  | Some o -> Natix_obs.Obs.set_clock o (fun () -> t.stats.Io_stats.sim_ms)
  | None -> ()

let obs t = t.obs
let set_faults t faults = t.faults <- faults
let faults t = t.faults

let in_memory ?(model = Io_model.dcas_34330w) ?obs ~page_size () =
  check_page_size page_size;
  let t =
    {
      page_size;
      payload_size = page_size - trailer_size;
      model;
      stats = Io_stats.create ();
      backend = Mem { pages = Array.make 64 Bytes.empty; used = 0 };
      scratch = Bytes.create page_size;
      latch = Mutex.create ();
      next_lsn = 1;
      last_page = -2;
      streams = [];
      regions = 0;
      obs = None;
      faults = None;
    }
  in
  set_obs t obs;
  t

let read_superblock fd page_size =
  let buf = Bytes.create superblock_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Unix.read fd buf 0 superblock_size in
  if n <> superblock_size then bad ~page:(-1) "truncated superblock (%d of %d bytes)" n superblock_size;
  if Natix_util.Bytes_util.get_u32 buf 0 <> superblock_magic then
    bad ~page:(-1) "not a natix disk file (bad magic)";
  let version = Natix_util.Bytes_util.get_u16 buf 4 in
  if version <> superblock_version then bad ~page:(-1) "unsupported disk layout version %d" version;
  let stored_page_size = Natix_util.Bytes_util.get_u32 buf 8 in
  if stored_page_size <> page_size then
    bad ~page:(-1) "file has page size %d, expected %d" stored_page_size page_size;
  Natix_util.Bytes_util.get_u32 buf 12

let write_superblock fd ~page_size ~used =
  let buf = Bytes.make superblock_size '\000' in
  Natix_util.Bytes_util.set_u32 buf 0 superblock_magic;
  Natix_util.Bytes_util.set_u16 buf 4 superblock_version;
  Natix_util.Bytes_util.set_u32 buf 8 page_size;
  Natix_util.Bytes_util.set_u32 buf 12 used;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Unix.write fd buf 0 superblock_size in
  if n <> superblock_size then bad ~page:(-1) "short superblock write"

let detect_page_size path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let buf = Bytes.create superblock_size in
        let n = try Unix.read fd buf 0 superblock_size with Unix.Unix_error _ -> 0 in
        if
          n < superblock_size
          || Natix_util.Bytes_util.get_u32 buf 0 <> superblock_magic
          || Natix_util.Bytes_util.get_u16 buf 4 <> superblock_version
        then None
        else
          let page_size = Natix_util.Bytes_util.get_u32 buf 8 in
          if page_size < 4 * trailer_size || page_size > 1 lsl 22 then None else Some page_size)

let on_file ?(model = Io_model.dcas_34330w) ?obs ~page_size path =
  check_page_size page_size;
  let exists = Sys.file_exists path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let used =
    if exists && Unix.((fstat fd).st_size) > 0 then begin
      match read_superblock fd page_size with
      | used -> used
      | exception e ->
        Unix.close fd;
        raise e
    end
    else begin
      write_superblock fd ~page_size ~used:0;
      0
    end
  in
  let t =
    {
      page_size;
      payload_size = page_size - trailer_size;
      model;
      stats = Io_stats.create ();
      backend = File { fd; used; path };
      scratch = Bytes.create page_size;
      latch = Mutex.create ();
      next_lsn = 1;
      last_page = -2;
      streams = [];
      regions = 0;
      obs = None;
      faults = None;
    }
  in
  set_obs t obs;
  t

let page_size t = t.page_size
let payload_size t = t.payload_size

let path t =
  match t.backend with
  | Mem _ -> None
  | File f -> Some f.path

let page_count t =
  match t.backend with
  | Mem m -> m.used
  | File f -> f.used

(* Outside a parallel region the default stream is used unconditionally,
   so jobs=1 accounting is bit-identical to the pre-parallel code.  Inside
   one, a registered worker domain charges its own stream. *)
let active_stream t =
  if t.regions = 0 then None
  else List.assoc_opt (Domain.self () :> int) t.streams

let active_stats t =
  match active_stream t with Some s -> s.s_stats | None -> t.stats

(* Simulated wall-time that is not a page transfer: the group-commit
   daemon charges its commit-delay window here.  Always lands on the
   default accumulator — batching wait is a property of the shared log,
   not of whichever worker happened to lead the flush. *)
let charge_sync_ms t ms =
  Lock_rank.acquire Lock_rank.disk;
  Mutex.lock t.latch;
  t.stats.Io_stats.sim_ms <- t.stats.Io_stats.sim_ms +. ms;
  Mutex.unlock t.latch;
  Lock_rank.release Lock_rank.disk

let charge t ~page ~is_read =
  let stats, sequential =
    match active_stream t with
    | None ->
      let sequential = page = t.last_page + 1 || page = t.last_page in
      t.last_page <- page;
      (t.stats, sequential)
    | Some s ->
      let sequential = page = s.s_last_page + 1 || page = s.s_last_page in
      s.s_last_page <- page;
      (s.s_stats, sequential)
  in
  stats.Io_stats.sim_ms <-
    stats.Io_stats.sim_ms +. Io_model.cost t.model ~page_size:t.page_size ~sequential;
  if is_read then begin
    stats.reads <- stats.reads + 1;
    if sequential then stats.sequential_reads <- stats.sequential_reads + 1
  end
  else begin
    stats.writes <- stats.writes + 1;
    if sequential then stats.sequential_writes <- stats.sequential_writes + 1
  end;
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Io { page; write = not is_read; sequential })

(* The CRC slot lives at the start of the trailer, so the cover is the
   payload plus the trailer fields after the slot. *)
let trailer_crc t buf =
  let base = t.payload_size in
  Checksum.crc32 ~init:(Checksum.crc32 buf ~off:0 ~len:base) buf ~off:(base + 4) ~len:(trailer_size - 4)

let seal_trailer ?lsn t ~page buf =
  let base = t.payload_size in
  let lsn =
    match lsn with
    | Some l -> l
    | None ->
      let l = t.next_lsn in
      t.next_lsn <- l + 1;
      l
  in
  Natix_util.Bytes_util.set_u48 buf (base + 4) lsn;
  Natix_util.Bytes_util.set_u32 buf (base + 10) page;
  Natix_util.Bytes_util.set_u16 buf (base + 14) 0;
  Natix_util.Bytes_util.set_u32 buf base (trailer_crc t buf)

let check_trailer t ~page buf =
  let base = t.payload_size in
  let stored = Natix_util.Bytes_util.get_u32 buf base in
  if stored <> trailer_crc t buf then Error "checksum mismatch"
  else
    let stamped = Natix_util.Bytes_util.get_u32 buf (base + 10) in
    if stamped <> page then Error (Printf.sprintf "trailer names page %d" stamped) else Ok ()

(* Trailer LSN of a raw physical image ([read_raw] output), or -1 when the
   trailer fails verification — a torn page carries no trustworthy stamp,
   so redo must apply unconditionally. *)
let image_lsn t ~page buf =
  if Bytes.length buf <> t.page_size then -1
  else
    match check_trailer t ~page buf with
    | Ok () -> Natix_util.Bytes_util.get_u48 buf (t.payload_size + 4)
    | Error _ -> -1

(* All physical file writes of one page image funnel through here so the
   fault plan sees every one of them (data flushes and the zero image of a
   fresh allocation alike). *)
let write_physical t fd ~page image =
  let offset = (page + 1) * t.page_size in
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  let full () =
    let n = Unix.write fd image 0 t.page_size in
    if n <> t.page_size then bad ~page "short write (%d of %d bytes)" n t.page_size
  in
  match t.faults with
  | None -> full ()
  | Some plan -> (
    match Faulty_disk.on_write plan with
    | `Ok -> full ()
    | `Crash_lost -> raise Faulty_disk.Crash
    | `Crash_torn frac ->
      let keep = max 1 (min (t.page_size - 1) (int_of_float (frac *. float_of_int t.page_size))) in
      ignore (Unix.write fd image 0 keep);
      raise Faulty_disk.Crash)

let allocate_u t =
  match t.backend with
  | Mem m ->
    if m.used = Array.length m.pages then begin
      let bigger = Array.make (2 * m.used) Bytes.empty in
      Array.blit m.pages 0 bigger 0 m.used;
      m.pages <- bigger
    end;
    m.pages.(m.used) <- Bytes.make t.payload_size '\000';
    m.used <- m.used + 1;
    m.used - 1
  | File f ->
    let page = f.used in
    Bytes.fill t.scratch 0 t.page_size '\000';
    (* A fresh page has no covering log record: stamp LSN 0 so redo always
       applies the first record that ever touches it. *)
    seal_trailer ~lsn:0 t ~page t.scratch;
    write_physical t f.fd ~page t.scratch;
    f.used <- f.used + 1;
    write_superblock f.fd ~page_size:t.page_size ~used:f.used;
    page

let allocate t = with_latch t (fun () -> allocate_u t)

let check_bounds t page =
  if page < 0 || page >= page_count t then
    invalid_arg (Printf.sprintf "Disk: page %d out of bounds (count %d)" page (page_count t))

let read_physical t fd ~page buf =
  ignore (Unix.lseek fd ((page + 1) * t.page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < t.page_size then begin
      let n = Unix.read fd buf off (t.page_size - off) in
      if n = 0 then bad ~page "short read (%d of %d bytes)" off t.page_size;
      fill (off + n)
    end
  in
  fill 0

let checksum_failed t page reason =
  (match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Checksum_fail { page }));
  bad ~page "%s" reason

let read_u t page buf =
  check_bounds t page;
  assert (Bytes.length buf = t.payload_size);
  (match t.faults with None -> () | Some plan -> Faulty_disk.on_read plan ~page);
  charge t ~page ~is_read:true;
  match t.backend with
  | Mem m -> Bytes.blit m.pages.(page) 0 buf 0 t.payload_size
  | File f ->
    read_physical t f.fd ~page t.scratch;
    (match check_trailer t ~page t.scratch with
    | Ok () -> ()
    | Error reason -> checksum_failed t page reason);
    Bytes.blit t.scratch 0 buf 0 t.payload_size

let read t page buf = with_latch t (fun () -> read_u t page buf)

let write_u ?lsn t page buf =
  check_bounds t page;
  assert (Bytes.length buf = t.payload_size);
  charge t ~page ~is_read:false;
  match t.backend with
  | Mem m -> (
    match t.faults with
    | None -> Bytes.blit buf 0 m.pages.(page) 0 t.payload_size
    | Some plan -> (
      match Faulty_disk.on_write plan with
      | `Ok -> Bytes.blit buf 0 m.pages.(page) 0 t.payload_size
      | `Crash_lost -> raise Faulty_disk.Crash
      | `Crash_torn frac ->
        let keep = max 1 (int_of_float (frac *. float_of_int t.payload_size)) in
        Bytes.blit buf 0 m.pages.(page) 0 (min keep t.payload_size);
        raise Faulty_disk.Crash))
  | File f ->
    Bytes.blit buf 0 t.scratch 0 t.payload_size;
    seal_trailer ?lsn t ~page t.scratch;
    write_physical t f.fd ~page t.scratch

let write ?lsn t page buf = with_latch t (fun () -> write_u ?lsn t page buf)

(* Pages are read in ascending order, so [charge] prices the run as one
   seek plus sequential transfers — the same total as
   [Io_model.run_cost ~pages].  A failing page ends the run early instead
   of raising: read-ahead is speculative and must never fail the demand
   read that triggered it.  One latch hold covers the whole run, keeping
   the batch physically contiguous from the charged stream's viewpoint. *)
let read_run t ~first ?(speculative = true) bufs =
  with_latch t (fun () ->
      let completed = ref 0 in
      (try
         List.iteri
           (fun i buf ->
             let page = first + i in
             read_u t page buf;
             if speculative then begin
               let stats = active_stats t in
               stats.Io_stats.read_ahead_pages <- stats.Io_stats.read_ahead_pages + 1
             end;
             incr completed)
           bufs
       with Bad_page _ | Faulty_disk.Read_error _ -> ());
      !completed)

(* Raw (trailer-included) page access for the WAL and recovery.  No fault
   injection and no checksum verification: recovery must be able to read
   torn pages and put back exact pre-images, trailers and all. *)

let read_raw t page buf =
  with_latch t (fun () ->
      check_bounds t page;
      assert (Bytes.length buf = t.page_size);
      charge t ~page ~is_read:true;
      match t.backend with
      | Mem m ->
        Bytes.fill buf 0 t.page_size '\000';
        Bytes.blit m.pages.(page) 0 buf 0 t.payload_size
      | File f -> read_physical t f.fd ~page buf)

let write_raw t page buf =
  with_latch t (fun () ->
      check_bounds t page;
      assert (Bytes.length buf = t.page_size);
      charge t ~page ~is_read:false;
      match t.backend with
      | Mem m -> Bytes.blit buf 0 m.pages.(page) 0 t.payload_size
      | File f ->
        ignore (Unix.lseek f.fd ((page + 1) * t.page_size) Unix.SEEK_SET);
        let n = Unix.write f.fd buf 0 t.page_size in
        if n <> t.page_size then bad ~page "short write (%d of %d bytes)" n t.page_size)

let verify t page =
  with_latch t (fun () ->
      if page < 0 || page >= page_count t then Error "page out of bounds"
      else
        match t.backend with
        | Mem _ -> Ok ()
        | File f -> (
          charge t ~page ~is_read:true;
          match read_physical t f.fd ~page t.scratch with
          | () -> check_trailer t ~page t.scratch
          | exception Bad_page { reason; _ } -> Error reason))

let set_page_count t n =
  with_latch t (fun () ->
      if n < 0 || n > page_count t then
        invalid_arg (Printf.sprintf "Disk.set_page_count: %d not in [0, %d]" n (page_count t));
      match t.backend with
      | Mem m ->
        for p = n to m.used - 1 do
          m.pages.(p) <- Bytes.empty
        done;
        m.used <- n
      | File f ->
        f.used <- n;
        Unix.ftruncate f.fd ((n + 1) * t.page_size);
        write_superblock f.fd ~page_size:t.page_size ~used:n)

let stats t = t.stats
let model t = t.model
let size_bytes t = page_count t * t.page_size

(* ------------------------------------------------------------------ *)
(* Parallel regions and per-domain stat streams                        *)

let enter_parallel_region t = with_latch t (fun () -> t.regions <- t.regions + 1)

let exit_parallel_region t =
  with_latch t (fun () ->
      if t.regions <= 0 then invalid_arg "Disk.exit_parallel_region: no active region";
      t.regions <- t.regions - 1)

let in_parallel_region t = t.regions > 0

let with_stream t f =
  let id = (Domain.self () :> int) in
  let s = { s_stats = Io_stats.create (); s_last_page = -2 } in
  with_latch t (fun () -> t.streams <- (id, s) :: t.streams);
  let remove () =
    with_latch t (fun () ->
        let rec drop = function
          | [] -> []
          | (i, x) :: rest when i = id && x == s -> rest
          | entry :: rest -> entry :: drop rest
        in
        t.streams <- drop t.streams)
  in
  match f () with
  | v ->
    remove ();
    (v, s.s_stats)
  | exception e ->
    remove ();
    raise e

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f -> Unix.close f.fd
