type backend =
  | Mem of { mutable pages : bytes array; mutable used : int }
  | File of { fd : Unix.file_descr; mutable used : int }

type t = {
  page_size : int;
  model : Io_model.t;
  stats : Io_stats.t;
  backend : backend;
  mutable last_page : int;  (* for sequential-access detection; -2 = none *)
  mutable obs : Natix_obs.Obs.t option;
}

(* The file backend stores a one-page superblock at offset 0 holding the
   page size and page count, so data page [i] lives at offset
   [(i + 1) * page_size]. *)
let superblock_magic = 0x4e415458 (* "NATX" *)

(* The disk owns the simulated clock, so attaching a handle binds the
   handle's clock to this disk's [sim_ms] accumulator. *)
let set_obs t obs =
  t.obs <- obs;
  match obs with
  | Some o -> Natix_obs.Obs.set_clock o (fun () -> t.stats.Io_stats.sim_ms)
  | None -> ()

let obs t = t.obs

let in_memory ?(model = Io_model.dcas_34330w) ?obs ~page_size () =
  let t =
    {
      page_size;
      model;
      stats = Io_stats.create ();
      backend = Mem { pages = Array.make 64 Bytes.empty; used = 0 };
      last_page = -2;
      obs = None;
    }
  in
  set_obs t obs;
  t

let read_superblock fd page_size =
  let buf = Bytes.create 12 in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Unix.read fd buf 0 12 in
  if n <> 12 then failwith "Disk.on_file: corrupt superblock";
  if Natix_util.Bytes_util.get_u32 buf 0 <> superblock_magic then
    failwith "Disk.on_file: not a natix disk file";
  let stored_page_size = Natix_util.Bytes_util.get_u32 buf 4 in
  if stored_page_size <> page_size then
    failwith
      (Printf.sprintf "Disk.on_file: file has page size %d, expected %d" stored_page_size page_size);
  Natix_util.Bytes_util.get_u32 buf 8

let write_superblock fd ~page_size ~used =
  let buf = Bytes.make 12 '\000' in
  Natix_util.Bytes_util.set_u32 buf 0 superblock_magic;
  Natix_util.Bytes_util.set_u32 buf 4 page_size;
  Natix_util.Bytes_util.set_u32 buf 8 used;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Unix.write fd buf 0 12 in
  if n <> 12 then failwith "Disk.on_file: short superblock write"

let detect_page_size path =
  if not (Sys.file_exists path) then None
  else begin
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let buf = Bytes.create 8 in
        let n = Unix.read fd buf 0 8 in
        if n < 8 || Natix_util.Bytes_util.get_u32 buf 0 <> superblock_magic then None
        else Some (Natix_util.Bytes_util.get_u32 buf 4))
  end

let on_file ?(model = Io_model.dcas_34330w) ?obs ~page_size path =
  let exists = Sys.file_exists path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let used =
    if exists && Unix.((fstat fd).st_size) > 0 then read_superblock fd page_size
    else begin
      write_superblock fd ~page_size ~used:0;
      0
    end
  in
  let t =
    {
      page_size;
      model;
      stats = Io_stats.create ();
      backend = File { fd; used };
      last_page = -2;
      obs = None;
    }
  in
  set_obs t obs;
  t

let page_size t = t.page_size

let page_count t =
  match t.backend with
  | Mem m -> m.used
  | File f -> f.used

let charge t ~page ~is_read =
  let sequential = page = t.last_page + 1 || page = t.last_page in
  t.last_page <- page;
  t.stats.sim_ms <-
    t.stats.sim_ms +. Io_model.cost t.model ~page_size:t.page_size ~sequential;
  if is_read then begin
    t.stats.reads <- t.stats.reads + 1;
    if sequential then t.stats.sequential_reads <- t.stats.sequential_reads + 1
  end
  else begin
    t.stats.writes <- t.stats.writes + 1;
    if sequential then t.stats.sequential_writes <- t.stats.sequential_writes + 1
  end;
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Io { page; write = not is_read; sequential })

let allocate t =
  match t.backend with
  | Mem m ->
    if m.used = Array.length m.pages then begin
      let bigger = Array.make (2 * m.used) Bytes.empty in
      Array.blit m.pages 0 bigger 0 m.used;
      m.pages <- bigger
    end;
    m.pages.(m.used) <- Bytes.make t.page_size '\000';
    m.used <- m.used + 1;
    m.used - 1
  | File f ->
    let page = f.used in
    let zero = Bytes.make t.page_size '\000' in
    ignore (Unix.lseek f.fd ((page + 1) * t.page_size) Unix.SEEK_SET);
    let n = Unix.write f.fd zero 0 t.page_size in
    if n <> t.page_size then failwith "Disk.allocate: short write";
    f.used <- f.used + 1;
    write_superblock f.fd ~page_size:t.page_size ~used:f.used;
    page

let check_bounds t page =
  if page < 0 || page >= page_count t then
    invalid_arg (Printf.sprintf "Disk: page %d out of bounds (count %d)" page (page_count t))

let read t page buf =
  check_bounds t page;
  assert (Bytes.length buf = t.page_size);
  charge t ~page ~is_read:true;
  match t.backend with
  | Mem m -> Bytes.blit m.pages.(page) 0 buf 0 t.page_size
  | File f ->
    ignore (Unix.lseek f.fd ((page + 1) * t.page_size) Unix.SEEK_SET);
    let rec fill off =
      if off < t.page_size then begin
        let n = Unix.read f.fd buf off (t.page_size - off) in
        if n = 0 then failwith "Disk.read: unexpected end of file";
        fill (off + n)
      end
    in
    fill 0

let write t page buf =
  check_bounds t page;
  assert (Bytes.length buf = t.page_size);
  charge t ~page ~is_read:false;
  match t.backend with
  | Mem m -> Bytes.blit buf 0 m.pages.(page) 0 t.page_size
  | File f ->
    ignore (Unix.lseek f.fd ((page + 1) * t.page_size) Unix.SEEK_SET);
    let n = Unix.write f.fd buf 0 t.page_size in
    if n <> t.page_size then failwith "Disk.write: short write"

let stats t = t.stats
let size_bytes t = page_count t * t.page_size

let close t =
  match t.backend with
  | Mem _ -> ()
  | File f -> Unix.close f.fd
