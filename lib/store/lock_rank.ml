(* Debug lock-rank assertion.  Ranks, ascending acquisition order:
   registry (1) < conn (2) < tenant (3) < doc (4) < struct (5)
   < arena (6) < alloc (7) < stripe (8) < frame latch (9) < pool (10)
   < wal (11) < disk (12).
   The serving layer's locks (tenant registry, connection/dispatch state,
   per-tenant read-write gates) sit below every storage-engine lock: a
   request holds them while executing arbitrary store operations, so they
   must never be acquired while an engine lock is held.  [arena] is a
   per-document allocation arena lock; [alloc] is the global free-page
   allocator an arena refill grabs page runs from — both are held while
   fixing and formatting pages, hence below stripe/pool/disk.  Try-locks
   are exempt (they cannot contribute to a deadlock cycle) and are
   recorded with [note_try] so their releases still balance. *)

exception Violation of string

let unordered = 0
let registry = 1
let conn = 2
let tenant = 3
let doc = 4
let structure = 5
let arena = 6
let alloc = 7
let stripe = 8
let frame = 9
let pool = 10
let wal = 11
let disk = 12

let name_of = function
  | 0 -> "unordered"
  | 1 -> "registry"
  | 2 -> "conn"
  | 3 -> "tenant"
  | 4 -> "doc"
  | 5 -> "struct"
  | 6 -> "arena"
  | 7 -> "alloc"
  | 8 -> "stripe"
  | 9 -> "frame"
  | 10 -> "pool"
  | 11 -> "wal"
  | 12 -> "disk"
  | r -> Printf.sprintf "rank%d" r

let enabled = Atomic.make (Sys.getenv_opt "NATIX_LOCK_RANK" <> None)
let violation_count = Atomic.make 0
let raise_on_violation = Atomic.make true

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let violations () = Atomic.get violation_count

(* Per-domain stack of held ranks.  A blocking acquisition is pushed
   before the underlying [Mutex.lock], so the check reflects intent even
   while the domain is parked waiting for the lock. *)
let held : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let acquire rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    (* Strictly-lower rank while holding a higher one is the violation;
       equal ranks are permitted because the only same-rank multi-holds
       (all stripes in index order during flush/clear) follow a documented
       total order of their own.  Rank-[unordered] holds (latches of
       freshly created frames: every waiter on one holds nothing, so no
       wait cycle can pass through them) neither constrain later
       acquisitions nor get checked themselves. *)
    (match List.find_opt (fun r -> r > 0) !stack with
    | Some top when rank > 0 && rank < top ->
      Atomic.incr violation_count;
      if Atomic.get raise_on_violation then
        raise
          (Violation
             (Printf.sprintf "lock-rank violation: acquiring %s while holding %s" (name_of rank)
                (name_of top)))
    | _ -> ());
    stack := rank :: !stack
  end

(* Successful try-lock: no ordering check — [Mutex.try_lock] never blocks,
   so it cannot close a wait cycle — but the hold is still tracked so that
   locks taken later (e.g. the disk latch during an eviction write-back)
   compare against the true top of the stack. *)
let note_try rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    stack := rank :: !stack
  end

let release rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    let rec drop = function
      | [] -> []
      | r :: rest when r = rank -> rest
      | r :: rest -> r :: drop rest
    in
    stack := drop !stack
  end
