(* Debug lock-rank assertion.  Ranks, ascending acquisition order:
   registry (1) < conn (2) < tenant (3) < doc (4) < struct (5)
   < stripe (6) < frame latch (7) < pool (8) < wal (9) < disk (10).
   The serving layer's locks (tenant registry, connection/dispatch state,
   per-tenant read-write gates) sit below every storage-engine lock: a
   request holds them while executing arbitrary store operations, so they
   must never be acquired while an engine lock is held.  Try-locks are
   exempt (they cannot contribute to a deadlock cycle) and are recorded
   with [note_try] so their releases still balance. *)

exception Violation of string

let unordered = 0
let registry = 1
let conn = 2
let tenant = 3
let doc = 4
let structure = 5
let stripe = 6
let frame = 7
let pool = 8
let wal = 9
let disk = 10

let name_of = function
  | 0 -> "unordered"
  | 1 -> "registry"
  | 2 -> "conn"
  | 3 -> "tenant"
  | 4 -> "doc"
  | 5 -> "struct"
  | 6 -> "stripe"
  | 7 -> "frame"
  | 8 -> "pool"
  | 9 -> "wal"
  | 10 -> "disk"
  | r -> Printf.sprintf "rank%d" r

let enabled = Atomic.make (Sys.getenv_opt "NATIX_LOCK_RANK" <> None)
let violation_count = Atomic.make 0
let raise_on_violation = Atomic.make true

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let violations () = Atomic.get violation_count

(* Per-domain stack of held ranks.  A blocking acquisition is pushed
   before the underlying [Mutex.lock], so the check reflects intent even
   while the domain is parked waiting for the lock. *)
let held : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let acquire rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    (* Strictly-lower rank while holding a higher one is the violation;
       equal ranks are permitted because the only same-rank multi-holds
       (all stripes in index order during flush/clear) follow a documented
       total order of their own.  Rank-[unordered] holds (latches of
       freshly created frames: every waiter on one holds nothing, so no
       wait cycle can pass through them) neither constrain later
       acquisitions nor get checked themselves. *)
    (match List.find_opt (fun r -> r > 0) !stack with
    | Some top when rank > 0 && rank < top ->
      Atomic.incr violation_count;
      if Atomic.get raise_on_violation then
        raise
          (Violation
             (Printf.sprintf "lock-rank violation: acquiring %s while holding %s" (name_of rank)
                (name_of top)))
    | _ -> ());
    stack := rank :: !stack
  end

(* Successful try-lock: no ordering check — [Mutex.try_lock] never blocks,
   so it cannot close a wait cycle — but the hold is still tracked so that
   locks taken later (e.g. the disk latch during an eviction write-back)
   compare against the true top of the stack. *)
let note_try rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    stack := rank :: !stack
  end

let release rank =
  if Atomic.get enabled then begin
    let stack = Domain.DLS.get held in
    let rec drop = function
      | [] -> []
      | r :: rest when r = rank -> rest
      | r :: rest -> r :: drop rest
    in
    stack := drop !stack
  end
