(** RID-stable record operations over a segment.

    Records are identified by [(page, slot)] RIDs (paper §2.1).  When an
    update outgrows its page the record is transparently moved elsewhere and
    a tombstone (an 8-byte forward RID) is left in the home slot, so RIDs
    held by other records — proxies and standalone parent pointers — never
    need rewriting.  Forwarding is at most one hop: a record that moves
    again has its tombstone repointed, never chained.  The extra page access
    through a tombstone is charged like any other, so clustering experiments
    see its true cost. *)

open Natix_util

exception Record_too_large of int

type t

val create : Segment.t -> t
val segment : t -> Segment.t

(** Observability handle inherited from the segment; record allocate /
    relocate / free events and the record-size histogram flow through it. *)
val obs : t -> Natix_obs.Obs.t option

(** Largest storable record in bytes. *)
val max_len : t -> int

(** [insert t ?owner ?near ?policy data] stores a new record, preferring a
    page close to [near] (used to place children near their parents).
    [owner] selects the allocation arena explicitly (else [near]'s arena,
    else the shared arena); [policy] selects the fallback search, see
    {!Segment.find_space}.
    @raise Record_too_large if [data] exceeds {!max_len}. *)
val insert : t -> ?owner:int -> ?near:int -> ?policy:[ `Forward | `First_fit ] -> string -> Rid.t

(** [read t rid] is a copy of the record's contents. *)
val read : t -> Rid.t -> string

(** [with_record t rid f] runs [f page ~off ~len] on the pinned page image
    holding the record's data (after following any forwarding), avoiding a
    copy. *)
val with_record : t -> Rid.t -> (bytes -> off:int -> len:int -> 'a) -> 'a

(** [update t rid data] replaces the record's contents, moving it to
    another page behind a tombstone when necessary.  The RID stays valid.
    @raise Record_too_large if [data] exceeds {!max_len}. *)
val update : t -> Rid.t -> string -> unit

(** [patch t rid ~off data] overwrites [length data] bytes of the record
    body in place at offset [off], without resizing.  Used for cheap
    in-record pointer updates (e.g. reparenting a subtree record).
    @raise Invalid_argument if the range exceeds the record. *)
val patch : t -> Rid.t -> off:int -> string -> unit

(** Delete the record (and its moved body, if forwarded). *)
val delete : t -> Rid.t -> unit

val length : t -> Rid.t -> int
val exists : t -> Rid.t -> bool

(** Page where the record's bytes actually live (after forwarding); used by
    allocation-locality heuristics and by tests. *)
val home_page : t -> Rid.t -> int

(** True if the record is currently stored behind a tombstone. *)
val is_forwarded : t -> Rid.t -> bool
