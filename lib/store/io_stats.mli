(** Counters for disk activity, in pages and simulated milliseconds. *)

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable sequential_reads : int;
  mutable sequential_writes : int;
  mutable read_ahead_pages : int;
      (** pages fetched speculatively by buffer-pool read-ahead; a subset of
          [reads] *)
  mutable sim_ms : float;  (** simulated elapsed time under the {!Io_model} *)
}

val create : unit -> t
val reset : t -> unit

(** [copy t] is a snapshot of [t]. *)
val copy : t -> t

(** [diff later earlier] is the per-field difference; used to report the
    activity of one measured operation. *)
val diff : t -> t -> t

(** [add t d] accumulates [d] into [t] field-wise.  Merging per-domain
    accumulators after a parallel region happens in worker-index order, so
    the float [sim_ms] sum is deterministic for a deterministic set of
    per-worker figures. *)
val add : t -> t -> unit

val total_ios : t -> int

(** Human-readable one-liner; the sequential figures are subsets of the
    read/write totals. *)
val pp : Format.formatter -> t -> unit

(** The same counters as one JSON object
    [{"reads":..,"sequential_reads":..,"writes":..,"sequential_writes":..,
    "sim_ms":..}]; the bench harness's [BENCH_natix.json] export and the
    CLI inspector both use this formatter. *)
val pp_json : Format.formatter -> t -> unit
