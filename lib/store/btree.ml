open Natix_util

exception Corrupt of string

(* Node encoding (record body):
     leaf:     [0x00][u16 n][8B next leaf RID][(u16 klen)(key)(8B value)]*
     internal: [0x01][u16 n][8B child0]      [(u16 klen)(key)(8B child)]*
   In an internal node, keys separate children: child i holds keys
   < key i <= child i+1 (keys are copied up from leaf splits). *)

type node =
  | Leaf of { mutable next : Rid.t; mutable entries : (string * string) list }
  | Internal of { mutable child0 : Rid.t; mutable entries : (string * Rid.t) list }

type t = { rm : Record_manager.t; root : Rid.t; obs : Natix_obs.Obs.t option }

let value_size = 8

let max_node_bytes t =
  (* Leave room so a split's two halves always fit comfortably. *)
  Record_manager.max_len t.rm

let max_key_len t = max 16 (max_node_bytes t / 4)

(* ---- codec -------------------------------------------------------- *)

let encode node =
  let buf = Buffer.create 256 in
  let u16 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))
  in
  let rid r =
    let b = Bytes.create Rid.encoded_size in
    Rid.write b 0 r;
    Buffer.add_bytes buf b
  in
  (match node with
  | Leaf l ->
    Buffer.add_char buf '\000';
    u16 (List.length l.entries);
    rid l.next;
    List.iter
      (fun (k, v) ->
        u16 (String.length k);
        Buffer.add_string buf k;
        assert (String.length v = value_size);
        Buffer.add_string buf v)
      l.entries
  | Internal n ->
    Buffer.add_char buf '\001';
    u16 (List.length n.entries);
    rid n.child0;
    List.iter
      (fun (k, c) ->
        u16 (String.length k);
        Buffer.add_string buf k;
        rid c)
      n.entries);
  Buffer.contents buf

let decode body =
  let b = Bytes.unsafe_of_string body in
  let pos = ref 3 in
  let n = Bytes_util.get_u16 b 1 in
  let rid () =
    let r = Rid.read b !pos in
    pos := !pos + Rid.encoded_size;
    r
  in
  let str len =
    let s = String.sub body !pos len in
    pos := !pos + len;
    s
  in
  let key () =
    let len = Bytes_util.get_u16 b !pos in
    pos := !pos + 2;
    str len
  in
  match body.[0] with
  | '\000' ->
    let next = rid () in
    let entries = List.init n (fun _ -> let k = key () in (k, str value_size)) in
    Leaf { next; entries }
  | '\001' ->
    let child0 = rid () in
    let entries = List.init n (fun _ -> let k = key () in (k, rid ())) in
    Internal { child0; entries }
  | c -> raise (Corrupt (Printf.sprintf "bad node tag %C" c))

let encoded_size node =
  (* Mirror [encode] without building the string. *)
  match node with
  | Leaf l ->
    3 + Rid.encoded_size
    + List.fold_left (fun a (k, _) -> a + 2 + String.length k + value_size) 0 l.entries
  | Internal n ->
    3 + Rid.encoded_size
    + List.fold_left (fun a (k, _) -> a + 2 + String.length k + Rid.encoded_size) 0 n.entries

let is_leaf_node = function Leaf _ -> true | Internal _ -> false

let note t rid op node =
  match t.obs with
  | None -> ()
  | Some obs ->
    Natix_obs.Obs.emit obs (Natix_obs.Event.Btree_node { rid; op; leaf = is_leaf_node node })

let read_node t rid =
  let node = decode (Record_manager.read t.rm rid) in
  note t rid Natix_obs.Event.Bt_read node;
  node

let write_node t rid node =
  note t rid Natix_obs.Event.Bt_write node;
  Record_manager.update t.rm rid (encode node)

let alloc_node t ?near node =
  let rid = Record_manager.insert t.rm ?near (encode node) in
  note t rid Natix_obs.Event.Bt_alloc node;
  rid

(* ---- construction -------------------------------------------------- *)

let create rm =
  let root = Record_manager.insert rm (encode (Leaf { next = Rid.null; entries = [] })) in
  { rm; root; obs = Record_manager.obs rm }

let open_tree rm root = { rm; root; obs = Record_manager.obs rm }
let root t = t.root

(* ---- search --------------------------------------------------------- *)

(* Child of an internal node responsible for [key]: child i holds keys
   k with sep_{i} <= k < sep_{i+1} (child0 for keys below the first
   separator). *)
let route entries child0 key =
  let rec go prev = function
    | [] -> prev
    | (sep, child) :: rest -> if key < sep then prev else go child rest
  in
  go child0 entries

let rec find_leaf t rid key =
  match read_node t rid with
  | Leaf _ -> rid
  | Internal n -> find_leaf t (route n.entries n.child0 key) key

let find t ~key =
  match read_node t (find_leaf t t.root key) with
  | Leaf l -> List.assoc_opt key l.entries
  | Internal _ -> assert false

let mem t ~key = find t ~key <> None

(* ---- insertion ------------------------------------------------------ *)

let insert_sorted key value entries =
  let rec go = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when k = key -> (key, value) :: rest
    | ((k, _) as e) :: rest -> if key < k then (key, value) :: e :: rest else e :: go rest
  in
  go entries

(* Split a sorted entry list in half; returns (left, sep, right) where
   every key in right is >= sep. *)
let halve entries =
  let n = List.length entries in
  let rec take i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | e :: rest -> take (i - 1) (e :: acc) rest
  in
  let left, right = take (n / 2) [] entries in
  match right with
  | (sep, _) :: _ -> (left, sep, right)
  | [] -> failwith "Btree: cannot split a tiny node"

(* Insert into the subtree at [rid]; returns [Some (sep, right_rid)] when
   the node split. *)
let rec insert_at t rid key value : (string * Rid.t) option =
  match read_node t rid with
  | Leaf l ->
    l.entries <- insert_sorted key value l.entries;
    if encoded_size (Leaf l) <= max_node_bytes t then begin
      write_node t rid (Leaf l);
      None
    end
    else begin
      let left, sep, right = halve l.entries in
      let right_rid =
        alloc_node t ~near:(Rid.page rid) (Leaf { next = l.next; entries = right })
      in
      l.entries <- left;
      l.next <- right_rid;
      write_node t rid (Leaf l);
      Some (sep, right_rid)
    end
  | Internal n -> (
    let child = route n.entries n.child0 key in
    match insert_at t child key value with
    | None -> None
    | Some (sep, right_rid) ->
      n.entries <- insert_sorted sep right_rid n.entries;
      if encoded_size (Internal n) <= max_node_bytes t then begin
        write_node t rid (Internal n);
        None
      end
      else begin
        let left, sep_up, right = halve n.entries in
        (* The separator moves up; the right node's child0 is the child
           the separator used to point at. *)
        match right with
        | (_, sep_child) :: right_rest ->
          let right_rid =
            alloc_node t ~near:(Rid.page rid)
              (Internal { child0 = sep_child; entries = right_rest })
          in
          n.entries <- left;
          write_node t rid (Internal n);
          Some (sep_up, right_rid)
        | [] -> assert false
      end)

let insert t ~key ~value =
  if String.length value <> value_size then invalid_arg "Btree.insert: value must be 8 bytes";
  if String.length key > max_key_len t then invalid_arg "Btree.insert: key too long";
  match insert_at t t.root key value with
  | None -> ()
  | Some (sep, right_rid) -> (
    (* Root split: keep the root RID stable by moving the old root's
       content into a fresh record and rewriting the root in place. *)
    match read_node t t.root with
    | Leaf l ->
      let left_rid = alloc_node t ~near:(Rid.page t.root) (Leaf l) in
      (* The left node keeps its chain link to the right node. *)
      write_node t t.root (Internal { child0 = left_rid; entries = [ (sep, right_rid) ] })
    | Internal n ->
      let left_rid = alloc_node t ~near:(Rid.page t.root) (Internal n) in
      write_node t t.root (Internal { child0 = left_rid; entries = [ (sep, right_rid) ] }))

(* ---- deletion (lazy) ------------------------------------------------ *)

let remove t ~key =
  let rid = find_leaf t t.root key in
  match read_node t rid with
  | Leaf l ->
    let n = List.length l.entries in
    l.entries <- List.filter (fun (k, _) -> k <> key) l.entries;
    if List.length l.entries <> n then write_node t rid (Leaf l)
  | Internal _ -> assert false

(* ---- scans ----------------------------------------------------------- *)

let leftmost_leaf t =
  let rec go rid =
    match read_node t rid with
    | Leaf _ -> rid
    | Internal n -> go n.child0
  in
  go t.root

let iter_range t ~lo ~hi f =
  let start = match lo with Some k -> find_leaf t t.root k | None -> leftmost_leaf t in
  let rec walk rid =
    if not (Rid.is_null rid) then begin
      match read_node t rid with
      | Internal _ -> assert false
      | Leaf l ->
        let stop = ref false in
        List.iter
          (fun (k, v) ->
            let above = match lo with Some lo -> k >= lo | None -> true in
            let below = match hi with Some hi -> k < hi | None -> true in
            if above && below then f k v else if not below then stop := true)
          l.entries;
        if not !stop then walk l.next
    end
  in
  walk start

let iter t f = iter_range t ~lo:None ~hi:None f

let cardinal t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let height t =
  let rec go rid acc =
    match read_node t rid with
    | Leaf _ -> acc
    | Internal n -> go n.child0 (acc + 1)
  in
  go t.root 1

(* ---- bulk ------------------------------------------------------------ *)

let clear t =
  (* Delete every node record except the root, which is reset to an empty
     leaf so the tree's RID stays stable. *)
  let rec nodes rid acc =
    match read_node t rid with
    | Leaf _ -> rid :: acc
    | Internal n ->
      let acc = rid :: acc in
      List.fold_left (fun acc (_, c) -> nodes c acc) (nodes n.child0 acc) n.entries
  in
  List.iter
    (fun rid -> if not (Rid.equal rid t.root) then Record_manager.delete t.rm rid)
    (nodes t.root []);
  write_node t t.root (Leaf { next = Rid.null; entries = [] })

(* ---- invariants ------------------------------------------------------ *)

let check t =
  let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt in
  let rec sorted = function
    | a :: b :: rest -> if a >= b then fail "keys not strictly sorted" else sorted (b :: rest)
    | _ -> ()
  in
  (* Collect leaves in tree order and verify key ranges. *)
  let leaves_in_order = ref [] in
  let rec walk rid lo hi =
    match read_node t rid with
    | Leaf l ->
      leaves_in_order := rid :: !leaves_in_order;
      sorted (List.map fst l.entries);
      List.iter
        (fun (k, _) ->
          (match lo with Some lo when k < lo -> fail "key below range" | _ -> ());
          match hi with Some hi when k >= hi -> fail "key above range" | _ -> ())
        l.entries
    | Internal n ->
      sorted (List.map fst n.entries);
      let rec children prev_lo child = function
        | [] -> walk child prev_lo hi
        | (sep, next_child) :: rest ->
          walk child prev_lo (Some sep);
          children (Some sep) next_child rest
      in
      children lo n.child0 n.entries
  in
  walk t.root None None;
  (* The leaf chain must visit the same leaves in the same order. *)
  let in_order = List.rev !leaves_in_order in
  let rec chain rid acc =
    if Rid.is_null rid then List.rev acc
    else
      match read_node t rid with
      | Leaf l -> chain l.next (rid :: acc)
      | Internal _ -> fail "leaf chain reaches an internal node"
  in
  let chained = chain (leftmost_leaf t) [] in
  if not (List.length chained = List.length in_order && List.for_all2 Rid.equal chained in_order)
  then fail "leaf chain disagrees with tree order"
