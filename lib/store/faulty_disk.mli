(** Deterministic fault injection for the disk layer.

    A fault plan is attached to a {!Disk.t} (and shared with its {!Wal.t});
    every physical page or log write consults {!on_write} and every page
    read consults {!on_read}.  All randomness comes from the plan's own
    {!Natix_util.Prng}, so a given seed reproduces the exact same failure
    byte-for-byte — the crash-consistency harness sweeps "crash after [n]
    writes" points this way.

    Simulated failures:
    - {b crash after N writes} ({!arm_crash}): the [n+1]-th write either
      tears (a prefix of the new image is persisted over the old bytes) or
      is lost entirely, and {!Crash} is raised to kill the simulated
      process.  After a crash every further write is lost and every read
      fails, so leaked handles cannot persist post-mortem state.
    - {b transient read errors} ({!set_read_fail_p}, {!fail_next_reads}):
      {!Read_error} is raised; the buffer pool retries these. *)

(** The simulated process death.  Escapes through every store layer; the
    test harness catches it, closes the file descriptors, and reopens the
    store to exercise recovery. *)
exception Crash

(** A transient read failure on the given page (a retry may succeed). *)
exception Read_error of int

(** What a single write should do: complete, persist only a prefix
    ([`Crash_torn fraction], fraction in (0, 1)) and crash, or be dropped
    entirely and crash. *)
type write_outcome = [ `Ok | `Crash_torn of float | `Crash_lost ]

type t

val create : seed:int64 -> unit -> t

(** [arm_crash t n] makes the [n+1]-th subsequent write crash ([n = 0]
    crashes the very next write).  [torn] (default true) allows the crashing
    write to be torn; otherwise it is always lost whole. *)
val arm_crash : ?torn:bool -> t -> int -> unit

(** Clear the crash trigger and all read-failure knobs ({!crashed} state is
    kept). *)
val disarm : t -> unit

(** Probability that any given read fails transiently. *)
val set_read_fail_p : t -> float -> unit

(** Fail exactly the next [n] reads, then recover. *)
val fail_next_reads : t -> int -> unit

(** Writes observed so far (used to size crash-point sweeps). *)
val writes_seen : t -> int

val reads_seen : t -> int

(** True once the armed crash has fired. *)
val crashed : t -> bool

(** Called by the disk/WAL before each write; when the result is a crash
    outcome the caller persists the prescribed prefix (if torn) and then
    raises {!Crash}. *)
val on_write : t -> write_outcome

(** Called by the disk before each page read.
    @raise Read_error when the plan says this read fails. *)
val on_read : t -> page:int -> unit
