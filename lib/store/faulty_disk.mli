(** Deterministic fault injection for the disk layer.

    A fault plan is attached to a {!Disk.t} (and shared with its {!Wal.t});
    every physical page or log write consults {!on_write} and every page
    read consults {!on_read}.  All randomness comes from the plan's own
    {!Natix_util.Prng}, so a given seed reproduces the exact same failure
    byte-for-byte — the crash-consistency harness sweeps "crash after [n]
    writes" points this way.

    Simulated failures:
    - {b crash after N writes} ({!arm_crash}): the [n+1]-th write either
      tears (a prefix of the new image is persisted over the old bytes) or
      is lost entirely, and {!Crash} is raised to kill the simulated
      process.  After a crash every further write is lost and every read
      fails, so leaked handles cannot persist post-mortem state.
    - {b transient read errors} ({!set_read_fail_p}, {!fail_next_reads}):
      {!Read_error} is raised; the buffer pool retries these. *)

(** The simulated process death.  Escapes through every store layer; the
    test harness catches it, closes the file descriptors, and reopens the
    store to exercise recovery. *)
exception Crash

(** A transient read failure on the given page (a retry may succeed). *)
exception Read_error of int

(** What a single write should do: complete, persist only a prefix
    ([`Crash_torn fraction], fraction in (0, 1)) and crash, or be dropped
    entirely and crash. *)
type write_outcome = [ `Ok | `Crash_torn of float | `Crash_lost ]

(** What a log fsync of [pending] buffered records should do: persist all
    of them, persist only the first [k] and crash ([`Crash_keep k]), or —
    modelling write reordering inside the un-fsynced window — persist an
    arbitrary subset at their true file offsets and crash
    ([`Crash_subset keep], one flag per pending record). *)
type fsync_outcome = [ `Ok | `Crash_keep of int | `Crash_subset of bool array ]

(** Failure shape for an armed fsync crash: the whole batch lost, a random
    tail lost, or a random subset surviving (reordering). *)
type fsync_mode = [ `Lose_all | `Lose_tail | `Subset ]

type t

val create : seed:int64 -> unit -> t

(** [arm_crash t n] makes the [n+1]-th subsequent write crash ([n = 0]
    crashes the very next write).  [torn] (default true) allows the crashing
    write to be torn; otherwise it is always lost whole. *)
val arm_crash : ?torn:bool -> t -> int -> unit

(** [arm_fsync_crash t n] makes the [n+1]-th subsequent log fsync crash with
    the given {!fsync_mode} (default [`Lose_all]). *)
val arm_fsync_crash : ?mode:fsync_mode -> t -> int -> unit

(** Clear the crash trigger and all read-failure knobs ({!crashed} state is
    kept). *)
val disarm : t -> unit

(** Probability that any given read fails transiently. *)
val set_read_fail_p : t -> float -> unit

(** Fail exactly the next [n] reads, then recover. *)
val fail_next_reads : t -> int -> unit

(** Writes observed so far (used to size crash-point sweeps). *)
val writes_seen : t -> int

val reads_seen : t -> int

(** Log fsyncs observed so far (used to size fsync-fault sweeps). *)
val fsyncs_seen : t -> int

(** True once the armed crash has fired. *)
val crashed : t -> bool

(** Called by the disk/WAL before each write; when the result is a crash
    outcome the caller persists the prescribed prefix (if torn) and then
    raises {!Crash}. *)
val on_write : t -> write_outcome

(** Called by the WAL once per non-empty fsync batch; [pending] is the
    number of buffered records.  On [`Ok] the records count as [pending]
    writes against the armed write-crash budget; a write-crash point landing
    inside the batch persists the prefix that fit and crashes. *)
val on_fsync : t -> pending:int -> fsync_outcome

(** Called by the disk before each page read.
    @raise Read_error when the plan says this read fails. *)
val on_read : t -> page:int -> unit
