open Natix_util

(* File layout.  A 16-byte header:

     [0..4)   magic "NTWL"
     [4..6)   version
     [6..8)   zero padding
     [8..12)  page size of the disk this log protects
     [12..16) zero padding

   followed by entries of the form

     [0]      kind (1 = Begin, 2 = Before, 3 = Commit)
     [1..7)   LSN
     [7..11)  argument (Begin/Commit: committed page count; Before: page id)
     [11..15) payload length (Before: physical page size, else 0)
     [15..15+len)  payload (Before: the raw pre-image, trailer included)
     [..+4)   CRC-32 over everything above

   The per-entry checksum makes a torn tail detectable: recovery replays
   the longest valid prefix and discards the rest.  Because every entry is
   appended {e before} the data write it protects, a torn last entry
   implies its page was never touched, so discarding it is safe. *)

let magic = 0x4e54574c (* "NTWL" *)
let version = 1
let header_size = 16
let entry_header_size = 15

let kind_begin = 1
let kind_before = 2
let kind_commit = 3

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  logged : (int, unit) Hashtbl.t;  (* pages with a before-image this batch *)
  mutable base : int;  (* page count at the last commit; rollback target *)
  mutable next_lsn : int;
  mutable appends : int;
  mutable bytes_logged : int;
  obs : Natix_obs.Obs.t option;
  mutable faults : Faulty_disk.t option;
}

let write_header t =
  let buf = Bytes.make header_size '\000' in
  Bytes_util.set_u32 buf 0 magic;
  Bytes_util.set_u16 buf 4 version;
  Bytes_util.set_u32 buf 8 t.page_size;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  if Unix.write t.fd buf 0 header_size <> header_size then
    failwith "Wal: short header write"

(* Append one entry at the end of the log, consulting the fault plan so
   crash points cover log writes too (a torn append is exactly the torn
   tail recovery must cope with). *)
let append t ~kind ~arg payload =
  let len = match payload with None -> 0 | Some p -> Bytes.length p in
  let total = entry_header_size + len + 4 in
  let buf = Bytes.create total in
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  Bytes_util.set_u8 buf 0 kind;
  Bytes_util.set_u48 buf 1 lsn;
  Bytes_util.set_u32 buf 7 arg;
  Bytes_util.set_u32 buf 11 len;
  (match payload with None -> () | Some p -> Bytes.blit p 0 buf entry_header_size len);
  Bytes_util.set_u32 buf (entry_header_size + len)
    (Checksum.crc32 buf ~off:0 ~len:(entry_header_size + len));
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
  let full () =
    if Unix.write t.fd buf 0 total <> total then failwith "Wal: short append";
    t.appends <- t.appends + 1;
    t.bytes_logged <- t.bytes_logged + total
  in
  (match t.faults with
  | None -> full ()
  | Some plan -> (
    match Faulty_disk.on_write plan with
    | `Ok -> full ()
    | `Crash_lost -> raise Faulty_disk.Crash
    | `Crash_torn frac ->
      let keep = max 1 (min (total - 1) (int_of_float (frac *. float_of_int total))) in
      ignore (Unix.write t.fd buf 0 keep);
      raise Faulty_disk.Crash));
  lsn

let create ?obs ?faults ~page_size ~base path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      fd;
      path;
      page_size;
      logged = Hashtbl.create 64;
      base;
      next_lsn = 1;
      appends = 0;
      bytes_logged = 0;
      obs;
      faults;
    }
  in
  write_header t;
  ignore (append t ~kind:kind_begin ~arg:base None);
  t

let path t = t.path
let base t = t.base
let appends t = t.appends
let bytes_logged t = t.bytes_logged
let set_faults t faults = t.faults <- faults

let needs_before t page = page >= 0 && page < t.base && not (Hashtbl.mem t.logged page)

let log_before t ~page image =
  if needs_before t page then begin
    if Bytes.length image <> t.page_size then invalid_arg "Wal.log_before: image size mismatch";
    (* Mark first: if the append crashes, the simulated process is dead
       anyway, and a leaked handle must not log a second (post-write)
       "pre"-image for the same page. *)
    Hashtbl.replace t.logged page ();
    let lsn = append t ~kind:kind_before ~arg:page (Some image) in
    match t.obs with
    | None -> ()
    | Some obs ->
      Natix_obs.Obs.emit obs
        (Natix_obs.Event.Wal_append { lsn; page; bytes = t.page_size })
  end

let commit t ~page_count =
  let pages = Hashtbl.length t.logged in
  let lsn = append t ~kind:kind_commit ~arg:page_count None in
  (* The commit record is durable; everything before it is now moot. *)
  Unix.ftruncate t.fd header_size;
  Hashtbl.reset t.logged;
  t.base <- page_count;
  ignore (append t ~kind:kind_begin ~arg:page_count None);
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Wal_commit { lsn; pages })

let close t = Unix.close t.fd
