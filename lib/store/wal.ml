open Natix_util

(* Redo+undo write-ahead log (ARIES-style, steal/no-force).

   File layout.  A 24-byte header:

     [0..4)   magic "NTWL"
     [4..6)   version
     [6..8)   zero padding
     [8..12)  page size of the disk this log protects
     [12..18) next-LSN high-water mark
     [18..24) zero padding

   followed by LSN-stamped records of the form

     [0]      kind (1 = Begin, 2 = Update, 3 = Commit, 4 = Clr, 5 = End)
     [1..7)   LSN
     [7..11)  transaction id (0 = the implicit checkpoint batch)
     [11..17) previous LSN of the same transaction (Clr: undo-next LSN)
     [17..21) argument (Begin/Commit: page count; Update/Clr: page id)
     [21..25) payload length
     [25..25+len)  payload (Update: before-image ‖ after-image, each
                   [payload_size] bytes; Clr: the image being restored)
     [..+4)   CRC-32 over everything above

   Records are appended to an in-memory pending buffer and only reach the
   file at {!fsync}; the buffer pool calls [fsync] before any data-page
   write whose covering record is still pending (WAL-before-data).  The
   per-record checksum makes a torn tail detectable: recovery replays the
   longest valid prefix and truncates the rest.

   Page images are payload-only (physical page minus the integrity
   trailer): recovery restores them through [Disk.write ~lsn], which seals
   a fresh trailer, so a restored page is always well-formed.

   The log owns the store's LSN sequence ([next_lsn]).  Data-page writes
   are stamped with the LSN of the last record covering the page (0 when
   none), never with fresh draws, so every trailer stamp on disk is a
   record LSN and the redo comparison [page_lsn < record_lsn] stays sound
   across restarts.  The header's high-water mark keeps the sequence
   monotone even when a crash leaves the log with no parseable records
   (e.g. right after a checkpoint truncation): the mark is rewritten at
   every truncation point, so recovery never re-issues an LSN that a
   data-page trailer may already carry — a restarted sequence would make
   redo silently skip replay. *)

let magic = 0x4e54574c (* "NTWL" *)
let version = 3
let header_size = 24
let entry_header_size = 25

let kind_begin = 1
let kind_update = 2
let kind_commit = 3
let kind_clr = 4
let kind_end = 5

type record = {
  kind : int;
  lsn : int;
  txn : int;
  prev_lsn : int;
  arg : int;
  payload : bytes;
  pos : int;  (* file offset of the record's first byte *)
  next : int;  (* file offset just past the record *)
}

let encode ~kind ~lsn ~txn ~prev_lsn ~arg payload =
  let len = match payload with None -> 0 | Some p -> Bytes.length p in
  let total = entry_header_size + len + 4 in
  let buf = Bytes.create total in
  Bytes_util.set_u8 buf 0 kind;
  Bytes_util.set_u48 buf 1 lsn;
  Bytes_util.set_u32 buf 7 txn;
  Bytes_util.set_u48 buf 11 prev_lsn;
  Bytes_util.set_u32 buf 17 arg;
  Bytes_util.set_u32 buf 21 len;
  (match payload with None -> () | Some p -> Bytes.blit p 0 buf entry_header_size len);
  Bytes_util.set_u32 buf (entry_header_size + len)
    (Checksum.crc32 buf ~off:0 ~len:(entry_header_size + len));
  buf

(* Decode the record starting at [off]; [None] on anything short or
   CRC-invalid (a torn or never-written tail). *)
let decode buf ~off =
  let avail = Bytes.length buf - off in
  if avail < entry_header_size + 4 then None
  else begin
    let len = Bytes_util.get_u32 buf (off + 21) in
    if len < 0 || len > avail - entry_header_size - 4 then None
    else begin
      let body = entry_header_size + len in
      let stored = Bytes_util.get_u32 buf (off + body) in
      if Checksum.crc32 buf ~off ~len:body <> stored then None
      else begin
        let kind = Bytes_util.get_u8 buf off in
        if kind < kind_begin || kind > kind_end then None
        else
          Some
            {
              kind;
              lsn = Bytes_util.get_u48 buf (off + 1);
              txn = Bytes_util.get_u32 buf (off + 7);
              prev_lsn = Bytes_util.get_u48 buf (off + 11);
              arg = Bytes_util.get_u32 buf (off + 17);
              payload = Bytes.sub buf (off + entry_header_size) len;
              pos = off;
              next = off + body + 4;
            }
      end
    end
  end

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  payload_size : int;
  lock : Mutex.t;
  next_lsn : int Atomic.t;
  logged : (int, unit) Hashtbl.t;  (* pages updated this implicit batch *)
  mutable base : int;  (* page count at the last checkpoint *)
  mutable implicit_last : int;  (* prev_lsn chain head of the implicit batch *)
  mutable file_end : int;  (* offset of the next durable record *)
  mutable pending : (int * bytes) list;  (* newest first: lsn, encoded *)
  mutable pending_count : int;
  mutable durable_lsn : int;
  mutable appends : int;
  mutable bytes_logged : int;
  mutable flushes : int;
  mutable flushed_records : int;
  obs : Natix_obs.Obs.t option;
  mutable faults : Faulty_disk.t option;
}

let with_lock t f =
  Lock_rank.acquire Lock_rank.wal;
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Lock_rank.release Lock_rank.wal)
    f

let encode_header ~page_size ~next_lsn =
  let buf = Bytes.make header_size '\000' in
  Bytes_util.set_u32 buf 0 magic;
  Bytes_util.set_u16 buf 4 version;
  Bytes_util.set_u32 buf 8 page_size;
  Bytes_util.set_u48 buf 12 next_lsn;
  buf

let write_header_fd fd ~page_size ~next_lsn =
  let buf = encode_header ~page_size ~next_lsn in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  if Unix.write fd buf 0 header_size <> header_size then
    failwith "Wal: short header write"

let write_header t = write_header_fd t.fd ~page_size:t.page_size ~next_lsn:(Atomic.get t.next_lsn)

(* Rewrite [path] as an empty log whose header carries [next_lsn] as the
   high-water mark.  Recovery calls this once everything the log protected
   is on disk: the records are moot, but the mark must survive so the next
   incarnation's sequence stays above every LSN stamped on a data page. *)
let reset_file ~page_size ~next_lsn path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd 0;
      write_header_fd fd ~page_size ~next_lsn)

let pwrite_all t ~off buf =
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  if Unix.write t.fd buf 0 (Bytes.length buf) <> Bytes.length buf then
    failwith "Wal: short append"

(* Append one record to the pending buffer (memory only — durable after
   the next {!fsync}).  Caller holds the wal lock. *)
let append_locked t ~kind ~txn ~prev_lsn ~arg payload =
  let lsn = Atomic.fetch_and_add t.next_lsn 1 in
  let buf = encode ~kind ~lsn ~txn ~prev_lsn ~arg payload in
  t.pending <- (lsn, buf) :: t.pending;
  t.pending_count <- t.pending_count + 1;
  t.appends <- t.appends + 1;
  t.bytes_logged <- t.bytes_logged + Bytes.length buf;
  lsn

(* Persist the pending records.  One fault consultation per non-empty
   batch: a crash outcome persists the prescribed subset — a prefix for
   write-crash points (with the following record torn in half, the classic
   torn tail), an arbitrary subset at true offsets for reordering faults —
   and then kills the simulated process. *)
let fsync_locked t =
  if t.pending_count > 0 then begin
    let records = Array.of_list (List.rev t.pending) in
    let n = Array.length records in
    let offsets = Array.make (n + 1) t.file_end in
    for i = 0 to n - 1 do
      offsets.(i + 1) <- offsets.(i) + Bytes.length (snd records.(i))
    done;
    let write_upto k =
      for i = 0 to k - 1 do
        pwrite_all t ~off:offsets.(i) (snd records.(i))
      done
    in
    let outcome =
      match t.faults with
      | None -> `Ok
      | Some plan -> Faulty_disk.on_fsync plan ~pending:n
    in
    (match outcome with
    | `Ok ->
      write_upto n;
      t.file_end <- offsets.(n);
      t.durable_lsn <- fst records.(n - 1);
      t.pending <- [];
      t.pending_count <- 0;
      t.flushes <- t.flushes + 1;
      t.flushed_records <- t.flushed_records + n;
      (match t.obs with
      | None -> ()
      | Some obs ->
        Natix_obs.Obs.emit obs
          (Natix_obs.Event.Wal_fsync { lsn = t.durable_lsn; records = n }))
    | `Crash_keep k ->
      let k = max 0 (min k n) in
      write_upto k;
      if k < n then begin
        let buf = snd records.(k) in
        let torn = Bytes.length buf / 2 in
        if torn > 0 then pwrite_all t ~off:offsets.(k) (Bytes.sub buf 0 torn)
      end;
      raise Faulty_disk.Crash
    | `Crash_subset keep ->
      for i = 0 to n - 1 do
        if i < Array.length keep && keep.(i) then pwrite_all t ~off:offsets.(i) (snd records.(i))
      done;
      raise Faulty_disk.Crash)
  end

let fsync t = with_lock t (fun () -> fsync_locked t)

let create ?obs ?faults ?(first_lsn = 1) ~page_size ~base path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      fd;
      path;
      page_size;
      payload_size = page_size - Disk.trailer_size;
      lock = Mutex.create ();
      next_lsn = Atomic.make (max 1 first_lsn);
      logged = Hashtbl.create 64;
      base;
      implicit_last = 0;
      file_end = header_size;
      pending = [];
      pending_count = 0;
      durable_lsn = 0;
      appends = 0;
      bytes_logged = 0;
      flushes = 0;
      flushed_records = 0;
      obs;
      faults;
    }
  in
  write_header t;
  with_lock t (fun () ->
      t.implicit_last <- append_locked t ~kind:kind_begin ~txn:0 ~prev_lsn:0 ~arg:base None;
      fsync_locked t);
  t

let path t = t.path
let base t = t.base
let page_size t = t.page_size
let payload_size t = t.payload_size
let appends t = t.appends
let bytes_logged t = t.bytes_logged
let flushes t = t.flushes
let flushed_records t = t.flushed_records
let durable_lsn t = t.durable_lsn
let pending_records t = t.pending_count
let set_faults t faults = t.faults <- faults
let next_lsn t = Atomic.get t.next_lsn

let check_image t name img =
  if Bytes.length img <> t.payload_size then
    invalid_arg (Printf.sprintf "Wal.%s: image must be payload-sized" name)

let emit_update t lsn page =
  match t.obs with
  | None -> ()
  | Some obs ->
    Natix_obs.Obs.emit obs (Natix_obs.Event.Wal_append { lsn; page; bytes = 2 * t.payload_size })

(* Explicit-transaction records.  Memory-only; the caller decides when to
   force them ({!fsync} via steal or the group-commit daemon). *)

let log_begin t ~txn ~base =
  with_lock t (fun () -> append_locked t ~kind:kind_begin ~txn ~prev_lsn:0 ~arg:base None)

let log_update t ~txn ~prev_lsn ~page ~before ~after =
  check_image t "log_update" before;
  check_image t "log_update" after;
  let payload = Bytes.create (2 * t.payload_size) in
  Bytes.blit before 0 payload 0 t.payload_size;
  Bytes.blit after 0 payload t.payload_size t.payload_size;
  let lsn =
    with_lock t (fun () ->
        append_locked t ~kind:kind_update ~txn ~prev_lsn ~arg:page (Some payload))
  in
  emit_update t lsn page;
  lsn

let log_commit t ~txn ~prev_lsn ~page_count =
  with_lock t (fun () -> append_locked t ~kind:kind_commit ~txn ~prev_lsn ~arg:page_count None)

(* The implicit checkpoint batch (txn 0): undo bookkeeping for unscoped
   mutation, exactly the pre-PR-7 protocol. *)

let needs_before t page = page >= 0 && page < t.base && not (Hashtbl.mem t.logged page)

let log_steal t ~page ~before ~after =
  if needs_before t page then begin
    (* Mark first: if the flush crashes, the simulated process is dead
       anyway, and a leaked handle must not log a second (post-write)
       "pre"-image for the same page. *)
    Hashtbl.replace t.logged page ();
    let lsn = log_update t ~txn:0 ~prev_lsn:t.implicit_last ~page ~before ~after in
    t.implicit_last <- lsn;
    lsn
  end
  else 0

(* Seal the implicit batch: force the commit record, then truncate — every
   dirty page was flushed before this call (force-at-checkpoint), so the
   old records are moot — and open the next batch. *)
let checkpoint t ~page_count =
  let pages = Hashtbl.length t.logged in
  let lsn =
    with_lock t (fun () ->
        let lsn =
          append_locked t ~kind:kind_commit ~txn:0 ~prev_lsn:t.implicit_last ~arg:page_count None
        in
        fsync_locked t;
        lsn)
  in
  with_lock t (fun () ->
      Unix.ftruncate t.fd header_size;
      (* The truncation just dropped every record whose LSN dominated the
         data-page trailers; refresh the header's high-water mark so a
         crash before the next record becomes durable cannot restart the
         sequence below those trailers. *)
      write_header t;
      t.file_end <- header_size;
      Hashtbl.reset t.logged;
      t.base <- page_count;
      t.implicit_last <- append_locked t ~kind:kind_begin ~txn:0 ~prev_lsn:0 ~arg:page_count None;
      fsync_locked t);
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Wal_commit { lsn; pages })

let close t = Unix.close t.fd
