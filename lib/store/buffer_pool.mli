(** Buffer manager.

    Caches disk pages in a fixed byte budget (the paper uses 2 MB) with LRU
    replacement, pin counts and dirty write-back.  The paper clears the
    buffer at the start of each measured operation; {!clear} provides that.

    Access protocol: {!fix} pins a page frame (reading it from disk on a
    miss), the caller reads or mutates [frame.data] (calling {!mark_dirty}
    after mutation), then {!unfix} releases the pin.  Unpinned frames are
    eviction candidates.

    Frames hold the page {e payload} ({!Disk.payload_size} bytes); the
    integrity trailer is the disk's business.  When a {!Wal.t} is attached,
    every write-back is preceded by logging the page's pre-image on its
    first touch of the batch (log-before-data), and {!checkpoint} makes the
    current state durable. *)

exception All_frames_pinned
(** Raised by {!fix}/{!fix_new} when no frame can be evicted because every
    resident frame is pinned (the pool is too small for the working set). *)

type frame = private {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;  (** LRU chain, internal *)
  mutable next : frame option;
}

type t

(** [create ~disk ~bytes ()] sizes the pool at [bytes / page_size] frames
    (at least 2).  [wal] attaches a write-ahead log (file-backed stores);
    [read_retries] (default 3) bounds retries of transiently failing page
    reads. *)
val create : disk:Disk.t -> bytes:int -> ?wal:Wal.t -> ?read_retries:int -> unit -> t

val disk : t -> Disk.t

(** The attached write-ahead log, if any. *)
val wal : t -> Wal.t option

val capacity : t -> int

(** Number of resident frames. *)
val resident : t -> int

(** [fix t page] pins the frame holding [page].
    @raise All_frames_pinned when every frame is pinned.
    @raise Disk.Bad_page when the page fails checksum verification.
    @raise Faulty_disk.Read_error when the read keeps failing transiently
    after the configured retries. *)
val fix : t -> int -> frame

(** [fix_new t page] pins a frame for a freshly {!Disk.allocate}d page
    without reading it from disk (its content is all zeroes).
    @raise All_frames_pinned when every frame is pinned. *)
val fix_new : t -> int -> frame

val unfix : t -> frame -> unit
val mark_dirty : frame -> unit

(** [with_page t page f] fixes, applies [f], and unfixes (also on
    exceptions). *)
val with_page : t -> int -> (frame -> 'a) -> 'a

(** Write all dirty frames back to disk (frames stay resident), logging
    WAL pre-images first when a log is attached. *)
val flush : t -> unit

(** {!flush}, then commit the WAL batch — the store's durability point.
    Equivalent to {!flush} when no WAL is attached. *)
val checkpoint : t -> unit

(** Flush, then drop every frame.  Pinned frames cause a [Failure].

    {b Measurement protocol.}  [clear] empties the cache but deliberately
    {e preserves} the {!fixes}/{!misses} counters: the paper's protocol
    clears the buffer at the start of each measured operation, and the
    counters are meant to span an operation, not a cache lifetime.  To
    measure the hit ratio of one operation, call [clear] (cold cache)
    followed by {!reset_stats} (zeroed counters), run the operation, then
    read {!hit_ratio}. *)
val clear : t -> unit

(** Cache-hit statistics (fixes, misses). *)
val fixes : t -> int

val misses : t -> int

(** [(fixes - misses) / fixes]; 1.0 when no fix happened yet.  Freshly
    allocated pages ({!fix_new}) count as hits since they cost no read. *)
val hit_ratio : t -> float

(** Zero {!fixes} and {!misses} without touching resident frames; see the
    measurement protocol under {!clear}. *)
val reset_stats : t -> unit

(** The handle inherited from the disk at {!create} time; page fix, evict
    and flush events are emitted through it. *)
val obs : t -> Natix_obs.Obs.t option
