(** Buffer manager.

    Caches disk pages in a fixed byte budget (the paper uses 2 MB) with LRU
    replacement, pin counts and dirty write-back.  The paper clears the
    buffer at the start of each measured operation; {!clear} provides that.

    Access protocol: {!fix} pins a page frame (reading it from disk on a
    miss), the caller reads or mutates [frame.data] (calling {!mark_dirty}
    after mutation), then {!unfix} releases the pin.  Unpinned frames are
    eviction candidates.

    Frames hold the page {e payload} ({!Disk.payload_size} bytes); the
    integrity trailer is the disk's business.  When a {!Wal.t} is attached,
    the pool enforces {e WAL-before-data}: a dirty page goes home only
    after the log records covering it are durable, and is stamped with the
    LSN of the last such record.  Outside transactions the implicit
    checkpoint batch logs each pre-existing page's pre-image on its first
    write-back and {!checkpoint} makes the batch durable; inside a
    transaction ({!txn_begin} … {!txn_commit_prep}) every mutated page gets
    redo+undo update records instead, and durability is the group-commit
    fsync of the commit record — dirty pages may stay in the pool
    (no-force) or be stolen early (steal).

    {b Scan optimisations.}  Two opt-in features (both off by default, so
    the default pool reproduces the paper's plain LRU exactly):

    - {e Read-ahead} ([read_ahead > 0]): when a demand miss lands on the
      page right after the previous miss, the pool prefetches the next
      [read_ahead] physically contiguous pages in one batched
      {!Disk.read_run}, charged as a sequential run by the I/O model.
    - {e Scan resistance} ([scan_resistant = true]): segmented LRU.
      Frames live in a hot segment (the demand working set) or a cold,
      probationary segment.  Prefetched pages and demand misses issued
      while {!scan_mode} is on enter cold; eviction takes the cold tail
      first, so a full traversal churns the cold segment instead of
      flushing the hot working set.  A cold frame is promoted to hot when
      it is demand-hit outside a scan after a previous reference. *)

(** {b Domain safety.}  The pool is safe for concurrent use from multiple
    domains.  The mapping table is sharded across a small fixed array of
    stripe locks; the LRU chains, counters and eviction run under one pool
    lock; and every frame carries a latch held only while its content is
    in flight, so two domains fixing the same missing page coalesce into
    one disk read.  The documented lock order — stripe < frame latch <
    pool < disk, try-locks exempt — is checked by the optional
    {!Lock_rank} debug assertion.  With a single domain every lock is
    uncontended and behaviour (counters, eviction decisions, emitted
    events) is bit-identical to the unstriped pool. *)

exception All_frames_pinned
(** Raised by {!fix}/{!fix_new} when no frame can be evicted because every
    resident frame is pinned (the pool is too small for the working set). *)

(** Which LRU segment a frame lives in; always [Hot] in a pool created
    without [scan_resistant]. *)
type segment = Hot | Cold

type frame = private {
  page_id : int;
  data : bytes;
  latch : Mutex.t;  (** held while the content is being loaded, internal *)
  mutable failed : bool;  (** the load failed; waiters retry, internal *)
  mutable dirty : bool;
  mutable rec_lsn : int;
      (** LSN of the last WAL record covering [data]; 0 while untracked *)
  mutable pins : int;
  mutable seg : segment;  (** current segment, internal *)
  mutable referenced : bool;  (** demand-referenced since entering cold *)
  mutable linked : bool;  (** currently on an LRU chain, internal *)
  mutable prev : frame option;  (** LRU chain, internal *)
  mutable next : frame option;
}

type t

(** [create ~disk ~bytes ()] sizes the pool at [bytes / page_size] frames
    (at least 2).  [wal] attaches a write-ahead log (file-backed stores);
    [read_retries] (default 3) bounds retries of transiently failing page
    reads.  [read_ahead] (default 0 = off) is the number of pages to
    prefetch on a detected sequential run; [scan_resistant] (default
    false) enables the segmented-LRU eviction policy. *)
val create :
  disk:Disk.t ->
  bytes:int ->
  ?wal:Wal.t ->
  ?read_retries:int ->
  ?read_ahead:int ->
  ?scan_resistant:bool ->
  unit ->
  t

val disk : t -> Disk.t

(** The attached write-ahead log, if any. *)
val wal : t -> Wal.t option

val capacity : t -> int

(** Number of resident frames. *)
val resident : t -> int

(** [fix t page] pins the frame holding [page].
    @raise All_frames_pinned when every frame is pinned.
    @raise Disk.Bad_page when the page fails checksum verification.
    @raise Faulty_disk.Read_error when the read keeps failing transiently
    after the configured retries. *)
val fix : t -> int -> frame

(** [fix_new t page] pins a frame for a freshly {!Disk.allocate}d page
    without reading it from disk (its content is all zeroes).
    @raise All_frames_pinned when every frame is pinned. *)
val fix_new : t -> int -> frame

val unfix : t -> frame -> unit

(** Mark a frame about to be mutated ({e before} the mutation: the active
    transaction, if any, captures the page image its undo record will
    restore here). *)
val mark_dirty : t -> frame -> unit

(** [with_page t page f] fixes, applies [f], and unfixes (also on
    exceptions). *)
val with_page : t -> int -> (frame -> 'a) -> 'a

(** Write all dirty frames back to disk (frames stay resident), logging
    WAL pre-images first when a log is attached. *)
val flush : t -> unit

(** [flush_pages t pages] writes back just the listed pages' dirty frames
    (non-resident or clean pages are skipped).  A page tracked by an
    in-flight transaction is stolen — its update record is logged under
    that transaction first — exactly as eviction would. *)
val flush_pages : t -> int list -> unit

(** {!flush}, then seal and truncate the WAL — the unscoped store's
    durability point, and the transition back from transaction mode to the
    implicit batch.  Equivalent to {!flush} when no WAL is attached.
    @raise Invalid_argument while a transaction is in flight. *)
val checkpoint : t -> unit

(** {2 Transactions}

    Several transactions may be in their mutation phases at once — at
    most one per domain, and their page sets must be disjoint (the store
    guarantees this by giving each document a private allocation arena;
    shared pages are only written inside its serialised commit section).
    The pool tracks each page a transaction dirties, attributed to the
    calling domain's transaction, and logs redo+undo update records for
    it either when the page is stolen (written back while the transaction
    is in flight) or at {!txn_commit_prep}.  {!mark_dirty} on a page
    already tracked by a {e different} in-flight transaction raises —
    the disjointness invariant is what keeps page-level logging sound. *)

(** [txn_begin t ~txn] opens transaction [txn] on the calling domain:
    logs its begin record and starts page tracking.  Enters transaction
    mode (suppressing the implicit batch's steal logging) until the next
    {!checkpoint}.
    @raise Invalid_argument without a WAL or while the calling domain
    already has a transaction in flight. *)
val txn_begin : t -> txn:int -> unit

(** Seal the calling domain's transaction: log update records for its
    still-unlogged pages and the commit record, returning the commit
    record's LSN.  The caller makes it durable (group commit); no page is
    flushed (no-force). *)
val txn_commit_prep : t -> int

(** Whether the pool is in transaction mode (some transaction began since
    the last {!checkpoint}). *)
val txn_mode : t -> bool

(** Whether any transaction is currently in its mutation phase. *)
val txn_active : t -> bool

(** Flush, then drop every frame.  Pinned frames cause a [Failure].

    {b Measurement protocol.}  [clear] empties the cache but deliberately
    {e preserves} the {!fixes}/{!misses} counters: the paper's protocol
    clears the buffer at the start of each measured operation, and the
    counters are meant to span an operation, not a cache lifetime.  To
    measure the hit ratio of one operation, call [clear] (cold cache)
    followed by {!reset_stats} (zeroed counters), run the operation, then
    read {!hit_ratio}. *)
val clear : t -> unit

(** {2 Scan mode}

    While scan mode is on, demand misses enter the cold segment and hits
    on cold frames do not promote them — a page fixed hundreds of times
    while the scan walks its records still looks like scan traffic, not
    working-set traffic.  No effect on a pool without [scan_resistant]
    (the flag is tracked but placement ignores it). *)

(** Scan mode is on while {!set_scan_mode}[ t true] is in force or while
    any {!with_scan} region is active. *)
val scan_mode : t -> bool

val set_scan_mode : t -> bool -> unit

(** [with_scan t f] runs [f] inside a scan region (ended also on
    exceptions).  Regions are a refcount, so they nest and may run
    concurrently from several domains: scan mode stays on until the last
    active region exits. *)
val with_scan : t -> (unit -> 'a) -> 'a

(** {2 Introspection} *)

(** Configured read-ahead window (pages; 0 = off). *)
val read_ahead : t -> int

(** Whether the segmented-LRU policy is active. *)
val scan_resistant : t -> bool

(** Whether the page is currently cached (pinned or not). *)
val is_resident : t -> int -> bool

(** Resident frames currently in the hot segment. *)
val resident_hot : t -> int

(** Resident frames currently in the cold (probationary) segment.  Always
    0 without [scan_resistant]. *)
val resident_cold : t -> int

(** Resident frames with a nonzero pin count — 0 whenever no fix is in
    progress; the parallel stress harness asserts exactly that after its
    workers join. *)
val pinned_frames : t -> int

(** Cache-hit statistics (fixes, misses). *)
val fixes : t -> int

val misses : t -> int

(** Pages fetched speculatively by read-ahead since the last
    {!reset_stats}.  Prefetched pages are not counted in {!misses} (no fix
    asked for them), so a scan served from read-ahead shows up as a high
    {!hit_ratio} plus a nonzero [prefetched]. *)
val prefetched : t -> int

(** [(fixes - misses) / fixes]; 1.0 when no fix happened yet.  Freshly
    allocated pages ({!fix_new}) count as hits since they cost no read. *)
val hit_ratio : t -> float

(** Zero {!fixes}, {!misses} and {!prefetched} without touching resident
    frames; see the measurement protocol under {!clear}.
    @raise Invalid_argument while a parallel region is active on the
    underlying disk ({!Disk.enter_parallel_region}): a reset racing with
    worker accumulators would leave the merged figures unreconcilable.
    [Tree_store.reset_io_stats] wraps this condition in a typed error. *)
val reset_stats : t -> unit

(** The handle inherited from the disk at {!create} time; page fix, evict
    and flush events are emitted through it. *)
val obs : t -> Natix_obs.Obs.t option
