open Natix_util

exception Record_too_large of int

type t = { seg : Segment.t; obs : Natix_obs.Obs.t option }

let create seg = { seg; obs = Segment.obs seg }
let segment t = t.seg
let obs t = t.obs
let max_len t = Segment.max_record_len t.seg

let check_len t data =
  let len = String.length data in
  if len > max_len t then raise (Record_too_large len)

let tombstone_body rid =
  let b = Bytes.create Rid.encoded_size in
  Rid.write b 0 rid;
  Bytes.unsafe_to_string b

(* Insert [data] with [flags] on a page with room, preferring [near].
   [owner] pins the allocation arena (else it follows [near]'s page, else
   the shared arena — see {!Segment.find_space}).
   [Slotted_page.free_for_insert] (which the inventory tracks) already
   accounts for the slot entry, so the requirement is exactly the data
   length. *)
let place t ?owner ?near ?policy data flags =
  let need = String.length data in
  let page = Segment.find_space t.seg ?owner ?near ?policy need in
  Segment.with_page_mut t.seg page (fun b ->
      match Slotted_page.insert b data flags with
      | Some slot -> Rid.make ~page ~slot
      | None -> failwith "Record_manager.place: inventory out of sync")

let insert t ?owner ?near ?policy data =
  check_len t data;
  let rid = place t ?owner ?near ?policy data Slotted_page.no_flags in
  (match t.obs with
  | None -> ()
  | Some obs ->
    let bytes = String.length data in
    Natix_obs.Obs.emit obs (Natix_obs.Event.Record_alloc { rid; bytes });
    Natix_obs.Obs.observe obs Natix_obs.Obs.record_size_hist (float_of_int bytes));
  rid

let with_record t rid f =
  Segment.with_page t.seg (Rid.page rid) (fun b ->
      let off, len, flags = Slotted_page.read b (Rid.slot rid) in
      if not flags.Slotted_page.forward then f b ~off ~len
      else begin
        let target = Rid.read b off in
        Segment.with_page t.seg (Rid.page target) (fun tb ->
            let off, len, _ = Slotted_page.read tb (Rid.slot target) in
            f tb ~off ~len)
      end)

let read t rid = with_record t rid (fun b ~off ~len -> Bytes.sub_string b off len)
let length t rid = with_record t rid (fun _ ~off:_ ~len -> len)

let exists t rid =
  Rid.page rid < Segment.page_count t.seg
  && Segment.with_page t.seg (Rid.page rid) (fun b -> Slotted_page.is_live b (Rid.slot rid))

let forward_target t rid =
  Segment.with_page t.seg (Rid.page rid) (fun b ->
      let off, _len, flags = Slotted_page.read b (Rid.slot rid) in
      if flags.Slotted_page.forward then Some (Rid.read b off) else None)

let is_forwarded t rid = forward_target t rid <> None

let home_page t rid =
  match forward_target t rid with
  | None -> Rid.page rid
  | Some target -> Rid.page target

(* Write [data] into an existing slot if the page can hold it. *)
let try_write t page slot data flags =
  Segment.with_page_mut t.seg page (fun b -> Slotted_page.write b slot data flags)

(* Make room on a full page by forwarding one resident record (larger
   than a tombstone, unflagged) to another page; its slot keeps a
   tombstone, so its RID stays valid.  Returns false when no suitable
   victim exists. *)
let evict_one t page ~avoid =
  let victim =
    Segment.with_page t.seg page (fun b ->
        let found = ref None in
        Slotted_page.iter b (fun slot _off len flags ->
            if
              !found = None && slot <> avoid
              && len > Rid.encoded_size
              && (not flags.Slotted_page.forward)
              && not flags.Slotted_page.moved
            then found := Some slot);
        !found)
  in
  match victim with
  | None -> false
  | Some slot ->
    let rid = Rid.make ~page ~slot in
    let body = read t rid in
    (* The victim stays in its document's arena: relocation must not
       leak a page of one arena into another writer's working set. *)
    let target = place t ~owner:(Segment.owner_of t.seg page) body Slotted_page.moved_flag in
    (match t.obs with
    | None -> ()
    | Some obs ->
      Natix_obs.Obs.emit obs
        (Natix_obs.Event.Record_relocate { rid; target; bytes = String.length body }));
    if not (try_write t page slot (tombstone_body target) Slotted_page.forward_flag) then
      failwith "Record_manager: victim eviction failed";
    true

let update t rid data =
  check_len t data;
  match forward_target t rid with
  | None ->
    if not (try_write t (Rid.page rid) (Rid.slot rid) data Slotted_page.no_flags) then begin
      (* Move the record out and leave a tombstone.  A tombstone fits
         whenever the old body was at least 8 bytes; a smaller body on a
         completely full page needs room made first by evicting a
         neighbouring record.  The moved body stays in the home page's
         arena. *)
      let target =
        place t ~owner:(Segment.owner_of t.seg (Rid.page rid)) data Slotted_page.moved_flag
      in
      (match t.obs with
      | None -> ()
      | Some obs ->
        Natix_obs.Obs.emit obs
          (Natix_obs.Event.Record_relocate { rid; target; bytes = String.length data }));
      let tombstone = tombstone_body target in
      let rec settle () =
        if not (try_write t (Rid.page rid) (Rid.slot rid) tombstone Slotted_page.forward_flag)
        then
          if evict_one t (Rid.page rid) ~avoid:(Rid.slot rid) then settle ()
          else failwith "Record_manager.update: cannot place tombstone"
      in
      settle ()
    end
  | Some target ->
    (* Try the current out-of-home location first. *)
    if not (try_write t (Rid.page target) (Rid.slot target) data Slotted_page.moved_flag) then begin
      (* Does it fit back home (collapsing the forwarding)? *)
      let home_fits =
        Segment.with_page_mut t.seg (Rid.page rid) (fun b ->
            Slotted_page.write b (Rid.slot rid) data Slotted_page.no_flags)
      in
      Segment.with_page_mut t.seg (Rid.page target) (fun b ->
          Slotted_page.delete b (Rid.slot target));
      if not home_fits then begin
        let fresh =
          place t ~owner:(Segment.owner_of t.seg (Rid.page rid)) data Slotted_page.moved_flag
        in
        (match t.obs with
        | None -> ()
        | Some obs ->
          Natix_obs.Obs.emit obs
            (Natix_obs.Event.Record_relocate { rid; target = fresh; bytes = String.length data }));
        let ok =
          try_write t (Rid.page rid) (Rid.slot rid) (tombstone_body fresh) Slotted_page.forward_flag
        in
        if not ok then failwith "Record_manager.update: cannot repoint tombstone"
      end
    end

let patch t rid ~off data =
  let write_at page slot =
    Segment.with_page_mut t.seg page (fun b ->
        let roff, rlen, _ = Slotted_page.read b slot in
        if off < 0 || off + String.length data > rlen then
          invalid_arg "Record_manager.patch: range outside record";
        Bytes.blit_string data 0 b (roff + off) (String.length data))
  in
  match forward_target t rid with
  | None -> write_at (Rid.page rid) (Rid.slot rid)
  | Some target -> write_at (Rid.page target) (Rid.slot target)

let delete t rid =
  (match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Record_free { rid }));
  (match forward_target t rid with
  | None -> ()
  | Some target ->
    Segment.with_page_mut t.seg (Rid.page target) (fun b ->
        Slotted_page.delete b (Rid.slot target)));
  Segment.with_page_mut t.seg (Rid.page rid) (fun b -> Slotted_page.delete b (Rid.slot rid))
