open Natix_util

exception Crash
exception Read_error of int

type write_outcome = [ `Ok | `Crash_torn of float | `Crash_lost ]
type fsync_outcome = [ `Ok | `Crash_keep of int | `Crash_subset of bool array ]
type fsync_mode = [ `Lose_all | `Lose_tail | `Subset ]

type t = {
  prng : Prng.t;
  mutable crash_after : int;
  mutable tearing : bool;
  mutable read_fail_p : float;
  mutable fail_next : int;
  mutable fsync_crash_after : int;
  mutable fsync_mode : fsync_mode;
  mutable writes_seen : int;
  mutable reads_seen : int;
  mutable fsyncs_seen : int;
  mutable crashed : bool;
}

let create ~seed () =
  {
    prng = Prng.create ~seed;
    crash_after = -1;
    tearing = true;
    read_fail_p = 0.0;
    fail_next = 0;
    fsync_crash_after = -1;
    fsync_mode = `Lose_all;
    writes_seen = 0;
    reads_seen = 0;
    fsyncs_seen = 0;
    crashed = false;
  }

let arm_crash ?(torn = true) t n =
  if n < 0 then invalid_arg "Faulty_disk.arm_crash: negative count";
  t.crash_after <- n;
  t.tearing <- torn;
  t.crashed <- false

let arm_fsync_crash ?(mode = `Lose_all) t n =
  if n < 0 then invalid_arg "Faulty_disk.arm_fsync_crash: negative count";
  t.fsync_crash_after <- n;
  t.fsync_mode <- mode;
  t.crashed <- false

let disarm t =
  t.crash_after <- -1;
  t.fsync_crash_after <- -1;
  t.read_fail_p <- 0.0;
  t.fail_next <- 0

let set_read_fail_p t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Faulty_disk.set_read_fail_p: p must be in [0, 1)";
  t.read_fail_p <- p

let fail_next_reads t n =
  if n < 0 then invalid_arg "Faulty_disk.fail_next_reads: negative count";
  t.fail_next <- n

let writes_seen t = t.writes_seen
let reads_seen t = t.reads_seen
let fsyncs_seen t = t.fsyncs_seen
let crashed t = t.crashed

(* A crashed plan keeps reporting [`Crash_lost]: once the simulated process
   is dead, nothing reaches the platters, so a caller that swallows [Crash]
   and keeps writing cannot accidentally persist post-crash state. *)
let on_write t : write_outcome =
  t.writes_seen <- t.writes_seen + 1;
  if t.crashed then `Crash_lost
  else if t.crash_after < 0 then `Ok
  else if t.writes_seen <= t.crash_after then `Ok
  else begin
    t.crashed <- true;
    if t.tearing && Prng.bool t.prng then
      (* Tear somewhere strictly inside the write, sector-ish aligned so a
         prefix of the new image lands over the old bytes. *)
      `Crash_torn (0.1 +. (0.8 *. Prng.float t.prng))
    else `Crash_lost
  end

(* A log fsync of [pending] records consults once.  Each durable record is
   charged as one write against the armed write-crash budget, so a sweep over
   "crash after n writes" also lands crash points between the records of a
   single batch — the fsync then persists the prefix that fit.  Fsync-armed
   crashes additionally model sync-specific failures: the whole batch lost,
   a random tail lost, or (reordering inside the un-fsynced window) a random
   subset persisted at its true offsets. *)
let on_fsync t ~pending : fsync_outcome =
  if pending < 0 then invalid_arg "Faulty_disk.on_fsync: negative pending";
  t.fsyncs_seen <- t.fsyncs_seen + 1;
  if t.crashed then `Crash_keep 0
  else if t.fsync_crash_after >= 0 && t.fsyncs_seen > t.fsync_crash_after then begin
    t.crashed <- true;
    match t.fsync_mode with
    | `Lose_all -> `Crash_keep 0
    | `Lose_tail -> `Crash_keep (if pending = 0 then 0 else Prng.int t.prng pending)
    | `Subset -> `Crash_subset (Array.init pending (fun _ -> Prng.bool t.prng))
  end
  else if t.crash_after >= 0 && t.writes_seen + pending > t.crash_after then begin
    let keep = max 0 (t.crash_after - t.writes_seen) in
    t.writes_seen <- t.writes_seen + pending;
    t.crashed <- true;
    `Crash_keep keep
  end
  else begin
    t.writes_seen <- t.writes_seen + pending;
    `Ok
  end

let on_read t ~page =
  t.reads_seen <- t.reads_seen + 1;
  if t.crashed then raise (Read_error page);
  if t.fail_next > 0 then begin
    t.fail_next <- t.fail_next - 1;
    raise (Read_error page)
  end;
  if t.read_fail_p > 0.0 && Prng.float t.prng < t.read_fail_p then raise (Read_error page)
