(** Group-commit daemon: one fsync durably commits every transaction whose
    commit record is already in the WAL's pending buffer.

    Committers call {!commit} with the LSN of their commit record.  If the
    durability watermark already covers it, they return immediately (their
    record rode a previous flush).  Otherwise one committer becomes the
    {e leader}: it waits out the configured [commit_delay] — the batching
    window during which later committers append their records — then
    forces the log once for the whole group.  The window is realized on
    the wall clock (the leader sleeps, so concurrent committers genuinely
    join the batch) and charged to the simulated clock so the I/O model
    prices it.  Followers block on a condition variable and are woken by
    the leader's broadcast; they never fsync themselves.

    If the leader's flush raises (e.g. an armed fsync fault), the daemon is
    {e poisoned}: the leader re-raises the crash, and every waiting or
    subsequent committer gets [Error reason] immediately — a commit never
    hangs on a dead log. *)

type t

(** [create ~charge wal] wraps [wal].  [commit_delay] (milliseconds,
    default 0) is the leader's batching window: slept on the wall clock
    and charged through [charge] so it also lands on the I/O model's
    clock. *)
val create : ?commit_delay:float -> charge:(float -> unit) -> Wal.t -> t

(** Block until the commit record at [lsn] is durable.  [Error reason]
    when the daemon is (or becomes) poisoned.  Re-raises the underlying
    crash only in the leader whose own flush died. *)
val commit : t -> lsn:int -> (unit, string) result

(** Flushes led through the daemon (each shared by one or more
    transactions). *)
val flushes : t -> int

(** Commit requests satisfied; [committed / flushes] is the group-commit
    batching factor. *)
val committed : t -> int

val commit_delay : t -> float
val poisoned : t -> bool
