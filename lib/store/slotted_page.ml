open Natix_util

(* Header layout:
   0  u16  slot_count
   2  u16  data_start   (lowest offset occupied by record data)
   4  u16  gap_bytes    (free bytes trapped between records)
   6  u16  free_slots   (slot entries available for reuse)
   8  u32  user32       (reserved for upper layers)

   Slot entry (4 bytes): u16 offset | moved_flag in bit 15,
                         u16 length | forward_flag in bit 15.
   A free slot entry has offset = 0xffff and length = 0; records of length
   zero are forbidden so the encoding is unambiguous. *)

let header_size = 12
let slot_size = 4
let flag_bit = 0x8000
let flag_mask = 0x7fff
let free_sentinel = 0xffff
let max_record_len ~page_size = page_size - header_size - slot_size

let slot_count b = Bytes_util.get_u16 b 0
let set_slot_count b v = Bytes_util.set_u16 b 0 v
let data_start b = Bytes_util.get_u16 b 2
let set_data_start b v = Bytes_util.set_u16 b 2 v
let gap_bytes b = Bytes_util.get_u16 b 4
let set_gap_bytes b v = Bytes_util.set_u16 b 4 v
let free_slots b = Bytes_util.get_u16 b 6
let set_free_slots b v = Bytes_util.set_u16 b 6 v
let get_user32 b = Bytes_util.get_u32 b 8
let set_user32 b v = Bytes_util.set_u32 b 8 v

type flags = { forward : bool; moved : bool }

let no_flags = { forward = false; moved = false }
let forward_flag = { forward = true; moved = false }
let moved_flag = { forward = false; moved = true }

let format b =
  Bytes.fill b 0 (Bytes.length b) '\000';
  set_data_start b (Bytes.length b)

let slot_pos i = header_size + (slot_size * i)
let slot_end b = slot_pos (slot_count b)

let raw_entry b i =
  let p = slot_pos i in
  (Bytes_util.get_u16 b p, Bytes_util.get_u16 b (p + 2))

let entry_is_free (off_f, len_f) = off_f = free_sentinel && len_f = 0

let set_entry b i ~off ~len ~flags =
  let p = slot_pos i in
  Bytes_util.set_u16 b p (off lor if flags.moved then flag_bit else 0);
  Bytes_util.set_u16 b (p + 2) (len lor if flags.forward then flag_bit else 0)

let set_free b i =
  Bytes_util.set_u16 b (slot_pos i) free_sentinel;
  Bytes_util.set_u16 b (slot_pos i + 2) 0

let is_live b i = i >= 0 && i < slot_count b && not (entry_is_free (raw_entry b i))

let entry b i =
  let ((off_f, len_f) as e) = raw_entry b i in
  if entry_is_free e then invalid_arg "Slotted_page: free slot";
  ( off_f land flag_mask,
    len_f land flag_mask,
    { forward = len_f land flag_bit <> 0; moved = off_f land flag_bit <> 0 } )

let live_count b =
  let n = ref 0 in
  for i = 0 to slot_count b - 1 do
    if not (entry_is_free (raw_entry b i)) then incr n
  done;
  !n

let contiguous b = data_start b - slot_end b
let total_free b = contiguous b + gap_bytes b

let fill_ratio b =
  let usable = Bytes.length b - header_size in
  if usable <= 0 then 1.0 else 1.0 -. (float_of_int (total_free b) /. float_of_int usable)

let free_for_insert b =
  let slot_cost = if free_slots b > 0 then 0 else slot_size in
  max 0 (total_free b - slot_cost)

let read b i =
  if i < 0 || i >= slot_count b then invalid_arg "Slotted_page.read: bad slot";
  entry b i

let iter b f =
  for i = 0 to slot_count b - 1 do
    if not (entry_is_free (raw_entry b i)) then begin
      let off, len, flags = entry b i in
      f i off len flags
    end
  done

let compact b =
  let live = ref [] in
  iter b (fun i off len flags -> live := (i, off, len, flags) :: !live);
  (* Highest offset first: each record moves towards the page end, to a
     destination at or beyond its current position, so in-page blits (which
     handle overlap) never clobber unmoved data. *)
  let sorted = List.sort (fun (_, o1, _, _) (_, o2, _, _) -> Int.compare o2 o1) !live in
  let dest = ref (Bytes.length b) in
  List.iter
    (fun (i, off, len, flags) ->
      dest := !dest - len;
      if off <> !dest then begin
        Bytes.blit b off b !dest len;
        set_entry b i ~off:!dest ~len ~flags
      end)
    sorted;
  set_data_start b !dest;
  set_gap_bytes b 0

let find_free_slot b =
  let n = slot_count b in
  let rec loop i =
    if i >= n then None
    else if entry_is_free (raw_entry b i) then Some i
    else loop (i + 1)
  in
  loop 0

(* Reserve a slot entry, growing the directory if needed.  Returns [None]
   when the directory cannot grow.  May compact. *)
let take_slot b =
  if free_slots b > 0 then begin
    match find_free_slot b with
    | Some i ->
      set_free_slots b (free_slots b - 1);
      Some i
    | None -> failwith "Slotted_page: free_slots count corrupt"
  end
  else if contiguous b < slot_size && total_free b >= slot_size then begin
    compact b;
    if contiguous b < slot_size then None
    else begin
      let i = slot_count b in
      set_slot_count b (i + 1);
      set_free b i;
      Some i
    end
  end
  else if contiguous b < slot_size then None
  else begin
    let i = slot_count b in
    set_slot_count b (i + 1);
    set_free b i;
    Some i
  end

let release_slot b i =
  set_free b i;
  if i = slot_count b - 1 then begin
    (* Trim trailing free entries so the directory can shrink. *)
    let rec trim j =
      if j >= 0 && entry_is_free (raw_entry b j) then begin
        if j < slot_count b - 1 then set_free_slots b (free_slots b - 1);
        trim (j - 1)
      end
      else set_slot_count b (j + 1)
    in
    trim i
  end
  else set_free_slots b (free_slots b + 1)

(* Place [len] bytes of record data, compacting if fragmentation hides the
   space.  Assumes the caller checked there is room.  Returns the offset. *)
let place b len =
  if contiguous b < len then compact b;
  assert (contiguous b >= len);
  let off = data_start b - len in
  set_data_start b off;
  off

let insert b data flags =
  let len = String.length data in
  assert (len > 0);
  if free_for_insert b < len then None
  else
    match take_slot b with
    | None -> None
    | Some i ->
      let off = place b len in
      Bytes.blit_string data 0 b off len;
      set_entry b i ~off ~len ~flags;
      Some i

(* Return a record's extent to the free pool. *)
let free_extent b off len =
  if off = data_start b then set_data_start b (off + len)
  else set_gap_bytes b (gap_bytes b + len)

let delete b i =
  let off, len, _flags = read b i in
  free_extent b off len;
  release_slot b i

let write b i data flags =
  let off, len, _old = read b i in
  let new_len = String.length data in
  assert (new_len > 0);
  if new_len <= len then begin
    (* Shrink in place; the tail becomes an interior gap. *)
    Bytes.blit_string data 0 b off new_len;
    if new_len < len then set_gap_bytes b (gap_bytes b + (len - new_len));
    set_entry b i ~off ~len:new_len ~flags;
    true
  end
  else if total_free b + len < new_len then false
  else begin
    (* Free the old extent first so compaction can reclaim it; mark the
       slot free meanwhile so [compact] skips the stale extent. *)
    free_extent b off len;
    set_free b i;
    let new_off = place b new_len in
    Bytes.blit_string data 0 b new_off new_len;
    set_entry b i ~off:new_off ~len:new_len ~flags;
    true
  end

let check b =
  let page_size = Bytes.length b in
  let fail fmt = Printf.ksprintf failwith fmt in
  if slot_end b > data_start b then fail "slot directory overlaps data area";
  let free_entries = ref 0 in
  let extents = ref [] in
  for i = 0 to slot_count b - 1 do
    let ((off_f, len_f) as e) = raw_entry b i in
    if entry_is_free e then incr free_entries
    else begin
      let off = off_f land flag_mask and len = len_f land flag_mask in
      if len = 0 then fail "slot %d has zero length" i;
      if off < data_start b || off + len > page_size then
        fail "slot %d extent [%d,%d) outside data area [%d,%d)" i off (off + len) (data_start b)
          page_size;
      extents := (off, len) :: !extents
    end
  done;
  if !free_entries <> free_slots b then
    fail "free_slots=%d but %d free entries" (free_slots b) !free_entries;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) !extents in
  let used = List.fold_left (fun acc (_, len) -> acc + len) 0 sorted in
  ignore
    (List.fold_left
       (fun prev_end (off, len) ->
         if off < prev_end then fail "overlapping extents at %d" off;
         off + len)
       (data_start b) sorted);
  let expected_gaps = page_size - data_start b - used in
  if expected_gaps <> gap_bytes b then fail "gap_bytes=%d but computed %d" (gap_bytes b) expected_gaps
