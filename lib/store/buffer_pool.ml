exception All_frames_pinned

type segment = Hot | Cold

type frame = {
  page_id : int;
  data : bytes;
  latch : Mutex.t;  (* held while the frame's content is being loaded *)
  mutable failed : bool;  (* the load failed; waiters must retry the fix *)
  mutable dirty : bool;
  mutable rec_lsn : int;  (* LSN of the last WAL record covering [data] *)
  mutable pins : int;
  mutable seg : segment;
  mutable referenced : bool;
  mutable linked : bool;  (* currently on an LRU chain *)
  mutable prev : frame option;
  mutable next : frame option;
}

(* Per-page write tracking of a transaction in its mutation phase.
   Several transactions may be in flight at once — one per domain, their
   page sets disjoint (each mutates only its own document's arena pages;
   shared pages are touched only inside the serialised commit section).
   [before] is the page payload as of the last point everything was
   logged — the image undo restores; [dirty_since_log] says the frame has
   moved past it. *)
type track = { before : bytes; mutable dirty_since_log : bool }

type txn = { id : int; mutable last_lsn : int; pages : (int, track) Hashtbl.t }

(* One LRU chain: head = most recently used, tail = eviction candidate. *)
type lru = { mutable head : frame option; mutable tail : frame option }

(* Concurrency design (see DESIGN §15 for the full argument).  The mapping
   table is sharded across [stripe_count] hashtables, each guarded by its
   stripe lock; everything else shared — the LRU chains, the counters, the
   resident count, scan mode and the read-ahead cursor — lives under the
   single pool lock.  Frames carry a latch held only while their content
   is in flight, so a concurrent fix of a loading page waits on the frame,
   not on the pool.  Lock order (ascending, checked by {!Lock_rank}):

     stripe (1) < frame latch (2) < pool (3) < disk (4)

   Eviction runs against the order — it holds the pool lock and needs a
   victim's stripe and latch — so it only ever [try_lock]s those, skipping
   the victim when either is contended.  Single-domain behaviour is
   bit-identical to the unstriped pool: every try_lock succeeds, the
   victim scan is LRU-driven exactly as before, and all counters are
   maintained at the same points. *)
let stripe_count = 16

type t = {
  disk : Disk.t;
  capacity : int;
  stripes : Mutex.t array;
  tables : (int, frame) Hashtbl.t array;
  pool_lock : Mutex.t;
  (* Full-table view maintained under the pool lock, mirroring the exact
     replace/remove sequence the pre-striping pool applied to its single
     hashtable.  [flush]/[clear] iterate it instead of taking every
     stripe, and — because OCaml hashtable iteration order is a pure
     function of the operation sequence — dirty pages flush in the exact
     order they did before striping, keeping accumulated [sim_ms] figures
     bit-identical for single-domain runs. *)
  registry : (int, frame) Hashtbl.t;
  mutable resident : int;
  (* Segmented LRU: the hot segment holds the demand working set, the cold
     segment holds probationary pages (read-ahead and scan-mode fixes).
     With [scan_resistant = false] every frame lives in [hot] and the pool
     degenerates to the plain LRU of the paper. *)
  hot : lru;
  cold : lru;
  scan_resistant : bool;
  read_ahead : int;
  (* Scan mode is on while [scan_forced] (the {!set_scan_mode} switch) or
     while any [with_scan] region is active.  The regions are a refcount,
     not a saved/restored flag: concurrent scanning domains each
     increment on entry and decrement on exit, so one worker leaving its
     region cannot clobber another worker still mid-scan. *)
  mutable scan_forced : bool;
  mutable scan_depth : int;
  mutable last_miss : int;  (* for sequential-miss detection; -2 = none *)
  mutable fixes : int;
  mutable misses : int;
  mutable prefetched : int;
  wal : Wal.t option;
  raw : bytes;  (* one physical page, for WAL pre-image capture *)
  pre : bytes;  (* its payload view, handed to the log *)
  (* Transaction state, guarded by the pool lock (the evictor logging a
     stolen page races with a mutator's {!mark_dirty}).  [txns] maps a
     domain to its in-flight transaction; [page_txn] maps a tracked page
     to the transaction that owns it, so an evictor stealing any writer's
     page logs the update under the right chain.  [txn_mode] turns off
     the implicit batch's steal logging from the first {!txn_begin} until
     the next {!checkpoint}: once pages carry transactional records, an
     implicit pre-image logged at eviction time would make recovery
     restore state from before a committed transaction. *)
  txns : (int, txn) Hashtbl.t;
  page_txn : (int, txn) Hashtbl.t;
  mutable txn_mode : bool;
  read_retries : int;
  obs : Natix_obs.Obs.t option;
}

let create ~disk ~bytes ?wal ?(read_retries = 3) ?(read_ahead = 0) ?(scan_resistant = false) () =
  if read_ahead < 0 then invalid_arg "Buffer_pool.create: negative read_ahead";
  let capacity = max 2 (bytes / Disk.page_size disk) in
  {
    disk;
    capacity;
    stripes = Array.init stripe_count (fun _ -> Mutex.create ());
    tables = Array.init stripe_count (fun _ -> Hashtbl.create (2 * (1 + (capacity / stripe_count))));
    pool_lock = Mutex.create ();
    registry = Hashtbl.create (2 * capacity);
    resident = 0;
    hot = { head = None; tail = None };
    cold = { head = None; tail = None };
    scan_resistant;
    read_ahead;
    scan_forced = false;
    scan_depth = 0;
    last_miss = -2;
    fixes = 0;
    misses = 0;
    prefetched = 0;
    wal;
    raw = Bytes.create (Disk.page_size disk);
    pre = Bytes.create (Disk.payload_size disk);
    txns = Hashtbl.create 8;
    page_txn = Hashtbl.create 64;
    txn_mode = false;
    read_retries;
    obs = Disk.obs disk;
  }

let stripe_of page_id = page_id land (stripe_count - 1)

let lock_stripe t si =
  Lock_rank.acquire Lock_rank.stripe;
  Mutex.lock t.stripes.(si)

let unlock_stripe t si =
  Mutex.unlock t.stripes.(si);
  Lock_rank.release Lock_rank.stripe

let lock_frame f =
  Lock_rank.acquire Lock_rank.frame;
  Mutex.lock f.latch

(* Latch a frame this thread just created: exempt from the rank order
   (waiters on frame latches hold nothing, see {!Lock_rank}), so
   read-ahead can keep a batch of them latched while taking the next
   page's stripe. *)
let lock_frame_fresh f =
  Lock_rank.note_try Lock_rank.unordered;
  Mutex.lock f.latch

let unlock_frame_fresh f =
  Mutex.unlock f.latch;
  Lock_rank.release Lock_rank.unordered

let unlock_frame f =
  Mutex.unlock f.latch;
  Lock_rank.release Lock_rank.frame

let lock_pool t =
  Lock_rank.acquire Lock_rank.pool;
  Mutex.lock t.pool_lock

let unlock_pool t =
  Mutex.unlock t.pool_lock;
  Lock_rank.release Lock_rank.pool

let with_pool t fn =
  lock_pool t;
  Fun.protect ~finally:(fun () -> unlock_pool t) fn

let disk t = t.disk
let capacity t = t.capacity
let resident t = with_pool t (fun () -> t.resident)
let fixes t = with_pool t (fun () -> t.fixes)
let misses t = with_pool t (fun () -> t.misses)
let prefetched t = with_pool t (fun () -> t.prefetched)
let obs t = t.obs
let wal t = t.wal
let read_ahead t = t.read_ahead
let scan_resistant t = t.scan_resistant
(* Pool lock held. *)
let scanning t = t.scan_forced || t.scan_depth > 0

let scan_mode t = with_pool t (fun () -> scanning t)
let set_scan_mode t on = with_pool t (fun () -> t.scan_forced <- on)

let with_scan t fn =
  with_pool t (fun () -> t.scan_depth <- t.scan_depth + 1);
  Fun.protect
    ~finally:(fun () -> with_pool t (fun () -> t.scan_depth <- t.scan_depth - 1))
    fn

let is_resident t page_id =
  let si = stripe_of page_id in
  lock_stripe t si;
  let r = Hashtbl.mem t.tables.(si) page_id in
  unlock_stripe t si;
  r

let iter_lru fn lru =
  let rec go = function
    | None -> ()
    | Some f ->
      let next = f.next in
      fn f;
      go next
  in
  go lru.head

let iter_frames t fn =
  iter_lru fn t.hot;
  iter_lru fn t.cold

let count_segment t seg =
  with_pool t (fun () ->
      let n = ref 0 in
      iter_frames t (fun f -> if f.seg = seg then incr n);
      !n)

let resident_hot t = count_segment t Hot
let resident_cold t = count_segment t Cold

let pinned_frames t =
  with_pool t (fun () ->
      let n = ref 0 in
      iter_frames t (fun f -> if f.pins > 0 then incr n);
      !n)

let hit_ratio t =
  with_pool t (fun () ->
      if t.fixes = 0 then 1.0 else float_of_int (t.fixes - t.misses) /. float_of_int t.fixes)

(* Zeroing the fix/miss counters while worker domains are mid-flight would
   leave the merged figures unreconcilable; the region refcount on the
   disk tells us whether that is the case. *)
let reset_stats t =
  if Disk.in_parallel_region t.disk then
    invalid_arg "Buffer_pool.reset_stats: active parallel region";
  with_pool t (fun () ->
      t.fixes <- 0;
      t.misses <- 0;
      t.prefetched <- 0)

(* ------------------------------------------------------------------ *)
(* LRU chain primitives — pool lock held                               *)

let list_of t f = match f.seg with Hot -> t.hot | Cold -> t.cold

let unlink t f =
  let l = list_of t f in
  (match f.prev with Some p -> p.next <- f.next | None -> l.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> l.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t seg f =
  let l = match seg with Hot -> t.hot | Cold -> t.cold in
  f.seg <- seg;
  f.linked <- true;
  f.prev <- None;
  f.next <- l.head;
  (match l.head with Some h -> h.prev <- Some f | None -> l.tail <- Some f);
  l.head <- Some f

let touch t f =
  let l = list_of t f in
  if l.head != Some f then begin
    unlink t f;
    push_front t f.seg f
  end

(* Hit bookkeeping.  In the plain pool this is a bare LRU touch.  In the
   segmented pool a cold frame earns promotion to the hot segment on its
   first demand hit after a previous reference — but never while a scan is
   in progress, because a scan re-fixes the same page many times while
   walking its records and would otherwise promote the entire scan into the
   hot segment, which is exactly what the cold segment exists to prevent. *)
let on_hit t f =
  if (not t.scan_resistant) || f.seg = Hot then touch t f
  else if scanning t then begin
    f.referenced <- true;
    touch t f
  end
  else if f.referenced then begin
    unlink t f;
    push_front t Hot f
  end
  else begin
    f.referenced <- true;
    touch t f
  end

(* Write-back, pool lock held.  WAL-before-data in two flavours:

   - A page the active transaction has moved past its last logged image
     gets an update record here (the "steal" of ARIES: an uncommitted
     page may go home because undo can restore [track.before]), and the
     tracking advances so commit logs only what happened afterwards.
   - Outside transaction mode, the implicit checkpoint batch logs the
     page's on-disk pre-image on its first write-back of the batch (pages
     allocated within the batch need none — rollback truncates them).

   Either way the log is forced before the data write whenever the
   frame's covering record is not durable yet, and the page goes home
   stamped with that record's LSN so redo can tell whether the page
   already contains its effect. *)
let write_back t f =
  if f.dirty then begin
    (match t.wal with
    | None -> ()
    | Some w ->
      (match Hashtbl.find_opt t.page_txn f.page_id with
      | Some txn -> (
        match Hashtbl.find_opt txn.pages f.page_id with
        | Some tr when tr.dirty_since_log ->
          let lsn =
            Wal.log_update w ~txn:txn.id ~prev_lsn:txn.last_lsn ~page:f.page_id ~before:tr.before
              ~after:f.data
          in
          txn.last_lsn <- lsn;
          Bytes.blit f.data 0 tr.before 0 (Bytes.length f.data);
          tr.dirty_since_log <- false;
          f.rec_lsn <- lsn
        | Some _ | None -> ())
      | None -> ());
      if (not t.txn_mode) && Wal.needs_before w f.page_id then begin
        Disk.read_raw t.disk f.page_id t.raw;
        Bytes.blit t.raw 0 t.pre 0 (Bytes.length t.pre);
        let lsn = Wal.log_steal w ~page:f.page_id ~before:t.pre ~after:f.data in
        if lsn > 0 then f.rec_lsn <- lsn
      end;
      if f.rec_lsn > Wal.durable_lsn w then Wal.fsync w);
    (match t.obs with
    | None -> ()
    | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_flush { page = f.page_id }));
    (match t.wal with
    | Some _ -> Disk.write ~lsn:f.rec_lsn t.disk f.page_id f.data
    | None -> Disk.write t.disk f.page_id f.data);
    f.dirty <- false
  end

(* ------------------------------------------------------------------ *)
(* Eviction — pool lock held, [held_stripe] already locked by caller   *)

(* Removing the victim from its shard runs against the lock order (the
   pool lock is held, stripes rank below it), so the stripe is only ever
   try_locked; a contended stripe just disqualifies the victim.  If the
   victim lives in the stripe the caller already holds, operate directly —
   OCaml mutexes are not recursive, and [try_lock] on a self-held lock
   would fail, wrongly skipping the victim. *)
let try_remove_from_table t ~held_stripe f =
  let si = stripe_of f.page_id in
  if si = held_stripe then begin
    Hashtbl.remove t.tables.(si) f.page_id;
    true
  end
  else if Mutex.try_lock t.stripes.(si) then begin
    Lock_rank.note_try Lock_rank.stripe;
    Hashtbl.remove t.tables.(si) f.page_id;
    Mutex.unlock t.stripes.(si);
    Lock_rank.release Lock_rank.stripe;
    true
  end
  else false

(* Evict the least recently used unpinned frame, preferring the cold
   segment so probationary scan pages go before the working set.  [keep]
   protects a page range: a read-ahead batch must not evict the frames it
   allocated for its own run.  A frame whose latch is held (a load in
   flight, or a read-ahead frame being filled) is skipped the same way a
   pinned frame is. *)
let evict_one ?(keep = (0, -1)) ~held_stripe t =
  let keep_lo, keep_hi = keep in
  let rec find = function
    | None -> None
    | Some f ->
      if
        f.pins = 0
        && (not (f.page_id >= keep_lo && f.page_id <= keep_hi))
        && Mutex.try_lock f.latch
      then begin
        Lock_rank.note_try Lock_rank.frame;
        if try_remove_from_table t ~held_stripe f then Some f
        else begin
          Mutex.unlock f.latch;
          Lock_rank.release Lock_rank.frame;
          find f.prev
        end
      end
      else find f.prev
  in
  let victim =
    match find t.cold.tail with
    | Some v -> v
    | None -> ( match find t.hot.tail with Some v -> v | None -> raise All_frames_pinned)
  in
  (match t.obs with
  | None -> ()
  | Some obs ->
    Natix_obs.Obs.emit obs (Natix_obs.Event.Page_evict { page = victim.page_id; dirty = victim.dirty }));
  (* The victim is already out of its shard; finish the structural part of
     the eviction even when the write-back dies (a fault-plan crash), so
     the latch is not left locked behind the exception. *)
  Fun.protect
    ~finally:(fun () ->
      unlink t victim;
      victim.linked <- false;
      t.resident <- t.resident - 1;
      Hashtbl.remove t.registry victim.page_id;
      Mutex.unlock victim.latch;
      Lock_rank.release Lock_rank.frame)
    (fun () -> write_back t victim)

let make_room ?keep ~held_stripe t = if t.resident >= t.capacity then evict_one ?keep ~held_stripe t

(* Placement of a freshly allocated frame.  Plain pool: always hot (the
   single LRU list).  Segmented pool: speculative (read-ahead) frames and
   demand misses during a scan enter the cold segment on probation; normal
   demand misses enter hot directly. *)
let placement t ~speculative =
  if not t.scan_resistant then Hot
  else if speculative || scanning t then Cold
  else Hot

let mk_frame t ~pins ~speculative page_id =
  {
    page_id;
    data = Bytes.create (Disk.payload_size t.disk);
    latch = Mutex.create ();
    failed = false;
    dirty = false;
    rec_lsn = 0;
    pins;
    seg = Hot;
    referenced = not speculative;
    linked = false;
    prev = None;
    next = None;
  }

let note_fix t page_id ~hit =
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_fix { page = page_id; hit })

(* Undo a frame that never became (or no longer is) valid: take it out of
   its shard (only if it is still the table's entry for the page — a
   concurrent eviction may already have removed it) and off its LRU chain.
   Called with no locks held. *)
let remove_frame t f =
  let si = stripe_of f.page_id in
  lock_stripe t si;
  (match Hashtbl.find_opt t.tables.(si) f.page_id with
  | Some g when g == f -> Hashtbl.remove t.tables.(si) f.page_id
  | Some _ | None -> ());
  lock_pool t;
  if f.linked then begin
    unlink t f;
    f.linked <- false;
    t.resident <- t.resident - 1
  end;
  (match Hashtbl.find_opt t.registry f.page_id with
  | Some g when g == f -> Hashtbl.remove t.registry f.page_id
  | Some _ | None -> ());
  unlock_pool t;
  unlock_stripe t si

(* Transient read failures (an attached fault plan) are retried a few
   times before giving up; each attempt is charged to the I/O model by the
   disk, which stands in for the backoff a real driver would pay.  The
   retry event is emitted under the pool lock because concurrent domains
   may be emitting under it too (rank 2 -> 3 is ascending, so this nests
   fine under the frame latch the loader holds). *)
let read_frame t f =
  let rec go attempt =
    try Disk.read t.disk f.page_id f.data
    with Faulty_disk.Read_error _ when attempt < t.read_retries ->
      (match t.obs with
      | None -> ()
      | Some obs ->
        with_pool t (fun () ->
            Natix_obs.Obs.emit obs
              (Natix_obs.Event.Read_retry { page = f.page_id; attempt = attempt + 1 })));
      go (attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Read-ahead                                                          *)

(* A demand miss at page [p] with the previous miss at [p - 1] reveals a
   sequential run; prefetch the next [read_ahead] pages (stopping at the
   end of the disk, at the first already-resident page, and at half the
   pool so a run cannot flush the whole cache).  Frames are allocated
   first (unpinned, cold, probationary, latch held so nobody reads them
   half-filled), then filled with one batched [Disk.read_run] in ascending
   page order so the I/O model charges the run sequentially.  Advancing
   [last_miss] to the end of the prefetched run keeps a longer scan in
   read-ahead mode: its next miss is at the run frontier + 1.  Failures
   drop the unfilled frames and end the run — prefetch never fails the
   demand fix that triggered it. *)
let maybe_read_ahead t p =
  let run_detected =
    with_pool t (fun () ->
        let detected = t.read_ahead > 0 && p = t.last_miss + 1 in
        t.last_miss <- p;
        detected)
  in
  if run_detected then begin
    let window = min t.read_ahead (max 1 (t.capacity / 2)) in
    let limit = min (p + window) (Disk.page_count t.disk - 1) in
    let rec targets q acc =
      if q > limit || is_resident t q then List.rev acc else targets (q + 1) (q :: acc)
    in
    let pages = targets (p + 1) [] in
    if pages <> [] then begin
      let keep = (p + 1, p + List.length pages) in
      (* Allocate one latched frame per target page.  [None] stops the
         batch: either eviction ran out of candidates (All_frames_pinned
         must not fail the demand fix that triggered the prefetch) or a
         concurrent fix made the page resident after the residency scan. *)
      let alloc_one q =
        let si = stripe_of q in
        lock_stripe t si;
        if Hashtbl.mem t.tables.(si) q then begin
          unlock_stripe t si;
          None
        end
        else begin
          let f = mk_frame t ~pins:0 ~speculative:true q in
          lock_frame_fresh f;
          Hashtbl.replace t.tables.(si) q f;
          lock_pool t;
          (* No eviction failure may escape while the pool lock, the
             stripe, or the fresh latch is held: undo the placeholder
             first, then either stop the batch (All_frames_pinned must
             not fail the demand fix that triggered the prefetch) or
             re-raise (a crash or bad page from a dirty victim's
             write-back propagates, exactly as it does on the demand miss
             path). *)
          let outcome =
            match make_room ~keep ~held_stripe:si t with
            | () ->
              t.resident <- t.resident + 1;
              push_front t (placement t ~speculative:true) f;
              Hashtbl.replace t.registry q f;
              `Allocated
            | exception All_frames_pinned -> `Stop
            | exception e -> `Fail e
          in
          unlock_pool t;
          (match outcome with
          | `Allocated -> ()
          | `Stop | `Fail _ ->
            Hashtbl.remove t.tables.(si) q;
            unlock_frame_fresh f);
          unlock_stripe t si;
          match outcome with `Allocated -> Some f | `Stop -> None | `Fail e -> raise e
        end
      in
      let frames =
        let rec alloc acc = function
          | [] -> List.rev acc
          | q :: rest -> (
            match alloc_one q with
            | None -> List.rev acc
            | Some f -> alloc (f :: acc) rest
            | exception e ->
              (* Drop the never-filled frames already latched for this
                 run: unlatch everything first, [remove_frame] retakes
                 stripes. *)
              List.iter
                (fun f ->
                  f.failed <- true;
                  unlock_frame_fresh f)
                acc;
              List.iter (remove_frame t) acc;
              raise e)
        in
        alloc [] pages
      in
      if frames <> [] then begin
        let filled = Disk.read_run t.disk ~first:(p + 1) (List.map (fun f -> f.data) frames) in
        (* Unlatch everything before [remove_frame] retakes stripes, then
           drop the frames the run never filled. *)
        List.iteri
          (fun i f ->
            if i >= filled then f.failed <- true;
            unlock_frame_fresh f)
          frames;
        List.iteri (fun i f -> if i >= filled then remove_frame t f) frames;
        if filled > 0 then
          with_pool t (fun () ->
              t.prefetched <- t.prefetched + filled;
              t.last_miss <- p + filled;
              match t.obs with
              | None -> ()
              | Some obs ->
                Natix_obs.Obs.emit obs (Natix_obs.Event.Read_ahead { first = p + 1; pages = filled }))
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Fix / unfix                                                         *)

(* [count] is [false] on the internal retry taken after a waited-on
   placeholder turned out to have failed its load: the first attempt
   already charged {!fixes} for this external call, and the sequential
   pool charges exactly one fix per call.  A retry that ends in a real
   disk read still charges {!misses} (keeping reads = misses + read-ahead
   pages an invariant), so such a call nets out as one fix that missed. *)
let rec fix_aux t ~count page_id =
  let si = stripe_of page_id in
  lock_stripe t si;
  match Hashtbl.find_opt t.tables.(si) page_id with
  | Some f ->
    (* Hit.  The pin is taken under the pool lock (all pin transitions
       are), which also excludes eviction: once pinned the frame cannot go
       away, so the stripe can be released before waiting out a load. *)
    lock_pool t;
    if count then begin
      t.fixes <- t.fixes + 1;
      note_fix t page_id ~hit:true
    end;
    f.pins <- f.pins + 1;
    on_hit t f;
    unlock_pool t;
    unlock_stripe t si;
    (* Wait for an in-flight load (no-op when the latch is free). *)
    lock_frame f;
    unlock_frame f;
    if f.failed then
      (* The loader failed and is removing the frame; retry from scratch.
         The pin taken above dies with the disowned frame. *)
      fix_aux t ~count:false page_id
    else f
  | None ->
    (* Miss: publish a latched placeholder so concurrent fixes of this
       page wait on the frame latch instead of double-reading, then do the
       disk read with only the latch held. *)
    let f = mk_frame t ~pins:1 ~speculative:false page_id in
    lock_frame f;
    Hashtbl.replace t.tables.(si) page_id f;
    lock_pool t;
    (match
       if count then t.fixes <- t.fixes + 1;
       t.misses <- t.misses + 1;
       note_fix t page_id ~hit:false;
       make_room ~held_stripe:si t;
       t.resident <- t.resident + 1;
       push_front t (placement t ~speculative:false) f;
       Hashtbl.replace t.registry page_id f
     with
    | () ->
      unlock_pool t;
      unlock_stripe t si
    | exception e ->
      (* Eviction found every frame pinned (or write-back failed): undo
         the placeholder and let the caller see the failure. *)
      unlock_pool t;
      Hashtbl.remove t.tables.(si) page_id;
      unlock_frame f;
      unlock_stripe t si;
      raise e);
    (match read_frame t f with
    | () -> unlock_frame f
    | exception e ->
      (* Drop the half-made frame so a failed read leaves no garbage. *)
      f.failed <- true;
      unlock_frame f;
      remove_frame t f;
      raise e);
    maybe_read_ahead t page_id;
    f

let fix t page_id = fix_aux t ~count:true page_id

let fix_new t page_id =
  let si = stripe_of page_id in
  lock_stripe t si;
  match Hashtbl.find_opt t.tables.(si) page_id with
  | Some f ->
    lock_pool t;
    t.fixes <- t.fixes + 1;
    note_fix t page_id ~hit:true;
    f.pins <- f.pins + 1;
    on_hit t f;
    unlock_pool t;
    unlock_stripe t si;
    f
  | None ->
    (* Freshly allocated page: content is known to be zeroes, no read
       needed (and none charged) — counted as a hit for the same reason,
       and the latch is never taken because the frame is valid from the
       moment it is published. *)
    let f = mk_frame t ~pins:1 ~speculative:false page_id in
    Hashtbl.replace t.tables.(si) page_id f;
    lock_pool t;
    (match
       t.fixes <- t.fixes + 1;
       note_fix t page_id ~hit:true;
       make_room ~held_stripe:si t;
       t.resident <- t.resident + 1;
       push_front t (placement t ~speculative:false) f;
       Hashtbl.replace t.registry page_id f
     with
    | () ->
      unlock_pool t;
      unlock_stripe t si
    | exception e ->
      unlock_pool t;
      Hashtbl.remove t.tables.(si) page_id;
      unlock_stripe t si;
      raise e);
    f

let unfix t f =
  with_pool t (fun () ->
      assert (f.pins > 0);
      f.pins <- f.pins - 1)

(* Pool lock held. *)
let current_txn t =
  if Hashtbl.length t.txns = 0 then None
  else Hashtbl.find_opt t.txns (Domain.self () :> int)

(* Callers mark a frame dirty {e before} mutating it (see {!Segment}), so
   this is where the calling domain's transaction captures the page image
   its undo record will restore.  First touch copies the payload and
   claims the page in [page_txn]; after a mid-transaction steal logged
   the page, the next touch just reopens the dirty window — the tracked
   image already equals the frame (the steal advanced it).  A page
   already claimed by a {e different} in-flight transaction is a
   violation of the disjoint-page-sets invariant that makes concurrent
   page-level logging sound, so it fails loudly rather than corrupt
   either undo chain. *)
let mark_dirty t f =
  with_pool t (fun () ->
      match current_txn t with
      | None -> ()
      | Some txn -> (
        match Hashtbl.find_opt t.page_txn f.page_id with
        | Some owner when owner != txn ->
          invalid_arg
            (Printf.sprintf "Buffer_pool.mark_dirty: page %d written by txn %d and txn %d"
               f.page_id owner.id txn.id)
        | Some _ -> (Hashtbl.find txn.pages f.page_id).dirty_since_log <- true
        | None ->
          Hashtbl.replace txn.pages f.page_id
            { before = Bytes.copy f.data; dirty_since_log = true };
          Hashtbl.replace t.page_txn f.page_id txn));
  f.dirty <- true

let with_page t page_id fn =
  let f = fix t page_id in
  Fun.protect ~finally:(fun () -> unfix t f) (fun () -> fn f)

(* Flush iterates the registry, whose iteration order reproduces the
   pre-striping pool's single hashtable exactly (see the field comment) —
   measured write sequences are bit-identical for single-domain runs. *)
let flush t = with_pool t (fun () -> Hashtbl.iter (fun _ f -> write_back t f) t.registry)

let flush_pages t pages =
  with_pool t (fun () ->
      List.iter
        (fun page ->
          match Hashtbl.find_opt t.registry page with
          | Some f -> write_back t f
          | None -> ())
        pages)

let checkpoint t =
  with_pool t (fun () ->
      if Hashtbl.length t.txns > 0 then invalid_arg "Buffer_pool.checkpoint: transaction in flight");
  flush t;
  match t.wal with
  | None -> ()
  | Some w ->
    Wal.checkpoint w ~page_count:(Disk.page_count t.disk);
    (* Every page is home and the log is empty: implicit steal logging is
       sound again until the next transaction begins. *)
    with_pool t (fun () -> t.txn_mode <- false)

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let txn_mode t = with_pool t (fun () -> t.txn_mode)
let txn_active t = with_pool t (fun () -> Hashtbl.length t.txns > 0)

let txn_begin t ~txn =
  match t.wal with
  | None -> invalid_arg "Buffer_pool.txn_begin: no WAL attached"
  | Some w ->
    let dom = (Domain.self () :> int) in
    with_pool t (fun () ->
        if Hashtbl.mem t.txns dom then
          invalid_arg "Buffer_pool.txn_begin: transaction in flight on this domain";
        t.txn_mode <- true;
        let base = Disk.page_count t.disk in
        let lsn = Wal.log_begin w ~txn ~base in
        Hashtbl.replace t.txns dom { id = txn; last_lsn = lsn; pages = Hashtbl.create 16 })

(* Seal the calling domain's transaction: log an update record for every
   page it has moved past its last logged image (all still resident — a
   steal would have logged and cleared them), then the commit record.
   Returns the commit record's LSN for the group-commit daemon to make
   durable; nothing is forced here and no page is flushed (no-force). *)
let txn_commit_prep t =
  let dom = (Domain.self () :> int) in
  with_pool t (fun () ->
      match (t.wal, Hashtbl.find_opt t.txns dom) with
      | Some w, Some txn ->
        Hashtbl.iter
          (fun page tr ->
            if tr.dirty_since_log then begin
              match Hashtbl.find_opt t.registry page with
              | Some f ->
                let lsn =
                  Wal.log_update w ~txn:txn.id ~prev_lsn:txn.last_lsn ~page ~before:tr.before
                    ~after:f.data
                in
                txn.last_lsn <- lsn;
                tr.dirty_since_log <- false;
                f.rec_lsn <- lsn
              | None ->
                (* mark_dirty pins the frame and a steal clears the dirty
                   window, so an unlogged page is always resident. *)
                assert false
            end)
          txn.pages;
        let lsn =
          Wal.log_commit w ~txn:txn.id ~prev_lsn:txn.last_lsn
            ~page_count:(Disk.page_count t.disk)
        in
        Hashtbl.iter (fun page _ -> Hashtbl.remove t.page_txn page) txn.pages;
        Hashtbl.remove t.txns dom;
        lsn
      | _ -> invalid_arg "Buffer_pool.txn_commit_prep: no transaction in flight on this domain")

let clear t =
  (* All stripes in index order (equal rank, total order), then the pool:
     nothing can enter or leave while the table is being emptied. *)
  for si = 0 to stripe_count - 1 do
    lock_stripe t si
  done;
  lock_pool t;
  Fun.protect
    ~finally:(fun () ->
      unlock_pool t;
      for si = stripe_count - 1 downto 0 do
        unlock_stripe t si
      done)
    (fun () ->
      Hashtbl.iter
        (fun _ f -> if f.pins > 0 then failwith "Buffer_pool.clear: pinned frame")
        t.registry;
      Hashtbl.iter (fun _ f -> write_back t f) t.registry;
      Array.iter Hashtbl.reset t.tables;
      Hashtbl.reset t.registry;
      t.hot.head <- None;
      t.hot.tail <- None;
      t.cold.head <- None;
      t.cold.tail <- None;
      t.resident <- 0;
      t.last_miss <- -2)
