exception All_frames_pinned

type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  (* LRU list: head = most recently used, tail = eviction candidate. *)
  mutable head : frame option;
  mutable tail : frame option;
  mutable fixes : int;
  mutable misses : int;
  wal : Wal.t option;
  raw : bytes;  (* one physical page, for WAL pre-image capture *)
  read_retries : int;
  obs : Natix_obs.Obs.t option;
}

let create ~disk ~bytes ?wal ?(read_retries = 3) () =
  let capacity = max 2 (bytes / Disk.page_size disk) in
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    fixes = 0;
    misses = 0;
    wal;
    raw = Bytes.create (Disk.page_size disk);
    read_retries;
    obs = Disk.obs disk;
  }

let disk t = t.disk
let capacity t = t.capacity
let resident t = Hashtbl.length t.frames
let fixes t = t.fixes
let misses t = t.misses
let obs t = t.obs
let wal t = t.wal

let hit_ratio t = if t.fixes = 0 then 1.0 else float_of_int (t.fixes - t.misses) /. float_of_int t.fixes

let reset_stats t =
  t.fixes <- 0;
  t.misses <- 0

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.prev <- None;
  f.next <- t.head;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let touch t f =
  if t.head != Some f then begin
    unlink t f;
    push_front t f
  end

let write_back t f =
  if f.dirty then begin
    (* Log-before-data: capture the page's on-disk pre-image into the WAL
       before overwriting it, once per page per batch (pages allocated
       within the batch need none — rollback truncates them away). *)
    (match t.wal with
    | Some w when Wal.needs_before w f.page_id ->
      Disk.read_raw t.disk f.page_id t.raw;
      Wal.log_before w ~page:f.page_id t.raw
    | Some _ | None -> ());
    (match t.obs with
    | None -> ()
    | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_flush { page = f.page_id }));
    Disk.write t.disk f.page_id f.data;
    f.dirty <- false
  end

(* Evict the least recently used unpinned frame. *)
let evict_one t =
  let rec find = function
    | None -> raise All_frames_pinned
    | Some f -> if f.pins = 0 then f else find f.prev
  in
  let victim = find t.tail in
  (match t.obs with
  | None -> ()
  | Some obs ->
    Natix_obs.Obs.emit obs (Natix_obs.Event.Page_evict { page = victim.page_id; dirty = victim.dirty }));
  write_back t victim;
  unlink t victim;
  Hashtbl.remove t.frames victim.page_id

let alloc_frame t page_id =
  if Hashtbl.length t.frames >= t.capacity then evict_one t;
  let f =
    {
      page_id;
      data = Bytes.create (Disk.payload_size t.disk);
      dirty = false;
      pins = 1;
      prev = None;
      next = None;
    }
  in
  Hashtbl.replace t.frames page_id f;
  push_front t f;
  f

let note_fix t page_id ~hit =
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_fix { page = page_id; hit })

(* Transient read failures (an attached fault plan) are retried a few
   times before giving up; each attempt is charged to the I/O model by the
   disk, which stands in for the backoff a real driver would pay. *)
let read_frame t f =
  let rec go attempt =
    try Disk.read t.disk f.page_id f.data
    with Faulty_disk.Read_error _ when attempt < t.read_retries ->
      (match t.obs with
      | None -> ()
      | Some obs ->
        Natix_obs.Obs.emit obs
          (Natix_obs.Event.Read_retry { page = f.page_id; attempt = attempt + 1 }));
      go (attempt + 1)
  in
  go 0

let fix t page_id =
  t.fixes <- t.fixes + 1;
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    f.pins <- f.pins + 1;
    touch t f;
    note_fix t page_id ~hit:true;
    f
  | None ->
    t.misses <- t.misses + 1;
    note_fix t page_id ~hit:false;
    let f = alloc_frame t page_id in
    (try read_frame t f
     with e ->
       (* Drop the half-made frame so a failed read leaves no garbage. *)
       unlink t f;
       Hashtbl.remove t.frames page_id;
       raise e);
    f

let fix_new t page_id =
  t.fixes <- t.fixes + 1;
  note_fix t page_id ~hit:true;
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    f.pins <- f.pins + 1;
    touch t f;
    f
  | None ->
    (* Freshly allocated page: content is known to be zeroes, no read
       needed (and none charged) -- counted as a hit above for the same
       reason. *)
    alloc_frame t page_id

let unfix _t f =
  assert (f.pins > 0);
  f.pins <- f.pins - 1

let mark_dirty f = f.dirty <- true

let with_page t page_id fn =
  let f = fix t page_id in
  Fun.protect ~finally:(fun () -> unfix t f) (fun () -> fn f)

let flush t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let checkpoint t =
  flush t;
  match t.wal with
  | None -> ()
  | Some w -> Wal.commit w ~page_count:(Disk.page_count t.disk)

let clear t =
  Hashtbl.iter
    (fun _ f -> if f.pins > 0 then failwith "Buffer_pool.clear: pinned frame")
    t.frames;
  flush t;
  Hashtbl.reset t.frames;
  t.head <- None;
  t.tail <- None
