exception All_frames_pinned

type segment = Hot | Cold

type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable seg : segment;
  mutable referenced : bool;
  mutable prev : frame option;
  mutable next : frame option;
}

(* One LRU chain: head = most recently used, tail = eviction candidate. *)
type lru = { mutable head : frame option; mutable tail : frame option }

type t = {
  disk : Disk.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  (* Segmented LRU: the hot segment holds the demand working set, the cold
     segment holds probationary pages (read-ahead and scan-mode fixes).
     With [scan_resistant = false] every frame lives in [hot] and the pool
     degenerates to the plain LRU of the paper. *)
  hot : lru;
  cold : lru;
  scan_resistant : bool;
  read_ahead : int;
  mutable scan_mode : bool;
  mutable last_miss : int;  (* for sequential-miss detection; -2 = none *)
  mutable fixes : int;
  mutable misses : int;
  mutable prefetched : int;
  wal : Wal.t option;
  raw : bytes;  (* one physical page, for WAL pre-image capture *)
  read_retries : int;
  obs : Natix_obs.Obs.t option;
}

let create ~disk ~bytes ?wal ?(read_retries = 3) ?(read_ahead = 0) ?(scan_resistant = false) () =
  if read_ahead < 0 then invalid_arg "Buffer_pool.create: negative read_ahead";
  let capacity = max 2 (bytes / Disk.page_size disk) in
  {
    disk;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    hot = { head = None; tail = None };
    cold = { head = None; tail = None };
    scan_resistant;
    read_ahead;
    scan_mode = false;
    last_miss = -2;
    fixes = 0;
    misses = 0;
    prefetched = 0;
    wal;
    raw = Bytes.create (Disk.page_size disk);
    read_retries;
    obs = Disk.obs disk;
  }

let disk t = t.disk
let capacity t = t.capacity
let resident t = Hashtbl.length t.frames
let fixes t = t.fixes
let misses t = t.misses
let prefetched t = t.prefetched
let obs t = t.obs
let wal t = t.wal
let read_ahead t = t.read_ahead
let scan_resistant t = t.scan_resistant
let scan_mode t = t.scan_mode
let set_scan_mode t on = t.scan_mode <- on

let with_scan t fn =
  let saved = t.scan_mode in
  t.scan_mode <- true;
  Fun.protect ~finally:(fun () -> t.scan_mode <- saved) fn

let is_resident t page_id = Hashtbl.mem t.frames page_id

let count_segment t seg =
  Hashtbl.fold (fun _ f acc -> if f.seg = seg then acc + 1 else acc) t.frames 0

let resident_hot t = count_segment t Hot
let resident_cold t = count_segment t Cold

let hit_ratio t = if t.fixes = 0 then 1.0 else float_of_int (t.fixes - t.misses) /. float_of_int t.fixes

let reset_stats t =
  t.fixes <- 0;
  t.misses <- 0;
  t.prefetched <- 0

let list_of t f = match f.seg with Hot -> t.hot | Cold -> t.cold

let unlink t f =
  let l = list_of t f in
  (match f.prev with Some p -> p.next <- f.next | None -> l.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> l.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t seg f =
  let l = match seg with Hot -> t.hot | Cold -> t.cold in
  f.seg <- seg;
  f.prev <- None;
  f.next <- l.head;
  (match l.head with Some h -> h.prev <- Some f | None -> l.tail <- Some f);
  l.head <- Some f

let touch t f =
  let l = list_of t f in
  if l.head != Some f then begin
    unlink t f;
    push_front t f.seg f
  end

(* Hit bookkeeping.  In the plain pool this is a bare LRU touch.  In the
   segmented pool a cold frame earns promotion to the hot segment on its
   first demand hit after a previous reference — but never while a scan is
   in progress, because a scan re-fixes the same page many times while
   walking its records and would otherwise promote the entire scan into the
   hot segment, which is exactly what the cold segment exists to prevent. *)
let on_hit t f =
  if (not t.scan_resistant) || f.seg = Hot then touch t f
  else if t.scan_mode then begin
    f.referenced <- true;
    touch t f
  end
  else if f.referenced then begin
    unlink t f;
    push_front t Hot f
  end
  else begin
    f.referenced <- true;
    touch t f
  end

let write_back t f =
  if f.dirty then begin
    (* Log-before-data: capture the page's on-disk pre-image into the WAL
       before overwriting it, once per page per batch (pages allocated
       within the batch need none — rollback truncates them away). *)
    (match t.wal with
    | Some w when Wal.needs_before w f.page_id ->
      Disk.read_raw t.disk f.page_id t.raw;
      Wal.log_before w ~page:f.page_id t.raw
    | Some _ | None -> ());
    (match t.obs with
    | None -> ()
    | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_flush { page = f.page_id }));
    Disk.write t.disk f.page_id f.data;
    f.dirty <- false
  end

(* Evict the least recently used unpinned frame, preferring the cold
   segment so probationary scan pages go before the working set.  [keep]
   protects a page range: a read-ahead batch must not evict the frames it
   allocated for its own run. *)
let evict_one ?(keep = (0, -1)) t =
  let keep_lo, keep_hi = keep in
  let rec find = function
    | None -> None
    | Some f ->
      if f.pins = 0 && not (f.page_id >= keep_lo && f.page_id <= keep_hi) then Some f
      else find f.prev
  in
  let victim =
    match find t.cold.tail with
    | Some v -> v
    | None -> ( match find t.hot.tail with Some v -> v | None -> raise All_frames_pinned)
  in
  (match t.obs with
  | None -> ()
  | Some obs ->
    Natix_obs.Obs.emit obs (Natix_obs.Event.Page_evict { page = victim.page_id; dirty = victim.dirty }));
  write_back t victim;
  unlink t victim;
  Hashtbl.remove t.frames victim.page_id

let drop_frame t f =
  unlink t f;
  Hashtbl.remove t.frames f.page_id

(* Placement of a freshly allocated frame.  Plain pool: always hot (the
   single LRU list).  Segmented pool: speculative (read-ahead) frames and
   demand misses during a scan enter the cold segment on probation; normal
   demand misses enter hot directly. *)
let alloc_frame ?(keep = (0, -1)) ?(pins = 1) ?(speculative = false) t page_id =
  if Hashtbl.length t.frames >= t.capacity then evict_one ~keep t;
  let seg =
    if not t.scan_resistant then Hot
    else if speculative || t.scan_mode then Cold
    else Hot
  in
  let f =
    {
      page_id;
      data = Bytes.create (Disk.payload_size t.disk);
      dirty = false;
      pins;
      seg;
      referenced = not speculative;
      prev = None;
      next = None;
    }
  in
  Hashtbl.replace t.frames page_id f;
  push_front t seg f;
  f

let note_fix t page_id ~hit =
  match t.obs with
  | None -> ()
  | Some obs -> Natix_obs.Obs.emit obs (Natix_obs.Event.Page_fix { page = page_id; hit })

(* Transient read failures (an attached fault plan) are retried a few
   times before giving up; each attempt is charged to the I/O model by the
   disk, which stands in for the backoff a real driver would pay. *)
let read_frame t f =
  let rec go attempt =
    try Disk.read t.disk f.page_id f.data
    with Faulty_disk.Read_error _ when attempt < t.read_retries ->
      (match t.obs with
      | None -> ()
      | Some obs ->
        Natix_obs.Obs.emit obs
          (Natix_obs.Event.Read_retry { page = f.page_id; attempt = attempt + 1 }));
      go (attempt + 1)
  in
  go 0

(* Read-ahead.  A demand miss at page [p] with the previous miss at
   [p - 1] reveals a sequential run; prefetch the next [read_ahead] pages
   (stopping at the end of the disk, at the first already-resident page,
   and at half the pool so a run cannot flush the whole cache).  Frames
   are allocated first (unpinned, cold, probationary), then filled with
   one batched [Disk.read_run] in ascending page order so the I/O model
   charges the run sequentially.  Advancing [last_miss] to the end of the
   prefetched run keeps a longer scan in read-ahead mode: its next miss is
   at the run frontier + 1.  Failures drop the unfilled frames and end the
   run — prefetch never fails the demand fix that triggered it. *)
let maybe_read_ahead t p =
  let run_detected = t.read_ahead > 0 && p = t.last_miss + 1 in
  t.last_miss <- p;
  if run_detected then begin
    let window = min t.read_ahead (max 1 (t.capacity / 2)) in
    let limit = min (p + window) (Disk.page_count t.disk - 1) in
    let rec targets q acc =
      if q > limit || Hashtbl.mem t.frames q then List.rev acc else targets (q + 1) (q :: acc)
    in
    let pages = targets (p + 1) [] in
    if pages <> [] then begin
      let keep = (p + 1, p + List.length pages) in
      let frames =
        (* Stop allocating (rather than fail the demand fix) if eviction
           runs out of candidates mid-batch. *)
        let rec alloc acc = function
          | [] -> List.rev acc
          | q :: rest -> (
            match alloc_frame ~keep ~pins:0 ~speculative:true t q with
            | f -> alloc (f :: acc) rest
            | exception All_frames_pinned -> List.rev acc)
        in
        alloc [] pages
      in
      if frames <> [] then begin
        let filled = Disk.read_run t.disk ~first:(p + 1) (List.map (fun f -> f.data) frames) in
        List.iteri (fun i f -> if i >= filled then drop_frame t f) frames;
        if filled > 0 then begin
          t.prefetched <- t.prefetched + filled;
          t.last_miss <- p + filled;
          match t.obs with
          | None -> ()
          | Some obs ->
            Natix_obs.Obs.emit obs (Natix_obs.Event.Read_ahead { first = p + 1; pages = filled })
        end
      end
    end
  end

let fix t page_id =
  t.fixes <- t.fixes + 1;
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    f.pins <- f.pins + 1;
    on_hit t f;
    note_fix t page_id ~hit:true;
    f
  | None ->
    t.misses <- t.misses + 1;
    note_fix t page_id ~hit:false;
    let f = alloc_frame t page_id in
    (try read_frame t f
     with e ->
       (* Drop the half-made frame so a failed read leaves no garbage. *)
       drop_frame t f;
       raise e);
    maybe_read_ahead t page_id;
    f

let fix_new t page_id =
  t.fixes <- t.fixes + 1;
  note_fix t page_id ~hit:true;
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    f.pins <- f.pins + 1;
    on_hit t f;
    f
  | None ->
    (* Freshly allocated page: content is known to be zeroes, no read
       needed (and none charged) -- counted as a hit above for the same
       reason. *)
    alloc_frame t page_id

let unfix _t f =
  assert (f.pins > 0);
  f.pins <- f.pins - 1

let mark_dirty f = f.dirty <- true

let with_page t page_id fn =
  let f = fix t page_id in
  Fun.protect ~finally:(fun () -> unfix t f) (fun () -> fn f)

let flush t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let checkpoint t =
  flush t;
  match t.wal with
  | None -> ()
  | Some w -> Wal.commit w ~page_count:(Disk.page_count t.disk)

let clear t =
  Hashtbl.iter
    (fun _ f -> if f.pins > 0 then failwith "Buffer_pool.clear: pinned frame")
    t.frames;
  flush t;
  Hashtbl.reset t.frames;
  t.hot.head <- None;
  t.hot.tail <- None;
  t.cold.head <- None;
  t.cold.tail <- None;
  t.last_miss <- -2
