(* The segment with per-document allocation arenas.

   Every page belongs to exactly one arena, recorded in the page's user32
   header field (page 0 is exempt — its user32 bootstraps the catalog —
   and always belongs to arena 0).  Arena 0 is the shared arena: the
   catalog chain, the element index, and every document not given a
   private arena allocate from it, with exactly the pre-arena segment's
   placement behaviour (rover, page-0 exclusion, one-page growth).  A
   private arena (id >= 1) allocates from only its own pages and grows by
   grabbing a batch of fresh pages from the global allocator, so two
   writers on different documents never compete for — or write to — the
   same page.  That disjointness is what makes the WAL's page-level
   redo/undo sound under concurrent transactions.

   Locking: each arena has its own lock (rank [arena]) held across a
   placement search and its possible refill; the global allocator lock
   (rank [alloc]) serialises [Disk.allocate] batches; the [meta] mutex is
   an unordered leaf guarding the two registry tables (held only for
   hashtable operations, never while taking another lock).  A domain
   holds at most one arena lock, except [release_arena], which takes
   arena 0's and the dying arena's in id order.  The refill writes go
   through [Buffer_pool.mark_dirty] before [Slotted_page.format], so
   inside a transaction the new page — ownership tag included — is
   redo-logged and survives a crash. *)

type arena = {
  id : int;
  mutable pages : int array;  (* local index -> global page id *)
  mutable npages : int;
  fsi : Fsi.t;  (* by local index *)
  mutable rover : int;  (* local index *)
  lock : Mutex.t;
}

type t = {
  pool : Buffer_pool.t;
  arenas : (int, arena) Hashtbl.t;
  page_arena : (int, arena * int) Hashtbl.t;  (* global page -> (arena, local) *)
  meta : Mutex.t;
  alloc_lock : Mutex.t;
  batch : int;  (* refill batch for private arenas; arena 0 grows by 1 *)
  mutable on_refill : (unit -> unit) option;  (* crash-test hook *)
}

(* Everything above the disk sees only the page payload; the integrity
   trailer is invisible here. *)
let page_size t = Disk.payload_size (Buffer_pool.disk t.pool)
let buffer_pool t = t.pool
let disk t = Buffer_pool.disk t.pool
let page_count t = Disk.page_count (disk t)
let max_record_len t = Slotted_page.max_record_len ~page_size:(page_size t)
let obs t = Buffer_pool.obs t.pool
let set_on_refill t hook = t.on_refill <- hook

let with_meta t f =
  Mutex.lock t.meta;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.meta) f

let with_arena a f =
  Lock_rank.acquire Lock_rank.arena;
  Mutex.lock a.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock a.lock;
      Lock_rank.release Lock_rank.arena)
    f

let with_alloc t f =
  Lock_rank.acquire Lock_rank.alloc;
  Mutex.lock t.alloc_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.alloc_lock;
      Lock_rank.release Lock_rank.alloc)
    f

let mk_arena id =
  { id; pages = Array.make 8 (-1); npages = 0; fsi = Fsi.create (); rover = 0; lock = Mutex.create () }

(* Register [page] as the next local page of [a].  Meta lock taken here;
   the caller holds [a.lock] (or is single-threaded setup). *)
let register t a page free =
  if a.npages = Array.length a.pages then begin
    let bigger = Array.make (2 * a.npages) (-1) in
    Array.blit a.pages 0 bigger 0 a.npages;
    a.pages <- bigger
  end;
  let local = a.npages in
  a.pages.(local) <- page;
  a.npages <- local + 1;
  Fsi.append a.fsi free;
  with_meta t (fun () -> Hashtbl.replace t.page_arena page (a, local));
  local

let arena t id =
  with_meta t (fun () ->
      match Hashtbl.find_opt t.arenas id with
      | Some a -> a
      | None -> invalid_arg (Printf.sprintf "Segment: unknown arena %d" id))

let owner_of t page =
  if page = 0 then 0
  else
    with_meta t (fun () ->
        match Hashtbl.find_opt t.page_arena page with Some (a, _) -> a.id | None -> 0)

let arena_ids t =
  with_meta t (fun () -> List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.arenas []))

let arena_pages t id =
  let a = arena t id in
  with_arena a (fun () -> Array.to_list (Array.sub a.pages 0 a.npages))

let fresh_arena t =
  with_meta t (fun () ->
      let id = 1 + Hashtbl.fold (fun id _ m -> max id m) t.arenas 0 in
      Hashtbl.replace t.arenas id (mk_arena id);
      id)

(* Ensure an arena struct exists for [id] (used when reopening a store
   whose catalog names arenas the page scan has not met yet). *)
let ensure_arena t id =
  with_meta t (fun () ->
      match Hashtbl.find_opt t.arenas id with
      | Some a -> a
      | None ->
        let a = mk_arena id in
        Hashtbl.replace t.arenas id a;
        a)

(* Grow [a] by fresh pages from the global allocator — [batch] pages for
   a private arena, one for the shared arena (the pre-arena growth rate,
   keeping legacy stores' allocation sequence identical).  Caller holds
   [a.lock].  Each page is marked dirty before it is formatted and
   tagged, so a transaction's refill is captured by its undo/redo
   tracking: ownership survives a crash when the transaction committed,
   and undo restores the zero page when it did not.  Returns the local
   index of the first new page. *)
let refill t a =
  (match t.on_refill with None -> () | Some hook -> hook ());
  with_alloc t (fun () ->
      let n = if a.id = 0 then 1 else t.batch in
      let first = ref (-1) in
      for _ = 1 to n do
        let page = Disk.allocate (disk t) in
        let frame = Buffer_pool.fix_new t.pool page in
        Buffer_pool.mark_dirty t.pool frame;
        Slotted_page.format frame.data;
        if a.id <> 0 then Slotted_page.set_user32 frame.data a.id;
        let free = Slotted_page.free_for_insert frame.data in
        Buffer_pool.unfix t.pool frame;
        let local = register t a page free in
        if !first < 0 then first := local
      done;
      !first)

(* Allocate and format one page in the shared arena (the legacy segment's
   [alloc_page]). *)
let alloc_page t =
  let a = arena t 0 in
  with_arena a (fun () ->
      let local = refill t a in
      a.pages.(local))

let create ?(batch = 8) pool =
  if batch < 1 then invalid_arg "Segment.create: batch must be >= 1";
  let t =
    {
      pool;
      arenas = Hashtbl.create 8;
      page_arena = Hashtbl.create 256;
      meta = Mutex.create ();
      alloc_lock = Mutex.create ();
      batch;
      on_refill = None;
    }
  in
  Hashtbl.replace t.arenas 0 (mk_arena 0);
  let existing = Disk.page_count (Buffer_pool.disk pool) in
  if existing = 0 then ignore (alloc_page t)
  else
    (* Reopening an existing store: rebuild every arena's inventory by
       scanning, grouping pages by their ownership tag.  Pages join their
       arena in ascending page order, so a store that only ever used the
       shared arena gets local index = page id — placement behaviour (and
       the scan's I/O) is identical to the pre-arena segment.  An all-zero
       page (a crashed transaction's refill undone by recovery) reads as
       owner 0 with no insertable room: it is carried as permanently-full
       shared space, never selected for placement. *)
    for page = 0 to existing - 1 do
      Buffer_pool.with_page pool page (fun frame ->
          let owner = if page = 0 then 0 else Slotted_page.get_user32 frame.data in
          let a = ensure_arena t owner in
          ignore (register t a page (Slotted_page.free_for_insert frame.data)))
    done;
  t

let with_page t page f = Buffer_pool.with_page t.pool page (fun frame -> f frame.data)

(* Free-space bookkeeping for a mutated page goes to its owning arena,
   under that arena's lock (a concurrent placement search on the same
   arena must see a consistent inventory).  No other lock is held at the
   [Fsi.set] point: the page fix has already been released back to
   pin-only. *)
let note_free t page free =
  match with_meta t (fun () -> Hashtbl.find_opt t.page_arena page) with
  | None -> ()
  | Some (a, local) -> with_arena a (fun () -> Fsi.set a.fsi local free)

let with_page_mut t page f =
  Buffer_pool.with_page t.pool page (fun frame ->
      Buffer_pool.mark_dirty t.pool frame;
      let r = f frame.data in
      note_free t page (Slotted_page.free_for_insert frame.data);
      r)

let free_bytes t page =
  match with_meta t (fun () -> Hashtbl.find_opt t.page_arena page) with
  | None -> 0
  | Some (a, local) -> with_arena a (fun () -> Fsi.get a.fsi local)

(* Approximate page fill from the free-space inventory, so observers can
   sample fill factors without charging page accesses to the I/O model. *)
let fill_factor t page =
  let usable = page_size t - Slotted_page.header_size in
  if usable <= 0 then 1.0 else 1.0 -. (float_of_int (free_bytes t page) /. float_of_int usable)

(* Page 0 is reserved for the upper layers' catalog bootstrap; shared-
   arena placement never selects it (local index = 0 there).  A private
   arena owns none of page 0, so its whole range is eligible. *)
let find_space t ?owner ?near ?(policy = `Forward) n =
  let owner = match owner with Some o -> o | None -> ( match near with Some p -> owner_of t p | None -> 0) in
  let a = arena t owner in
  with_arena a (fun () ->
      let lo = if a.id = 0 then 1 else 0 in
      let near_local =
        match near with
        | None -> None
        | Some p -> (
          match with_meta t (fun () -> Hashtbl.find_opt t.page_arena p) with
          | Some (na, local) when na == a -> Some local
          | Some _ | None -> None)
      in
      let found =
        match near_local with
        | Some l ->
          let l = max l lo in
          if l < Fsi.pages a.fsi && Fsi.get a.fsi l >= n then Some l
          else begin
            match policy with
            | `Forward -> (
              (* Stay close to the hinted page: scan forward, then wrap. *)
              match Fsi.find_first a.fsi ~from:l n with
              | Some _ as r -> r
              | None -> Fsi.find_first a.fsi ~from:lo n)
            | `First_fit ->
              (* Generic-manager behaviour: any page with room, oldest
                 first (fills slack all over the arena). *)
              Fsi.find_first a.fsi ~from:lo n
          end
        | None -> begin
          match Fsi.find_first a.fsi ~from:(max a.rover lo) n with
          | Some _ as r -> r
          | None -> Fsi.find_first a.fsi ~from:lo n
        end
      in
      match found with
      | Some local ->
        if near = None then a.rover <- local;
        a.pages.(local)
      | None ->
        let local = refill t a in
        if near = None then a.rover <- local;
        if Fsi.get a.fsi local < n then
          invalid_arg (Printf.sprintf "Segment.find_space: %d bytes exceed page capacity" n);
        a.pages.(local))

(* Fold a dying document's private arena back into the shared one: retag
   every page to owner 0 and hand its remaining space to arena 0's
   inventory, so no page is left claiming membership of an arena the
   catalog no longer knows.  Both arena locks are taken in id order
   (0 first) — the only place a domain holds two.  [quarantine]
   registers the pages as permanently full instead of donating their
   free space: a deletion running inside a still-uncommitted transaction
   must not let another writer place shared-arena records on pages the
   transaction's undo could wipe back to zero.  Quarantined space is
   rediscovered by the reopen scan. *)
let release_arena ?(quarantine = false) t id =
  if id <> 0 then begin
    let dying = with_meta t (fun () -> Hashtbl.find_opt t.arenas id) in
    match dying with
    | None -> ()
    | Some a ->
      let shared = arena t 0 in
      with_arena shared (fun () ->
          with_arena a (fun () ->
              for local = 0 to a.npages - 1 do
                let page = a.pages.(local) in
                Buffer_pool.with_page t.pool page (fun frame ->
                    Buffer_pool.mark_dirty t.pool frame;
                    Slotted_page.set_user32 frame.data 0;
                    let free =
                      if quarantine then 0 else Slotted_page.free_for_insert frame.data
                    in
                    ignore (register t shared page free))
              done;
              a.npages <- 0);
          with_meta t (fun () -> Hashtbl.remove t.arenas id))
  end
