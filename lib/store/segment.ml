type t = { pool : Buffer_pool.t; fsi : Fsi.t; mutable rover : int }

(* Everything above the disk sees only the page payload; the integrity
   trailer is invisible here. *)
let page_size t = Disk.payload_size (Buffer_pool.disk t.pool)
let buffer_pool t = t.pool
let disk t = Buffer_pool.disk t.pool
let page_count t = Disk.page_count (disk t)
let max_record_len t = Slotted_page.max_record_len ~page_size:(page_size t)

let alloc_page t =
  let page = Disk.allocate (disk t) in
  let frame = Buffer_pool.fix_new t.pool page in
  Buffer_pool.mark_dirty t.pool frame;
  Slotted_page.format frame.data;
  Fsi.append t.fsi (Slotted_page.free_for_insert frame.data);
  Buffer_pool.unfix t.pool frame;
  page

let create pool =
  let t = { pool; fsi = Fsi.create (); rover = 0 } in
  let existing = Disk.page_count (Buffer_pool.disk pool) in
  if existing = 0 then ignore (alloc_page t)
  else
    (* Reopening an existing store: rebuild the inventory by scanning. *)
    for page = 0 to existing - 1 do
      Buffer_pool.with_page pool page (fun frame ->
          Fsi.append t.fsi (Slotted_page.free_for_insert frame.data))
    done;
  t

let with_page t page f = Buffer_pool.with_page t.pool page (fun frame -> f frame.data)

let with_page_mut t page f =
  Buffer_pool.with_page t.pool page (fun frame ->
      Buffer_pool.mark_dirty t.pool frame;
      let r = f frame.data in
      Fsi.set t.fsi page (Slotted_page.free_for_insert frame.data);
      r)

let free_bytes t page = Fsi.get t.fsi page
let obs t = Buffer_pool.obs t.pool

(* Approximate page fill from the free-space inventory, so observers can
   sample fill factors without charging page accesses to the I/O model. *)
let fill_factor t page =
  let usable = page_size t - Slotted_page.header_size in
  if usable <= 0 then 1.0 else 1.0 -. (float_of_int (Fsi.get t.fsi page) /. float_of_int usable)

(* Page 0 is reserved for the upper layers' catalog bootstrap; general
   record placement never selects it. *)
let find_space t ?near ?(policy = `Forward) n =
  let found =
    match near with
    | Some p ->
      let p = max p 1 in
      if p < Fsi.pages t.fsi && Fsi.get t.fsi p >= n then Some p
      else begin
        match policy with
        | `Forward -> (
          (* Stay close to the hinted page: scan forward, then wrap. *)
          match Fsi.find_first t.fsi ~from:p n with
          | Some _ as r -> r
          | None -> Fsi.find_first t.fsi ~from:1 n)
        | `First_fit ->
          (* Generic-manager behaviour: any page with room, oldest first
             (fills slack all over the file — the 1:1 emulation). *)
          Fsi.find_first t.fsi ~from:1 n
      end
    | None -> begin
      match Fsi.find_first t.fsi ~from:(max t.rover 1) n with
      | Some _ as r -> r
      | None -> Fsi.find_first t.fsi ~from:1 n
    end
  in
  match found with
  | Some page ->
    if near = None then t.rover <- page;
    page
  | None ->
    let page = alloc_page t in
    if near = None then t.rover <- page;
    if Fsi.get t.fsi page < n then
      invalid_arg (Printf.sprintf "Segment.find_space: %d bytes exceed page capacity" n);
    page
