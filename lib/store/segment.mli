(** A segment: a linear collection of equal-sized slotted pages (paper
    §2.1) with page allocation and a free-space inventory.

    Page 0 is formatted at creation like every other page; the upper layers
    use it to bootstrap their catalog (via the page's user32 field). *)

type t

(** [create pool] opens the segment: a fresh disk gets page 0 allocated and
    formatted; an existing disk has its free-space inventory rebuilt by a
    scan. *)
val create : Buffer_pool.t -> t

val buffer_pool : t -> Buffer_pool.t
val disk : t -> Disk.t
val page_size : t -> int
val page_count : t -> int

(** Largest record the segment can store. *)
val max_record_len : t -> int

(** Allocate and format a fresh page, returning its id. *)
val alloc_page : t -> int

(** [with_page t page f] runs [f] on the pinned page image (read-only). *)
val with_page : t -> int -> (bytes -> 'a) -> 'a

(** [with_page_mut t page f] like {!with_page} but marks the page dirty and
    refreshes its free-space inventory entry afterwards. *)
val with_page_mut : t -> int -> (bytes -> 'a) -> 'a

(** [find_space t ?near ?policy n] returns a page with at least [n]
    insertable bytes, preferring the [near] page itself, then pages chosen
    by [policy]: [`Forward] (default) scans onward from [near] to stay
    close; [`First_fit] takes the lowest-numbered page with room, like a
    generic record manager filling slack anywhere in the file.  Without
    [near] the search starts from an internal rover that provides append
    locality.  A fresh page is allocated when nothing fits.  Page 0 is
    reserved for the catalog bootstrap and is never returned. *)
val find_space : t -> ?near:int -> ?policy:[ `Forward | `First_fit ] -> int -> int

(** Free bytes currently recorded for [page]. *)
val free_bytes : t -> int -> int

(** Fill factor of [page] computed from the free-space inventory (no page
    access is charged): [1 - free_bytes / (page_size - header)]. *)
val fill_factor : t -> int -> float

(** Observability handle inherited from the buffer pool / disk. *)
val obs : t -> Natix_obs.Obs.t option
