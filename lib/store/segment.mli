(** A segment: a linear collection of equal-sized slotted pages (paper
    §2.1) with page allocation, a free-space inventory, and per-document
    allocation {e arenas}.

    Every page carries an ownership tag (its user32 header field): arena 0
    is the shared arena with the historical segment's exact placement
    behaviour; a private arena (id >= 1) owns a disjoint set of pages and
    grows by batches from the global allocator, so transactions confined
    to different arenas never write the same page.  Page 0 is formatted at
    creation like every other page; the upper layers use its user32 to
    bootstrap their catalog, and it always belongs to arena 0. *)

type t

(** [create ?batch pool] opens the segment: a fresh disk gets page 0
    allocated and formatted; an existing disk has its arenas and
    free-space inventories rebuilt by a scan of the ownership tags.
    [batch] is how many pages a private arena grabs per refill (arena 0
    always grows by one, as before arenas existed). *)
val create : ?batch:int -> Buffer_pool.t -> t

val buffer_pool : t -> Buffer_pool.t
val disk : t -> Disk.t
val page_size : t -> int
val page_count : t -> int

(** Largest record the segment can store. *)
val max_record_len : t -> int

(** Allocate and format a fresh page in the shared arena, returning its
    id. *)
val alloc_page : t -> int

(** [with_page t page f] runs [f] on the pinned page image (read-only). *)
val with_page : t -> int -> (bytes -> 'a) -> 'a

(** [with_page_mut t page f] like {!with_page} but marks the page dirty and
    refreshes its free-space inventory entry afterwards. *)
val with_page_mut : t -> int -> (bytes -> 'a) -> 'a

(** [find_space t ?owner ?near ?policy n] returns a page with at least [n]
    insertable bytes in the arena selected by [owner] (explicit id, else
    the arena owning [near], else the shared arena).  Within the arena the
    [near] page itself is preferred, then pages chosen by [policy]:
    [`Forward] (default) scans onward from [near] to stay close;
    [`First_fit] takes the lowest page with room.  Without [near] the
    search starts from the arena's rover.  The arena refills from the
    global allocator when nothing fits.  Page 0 is reserved for the
    catalog bootstrap and is never returned. *)
val find_space : t -> ?owner:int -> ?near:int -> ?policy:[ `Forward | `First_fit ] -> int -> int

(** Arena owning [page] (0 for page 0 and untagged pages). *)
val owner_of : t -> int -> int

(** Register a new private arena and return its id (>= 1). *)
val fresh_arena : t -> int

(** Retag a private arena's pages to the shared arena and fold their free
    space back into it; no-op for arena 0 or an unknown id.  Called when
    the document owning the arena is deleted, so no page is left tagged
    with an arena the catalog no longer records.  [quarantine] (default
    false) registers the pages as full instead of donating their space —
    required when the deletion runs inside a still-uncommitted
    transaction, whose undo could wipe the pages back to zero under a
    concurrent writer; the space is rediscovered on reopen. *)
val release_arena : ?quarantine:bool -> t -> int -> unit

(** All registered arena ids, ascending (always includes 0). *)
val arena_ids : t -> int list

(** Global page ids currently owned by an arena, in local order.
    @raise Invalid_argument on an unknown arena. *)
val arena_pages : t -> int -> int list

(** Test hook: called at the start of every arena refill (before any page
    is allocated), e.g. to arm a crash point inside the refill. *)
val set_on_refill : t -> (unit -> unit) option -> unit

(** Free bytes currently recorded for [page]. *)
val free_bytes : t -> int -> int

(** Fill factor of [page] computed from the free-space inventory (no page
    access is charged): [1 - free_bytes / (page_size - header)]. *)
val fill_factor : t -> int -> float

(** Observability handle inherited from the buffer pool / disk. *)
val obs : t -> Natix_obs.Obs.t option
