(** Disk-resident B+-tree.

    The index substrate behind NATIX's index management module (paper
    Fig. 1; "index structures that support our storage structure", §6).
    Keys are arbitrary byte strings (compared lexicographically), values
    are fixed 8-byte payloads — RIDs in practice.

    Every tree node lives in one record of the underlying record manager,
    so node placement, forwarding and buffering are inherited from the
    storage layer and all I/O is charged to the store's cost model.  The
    root record's RID is stable for the lifetime of the tree (root splits
    rewrite the root record in place), so a single RID persists a whole
    index.

    Deletion is lazy: keys are removed, but emptied nodes stay in the tree
    until it is rebuilt (standard for index workloads; {!iter} and range
    scans skip them). *)

open Natix_util

(** Raised when a node record does not decode as a B-tree node or {!check}
    finds a violated invariant (unsorted keys, keys out of their separator
    range, a broken leaf chain).  Distinct from [Disk.Bad_page]: the page
    checksum was fine, the {e logical} structure is not. *)
exception Corrupt of string

type t

(** [create rm] allocates an empty tree and returns it; {!root} persists
    it. *)
val create : Record_manager.t -> t

(** [open_tree rm root] re-attaches to an existing tree. *)
val open_tree : Record_manager.t -> Rid.t -> t

val root : t -> Rid.t

(** [insert t ~key ~value] adds or replaces the binding of [key].
    @raise Invalid_argument if [value] is not 8 bytes or the key exceeds
    a quarter of the maximum record size. *)
val insert : t -> key:string -> value:string -> unit

val find : t -> key:string -> string option
val mem : t -> key:string -> bool

(** [remove t ~key] deletes the binding; no-op if absent. *)
val remove : t -> key:string -> unit

(** [iter_range t ~lo ~hi f] applies [f key value] to every binding with
    [lo <= key < hi] (unbounded when [None]), in key order. *)
val iter_range : t -> lo:string option -> hi:string option -> (string -> string -> unit) -> unit

val iter : t -> (string -> string -> unit) -> unit

(** Remove every binding and every node record, resetting the tree to an
    empty leaf under the same root RID. *)
val clear : t -> unit

(** Number of bindings (walks the leaves). *)
val cardinal : t -> int

(** Height of the tree (1 = a single leaf). *)
val height : t -> int

(** Structural invariants: sortedness, key-range containment, leaf chain
    consistency.  @raise Corrupt on violation. *)
val check : t -> unit
