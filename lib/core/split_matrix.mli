(** The Split Matrix (paper §3.3).

    Entry [S_ij] expresses the desired clustering of a node with label [j]
    as child of a node with label [i]:

    - [Standalone] (the paper's 0): the child is always kept as a record of
      its own, never clustered with the parent;
    - [Cluster] (the paper's ∞): the child is kept in the same record as
      the parent for as long as possible;
    - [Other]: the split algorithm decides freely.

    The matrix is an optional tuning parameter; the default has every entry
    [Other].  Other storage formats are instances of particular matrices
    (paper §5): all-[Standalone] emulates one-record-per-node metamodeling
    systems (POET, Excelon, LORE — the evaluation's 1:1 configuration);
    matrices of only [Standalone]/[Cluster] emulate HyperStorM's static
    hybrid. *)

open Natix_util

type behaviour = Standalone | Cluster | Other

type t

val create : ?default:behaviour -> unit -> t

(** The entry default passed at creation. *)
val default_behaviour : t -> behaviour

val set : t -> parent:Label.t -> child:Label.t -> behaviour -> unit

(** [set_child_default t ~child b] configures [b] for label [child] under
    every parent (explicit [set] entries still win). *)
val set_child_default : t -> child:Label.t -> behaviour -> unit

val get : t -> parent:Label.t -> child:Label.t -> behaviour

(** Named configurations of §4.2. *)

(** All entries [Standalone]: the 1:1 record-per-node emulation. *)
val one_to_one : unit -> t

(** All entries [Other]: the native 1:n configuration. *)
val native : unit -> t

val behaviour_to_string : behaviour -> string
