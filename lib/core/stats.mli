(** Physical-tree statistics: the quantities the paper's evaluation reports
    or explains results with (space on disk, record counts, record-tree
    depth — e.g. "the physical record tree has only a depth of 2", §4.4.5). *)

type doc_stats = {
  records : int;
  facade_nodes : int;  (** logical nodes materialised *)
  scaffold_nodes : int;  (** proxies + scaffolding/fragment aggregates *)
  proxy_count : int;  (** proxies alone (also included in [scaffold_nodes]) *)
  record_bytes : int;  (** sum of record body sizes *)
  record_tree_depth : int;  (** longest proxy chain from the root record *)
  max_record_bytes : int;
  avg_fill_factor : float;
      (** mean fill of the distinct pages holding the document's records,
          from the free-space inventory (sampling charges no I/O) *)
}

val document : Tree_store.t -> string -> doc_stats

(** Total bytes on disk for the whole store (allocated pages × page size) —
    the metric of the paper's Fig. 14. *)
val disk_bytes : Tree_store.t -> int

val pp_doc : Format.formatter -> doc_stats -> unit
