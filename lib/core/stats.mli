(** Physical-tree statistics: the quantities the paper's evaluation reports
    or explains results with (space on disk, record counts, record-tree
    depth — e.g. "the physical record tree has only a depth of 2", §4.4.5). *)

type doc_stats = {
  records : int;
  facade_nodes : int;  (** logical nodes materialised *)
  scaffold_nodes : int;  (** proxies + scaffolding/fragment aggregates *)
  proxy_count : int;  (** proxies alone (also included in [scaffold_nodes]) *)
  record_bytes : int;  (** sum of record body sizes *)
  record_tree_depth : int;  (** longest proxy chain from the root record *)
  max_record_bytes : int;
  avg_fill_factor : float;
      (** mean fill of the distinct pages holding the document's records,
          from the free-space inventory (sampling charges no I/O) *)
  pages : int;  (** distinct pages holding the document's records *)
}

val document : Tree_store.t -> string -> doc_stats

(** Total bytes on disk for the whole store (allocated pages × page size) —
    the metric of the paper's Fig. 14. *)
val disk_bytes : Tree_store.t -> int

(** {2 Per-document page hints}

    The query planner prices navigation by the pages a document occupies.
    Computing that per query would itself walk the document, so the
    document manager records it in the catalog whenever it (re)writes a
    document — the records are warm in the caches at that moment.  The
    hint is advisory: absent (e.g. after a raw streaming load that
    bypassed the manager) the planner falls back to the store-wide
    average. *)

(** Compute the document's distinct-page count and store it in the
    catalog meta (durable with the next catalog save).  No-op for an
    unknown document. *)
val record_page_hint : Tree_store.t -> string -> unit

(** Forget the hint (on document deletion). *)
val drop_page_hint : Tree_store.t -> string -> unit

(** The recorded page count, if any. *)
val page_hint : Tree_store.t -> string -> int option

val pp_doc : Format.formatter -> doc_stats -> unit
