open Natix_xml

type t = { store : Tree_store.t; index : Element_index.t option }

type index_mode = Ensure | Maintain | Fresh_only | Off

let index_name = "elements"
let dtd_key doc = "dtd:" ^ doc

let create ?(index = Ensure) store =
  let opened () = Element_index.open_index store ~name:index_name in
  (* A stale index (the store changed while no listener was attached, or
     it was just created over existing documents) silently misses nodes;
     writers repair it by rebuilding, readers must plan without it. *)
  let rebuilt idx =
    if Element_index.stale idx then Element_index.rebuild idx;
    idx
  in
  let index =
    match index with
    | Off -> None
    | Ensure ->
      Some
        (rebuilt
           (match opened () with
           | Some idx -> idx
           | None -> Element_index.create store ~name:index_name))
    | Maintain -> Option.map rebuilt (opened ())
    | Fresh_only -> (
      match opened () with
      | Some idx when not (Element_index.stale idx) -> Some idx
      | Some _ | None ->
        (* Detach the listener the failed open attached: nobody will fold
           its pending changes in. *)
        Tree_store.set_change_listener store None;
        None)
  in
  { store; index }

(* Whether an index is persisted but was skipped (or would be) because it
   is stale — the CLI uses this to explain a navigation-only plan. *)
let stale_index_skipped t =
  t.index = None && Element_index.persisted t.store ~name:index_name

let store t = t.store
let index t = t.index

(* Stamp events emitted during manager operations with (document, phase)
   so the page-heat profiler can attribute I/O; a no-op without an obs
   handle. *)
let in_context t ?doc ~phase f =
  match Tree_store.obs t.store with
  | None -> f ()
  | Some obs -> Natix_obs.Obs.with_context obs ?doc ~phase f

let checkpoint t =
  in_context t ~phase:"checkpoint" (fun () ->
      (* Flush pending index postings first so the durable state is the
         coherent pair (documents, index). *)
      Option.iter Element_index.refresh t.index;
      Tree_store.checkpoint t.store)

(* Per-document durability (see {!Tree_store.sync_document}): flushes just
   this document's pages, never blocked by a writer on another document.
   Pending index postings stay pending — folding them writes shared index
   pages, which needs the quiet store a full {!checkpoint} has. *)
let checkpoint_document t doc =
  in_context t ~doc ~phase:"checkpoint" (fun () -> Tree_store.sync_document t.store doc)

let save_catalog t = Catalog.save (Tree_store.record_manager t.store) (Tree_store.catalog t.store)

let store_document t ~name ?dtd ?(infer_dtd = false) ?order xml =
  let dtd = match dtd with Some _ -> dtd | None -> if infer_dtd then Some (Dtd.infer ~name xml) else None in
  let validation = match dtd with None -> Ok () | Some d -> Dtd.validate d xml in
  match validation with
  | Error detail -> Error (Error.Validation { doc = name; detail })
  | Ok () ->
    in_context t ~doc:name ~phase:"load" (fun () ->
        let root = Loader.load t.store ~name ?order xml in
        (match dtd with
        | Some d ->
          (* Journalled inside a transaction (durable with its commit);
             saved eagerly only for unscoped loads. *)
          Tree_store.meta_put t.store (dtd_key name) (Dtd.encode d);
          if not (Tree_store.in_transaction t.store) then save_catalog t
        | None -> ());
        Option.iter Element_index.refresh t.index;
        Stats.record_page_hint t.store name;
        Ok root)

(* One document, one WAL batch: load then immediately checkpoint, so the
   batch covering exactly this document commits before the call returns.
   This is the unit of atomicity [Natix_par.Par.load_files] relies on —
   the parallel loader serialises calls to this function under its commit
   lock, and a crash between two calls loses at most the document whose
   checkpoint had not yet committed. *)
let store_committed t ~name ?dtd ?infer_dtd ?order xml =
  match store_document t ~name ?dtd ?infer_dtd ?order xml with
  | Error _ as e -> e
  | Ok root ->
    checkpoint t;
    Ok root

(* One document, one transaction: the load's page writes are logged as
   redo+undo update records under a fresh transaction id and committed
   through the group-commit daemon.  Unlike [store_committed] there is no
   store-wide checkpoint, so concurrent transactional loaders batch their
   commit fsyncs instead of serialising full pool flushes — the document
   latch inside [Tree_store.with_txn] is the only per-document serialiser. *)
let store_transactional t ~name ?dtd ?infer_dtd ?order xml =
  Tree_store.with_txn t.store ~doc:name (fun () ->
      store_document t ~name ?dtd ?infer_dtd ?order xml)

let document_dtd t doc = Option.map Dtd.decode (Tree_store.meta_find t.store (dtd_key doc))

let validate t doc =
  match document_dtd t doc with
  | None -> Ok ()
  | Some dtd -> (
    match Exporter.document_to_xml t.store doc with
    | None -> Error (Error.Storage (Printf.sprintf "no document %S" doc))
    | Some xml -> (
      match Dtd.validate dtd xml with
      | Ok () -> Ok ()
      | Error detail -> Error (Error.Validation { doc; detail })))

(* The document a node belongs to, for fragment validation: climb to the
   root and look its record up in the catalog. *)
let doc_of_node t node =
  let rec up n = match Tree_store.logical_parent t.store n with Some p -> up p | None -> n in
  let root = up node in
  let rid = (Tree_store.box_of t.store root).Phys_node.rid in
  List.find_opt
    (fun name ->
      match Tree_store.document_rid t.store name with
      | Some r -> Natix_util.Rid.equal r rid
      | None -> false)
    (Tree_store.list_documents t.store)

let insert_fragment t ~doc point xml =
  let anchor = match point with Tree_store.First_under n -> n | Tree_store.After n -> n in
  match doc_of_node t anchor with
  | Some owner when owner <> doc ->
    Error (Error.Storage (Printf.sprintf "insertion point belongs to %S, not %S" owner doc))
  | _ -> (
    let invalid detail = Error (Error.Validation { doc; detail }) in
    let check =
      match document_dtd t doc with
      | None -> Ok ()
      | Some dtd -> (
        match Dtd.validate dtd xml with
        | Error detail -> invalid detail
        | Ok () -> (
          (* The fragment root must be allowed under the target parent. *)
          let parent =
            match point with
            | Tree_store.First_under n -> Some n
            | Tree_store.After n -> Tree_store.logical_parent t.store n
          in
          match (parent, xml) with
          | Some p, Xml_tree.Element e -> (
            let pname = Tree_store.label_name t.store p.Phys_node.label in
            match Dtd.spec_of dtd pname with
            | Some (Dtd.Children_of names) | Some (Dtd.Mixed names) ->
              if List.mem e.name names then Ok ()
              else invalid (Printf.sprintf "<%s> does not allow child <%s>" pname e.name)
            | Some Dtd.Any -> Ok ()
            | Some Dtd.Empty -> invalid (Printf.sprintf "<%s> must stay empty" pname)
            | Some Dtd.Pcdata_only -> invalid (Printf.sprintf "<%s> allows only text" pname)
            | None ->
              Error (Error.Dtd { doc; detail = Printf.sprintf "undeclared parent <%s>" pname }))
          | _ -> Ok ()))
    in
    match check with
    | Error _ as e -> e
    | Ok () ->
      in_context t ~doc ~phase:"update" (fun () ->
          let node = Loader.insert_fragment t.store point xml in
          Option.iter Element_index.refresh t.index;
          Stats.record_page_hint t.store doc;
          Ok node))

let delete_document t doc =
  in_context t ~doc ~phase:"delete" (fun () ->
      Tree_store.delete_document t.store doc;
      Tree_store.meta_remove t.store (dtd_key doc);
      Stats.drop_page_hint t.store doc;
      if not (Tree_store.in_transaction t.store) then save_catalog t;
      Option.iter Element_index.refresh t.index)

let elements_named t name =
  match (t.index, Natix_util.Name_pool.find (Tree_store.names t.store) name) with
  | _, None -> []
  | Some idx, Some label -> Element_index.scan idx label
  | None, Some label ->
    List.concat_map
      (fun doc ->
        match Tree_store.open_document t.store doc with
        | None -> []
        | Some root ->
          let acc = ref [] in
          let rec go n =
            if Natix_util.Label.equal n.Phys_node.label label && Tree_store.is_element n then
              acc := n :: !acc;
            Seq.iter go (Tree_store.logical_children t.store n)
          in
          go root;
          List.rev !acc)
      (Tree_store.list_documents t.store)

let count_elements t name =
  match (t.index, Natix_util.Name_pool.find (Tree_store.names t.store) name) with
  | _, None -> 0
  | Some idx, Some label -> Element_index.count idx label
  | None, Some _ -> List.length (elements_named t name)
