(** Store integrity checker (the engine behind [natix fsck]).

    Sweeps the whole store bottom-up and collects problems instead of
    stopping at the first: page trailers (checksum and page-id stamp),
    the slotted layout of every page, every document's physical tree
    (cached sizes, parent RIDs, proxy resolution, scaffolding invariants),
    the element index's B-tree invariants, and page ownership tags against
    the catalog's arena registry (every private arena claimed by exactly
    one document; every record homed on a page tagged with its document's
    arena; no orphaned tags left by a crashed writer).

    Note that opening a store already runs {!Natix_store.Recovery}, so by
    the time [run] sees a crashed store its recoverable damage has been
    repaired — a non-empty report means real, unrecoverable corruption. *)

type issue = { where : string; what : string }

type report = {
  pages : int;  (** pages swept *)
  documents : int;  (** documents walked *)
  indexed : bool;  (** an element index existed and was checked *)
  issues : issue list;  (** empty iff the store is clean *)
}

val ok : report -> bool
val run : Tree_store.t -> report

val run_disk : Natix_store.Disk.t -> report
(** [run_disk disk] is the layer-1 sweep alone (page trailers), for
    stores too damaged to open: no documents are walked and no index is
    checked.  [run] subsumes it whenever the store opens. *)

val pp : Format.formatter -> report -> unit
