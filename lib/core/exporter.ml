open Natix_xml

let rec to_xml store (n : Phys_node.t) : Xml_tree.t =
  if Tree_store.is_element n then begin
    let name = Tree_store.label_name store n.Phys_node.label in
    (* Attributes are the leading "@"-labelled literal children. *)
    let attrs = ref [] in
    let children = ref [] in
    Seq.iter
      (fun (c : Phys_node.t) ->
        let cname = Tree_store.label_name store c.Phys_node.label in
        if (not (Tree_store.is_element c)) && String.length cname > 0 && cname.[0] = '@' then
          attrs :=
            (String.sub cname 1 (String.length cname - 1), Tree_store.text_of store c) :: !attrs
        else children := to_xml store c :: !children)
      (Tree_store.logical_children store n);
    Xml_tree.element ~attrs:(List.rev !attrs) name (List.rev !children)
  end
  else Xml_tree.text (Tree_store.text_of store n)

let document_to_xml store name =
  Option.map (to_xml store) (Tree_store.open_document store name)

let to_string store n = Xml_print.to_string (to_xml store n)
