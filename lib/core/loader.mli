(** Bulk and incremental document loading (paper §4.3).

    Two insertion orders reproduce the evaluation's update patterns:

    - {!Preorder}: nodes inserted in document order — a "bulkload", or
      consecutive appends to a textual representation;
    - {!Bfs_binary}: breadth-first traversal of the binary-tree
      representation of the document (first child = left child, next
      sibling = right child, after Knuth), yielding an incremental update
      pattern with inserts scattered over the whole document.

    Attributes are stored as ["@name"]-labelled string literals placed
    before the element's other children. *)

type order = Preorder | Bfs_binary

val order_to_string : order -> string

(** [load store ~name ?order xml] creates document [name] and inserts the
    tree node by node through the tree growth procedure.  Returns the root
    handle. *)
val load : Tree_store.t -> name:string -> ?order:order -> Natix_xml.Xml_tree.t -> Phys_node.t

(** [insert_fragment store point xml] grafts a parsed fragment under an
    existing node (the document manager's "integrates document fragments").
    Returns the fragment's root handle. *)
val insert_fragment :
  Tree_store.t -> Tree_store.insert_point -> Natix_xml.Xml_tree.t -> Phys_node.t

(** [load_stream store ~name input] parses and stores the document in one
    streaming pass over the XML text: SAX events drive the tree growth
    procedure directly, so the logical tree is never materialised in
    memory — suitable for documents larger than RAM-resident trees.
    Attributes become ["@name"] literals, as with {!load}.
    @raise Natix_xml.Xml_lexer.Error on malformed input. *)
val load_stream : Tree_store.t -> name:string -> string -> Phys_node.t

(** [load_collection store docs ~order] loads several documents.  Under
    {!Preorder} they are loaded one after another; under {!Bfs_binary} a
    {e single} breadth-first frontier interleaves insertions across all
    documents, so updates are scattered over the whole collection — the
    working set that defeats a small buffer, as in the paper's incremental
    update experiment. *)
val load_collection :
  Tree_store.t -> (string * Natix_xml.Xml_tree.t) list -> order:order -> unit
