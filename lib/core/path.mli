(** A small path-query evaluator.

    The paper's query engine was "not yet implemented"; its evaluation runs
    three hand-navigated pattern-matching queries.  This module provides
    just enough of an XPath-like language to express them declaratively:

    {v
      path      ::= ("/" | "//") step (("/" | "//") step)*
      step      ::= nametest predicate*
      nametest  ::= NAME | "*" | "text()"
      predicate ::= "[" INTEGER "]"
    v}

    ["/"] selects children, ["//"] descendants; [\[k\]] keeps the k-th node
    (1-based) of the step's result {e per context node}, XPath-style.

    Examples from the evaluation: [//ACT\[3\]/SCENE\[2\]//SPEAKER] (query 1),
    [/PLAY/ACT\[1\]/SCENE\[1\]/SPEECH\[1\]] (query 3). *)

exception Parse_error of string

type t

val parse : string -> t
val to_string : t -> string

(** Evaluate relative to a context node; results in document order. *)
val eval : Cursor.t -> t -> Cursor.t list

(** Parse and evaluate against a document root. *)
val query : Tree_store.t -> doc:string -> string -> Cursor.t list
