(** Tree-storage-manager configuration (paper §3.2–§4.2).

    - [split_target]: the desired position of the separator as a fraction
      of the record's bytes; ½ produces two partitions of equal size.
    - [split_tolerance]: minimum subtree size, as a fraction of the page
      size, below which the separator search stops descending (subtrees
      smaller than this are moved whole into one partition to prevent
      fragmentation).  The paper uses 1/10.
    - [merge_threshold]: extension — when, after a deletion, a child record
      and its host would together encode below this fraction of the maximum
      record size, the child record is merged back in (the dynamic
      re-clustering promised in the paper's introduction).  [0.] disables
      merging. *)

type t = {
  page_size : int;
  buffer_bytes : int;
  split_target : float;
  split_tolerance : float;
  matrix : Split_matrix.t;
  merge_threshold : float;
  standalone_first_fit : bool;
      (** Placement of records created by [Standalone] matrix entries when
          the parent's page is full: [false] (default) keeps them close
          (NATIX-style forward scan); [true] first-fits them anywhere,
          like the generic record managers of metamodeling systems —
          the evaluation's 1:1 configuration uses [true]. *)
  wal : bool;
      (** Crash safety for file-backed stores: run recovery on open and
          protect every page write-back with a write-ahead log, making
          [Tree_store.sync] a durable checkpoint.  [true] by default; no
          effect on in-memory stores.  Disabling trades crash safety for
          less write amplification. *)
  commit_delay : float;
      (** Group-commit batching window in milliseconds: a commit leader
          waits this long before forcing the log, so concurrent committers
          share one fsync.  [0.] (default) forces immediately.  The window
          is slept on the wall clock (followers genuinely join the batch)
          and also charged to the I/O model's clock. *)
  read_retries : int;
      (** How many times the buffer pool retries a transiently failing
          page read (fault injection / flaky media) before giving up. *)
  read_ahead : int;
      (** Buffer-pool read-ahead window in pages: on a detected sequential
          miss pattern the pool prefetches this many contiguous pages as
          one batched run.  [0] (default) disables read-ahead, preserving
          the paper's demand-paging behaviour. *)
  scan_resistant : bool;
      (** Segmented-LRU eviction: read-ahead and scan-mode pages enter a
          probationary cold segment so full traversals stop evicting the
          hot working set.  [false] (default) keeps the paper's plain
          LRU. *)
  arena_batch : int;
      (** Pages a private document arena grabs from the global free-space
          structure per refill.  Larger batches mean fewer trips through
          the allocation lock under concurrent writers, at the cost of
          more pre-formatted (but reusable) pages per document.  The
          shared arena always refills one page at a time, preserving the
          paper's sequential allocation pattern exactly. *)
  obs : Natix_obs.Obs.t option;
      (** Observability handle.  [None] (default) disables tracing and
          metrics entirely; every instrumented hot path is guarded by a
          single match on this option, so a disabled store allocates
          nothing extra. *)
}

(** Paper defaults: 8K pages, 2 MB buffer, target ½, tolerance 1/10,
    all-[Other] matrix, merging at 0.5. *)
val default : unit -> t

val with_page_size : int -> t -> t
val with_matrix : Split_matrix.t -> t -> t

(** Enable tracing/metrics collection through the given handle. *)
val with_obs : Natix_obs.Obs.t -> t -> t

(** Enable both scan optimisations: read-ahead (default window 8 pages)
    and segmented-LRU eviction.  The query engine's full-traversal paths
    are designed for a pool configured this way. *)
val with_scan_friendly : ?read_ahead:int -> t -> t

(** Largest record body a page can hold under this configuration. *)
val max_record_size : t -> int

(** @raise Invalid_argument when a field is out of range (page size not in
    [512, 32768], fractions outside [0, 1], ...). *)
val validate : t -> unit
