(** Physical nodes (paper §2.3).

    The logical data tree is materialised as a physical tree built from the
    original logical nodes plus nodes needed to manage large trees:

    - {b aggregates} are inner nodes containing their children;
    - {b literals} are leaves holding typed uninterpreted data;
    - {b proxies} point to other records.

    Nodes representing logical nodes are {e facade} objects; helper nodes
    (proxies, grouping aggregates) are {e scaffolding} and carry
    {!Natix_util.Label.scaffold}.  One extension beyond the paper: a
    {e fragment aggregate} is a scaffolding aggregate that represents a
    {e single} logical text node whose bytes were chunked because they
    exceed a page (DESIGN.md §4.6).

    This is the decoded, in-memory form of record contents; the byte form
    is defined by {!Node_codec}.  Every node caches its encoded size
    ({!size}, including its 6-byte embedded header), maintained
    incrementally so the split algorithm can find byte midpoints without
    re-serialising. *)

open Natix_util

type literal =
  | Str of string
  | Int8 of int
  | Int16 of int
  | Int32 of int32
  | Int64 of int64
  | Float of float
  | Uri of string

type kind =
  | Aggregate of { mutable children : t list }
  | Frag_aggregate of { mutable children : t list }
      (** scaffolding for one oversized logical text node *)
  | Literal of literal
  | Proxy of Rid.t

and t = {
  mutable label : Label.t;
  mutable kind : kind;
  mutable parent : t option;  (** parent within the same record *)
  mutable size : int;  (** cached encoded size, embedded header included *)
  mutable box : box option;  (** set on the standalone root of a record *)
}

(** Identity of a decoded record: its RID, its standalone root and the RID
    of the record holding the proxy that points here ([Rid.null] for the
    root record of a document). *)
and box = { mutable rid : Rid.t; mutable root : t; mutable parent_rid : Rid.t }

(** Encoded header sizes (Appendix A). *)

val embedded_header_size : int

val standalone_header_size : int

(** Size of a literal's payload in bytes. *)
val literal_size : literal -> int

(** Constructors compute sizes and set parent links. *)

val aggregate : Label.t -> t list -> t

val scaffold_aggregate : t list -> t

(** Fragment aggregates keep the logical label of the text node they stand
    for (default {!Natix_util.Label.pcdata}). *)
val frag_aggregate : ?label:Label.t -> t list -> t

val literal : ?label:Label.t -> literal -> t
val proxy : Rid.t -> t

val is_scaffolding : t -> bool
val is_facade : t -> bool
val is_aggregate : t -> bool
val is_leaf : t -> bool

(** Children of an aggregate (or fragment aggregate); [[]] for leaves. *)
val children : t -> t list

(** [set_children t cs] replaces the children, re-parenting them and
    recomputing [t]'s size (ancestors are {e not} adjusted: use it while
    building). *)
val set_children : t -> t list -> unit

(** [add_size t delta] adjusts the cached size of [t] and all its ancestors
    within the record. *)
val add_size : t -> int -> unit

(** [insert_child parent ~index child] splices [child] into the parent's
    children and updates cached sizes up the record. *)
val insert_child : t -> index:int -> t -> unit

(** [remove_child parent child] detaches [child] (physical identity) and
    updates cached sizes up the record.
    @raise Not_found if [child] is not among the children. *)
val remove_child : t -> t -> unit

(** Index of a child within its parent (physical identity). *)
val index_of : t -> t -> int

(** Root of the record containing [t] (follows parents). *)
val record_root : t -> t

(** The size the whole record body would occupy on disk. *)
val record_size : t -> int

(** Number of nodes in this subtree (within the record). *)
val count : t -> int

(** Recompute the size of a subtree from scratch (tests, assertions). *)
val compute_size : t -> int

val pp : Format.formatter -> t -> unit
