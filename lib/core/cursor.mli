(** Logical navigation over stored documents.

    A cursor designates one logical node (element or text) and supports the
    DOM-style moves the paper's document manager exposes: first child, next
    sibling, parent, plus document-order iteration.  Proxies are expanded
    and scaffolding hidden transparently; every record crossing fixes the
    underlying page, so traversals have the access pattern the paper
    measures. *)

type t

(** Cursor at a document's root.  [None] if the document does not exist. *)
val of_document : Tree_store.t -> string -> t option

(** Cursor at an arbitrary logical node (no sibling context: moving to the
    parent recomputes it). *)
val of_node : Tree_store.t -> Phys_node.t -> t

val store : t -> Tree_store.t
val node : t -> Phys_node.t
val is_element : t -> bool
val is_text : t -> bool

(** Element/attribute name, or ["#pcdata"] for text nodes. *)
val name : t -> string

(** Text content of a text node.
    @raise Invalid_argument on elements. *)
val text : t -> string

(** Concatenated text of the subtree (elements allowed). *)
val text_content : t -> string

val first_child : t -> t option
val next_sibling : t -> t option
val parent : t -> t option

(** Logical children, in order. *)
val children : t -> t Seq.t

(** Child elements with the given name. *)
val children_named : t -> string -> t Seq.t

(** This node and all descendants, in document order. *)
val descendants_or_self : t -> t Seq.t

(** Attribute lookup: attributes are stored as ["@name"]-labelled literal
    children. *)
val attribute : t -> string -> string option

(** True for ["@"]-labelled literal nodes. *)
val is_attribute : t -> bool
