(** The tree storage manager — the paper's contribution (§3).

    Maps logical document trees onto records of the underlying record
    manager, maintaining the physical organisation dynamically:

    - {b insertion} (the tree growth procedure, Fig. 5): determine the
      insertion record under the Split Matrix, insert, and when the record
      exceeds the net page capacity, {b split} it semantically —
      a small subtree sliced off the record's root serves as separator and
      moves to the parent record (recursively), the remaining forest is
      distributed onto partition records grouped under scaffolding
      aggregates (§3.2.2, including both scaffolding-avoidance special
      cases);
    - {b deletion} with re-merging of underfull child records (the dynamic
      re-clustering of §1);
    - {b navigation} over the logical tree that transparently expands
      proxies and hides scaffolding.

    Oversized text literals (larger than a page) are chunked under a
    fragment aggregate and from then on handled by the ordinary split
    machinery — an extension documented in DESIGN.md §4.6.

    Record access always pins the underlying page in the buffer pool, so
    {!io_stats} reflects the true access pattern even though decoded
    records are memoised. *)

open Natix_util
open Natix_store

(** Raised when a record cannot be split because the Split Matrix pins all
    its content to the parent (e.g. the all-[Cluster] "one record"
    configuration the paper notes cannot store documents larger than a
    page). *)
exception Unsplittable of string

type t

(** [open_store ?config disk] opens (or initialises) a store.  The catalog
    is loaded if present. *)
val open_store : ?config:Config.t -> Disk.t -> t

(** Fresh in-memory store (tests, benchmarks). *)
val in_memory : ?config:Config.t -> ?model:Io_model.t -> unit -> t

val config : t -> Config.t
val names : t -> Name_pool.t
val catalog : t -> Catalog.t
val record_manager : t -> Record_manager.t
val buffer_pool : t -> Buffer_pool.t
val io_stats : t -> Io_stats.t

(** [reader t] is a read-only view for one worker domain: it shares the
    record manager, buffer pool, catalog and name pool with [t] but owns a
    fresh decoded-record cache (the store's main shared-mutable state) and
    has no observability handle or change listener.  I/O accounting is
    unaffected — {!io_stats} charges page accesses even on decoded-cache
    hits.  Readers assume the base store is not mutated while they are in
    use; [Natix_par.Par] only creates them inside read-only regions. *)
val reader : t -> t

(** Reset the disk {!Io_stats} and the pool fix/miss counters together
    (the measurement protocol's zeroing step).
    @raise Error.Error with [Storage _] while a parallel region is active
    on the underlying disk — a reset racing with per-domain accumulators
    would silently corrupt the merged totals. *)
val reset_io_stats : t -> unit

(** Largest record body under this configuration. *)
val max_record_size : t -> int

(** Persist the catalog and flush all buffers.  On a file-backed store
    with the WAL enabled (the default) this is a durable {e checkpoint}:
    the write-ahead-log batch commits, and a crash at any later point
    recovers the store to exactly this state.
    @raise Error.Error with [Storage _] while transactions are in flight
    or after the store was poisoned. *)
val sync : t -> unit

(** Synonym for {!sync}, named for the durability protocol. *)
val checkpoint : t -> unit

(** [sync_document t doc] writes [doc]'s pages home without the
    store-wide quiesce {!sync} needs: validation is against
    {e per-document} transaction state, so an idle document's checkpoint
    is never blocked by an unrelated in-flight writer.  It does not
    truncate the WAL and does not persist the catalog (transactional
    commits do, and unscoped work commits at the next {!sync}); it is
    exactly the flush moving the document's data from the pool to disk,
    WAL-before-data preserved per page.
    @raise Error.Error with [Storage _] while a transaction {e on this
    document} is in flight, when the document does not exist, or after
    the store was poisoned. *)
val sync_document : t -> string -> unit

(** Synonym for {!sync_document}. *)
val checkpoint_document : t -> string -> unit

(** {1 Transactions}

    [with_txn t ~doc f] runs [f] as one atomic, durable transaction
    against document [doc]: after a crash the store recovers to a state
    where the transaction either happened entirely or not at all.  The
    per-document latch is held for the whole call, so two transactions on
    the same document serialise completely.

    Transactions on {e different} documents run their mutation phases
    concurrently when the documents have private allocation arenas —
    every document created inside a transaction gets one.  Their page
    sets are disjoint by construction, so tree growth, splits and record
    relocation all proceed under nothing but the document latch; only
    the begin step and the commit step (catalog save on shared pages,
    update/commit logging) serialise on the store-wide structure lock,
    and the commit-fsync wait overlaps in the group-commit daemon.  A
    pre-existing document in the shared arena keeps the serialised
    mutation phase of earlier versions.

    Mutations outside [with_txn] keep the implicit checkpoint-batch
    semantics, but mixing regimes is rejected: an unscoped mutation while
    any transaction is in flight raises a [Storage] error.

    If [f] raises, or the commit fails (a crashed log force, a poisoned
    group-commit daemon), the store is {e poisoned}: the in-memory state
    cannot be rolled back in place, so every later operation raises a
    typed [Storage] error and the only way forward is to reopen the store,
    which replays the log and undoes the loser. *)
val with_txn : t -> doc:string -> (unit -> 'a) -> 'a

(** Whether the calling domain is inside [with_txn]'s [f]. *)
val in_transaction : t -> bool

(** Private allocation arena of a document, if it has one. *)
val document_arena : t -> string -> int option

(** {1 Catalog metadata}

    Keyed string metadata persisted with the catalog.  Inside a
    transaction a write is {e journalled}: it becomes durable with this
    transaction's commit, while a concurrently committing transaction
    excludes it from the catalog image it saves.  Secondary layers
    (DTDs, index roots and epochs, stats hints) must route their catalog
    metadata through these instead of touching the tables directly —
    the accessors also provide the synchronisation concurrent writers
    need. *)

val meta_find : t -> string -> string option
val meta_put : t -> string -> string -> unit
val meta_remove : t -> string -> unit

(** Why the store is poisoned, if it is. *)
val poisoned : t -> string option

(** Transactions currently between begin and commit acknowledgement. *)
val active_txns : t -> int

(** The group-commit daemon (present iff the store has a WAL); exposes
    flush/batching counters. *)
val group_commit : t -> Group_commit.t option

(** [close t] checkpoints (unless [~commit:false]), then closes the WAL
    and the disk.  [~commit:false] abandons un-checkpointed work — the
    crash-consistency harness uses it to release descriptors of a
    "killed" store without letting it write another byte. *)
val close : ?commit:bool -> t -> unit

(** Flush and drop all buffered pages {e and} decoded records — the
    paper's "buffer cleared at the start of each operation". *)
val clear_buffers : t -> unit

(** {1 Documents} *)

val create_document : t -> name:string -> root:string -> Phys_node.t

(** Logical root node of a document. *)
val open_document : t -> string -> Phys_node.t option

val list_documents : t -> string list

(** Delete the document and all its records. *)
val delete_document : t -> string -> unit

(** {1 Labels} *)

(** Intern an element or attribute name. *)
val label : t -> string -> Label.t

val label_name : t -> Label.t -> string

(** {1 Logical navigation}

    Logical nodes are facade {!Phys_node.t} values (plus fragment
    aggregates standing for oversized text nodes).  Handles stay valid
    across splits — splits move node objects between records without
    copying them — and are invalidated only by deleting the subtree. *)

val logical_children : t -> Phys_node.t -> Phys_node.t Seq.t
val logical_parent : t -> Phys_node.t -> Phys_node.t option

(** True for element nodes (facade aggregates). *)
val is_element : Phys_node.t -> bool

(** True for logical text/literal leaves (including fragment aggregates). *)
val is_literal : Phys_node.t -> bool

(** Text of a logical text node; reassembles fragmented literals.
    @raise Invalid_argument on an element. *)
val text_of : t -> Phys_node.t -> string

(** Typed literal of a leaf, when it is not fragmented. *)
val literal_of : Phys_node.t -> Phys_node.literal option

(** {1 Updates} *)

type payload =
  | Elem of Label.t  (** a fresh empty element *)
  | Text of string
  | Lit of Label.t * Phys_node.literal

type insert_point =
  | First_under of Phys_node.t  (** as first child of this element *)
  | After of Phys_node.t  (** as next sibling of this logical node *)

(** [insert_node t point payload] runs the tree growth procedure and
    returns the new logical node. *)
val insert_node : t -> insert_point -> payload -> Phys_node.t

(** [delete_node t node] removes the logical subtree rooted at [node],
    deleting the records it owns and re-merging underfull neighbours.
    @raise Invalid_argument when [node] is a document root (use
    {!delete_document}). *)
val delete_node : t -> Phys_node.t -> unit

(** [update_text t node s] replaces a text node's contents. *)
val update_text : t -> Phys_node.t -> string -> unit

(** {1 Introspection} *)

(** The decoded record containing this node. *)
val box_of : t -> Phys_node.t -> Phys_node.box

(** Fetch (and memoise) a record by RID, charging the page access. *)
val fetch : t -> Rid.t -> Phys_node.box

(** Number of splits performed since the store was opened. *)
val split_count : t -> int

(** Number of record re-merges performed since the store was opened. *)
val merge_count : t -> int

(** Observability handle the store was opened with ({!Config.with_obs});
    [None] when tracing is disabled.  The handle's clock runs on the
    disk's simulated time. *)
val obs : t -> Natix_obs.Obs.t option

(** {1 Change notification}

    Secondary structures (e.g. {!Element_index}) subscribe to record-level
    changes; the listener fires after a record is (re)written or deleted.
    One listener at a time; pass [None] to detach. *)

type record_event = Changed | Dropped

val set_change_listener : t -> (Rid.t -> record_event -> unit) option -> unit

(** Monotone count of record-level changes over the store's lifetime,
    persisted in the catalog at {!sync}.  A secondary structure that
    stamps the epoch it last folded changes in at can tell on reopen
    whether the store changed while its listener was detached (and it is
    therefore stale). *)
val change_epoch : t -> int

(** Walk every record of a document's physical tree, in record-tree
    pre-order: [f rid root depth].  Used by stats and integrity checks. *)
val iter_records : t -> Rid.t -> (Rid.t -> Phys_node.t -> int -> unit) -> unit

(** Root record RID of a document. *)
val document_rid : t -> string -> Rid.t option

(** Consistency check over a document's physical tree: cached sizes match
    recomputation, parent RIDs are correct, proxies resolve, scaffolding
    invariants hold.  @raise Failure with a description on violation. *)
val check_document : t -> string -> unit
