open Natix_xml

type order = Preorder | Bfs_binary

(* Wrap a whole load in a span when the store is instrumented; the span's
   duration is simulated I/O time, making loads comparable across runs of
   the cost model.  Single-document loads also install a (doc, "load")
   context so emitted events are attributable even when the loader is
   called directly, without a document manager.  (The BFS collection load
   interleaves documents page by page, so it carries no document label.) *)
let spanned ?doc store name f =
  match Tree_store.obs store with
  | None -> f ()
  | Some obs -> (
    let run () = Natix_obs.Obs.span obs name f in
    match doc with
    | None -> run ()
    | Some d -> Natix_obs.Obs.with_context obs ~doc:d ~phase:"load" run)

let order_to_string = function
  | Preorder -> "preorder"
  | Bfs_binary -> "bfs-binary"

(* Uniform pre-insertion representation: every logical node (element,
   attribute, text) becomes one payload; attributes come first among an
   element's children. *)
type pre = { payload : Tree_store.payload; kids : pre list }

let rec pre_of_xml store (x : Xml_tree.t) : pre =
  match x with
  | Xml_tree.Text s -> { payload = Tree_store.Text s; kids = [] }
  | Xml_tree.Element e ->
    let attrs =
      List.map
        (fun (k, v) ->
          { payload = Tree_store.Lit (Tree_store.label store ("@" ^ k), Phys_node.Str v); kids = [] })
        e.attrs
    in
    let kids = List.map (pre_of_xml store) e.children in
    { payload = Tree_store.Elem (Tree_store.label store e.name); kids = attrs @ kids }

let insert_preorder store point pre =
  let rec go point pre =
    let node = Tree_store.insert_node store point pre.payload in
    let _last : Tree_store.insert_point =
      List.fold_left
        (fun point kid -> Tree_store.After (go point kid))
        (Tree_store.First_under node) pre.kids
    in
    node
  in
  go point pre

(* BFS over the binary-tree representation: left = first child, right =
   next sibling.  A node can be inserted as soon as its binary parent is
   stored, which determines its insertion point directly.  Queue entries
   carry the node to insert and its pending right siblings. *)
let insert_bfs_binary store point pre right_siblings =
  let queue : (Tree_store.insert_point * pre * pre list) Queue.t = Queue.create () in
  Queue.add (point, pre, right_siblings) queue;
  let root = ref None in
  while not (Queue.is_empty queue) do
    let point, pre, right = Queue.pop queue in
    let node = Tree_store.insert_node store point pre.payload in
    if !root = None then root := Some node;
    (match pre.kids with
    | first :: rest -> Queue.add (Tree_store.First_under node, first, rest) queue
    | [] -> ());
    match right with
    | r :: rr -> Queue.add (Tree_store.After node, r, rr) queue
    | [] -> ()
  done;
  Option.get !root

let insert_fragment store point xml = insert_preorder store point (pre_of_xml store xml)

(* Streaming load: a stack of (element node, last inserted child) frames
   turns each SAX event into one tree-growth insertion. *)
let load_stream store ~name input =
  spanned ~doc:name store "load_stream" @@ fun () ->
  let lexer = Xml_lexer.of_string input in
  let is_ws s =
    let ok = ref true in
    String.iter (function ' ' | '\t' | '\n' | '\r' -> () | _ -> ok := false) s;
    !ok
  in
  let point parent last =
    match last with
    | None -> Tree_store.First_under parent
    | Some prev -> Tree_store.After prev
  in
  let rec skip_prolog () =
    match Xml_lexer.next lexer with
    | Some (Xml_event.Text s) when is_ws s -> skip_prolog ()
    | other -> other
  in
  let root, root_attrs =
    match skip_prolog () with
    | Some (Xml_event.Start_element { name = root_name; attrs }) ->
      (Tree_store.create_document store ~name ~root:root_name, attrs)
    | Some _ | None -> invalid_arg "Loader.load_stream: document must start with an element"
  in
  let insert_attrs node attrs last =
    List.fold_left
      (fun last (k, v) ->
        Some
          (Tree_store.insert_node store (point node last)
             (Tree_store.Lit (Tree_store.label store ("@" ^ k), Phys_node.Str v))))
      last attrs
  in
  (* Stack frames: (element, last child inserted under it). *)
  let stack = ref [ (root, insert_attrs root root_attrs None) ] in
  let rec loop () =
    match Xml_lexer.next lexer with
    | None -> (
      match !stack with
      | [ _ ] | [] -> ()
      | _ -> invalid_arg "Loader.load_stream: unclosed elements")
    | Some event ->
      (match (event, !stack) with
      | _, [] -> invalid_arg "Loader.load_stream: content after the root element"
      | Xml_event.Start_element { name = el; attrs }, (parent, last) :: up ->
        let node =
          Tree_store.insert_node store (point parent last)
            (Tree_store.Elem (Tree_store.label store el))
        in
        stack := (node, insert_attrs node attrs None) :: (parent, Some node) :: up
      | Xml_event.Text s, (parent, last) :: up ->
        if is_ws s then ()
        else begin
          let node = Tree_store.insert_node store (point parent last) (Tree_store.Text s) in
          stack := (parent, Some node) :: up
        end
      | Xml_event.End_element el, (node, _) :: up ->
        let expected = Tree_store.label_name store node.Phys_node.label in
        if expected <> el then
          invalid_arg
            (Printf.sprintf "Loader.load_stream: <%s> closed by </%s>" expected el);
        stack := up);
      if !stack <> [] then loop ()
  in
  loop ();
  (* Only whitespace (and skipped constructs) may follow the root. *)
  let rec drain () =
    match Xml_lexer.next lexer with
    | None -> ()
    | Some (Xml_event.Text s) when is_ws s -> drain ()
    | Some _ -> invalid_arg "Loader.load_stream: content after the root element"
  in
  drain ();
  root

let load store ~name ?(order = Preorder) (xml : Xml_tree.t) =
  spanned ~doc:name store "load" @@ fun () ->
  match xml with
  | Xml_tree.Text _ -> invalid_arg "Loader.load: document root must be an element"
  | Xml_tree.Element e ->
    let root = Tree_store.create_document store ~name ~root:e.name in
    let pre = pre_of_xml store xml in
    (match (order, pre.kids) with
    | _, [] -> ()
    | Preorder, kids ->
      ignore
        (List.fold_left
           (fun point kid -> Tree_store.After (insert_preorder store point kid))
           (Tree_store.First_under root) kids)
    | Bfs_binary, first :: rest ->
      ignore (insert_bfs_binary store (Tree_store.First_under root) first rest));
    root

let load_collection store docs ~order =
  spanned store "load_collection" @@ fun () ->
  match order with
  | Preorder -> List.iter (fun (name, xml) -> ignore (load store ~name xml)) docs
  | Bfs_binary ->
    (* One shared frontier across every document: the queue is seeded with
       all roots' first children, so level k of every document is inserted
       before level k+1 of any. *)
    let queue : (Tree_store.insert_point * pre * pre list) Queue.t = Queue.create () in
    List.iter
      (fun (name, xml) ->
        match xml with
        | Xml_tree.Text _ -> invalid_arg "Loader.load_collection: root must be an element"
        | Xml_tree.Element e ->
          let root = Tree_store.create_document store ~name ~root:e.name in
          let pre = pre_of_xml store xml in
          (match pre.kids with
          | first :: rest -> Queue.add (Tree_store.First_under root, first, rest) queue
          | [] -> ()))
      docs;
    while not (Queue.is_empty queue) do
      let point, pre, right = Queue.pop queue in
      let node = Tree_store.insert_node store point pre.payload in
      (match pre.kids with
      | f :: fr -> Queue.add (Tree_store.First_under node, f, fr) queue
      | [] -> ());
      match right with
      | r :: rr -> Queue.add (Tree_store.After node, r, rr) queue
      | [] -> ()
    done
