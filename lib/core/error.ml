type t =
  | Parse of string
  | Validation of { doc : string; detail : string }
  | Dtd of { doc : string; detail : string }
  | Query of string
  | Storage of string

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Parse detail -> "parse error: " ^ detail
  | Validation { doc; detail } -> Printf.sprintf "document %S is invalid: %s" doc detail
  | Dtd { doc; detail } -> Printf.sprintf "DTD problem in %S: %s" doc detail
  | Query detail -> "query error: " ^ detail
  | Storage detail -> detail

(* Exit codes 3-6 belong to the storage-corruption exceptions mapped in the
   CLI driver (Bad_page, Btree.Corrupt, ...); expected domain failures use
   1 (invalid content) and 2 (usage-level: unparsable input, bad query,
   missing document). *)
let exit_code = function
  | Validation _ | Dtd _ -> 1
  | Parse _ | Query _ | Storage _ -> 2

let pp ppf e = Format.pp_print_string ppf (to_string e)
