(** The document manager (paper §2.1, Fig. 1).

    The application-facing layer: access "on node and document
    granularity", schema consistency checks ("document validation in the
    XML world"), the index updates, and integration of document fragments
    into a single document view.  It wraps a {!Tree_store} with

    - per-document DTDs persisted in the catalog, validated on store and
      on fragment insertion;
    - an optional {!Element_index} kept consistent through the store's
      change log;
    - fragment grafting with validation. *)

type t

(** How {!create} handles the element index named ["elements"].  A
    persisted index can be {e stale} (see {!Element_index.stale}) when
    the store changed in a session that did not open it; using it then
    would silently drop query results, so every mode either repairs or
    refuses a stale index:

    - [Ensure] — open or create the index; rebuild it when stale.  For
      writers that want index-accelerated access (the default).
    - [Maintain] — open the index only when one is persisted (rebuild
      when stale), so this session's changes keep it current; never
      create one.  For writers that don't need the index themselves.
    - [Fresh_only] — open the index only when one is persisted {e and}
      current; never create, rebuild, or otherwise write.  For read-only
      sessions: a stale index yields [None] (plan by navigation).
    - [Off] — no index. *)
type index_mode = Ensure | Maintain | Fresh_only | Off

(** [create ?index store] wraps a store; [index] (default [Ensure])
    selects the index policy above. *)
val create : ?index:index_mode -> Tree_store.t -> t

val store : t -> Tree_store.t
val index : t -> Element_index.t option

(** True when the manager runs without an index even though one is
    persisted — i.e. [Fresh_only] (or [Off]) skipped it.  Lets a CLI
    explain why a plan is navigation-only. *)
val stale_index_skipped : t -> bool

(** Durable checkpoint: flush pending element-index updates, then
    {!Tree_store.checkpoint} (catalog save, buffer flush, WAL commit).
    After it returns, a crash recovers to exactly this state. *)
val checkpoint : t -> unit

(** Per-document durability (see {!Tree_store.sync_document}): flush just
    this document's pages, without the store-wide quiesce — an idle
    document's checkpoint is never blocked by a writer on another
    document.  Pending element-index postings are {e not} folded (they
    live on shared pages); they fold at the next full {!checkpoint}. *)
val checkpoint_document : t -> string -> unit

(** [store_document t ~name ?dtd ?order xml] validates [xml] against [dtd]
    when given (or [infer]s one when [infer_dtd] is set), loads it, and
    persists the DTD with the document.  Returns the root handle or the
    validation error. *)
val store_document :
  t ->
  name:string ->
  ?dtd:Natix_xml.Dtd.t ->
  ?infer_dtd:bool ->
  ?order:Loader.order ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

(** [store_committed] is {!store_document} followed by {!checkpoint} on
    success: the WAL batch covering exactly this document commits before
    the call returns, so a later crash cannot take the document with it.
    The parallel bulk loader serialises its per-document commits through
    this entry point. *)
val store_committed :
  t ->
  name:string ->
  ?dtd:Natix_xml.Dtd.t ->
  ?infer_dtd:bool ->
  ?order:Loader.order ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

(** [store_transactional] is {!store_document} wrapped in
    {!Tree_store.with_txn} on the target document: the load commits as one
    ARIES transaction through the group-commit daemon, so concurrent
    loaders on different documents batch their commit fsyncs rather than
    serialising store-wide checkpoints.  Same atomicity guarantee as
    {!store_committed}: after the call returns, a crash cannot take the
    document with it; a crash mid-call loses it entirely, never partially.
    @raise Error.Error if the store is poisoned or has no write-ahead log. *)
val store_transactional :
  t ->
  name:string ->
  ?dtd:Natix_xml.Dtd.t ->
  ?infer_dtd:bool ->
  ?order:Loader.order ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

(** DTD stored with a document, if any. *)
val document_dtd : t -> string -> Natix_xml.Dtd.t option

(** Re-validate a stored document against its stored DTD ([Ok ()] when it
    has none). *)
val validate : t -> string -> (unit, Error.t) result

(** [insert_fragment t ~doc point xml] validates the fragment against the
    document's DTD (it must fit the DTD on its own; the insertion point's
    parent must allow the fragment's root element), then grafts it. *)
val insert_fragment :
  t ->
  doc:string ->
  Tree_store.insert_point ->
  Natix_xml.Xml_tree.t ->
  (Phys_node.t, Error.t) result

(** Delete a document together with its DTD registration. *)
val delete_document : t -> string -> unit

(** All elements with the given name, across all documents, via the index
    when available (record order), otherwise by full traversal (document
    order). *)
val elements_named : t -> string -> Phys_node.t list

(** Node count for an element name (index-accelerated when available). *)
val count_elements : t -> string -> int
