open Natix_util

type content_tag =
  | Tag_aggregate
  | Tag_frag_aggregate
  | Tag_proxy
  | Tag_str
  | Tag_int8
  | Tag_int16
  | Tag_int32
  | Tag_int64
  | Tag_float
  | Tag_uri

let tag_to_int = function
  | Tag_aggregate -> 0
  | Tag_frag_aggregate -> 1
  | Tag_proxy -> 2
  | Tag_str -> 3
  | Tag_int8 -> 4
  | Tag_int16 -> 5
  | Tag_int32 -> 6
  | Tag_int64 -> 7
  | Tag_float -> 8
  | Tag_uri -> 9

let tag_of_int = function
  | 0 -> Tag_aggregate
  | 1 -> Tag_frag_aggregate
  | 2 -> Tag_proxy
  | 3 -> Tag_str
  | 4 -> Tag_int8
  | 5 -> Tag_int16
  | 6 -> Tag_int32
  | 7 -> Tag_int64
  | 8 -> Tag_float
  | 9 -> Tag_uri
  | n -> invalid_arg (Printf.sprintf "Node_type_table: bad content tag %d" n)

(* Shared across all transactions; interning is an append-only mutation
   guarded by an internal leaf mutex (a holder never takes another
   lock, so the mutex is outside any wait cycle). *)
type t = {
  lock : Mutex.t;
  by_pair : (int * Label.t, int) Hashtbl.t;
  mutable by_index : (content_tag * Label.t) array;
  mutable count : int;
}

let create () =
  {
    lock = Mutex.create ();
    by_pair = Hashtbl.create 64;
    by_index = Array.make 64 (Tag_aggregate, 0);
    count = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let index t tag label =
  let key = (tag_to_int tag, label) in
  locked t (fun () ->
      match Hashtbl.find_opt t.by_pair key with
      | Some i -> i
      | None ->
        if t.count >= 0x10000 then failwith "Node_type_table: full (65536 entries)";
        if t.count = Array.length t.by_index then begin
          let bigger = Array.make (2 * t.count) (Tag_aggregate, 0) in
          Array.blit t.by_index 0 bigger 0 t.count;
          t.by_index <- bigger
        end;
        let i = t.count in
        Hashtbl.replace t.by_pair key i;
        t.by_index.(i) <- (tag, label);
        t.count <- t.count + 1;
        i)

let entry t i =
  locked t (fun () ->
      if i < 0 || i >= t.count then
        invalid_arg (Printf.sprintf "Node_type_table: unknown index %d" i)
      else t.by_index.(i))

let size t = locked t (fun () -> t.count)

let encode t =
  locked t (fun () ->
      let b = Bytes.create (2 + (t.count * 5)) in
      Bytes_util.set_u16 b 0 t.count;
      for i = 0 to t.count - 1 do
        let tag, label = t.by_index.(i) in
        Bytes_util.set_u8 b (2 + (5 * i)) (tag_to_int tag);
        Bytes_util.set_u32 b (2 + (5 * i) + 1) label
      done;
      Bytes.unsafe_to_string b)

let decode s =
  let b = Bytes.unsafe_of_string s in
  let count = Bytes_util.get_u16 b 0 in
  let t = create () in
  for i = 0 to count - 1 do
    let tag = tag_of_int (Bytes_util.get_u8 b (2 + (5 * i))) in
    let label = Bytes_util.get_u32 b (2 + (5 * i) + 1) in
    let idx = index t tag label in
    assert (idx = i)
  done;
  t
