(** Reconstruction of the textual representation (paper §4.3 query 2).

    Walks the stored physical tree, expanding proxies and reassembling
    fragmented literals, and rebuilds the logical {!Natix_xml.Xml_tree.t}
    or the XML text directly. *)

(** Rebuild the logical tree under a stored node. *)
val to_xml : Tree_store.t -> Phys_node.t -> Natix_xml.Xml_tree.t

(** Rebuild the whole document.  [None] if it does not exist. *)
val document_to_xml : Tree_store.t -> string -> Natix_xml.Xml_tree.t option

(** Serialise a stored subtree directly to XML text. *)
val to_string : Tree_store.t -> Phys_node.t -> string
