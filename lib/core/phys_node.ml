open Natix_util

type literal =
  | Str of string
  | Int8 of int
  | Int16 of int
  | Int32 of int32
  | Int64 of int64
  | Float of float
  | Uri of string

type kind =
  | Aggregate of { mutable children : t list }
  | Frag_aggregate of { mutable children : t list }
  | Literal of literal
  | Proxy of Rid.t

and t = {
  mutable label : Label.t;
  mutable kind : kind;
  mutable parent : t option;
  mutable size : int;
  mutable box : box option;
}

and box = { mutable rid : Rid.t; mutable root : t; mutable parent_rid : Rid.t }

let embedded_header_size = 6
let standalone_header_size = 2 + Rid.encoded_size

let literal_size = function
  | Str s | Uri s -> String.length s
  | Int8 _ -> 1
  | Int16 _ -> 2
  | Int32 _ -> 4
  | Int64 _ | Float _ -> 8

let children_size cs = List.fold_left (fun acc c -> acc + c.size) 0 cs

let mk label kind size = { label; kind; parent = None; size; box = None }

let adopt parent cs = List.iter (fun c -> c.parent <- Some parent) cs

let aggregate label cs =
  let n = mk label (Aggregate { children = cs }) (embedded_header_size + children_size cs) in
  adopt n cs;
  n

let scaffold_aggregate cs = aggregate Label.scaffold cs

let frag_aggregate ?(label = Label.pcdata) cs =
  let n = mk label (Frag_aggregate { children = cs }) (embedded_header_size + children_size cs) in
  adopt n cs;
  n

let literal ?(label = Label.pcdata) v = mk label (Literal v) (embedded_header_size + literal_size v)
let proxy rid = mk Label.scaffold (Proxy rid) (embedded_header_size + Rid.encoded_size)
let is_scaffolding t = Label.is_scaffold t.label
let is_facade t = not (is_scaffolding t)

let is_aggregate t =
  match t.kind with
  | Aggregate _ | Frag_aggregate _ -> true
  | Literal _ | Proxy _ -> false

let is_leaf t = not (is_aggregate t)

let children t =
  match t.kind with
  | Aggregate a -> a.children
  | Frag_aggregate a -> a.children
  | Literal _ | Proxy _ -> []

let set_children_raw t cs =
  match t.kind with
  | Aggregate a -> a.children <- cs
  | Frag_aggregate a -> a.children <- cs
  | Literal _ | Proxy _ -> invalid_arg "Phys_node.set_children: not an aggregate"

let set_children t cs =
  set_children_raw t cs;
  adopt t cs;
  t.size <- embedded_header_size + children_size cs

let rec add_size t delta =
  t.size <- t.size + delta;
  match t.parent with
  | Some p -> add_size p delta
  | None -> ()

let insert_child parent ~index child =
  let cs = children parent in
  let n = List.length cs in
  if index < 0 || index > n then invalid_arg "Phys_node.insert_child: bad index";
  let rec splice i = function
    | rest when i = index -> child :: rest
    | [] -> invalid_arg "Phys_node.insert_child: bad index"
    | c :: rest -> c :: splice (i + 1) rest
  in
  set_children_raw parent (splice 0 cs);
  child.parent <- Some parent;
  add_size parent child.size

let remove_child parent child =
  let cs = children parent in
  let found = ref false in
  let cs' =
    List.filter
      (fun c ->
        if c == child then begin
          found := true;
          false
        end
        else true)
      cs
  in
  if not !found then raise Not_found;
  set_children_raw parent cs';
  child.parent <- None;
  add_size parent (-child.size)

let index_of parent child =
  let rec go i = function
    | [] -> raise Not_found
    | c :: _ when c == child -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (children parent)

let rec record_root t =
  match t.parent with
  | None -> t
  | Some p -> record_root p

(* A record body carries the standalone header on its root instead of the
   embedded one. *)
let record_size t = t.size - embedded_header_size + standalone_header_size

let rec count t = 1 + List.fold_left (fun acc c -> acc + count c) 0 (children t)

let rec compute_size t =
  match t.kind with
  | Aggregate { children } | Frag_aggregate { children } ->
    embedded_header_size + List.fold_left (fun acc c -> acc + compute_size c) 0 children
  | Literal v -> embedded_header_size + literal_size v
  | Proxy _ -> embedded_header_size + Rid.encoded_size

let rec pp ppf t =
  let tag =
    match t.kind with
    | Aggregate _ -> if is_scaffolding t then "scaffold" else "elem"
    | Frag_aggregate _ -> "frag"
    | Literal (Str _) -> "text"
    | Literal _ -> "literal"
    | Proxy rid -> Format.asprintf "proxy%a" Rid.pp rid
  in
  match t.kind with
  | Aggregate _ | Frag_aggregate _ ->
    Format.fprintf ppf "@[<hv 2>%s%a(%a)@]" tag Label.pp t.label
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      (children t)
  | Literal (Str s) -> Format.fprintf ppf "%S" s
  | Literal _ -> Format.fprintf ppf "%s" tag
  | Proxy _ -> Format.fprintf ppf "%s" tag
