type t = {
  page_size : int;
  buffer_bytes : int;
  split_target : float;
  split_tolerance : float;
  matrix : Split_matrix.t;
  merge_threshold : float;
  standalone_first_fit : bool;
  wal : bool;
  commit_delay : float;
  read_retries : int;
  read_ahead : int;
  scan_resistant : bool;
  arena_batch : int;  (* pages a private document arena grabs per refill *)
  obs : Natix_obs.Obs.t option;
}

let default () =
  {
    page_size = 8192;
    buffer_bytes = 2 * 1024 * 1024;
    split_target = 0.5;
    split_tolerance = 0.1;
    matrix = Split_matrix.native ();
    merge_threshold = 0.5;
    standalone_first_fit = false;
    wal = true;
    commit_delay = 0.;
    read_retries = 3;
    read_ahead = 0;
    scan_resistant = false;
    arena_batch = 8;
    obs = None;
  }

let with_page_size page_size t = { t with page_size }
let with_matrix matrix t = { t with matrix }
let with_obs obs t = { t with obs = Some obs }
let with_scan_friendly ?(read_ahead = 8) t = { t with read_ahead; scan_resistant = true }

(* The integrity trailer comes off every page before the slotted layout
   carves it up. *)
let max_record_size t =
  Natix_store.Slotted_page.max_record_len
    ~page_size:(t.page_size - Natix_store.Disk.trailer_size)

let validate t =
  if t.page_size < 512 || t.page_size > 32768 then
    invalid_arg "Config: page_size must be within [512, 32768]";
  if t.buffer_bytes < 2 * t.page_size then
    invalid_arg "Config: buffer must hold at least two pages";
  if t.split_target <= 0. || t.split_target >= 1. then
    invalid_arg "Config: split_target must be in (0, 1)";
  if t.split_tolerance < 0. || t.split_tolerance > 0.5 then
    invalid_arg "Config: split_tolerance must be in [0, 0.5]";
  if t.merge_threshold < 0. || t.merge_threshold > 1. then
    invalid_arg "Config: merge_threshold must be in [0, 1]";
  if t.commit_delay < 0. || t.commit_delay > 10_000. then
    invalid_arg "Config: commit_delay must be in [0, 10000] ms";
  if t.read_retries < 0 || t.read_retries > 1000 then
    invalid_arg "Config: read_retries must be in [0, 1000]";
  if t.read_ahead < 0 || t.read_ahead > 1024 then
    invalid_arg "Config: read_ahead must be in [0, 1024]";
  if t.arena_batch < 1 || t.arena_batch > 1024 then
    invalid_arg "Config: arena_batch must be in [1, 1024]"
