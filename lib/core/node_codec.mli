(** Record representation (Appendix A).

    A record body holds exactly one subtree, serialised in document order
    with nodes nested inside their parent aggregates:

    - the {b standalone} root carries a 10-byte header: a 2-byte node-type
      index and the 8-byte RID of the parent record (its own size comes
      from the slot information);
    - every {b embedded} object carries a 6-byte header: a 2-byte node-type
      index, a 2-byte total size (header included) and the 2-byte offset of
      its parent's header within the record.

    Offsets are record-relative, so the byte representation is
    location-independent: records move around pages (and across pages, with
    the store-wide type table) without modification.  For comparison, plain
    XML markup needs 7 bytes even for a one-character tag name. *)

open Natix_util

(** Byte offset of the parent RID inside a record body (after the type
    index), used for in-place reparenting patches. *)
val parent_rid_offset : int

(** [encode tbl ~parent_rid root] serialises a record body.  [root] must
    not be a proxy (single-proxy records are never created; paper §3.2.2).
    @raise Invalid_argument on a proxy root. *)
val encode : Node_type_table.t -> parent_rid:Rid.t -> Phys_node.t -> string

(** [decode tbl body] rebuilds the subtree and returns it with the parent
    record RID from the standalone header.  The returned nodes are fresh
    and carry correct cached sizes and parent links.
    @raise Failure on a malformed body. *)
val decode : Node_type_table.t -> string -> Phys_node.t * Rid.t

(** [decode_parent_rid body] reads just the parent RID. *)
val decode_parent_rid : string -> Rid.t

(** Re-encode/decode consistency check used by property tests: structural
    equality of two subtrees (labels, kinds, payloads; record identity of
    proxies by RID). *)
val structural_equal : Phys_node.t -> Phys_node.t -> bool
