exception Parse_error of string

type axis = Child | Descendant
type nametest = Name of string | Any | Text_nodes

type step = { axis : axis; test : nametest; positions : int list }

type t = step list

let parse s =
  let n = String.length s in
  if n = 0 then raise (Parse_error "empty path");
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let steps = ref [] in
  let axis () =
    match peek () with
    | Some '/' ->
      incr pos;
      if peek () = Some '/' then begin
        incr pos;
        Descendant
      end
      else Child
    | Some c -> raise (Parse_error (Printf.sprintf "expected '/', got %C" c))
    | None -> raise (Parse_error "expected a step")
  in
  let name () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '@' | '*' | '(' | ')' -> true
      | '/' | '[' -> false
      | c -> raise (Parse_error (Printf.sprintf "unexpected %C" c))
    do
      incr pos
    done;
    if !pos = start then raise (Parse_error "expected a name test");
    String.sub s start (!pos - start)
  in
  let predicates () =
    let ps = ref [] in
    while peek () = Some '[' do
      incr pos;
      let start = !pos in
      while !pos < n && s.[!pos] <> ']' do
        incr pos
      done;
      if !pos >= n then raise (Parse_error "unterminated predicate");
      let digits = String.sub s start (!pos - start) in
      incr pos;
      match int_of_string_opt digits with
      | Some k when k >= 1 -> ps := k :: !ps
      | Some _ | None -> raise (Parse_error (Printf.sprintf "bad position %S" digits))
    done;
    List.rev !ps
  in
  while !pos < n do
    let axis = axis () in
    let raw = name () in
    let test =
      match raw with
      | "*" -> Any
      | "text()" -> Text_nodes
      | name -> Name name
    in
    let positions = predicates () in
    steps := { axis; test; positions } :: !steps
  done;
  List.rev !steps

let to_string t =
  String.concat ""
    (List.map
       (fun { axis; test; positions } ->
         (match axis with Child -> "/" | Descendant -> "//")
         ^ (match test with Any -> "*" | Text_nodes -> "text()" | Name n -> n)
         ^ String.concat "" (List.map (Printf.sprintf "[%d]") positions))
       t)

let matches test c =
  match test with
  | Any -> Cursor.is_element c
  | Text_nodes -> Cursor.is_text c && not (Cursor.is_attribute c)
  | Name n -> String.equal (Cursor.name c) n

(* Candidates of one step from one context node, positions applied. *)
let step_from step c =
  let base =
    match step.axis with
    | Child -> Cursor.children c
    | Descendant -> Seq.concat_map Cursor.descendants_or_self (Cursor.children c)
  in
  let hits = Seq.filter (matches step.test) base in
  match step.positions with
  | [] -> List.of_seq hits
  | ps ->
    (* Apply each positional predicate in sequence (XPath [k][j]). *)
    List.fold_left
      (fun nodes k -> match List.nth_opt nodes (k - 1) with Some x -> [ x ] | None -> [])
      (List.of_seq hits) ps

let eval ctx t =
  List.fold_left (fun nodes step -> List.concat_map (step_from step) nodes) [ ctx ] t

let query store ~doc path =
  match Cursor.of_document store doc with
  | None -> invalid_arg (Printf.sprintf "Path.query: no document %S" doc)
  | Some root -> eval root (parse path)
