(** The system catalog (paper §2.1's schema manager, minimally).

    Holds the name pool (Σ_DTD symbols), the node type table and the
    document directory (document name → root record RID), persisted inside
    the store itself as a chain of ordinary records bootstrapped from page
    0's user field — the paper stores its catalog "as a collection of XML
    documents inside the system"; a record chain plays the same role here. *)

open Natix_util

type t = {
  names : Name_pool.t;
  types : Node_type_table.t;
  docs : (string, Rid.t) Hashtbl.t;
  meta : (string, string) Hashtbl.t;
      (** free-form metadata: index roots, per-document DTDs, ... *)
}

val empty : unit -> t

(** [load rm] reads the catalog chain, or returns a fresh catalog if the
    store has none yet. *)
val load : Natix_store.Record_manager.t -> t

(** [save rm t] rewrites the catalog chain (deleting the previous one). *)
val save : Natix_store.Record_manager.t -> t -> unit

(** Serialization used by [save]/[load]; exposed for tests. *)

val encode : t -> string

val decode : string -> t
