open Natix_util
module Rm = Natix_store.Record_manager
module Segment = Natix_store.Segment
module Slotted_page = Natix_store.Slotted_page

type t = {
  names : Name_pool.t;
  types : Node_type_table.t;
  docs : (string, Rid.t) Hashtbl.t;
  meta : (string, string) Hashtbl.t;
}

let empty () =
  {
    names = Name_pool.create ();
    types = Node_type_table.create ();
    docs = Hashtbl.create 8;
    meta = Hashtbl.create 8;
  }

(* Framing: [u32 len][payload] triples for names, types, docs. *)
let encode t =
  let buf = Buffer.create 512 in
  let section s =
    let b = Bytes.create 4 in
    Bytes_util.set_u32 b 0 (String.length s);
    Buffer.add_bytes buf b;
    Buffer.add_string buf s
  in
  section (Name_pool.encode t.names);
  section (Node_type_table.encode t.types);
  let docs = Buffer.create 128 in
  Hashtbl.iter
    (fun name rid ->
      let b = Bytes.create (4 + String.length name + Rid.encoded_size) in
      Bytes_util.set_u32 b 0 (String.length name);
      Bytes.blit_string name 0 b 4 (String.length name);
      Rid.write b (4 + String.length name) rid;
      Buffer.add_bytes docs b)
    t.docs;
  section (Buffer.contents docs);
  let meta = Buffer.create 128 in
  Hashtbl.iter
    (fun k v ->
      let b = Bytes.create 8 in
      Bytes_util.set_u32 b 0 (String.length k);
      Bytes_util.set_u32 b 4 (String.length v);
      Buffer.add_bytes meta b;
      Buffer.add_string meta k;
      Buffer.add_string meta v)
    t.meta;
  section (Buffer.contents meta);
  Buffer.contents buf

let decode s =
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  let section () =
    let len = Bytes_util.get_u32 b !pos in
    let payload = String.sub s (!pos + 4) len in
    pos := !pos + 4 + len;
    payload
  in
  let names = Name_pool.decode (section ()) in
  let types = Node_type_table.decode (section ()) in
  let docs_raw = section () in
  let docs = Hashtbl.create 8 in
  let db = Bytes.unsafe_of_string docs_raw in
  let dpos = ref 0 in
  while !dpos < String.length docs_raw do
    let len = Bytes_util.get_u32 db !dpos in
    let name = String.sub docs_raw (!dpos + 4) len in
    let rid = Rid.read db (!dpos + 4 + len) in
    Hashtbl.replace docs name rid;
    dpos := !dpos + 4 + len + Rid.encoded_size
  done;
  let meta_raw = section () in
  let meta = Hashtbl.create 8 in
  let mb = Bytes.unsafe_of_string meta_raw in
  let mpos = ref 0 in
  while !mpos < String.length meta_raw do
    let klen = Bytes_util.get_u32 mb !mpos in
    let vlen = Bytes_util.get_u32 mb (!mpos + 4) in
    let k = String.sub meta_raw (!mpos + 8) klen in
    let v = String.sub meta_raw (!mpos + 8 + klen) vlen in
    Hashtbl.replace meta k v;
    mpos := !mpos + 8 + klen + vlen
  done;
  { names; types; docs; meta }

(* Bootstrap: page 0 (reserved by the segment for this purpose) holds a
   small head record whose body is the RID of the first data chunk; the
   head's slot number is stored in page 0's user32 field as [slot + 1]
   (0 = no catalog).  Each data chunk is [8-byte next RID][data]. *)

let head_rid rm =
  Segment.with_page (Rm.segment rm) 0 (fun b ->
      let v = Slotted_page.get_user32 b in
      if v = 0 then None else Some (Rid.make ~page:0 ~slot:(v - 1)))

let set_head rm slot_opt =
  Segment.with_page_mut (Rm.segment rm) 0 (fun b ->
      Slotted_page.set_user32 b (match slot_opt with None -> 0 | Some slot -> slot + 1))

let read_chain rm first =
  let buf = Buffer.create 512 in
  let rec go rid =
    let body = Rm.read rm rid in
    let next = Rid.read (Bytes.unsafe_of_string body) 0 in
    Buffer.add_substring buf body Rid.encoded_size (String.length body - Rid.encoded_size);
    if not (Rid.is_null next) then go next
  in
  go first;
  Buffer.contents buf

let delete_chain rm first =
  let rec go rid =
    let body = Rm.read rm rid in
    let next = Rid.read (Bytes.unsafe_of_string body) 0 in
    Rm.delete rm rid;
    if not (Rid.is_null next) then go next
  in
  go first

let write_chain rm data =
  (* Build chunks back to front so each knows its successor's RID. *)
  let payload = max 64 (Rm.max_len rm - Rid.encoded_size) in
  let total = String.length data in
  let n_chunks = max 1 ((total + payload - 1) / payload) in
  let rec write_chunk i next_rid =
    let start = i * payload in
    let len = max 0 (min payload (total - start)) in
    let b = Bytes.create (Rid.encoded_size + len) in
    Rid.write b 0 next_rid;
    Bytes.blit_string data start b Rid.encoded_size len;
    let rid = Rm.insert rm (Bytes.unsafe_to_string b) in
    if i = 0 then rid else write_chunk (i - 1) rid
  in
  write_chunk (n_chunks - 1) Rid.null

let save rm t =
  (match head_rid rm with
  | Some head ->
    let first = Rid.read (Bytes.unsafe_of_string (Rm.read rm head)) 0 in
    delete_chain rm first;
    Segment.with_page_mut (Rm.segment rm) 0 (fun b -> Slotted_page.delete b (Rid.slot head))
  | None -> ());
  let first = write_chain rm (encode t) in
  let body = Bytes.create Rid.encoded_size in
  Rid.write body 0 first;
  let slot =
    Segment.with_page_mut (Rm.segment rm) 0 (fun b ->
        match Slotted_page.insert b (Bytes.unsafe_to_string body) Slotted_page.no_flags with
        | Some slot -> slot
        | None -> failwith "Catalog.save: page 0 cannot hold the catalog head")
  in
  set_head rm (Some slot)

let load rm =
  match head_rid rm with
  | None -> empty ()
  | Some head ->
    let first = Rid.read (Bytes.unsafe_of_string (Rm.read rm head)) 0 in
    decode (read_chain rm first)
